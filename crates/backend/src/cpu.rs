//! The native f64 CPU backend — `baselines::cpu` behind the [`Backend`]
//! trait. This is the HYPRE analogue of the paper's evaluation (§VI-A),
//! promoted from a bench-only helper to a first-class backend: it shares
//! the sparse formats, the solver-config wire grammar and the
//! `SolveReport` schema with the simulator, and reports measured host
//! wall-clock time ([`Timing::Wall`]).

use baselines::{CpuMethod, CpuSolver};
use json::Json;

use crate::{Backend, BackendError, BackendRun, Capabilities, PreparedPlan, SolvePlan, Timing};

/// The CPU baseline as a backend: BiCGStab or CG, optionally
/// ILU(0)-preconditioned, in f64.
#[derive(Clone, Copy, Debug)]
pub struct CpuBackend {
    /// Rayon row-block parallel SpMV (bit-identical numerics — the
    /// per-row accumulation stays sequential).
    pub parallel: bool,
}

impl CpuBackend {
    pub fn new(parallel: bool) -> CpuBackend {
        CpuBackend { parallel }
    }
}

/// Solver shape the CPU baseline implements, lowered from the config JSON.
pub(crate) struct KrylovShape {
    pub method: CpuMethod,
    pub max_iters: usize,
    pub rel_tol: f64,
    pub use_ilu: bool,
}

/// Lower a solver-config JSON (`SolverConfig::to_value` wire format) to
/// the Krylov shape the baselines implement. Returns a human-readable
/// description of the unsupported piece on mismatch.
pub(crate) fn lower_solver(solver: &Json) -> Result<KrylovShape, String> {
    let ty = solver
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "a solver config without a `type` tag".to_string())?;
    let method = match ty {
        "cg" => CpuMethod::Cg,
        "bi_cg_stab" => CpuMethod::BiCgStab,
        other => {
            return Err(format!(
                "solver `{other}` (supported: cg, bi_cg_stab, each optionally with an ilu0 precond)"
            ))
        }
    };
    let max_iters = solver.get("max_iters").and_then(Json::as_u64).unwrap_or(100) as usize;
    let rel_tol = solver.get("rel_tol").and_then(Json::as_f64).unwrap_or(0.0);
    let use_ilu = match solver.get("precond") {
        None => false,
        Some(p) if p.is_null() => false,
        Some(p) => match p.get("type").and_then(Json::as_str) {
            Some("ilu0") => true,
            Some(other) => {
                return Err(format!("preconditioner `{other}` (supported: ilu0 or none)"))
            }
            None => return Err("a preconditioner config without a `type` tag".to_string()),
        },
    };
    Ok(KrylovShape { method, max_iters, rel_tol, use_ilu })
}

impl Backend for CpuBackend {
    fn name(&self) -> String {
        if self.parallel { "cpu:par" } else { "cpu" }.to_string()
    }

    fn family(&self) -> &'static str {
        "cpu"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { wall_clock: true, parallel_host: self.parallel, ..Capabilities::default() }
    }

    fn prepare(&self, plan: &SolvePlan) -> Result<Box<dyn PreparedPlan>, BackendError> {
        let shape = lower_solver(&plan.solver)
            .map_err(|what| BackendError::Unsupported { backend: self.name(), what })?;
        Ok(Box::new(CpuPrepared { backend: *self, shape, plan: plan.clone() }))
    }
}

struct CpuPrepared {
    backend: CpuBackend,
    shape: KrylovShape,
    plan: SolvePlan,
}

impl PreparedPlan for CpuPrepared {
    fn execute(&mut self, b: &[f64], x0: Option<&[f64]>) -> Result<BackendRun, BackendError> {
        let a = &self.plan.a;
        if b.len() != a.nrows {
            return Err(BackendError::Failed {
                backend: self.backend.name(),
                reason: format!("rhs length {} != n {}", b.len(), a.nrows),
            });
        }
        let solver = CpuSolver {
            max_iters: self.shape.max_iters,
            rel_tol: self.shape.rel_tol,
            use_ilu: self.shape.use_ilu,
            method: self.shape.method,
            parallel: self.backend.parallel,
        };
        let mut x = vec![0.0; a.nrows];
        let stats = solver.solve_from(a, b, &mut x, x0);
        let report = stats.to_solve_report(&self.backend.name(), self.plan.solver.clone(), a);
        let history = if self.plan.record_history { stats.history.clone() } else { Vec::new() };
        Ok(BackendRun {
            x,
            residual: stats.relative_residual,
            iterations: stats.iterations,
            history,
            timing: Timing::Wall { seconds: stats.solve_seconds },
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use sparse::formats::CsrMatrix;
    use sparse::gen::tridiagonal;

    use super::*;

    fn tridiag(n: usize) -> Rc<CsrMatrix> {
        Rc::new(tridiagonal(n))
    }

    fn krylov(ty: &str, precond: Option<&str>) -> Json {
        let mut fields = vec![
            ("type".to_string(), Json::Str(ty.to_string())),
            ("max_iters".to_string(), Json::Num(200.0)),
            ("rel_tol".to_string(), Json::Num(1e-10)),
        ];
        if let Some(p) = precond {
            fields.push((
                "precond".to_string(),
                Json::obj([("type".to_string(), Json::Str(p.to_string()))]),
            ));
        }
        Json::obj(fields)
    }

    #[test]
    fn cpu_backend_solves_supported_configs() {
        let a = tridiag(64);
        let b = vec![1.0; 64];
        for ty in ["cg", "bi_cg_stab"] {
            for precond in [None, Some("ilu0")] {
                let plan = SolvePlan {
                    a: Rc::clone(&a),
                    solver: krylov(ty, precond),
                    record_history: true,
                };
                let backend = CpuBackend::new(false);
                let mut prepared = backend.prepare(&plan).unwrap();
                let run = prepared.execute(&b, None).unwrap();
                assert!(run.residual < 1e-8, "{ty} {precond:?}: {}", run.residual);
                assert!(run.iterations > 0);
                assert!(!run.history.is_empty());
                assert_eq!(run.timing.kind(), "wall-clock");
                let info = run.report.backend.as_ref().unwrap();
                assert_eq!(info.family, "cpu");
                assert_eq!(info.timing, "wall-clock");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_cpu_are_bit_identical() {
        let a = tridiag(97);
        let b: Vec<f64> = (0..97).map(|i| (i as f64 * 0.37).sin()).collect();
        let plan = SolvePlan {
            a: Rc::clone(&a),
            solver: krylov("bi_cg_stab", Some("ilu0")),
            record_history: false,
        };
        let run_seq = CpuBackend::new(false).prepare(&plan).unwrap().execute(&b, None).unwrap();
        let run_par = CpuBackend::new(true).prepare(&plan).unwrap().execute(&b, None).unwrap();
        assert_eq!(run_seq.x, run_par.x, "parallel SpMV must not change bits");
        assert_eq!(run_seq.iterations, run_par.iterations);
    }

    #[test]
    fn unsupported_solvers_are_typed_refusals() {
        let a = tridiag(8);
        let plan = SolvePlan {
            a,
            solver: Json::obj([("type".to_string(), Json::Str("jacobi".to_string()))]),
            record_history: false,
        };
        let err = match CpuBackend::new(false).prepare(&plan) {
            Ok(_) => panic!("jacobi must be refused by the cpu backend"),
            Err(e) => e,
        };
        match err {
            BackendError::Unsupported { backend, what } => {
                assert_eq!(backend, "cpu");
                assert!(what.contains("jacobi"), "{what}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn initial_guess_is_honoured() {
        let a = tridiag(32);
        let b = vec![2.0; 32];
        let plan =
            SolvePlan { a: Rc::clone(&a), solver: krylov("cg", None), record_history: false };
        let mut prepared = CpuBackend::new(false).prepare(&plan).unwrap();
        let exact = prepared.execute(&b, None).unwrap();
        // Starting from the solution: residual immediately at the bottom.
        let warm = prepared.execute(&b, Some(&exact.x)).unwrap();
        assert!(warm.iterations <= 1, "warm start from the solution: {}", warm.iterations);
    }
}
