//! The GPU roofline-model backend — `baselines::gpu` behind the
//! [`Backend`] trait. The cuSPARSE-on-H100 analogue of the paper's
//! evaluation (§VI-A): the *numerics* run on the host (sequential f64,
//! bit-reproducible), the *time* is derived analytically from the H100
//! roofline model — iterations × modelled per-iteration seconds, reported
//! as [`Timing::Modelled`]. The capability matrix is honest about this:
//! no fault injection, no auto-tuning, no perf attribution — asking for
//! any of them is a typed [`BackendError::Unsupported`].

use baselines::cpu::Ilu0Factors;
use baselines::{CpuMethod, CpuSolver, GpuModel};
use profile::BackendInfo;

use crate::cpu::{lower_solver, KrylovShape};
use crate::{Backend, BackendError, BackendRun, Capabilities, PreparedPlan, SolvePlan, Timing};

/// The H100 roofline model as a backend.
#[derive(Clone, Debug)]
pub struct GpuModelBackend {
    pub model: GpuModel,
}

impl GpuModelBackend {
    /// The paper's comparison GPU (H100 SXM).
    pub fn h100() -> GpuModelBackend {
        GpuModelBackend { model: GpuModel::h100() }
    }
}

impl Default for GpuModelBackend {
    fn default() -> Self {
        GpuModelBackend::h100()
    }
}

impl Backend for GpuModelBackend {
    fn name(&self) -> String {
        "gpu-model".to_string()
    }

    fn family(&self) -> &'static str {
        "gpu-model"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { modelled_time: true, ..Capabilities::default() }
    }

    fn prepare(&self, plan: &SolvePlan) -> Result<Box<dyn PreparedPlan>, BackendError> {
        let shape = lower_solver(&plan.solver)
            .map_err(|what| BackendError::Unsupported { backend: self.name(), what })?;
        // The analysis phase cuSPARSE would run: derive the triangular-
        // solve level structure once, at prepare time.
        let levels = shape.use_ilu.then(|| Ilu0Factors::new(&plan.a).level_counts());
        Ok(Box::new(GpuPrepared { model: self.model.clone(), shape, levels, plan: plan.clone() }))
    }
}

struct GpuPrepared {
    model: GpuModel,
    shape: KrylovShape,
    /// (forward, backward) dependency-level counts of the ILU factors.
    levels: Option<(usize, usize)>,
    plan: SolvePlan,
}

impl GpuPrepared {
    /// Modelled seconds for one iteration of the prepared solver.
    fn iteration_seconds(&self) -> f64 {
        let a = &self.plan.a;
        match (self.shape.method, self.levels) {
            (CpuMethod::BiCgStab, Some((f, b))) => self.model.bicgstab_ilu_iteration_time(a, f, b),
            (CpuMethod::BiCgStab, None) => self.model.bicgstab_iteration_time(a),
            (CpuMethod::Cg, Some((f, b))) => self.model.cg_ilu_iteration_time(a, f, b),
            (CpuMethod::Cg, None) => self.model.cg_iteration_time(a),
        }
    }
}

impl PreparedPlan for GpuPrepared {
    fn execute(&mut self, b: &[f64], x0: Option<&[f64]>) -> Result<BackendRun, BackendError> {
        let a = &self.plan.a;
        if b.len() != a.nrows {
            return Err(BackendError::Failed {
                backend: "gpu-model".to_string(),
                reason: format!("rhs length {} != n {}", b.len(), a.nrows),
            });
        }
        // Numerics: a sequential host proxy (same f64 kernel chain a GPU
        // would run, deterministic accumulation order).
        let solver = CpuSolver {
            max_iters: self.shape.max_iters,
            rel_tol: self.shape.rel_tol,
            use_ilu: self.shape.use_ilu,
            method: self.shape.method,
            parallel: false,
        };
        let mut x = vec![0.0; a.nrows];
        let stats = solver.solve_from(a, b, &mut x, x0);
        let seconds = stats.iterations as f64 * self.iteration_seconds();
        let mut report = stats.to_solve_report("gpu-model", self.plan.solver.clone(), a);
        report.seconds = seconds;
        report.executor = "gpu-model".to_string();
        report.backend = Some(BackendInfo {
            name: "gpu-model".to_string(),
            family: "gpu-model".to_string(),
            timing: "roofline-model".to_string(),
            seconds,
        });
        let history = if self.plan.record_history { stats.history.clone() } else { Vec::new() };
        Ok(BackendRun {
            x,
            residual: stats.relative_residual,
            iterations: stats.iterations,
            history,
            timing: Timing::Modelled { seconds },
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use json::Json;
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

    use super::*;

    fn krylov(ty: &str, precond: Option<&str>) -> Json {
        let mut fields = vec![
            ("type".to_string(), Json::Str(ty.to_string())),
            ("max_iters".to_string(), Json::Num(300.0)),
            ("rel_tol".to_string(), Json::Num(1e-8)),
        ];
        if let Some(p) = precond {
            fields.push((
                "precond".to_string(),
                Json::obj([("type".to_string(), Json::Str(p.to_string()))]),
            ));
        }
        Json::obj(fields)
    }

    #[test]
    fn gpu_model_reports_modelled_seconds() {
        let a = Rc::new(poisson_2d_5pt(12, 12, 1.0));
        let b = rhs_for_ones(&a);
        for (ty, precond) in
            [("cg", None), ("cg", Some("ilu0")), ("bi_cg_stab", None), ("bi_cg_stab", Some("ilu0"))]
        {
            let plan =
                SolvePlan { a: Rc::clone(&a), solver: krylov(ty, precond), record_history: false };
            let backend = GpuModelBackend::h100();
            let run = backend.prepare(&plan).unwrap().execute(&b, None).unwrap();
            assert!(run.residual < 1e-6, "{ty} {precond:?}: {}", run.residual);
            assert_eq!(run.timing.kind(), "roofline-model");
            assert!(run.timing.seconds() > 0.0, "modelled time must be positive");
            let info = run.report.backend.as_ref().unwrap();
            assert_eq!(info.family, "gpu-model");
            assert_eq!(info.timing, "roofline-model");
            assert_eq!(run.report.seconds, run.timing.seconds());
        }
    }

    #[test]
    fn ilu_levels_make_modelled_iterations_slower() {
        // The preconditioned iteration costs the triangular-solve level
        // serialisation the roofline model exists to capture.
        let a = Rc::new(poisson_2d_5pt(24, 24, 1.0));
        let b = rhs_for_ones(&a);
        let backend = GpuModelBackend::h100();
        let run = |precond| {
            let plan = SolvePlan {
                a: Rc::clone(&a),
                solver: krylov("bi_cg_stab", precond),
                record_history: false,
            };
            backend.prepare(&plan).unwrap().execute(&b, None).unwrap()
        };
        let plain = run(None);
        let ilu = run(Some("ilu0"));
        let per_iter_plain = plain.timing.seconds() / plain.iterations.max(1) as f64;
        let per_iter_ilu = ilu.timing.seconds() / ilu.iterations.max(1) as f64;
        assert!(per_iter_ilu > per_iter_plain, "{per_iter_ilu} vs {per_iter_plain}");
    }

    #[test]
    fn capabilities_deny_faults_and_tuning() {
        let caps = GpuModelBackend::h100().capabilities();
        assert!(caps.modelled_time);
        assert!(!caps.fault_injection);
        assert!(!caps.auto_tuning);
        assert!(!caps.cycle_accounting);
    }
}
