//! # graphene-backend — the device/backend abstraction
//!
//! The paper's evaluation is inherently multi-backend: the IPU framework
//! versus HYPRE-on-Xeon and HYPRE+cuSPARSE-on-H100 (§VI-A). This crate
//! gives those comparators one execution contract so a solve can be
//! retargeted without touching the call site:
//!
//! * [`Backend`] — a named device with a [`Capabilities`] matrix that
//!   turns a backend-agnostic [`SolvePlan`] into a [`PreparedPlan`];
//! * [`PreparedPlan`] — executes against concrete right-hand sides and
//!   returns a [`BackendRun`]: solution bits, convergence record, a
//!   [`Timing`] that is cycle-accurate, wall-clock or roofline-modelled
//!   depending on what the device can honestly account, and the full
//!   [`SolveReport`] (schema v3 carries the `backend` section);
//! * [`BackendSpec`] — the `GRAPHENE_BACKEND` registry grammar
//!   (`ipu-sim[:seq|par|native|legacy] | cpu[:par] | gpu-model`), plus
//!   the resolution/conflict rules for the deprecated per-knob aliases
//!   `GRAPHENE_PAR` / `GRAPHENE_NATIVE` / `GRAPHENE_LEGACY_INTERP`.
//!
//! The CPU ([`cpu::CpuBackend`]) and GPU ([`gpu::GpuModelBackend`])
//! backends live here; the IPU-simulator backend is implemented in
//! `graphene_core::backends` (it needs the DSL and solver layers, which
//! sit above this crate) and registered through the same trait.
//!
//! # How cycle-accounting and wall-time backends coexist
//!
//! Each backend reports time in the domain it can defend: the simulator
//! counts device cycles (bit-deterministic, host-independent), the CPU
//! baseline measures host wall-clock, and the GPU roofline model derives
//! seconds analytically. [`Timing`] keeps the three apart — comparisons
//! across domains are the *evaluation's* job (Figs 7/8), never silently
//! collapsed by the abstraction.

pub mod cpu;
pub mod gpu;
pub mod pool;

use std::fmt;
use std::rc::Rc;

use ipu_sim::clock::CycleStats;
use json::Json;
use profile::SolveReport;
use sparse::formats::CsrMatrix;

// ----------------------------------------------------------------------
// Backend names — the registry grammar
// ----------------------------------------------------------------------

/// Which host path executes the simulated IPU device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpuVariant {
    /// No pinned executor: the engine's own defaults (and any deprecated
    /// alias variables) choose, exactly as before this abstraction.
    Auto,
    /// One host thread walks the compiled plan (`ExecutorKind::Sequential`).
    Seq,
    /// Tile-parallel host workers (`ExecutorKind::Parallel`).
    Par,
    /// Fused native kernels (`ExecutorKind::Native`).
    Native,
    /// The legacy tree-walking interpreter (differential testing only).
    Legacy,
}

/// A parsed backend selection — the value of `GRAPHENE_BACKEND` or
/// `SolveOptions::backend`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendSpec {
    /// The cycle-modelled IPU simulator (the framework under study).
    IpuSim(IpuVariant),
    /// Native f64 CPU baseline (the HYPRE analogue); `parallel` selects
    /// rayon row-block parallelism for the SpMVs.
    Cpu { parallel: bool },
    /// The H100 roofline performance model (the cuSPARSE analogue):
    /// real f64 numerics, analytically modelled seconds.
    GpuModel,
}

/// Every name [`BackendSpec::parse`] accepts, in display order.
pub const KNOWN_BACKENDS: &[&str] = &[
    "ipu-sim",
    "ipu-sim:seq",
    "ipu-sim:par",
    "ipu-sim:native",
    "ipu-sim:legacy",
    "cpu",
    "cpu:par",
    "gpu-model",
];

impl BackendSpec {
    /// Parse a backend name from the registry grammar. Unknown names are
    /// errors listing the known spellings — a typo'd backend silently
    /// running the default would invalidate a whole evaluation.
    pub fn parse(s: &str) -> Result<BackendSpec, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ipu-sim" => Ok(BackendSpec::IpuSim(IpuVariant::Auto)),
            "ipu-sim:seq" => Ok(BackendSpec::IpuSim(IpuVariant::Seq)),
            "ipu-sim:par" => Ok(BackendSpec::IpuSim(IpuVariant::Par)),
            "ipu-sim:native" => Ok(BackendSpec::IpuSim(IpuVariant::Native)),
            "ipu-sim:legacy" => Ok(BackendSpec::IpuSim(IpuVariant::Legacy)),
            "cpu" => Ok(BackendSpec::Cpu { parallel: false }),
            "cpu:par" => Ok(BackendSpec::Cpu { parallel: true }),
            "gpu-model" => Ok(BackendSpec::GpuModel),
            other => Err(format!(
                "GRAPHENE_BACKEND: unknown backend `{other}` (known: {})",
                KNOWN_BACKENDS.join(", ")
            )),
        }
    }

    /// Canonical registry name (the string [`parse`](Self::parse) maps back).
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::IpuSim(IpuVariant::Auto) => "ipu-sim",
            BackendSpec::IpuSim(IpuVariant::Seq) => "ipu-sim:seq",
            BackendSpec::IpuSim(IpuVariant::Par) => "ipu-sim:par",
            BackendSpec::IpuSim(IpuVariant::Native) => "ipu-sim:native",
            BackendSpec::IpuSim(IpuVariant::Legacy) => "ipu-sim:legacy",
            BackendSpec::Cpu { parallel: false } => "cpu",
            BackendSpec::Cpu { parallel: true } => "cpu:par",
            BackendSpec::GpuModel => "gpu-model",
        }
    }

    /// Backend family: all ipu-sim variants share one family (and one
    /// plan-cache key component), the baselines are their own.
    pub fn family(&self) -> &'static str {
        match self {
            BackendSpec::IpuSim(_) => "ipu-sim",
            BackendSpec::Cpu { .. } => "cpu",
            BackendSpec::GpuModel => "gpu-model",
        }
    }

    /// Read `GRAPHENE_BACKEND` (plus the deprecated alias variables, for
    /// conflict detection) from the environment. `Ok(None)` when no
    /// backend is selected — the caller keeps today's default behaviour,
    /// including whatever the deprecated aliases choose at engine level.
    pub fn from_env() -> Result<Option<BackendSpec>, String> {
        let get = |k: &str| std::env::var(k).ok();
        BackendSpec::resolve_env(
            get("GRAPHENE_BACKEND").as_deref(),
            get("GRAPHENE_PAR").as_deref(),
            get("GRAPHENE_NATIVE").as_deref(),
            get("GRAPHENE_LEGACY_INTERP").as_deref(),
        )
    }

    /// The pure half of [`from_env`](Self::from_env): resolve a backend
    /// selection against the deprecated alias variables.
    ///
    /// Precedence and conflict rules (the consolidation contract):
    ///
    /// * `GRAPHENE_BACKEND` unset/empty → `Ok(None)`; the aliases keep
    ///   their historical meaning at engine level, byte-identical to the
    ///   pre-consolidation behaviour.
    /// * `GRAPHENE_BACKEND` set → it is authoritative. A *disabling*
    ///   alias value (`0`/`false`/`off`/`no`) is treated as unset; an
    ///   *enabling* alias is accepted only when it agrees with the chosen
    ///   backend (`GRAPHENE_PAR=1` with `ipu-sim:par`, `GRAPHENE_NATIVE=1`
    ///   with `ipu-sim:native`, `GRAPHENE_LEGACY_INTERP=1` with
    ///   `ipu-sim:legacy`, anything with the unpinned `ipu-sim`), and is
    ///   a loud conflict error otherwise — never a silent override.
    /// * Malformed alias values error even when the backend would win:
    ///   a typo'd knob must not vanish behind the consolidation.
    pub fn resolve_env(
        backend: Option<&str>,
        par: Option<&str>,
        native: Option<&str>,
        legacy: Option<&str>,
    ) -> Result<Option<BackendSpec>, String> {
        // Aliases parse strictly first: typos stay loud regardless of
        // which variable ends up deciding.
        let par_on = match par {
            None => None,
            Some(v) => parse_par_alias(v)?,
        };
        let native_on = match native {
            None => None,
            Some(v) => parse_bool_alias("GRAPHENE_NATIVE", v)?,
        };
        let legacy_on = match legacy {
            None => None,
            Some(v) => parse_bool_alias("GRAPHENE_LEGACY_INTERP", v)?,
        };

        let spec = match backend.map(str::trim).filter(|s| !s.is_empty()) {
            None => return Ok(None),
            Some(s) => BackendSpec::parse(s)?,
        };

        let conflict = |var: &str, val: &str, hint: &str| {
            Err(format!(
                "GRAPHENE_BACKEND={} conflicts with deprecated alias {var}={val}; \
                 unset {var} or select GRAPHENE_BACKEND={hint}",
                spec.name()
            ))
        };
        let agrees_par = matches!(spec, BackendSpec::IpuSim(IpuVariant::Auto | IpuVariant::Par));
        if par_on == Some(true) && !agrees_par {
            return conflict("GRAPHENE_PAR", par.unwrap_or(""), "ipu-sim:par");
        }
        let agrees_native =
            matches!(spec, BackendSpec::IpuSim(IpuVariant::Auto | IpuVariant::Native));
        if native_on == Some(true) && !agrees_native {
            return conflict("GRAPHENE_NATIVE", native.unwrap_or(""), "ipu-sim:native");
        }
        let agrees_legacy =
            matches!(spec, BackendSpec::IpuSim(IpuVariant::Auto | IpuVariant::Legacy));
        if legacy_on == Some(true) && !agrees_legacy {
            return conflict("GRAPHENE_LEGACY_INTERP", legacy.unwrap_or(""), "ipu-sim:legacy");
        }
        Ok(Some(spec))
    }
}

/// Truthiness of the deprecated `GRAPHENE_PAR` alias: `None` for an
/// empty value (unset), `Some(true)` for the enabling spellings and
/// worker counts ≥ 1, `Some(false)` for the disabling spellings and `0`.
/// Same grammar (and error text) as the engine's own parser.
fn parse_par_alias(v: &str) -> Result<Option<bool>, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "" => Ok(None),
        "0" | "false" | "off" | "no" => Ok(Some(false)),
        "1" | "true" | "on" | "yes" => Ok(Some(true)),
        other => match other.parse::<usize>() {
            Ok(0) => Ok(Some(false)),
            Ok(_) => Ok(Some(true)),
            Err(_) => Err(format!(
                "GRAPHENE_PAR: unrecognised value `{v}` \
                 (expected 0/1/true/false/on/off/yes/no or a worker count)"
            )),
        },
    }
}

/// Strict tri-state parse of a boolean alias (same grammar and error
/// text as the engine's `parse_env_bool`).
fn parse_bool_alias(var: &str, v: &str) -> Result<Option<bool>, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "" => Ok(None),
        "1" | "true" | "on" | "yes" => Ok(Some(true)),
        "0" | "false" | "off" | "no" => Ok(Some(false)),
        other => Err(format!(
            "{var}: unrecognised value `{other}` (expected 0/1/true/false/on/off/yes/no)"
        )),
    }
}

// ----------------------------------------------------------------------
// Capabilities
// ----------------------------------------------------------------------

/// What a backend can honestly do. Callers check before asking; the
/// runner turns a mismatch into a typed error instead of a panic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// Reports bit-deterministic device cycles ([`Timing::Cycles`]).
    pub cycle_accounting: bool,
    /// Reports measured host wall-clock time ([`Timing::Wall`]).
    pub wall_clock: bool,
    /// Reports analytically modelled seconds ([`Timing::Modelled`]).
    pub modelled_time: bool,
    /// Honours deterministic fault-injection plans.
    pub fault_injection: bool,
    /// Supports the cost-model auto-tuner (plan-cache keyed by backend
    /// family — see the `tune` crate).
    pub auto_tuning: bool,
    /// Produces per-step performance attribution (`SolveReport.perf`).
    pub perf_attribution: bool,
    /// Uses host thread parallelism for its kernels.
    pub parallel_host: bool,
}

impl Capabilities {
    /// The capabilities in `required` that this matrix lacks, by field
    /// name — empty when every requirement is met. The handle pool
    /// ([`pool::BackendPool`]) refuses construction when this is
    /// non-empty, naming exactly what is missing.
    pub fn missing(&self, required: Capabilities) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut need = |want: bool, have: bool, name: &'static str| {
            if want && !have {
                out.push(name);
            }
        };
        need(required.cycle_accounting, self.cycle_accounting, "cycle_accounting");
        need(required.wall_clock, self.wall_clock, "wall_clock");
        need(required.modelled_time, self.modelled_time, "modelled_time");
        need(required.fault_injection, self.fault_injection, "fault_injection");
        need(required.auto_tuning, self.auto_tuning, "auto_tuning");
        need(required.perf_attribution, self.perf_attribution, "perf_attribution");
        need(required.parallel_host, self.parallel_host, "parallel_host");
        out
    }

    /// Does this matrix satisfy every capability `required` asks for?
    pub fn covers(&self, required: Capabilities) -> bool {
        self.missing(required).is_empty()
    }
}

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

/// Typed backend failure. `Unsupported` is the capability-mismatch
/// contract: asking a backend for something its [`Capabilities`] deny
/// (fault injection on the GPU model, a solver the CPU baseline does not
/// implement) is a structured refusal, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// No backend registered under this name.
    Unknown(String),
    /// The plan (or an execution option) needs a capability this backend
    /// does not have.
    Unsupported { backend: String, what: String },
    /// The backend accepted the plan but execution failed.
    Failed { backend: String, reason: String },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unknown(name) => {
                write!(f, "unknown backend `{name}` (known: {})", KNOWN_BACKENDS.join(", "))
            }
            BackendError::Unsupported { backend, what } => {
                write!(f, "backend `{backend}` does not support {what}")
            }
            BackendError::Failed { backend, reason } => {
                write!(f, "backend `{backend}` failed: {reason}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

// ----------------------------------------------------------------------
// The plan and its results
// ----------------------------------------------------------------------

/// The backend-agnostic description of one solve: the compiled plan
/// *structure* every backend replays — the shared CSR matrix (from
/// `crates/sparse`) and the solver hierarchy in its JSON wire format
/// (`SolverConfig::to_value`). Backends lower this to their own form in
/// [`Backend::prepare`]: the simulator compiles a graph program, the CPU
/// baseline picks an f64 kernel chain, the GPU model derives level sets.
#[derive(Clone, Debug)]
pub struct SolvePlan {
    pub a: Rc<CsrMatrix>,
    /// Solver configuration, internally tagged (`"type"`) JSON.
    pub solver: Json,
    /// Record the per-iteration true-residual history.
    pub record_history: bool,
}

/// Time in the domain the backend can defend — never silently collapsed
/// into one scalar across backends (see the module docs).
#[derive(Clone, Debug)]
pub enum Timing {
    /// Bit-deterministic simulated device cycles and their seconds at
    /// the modelled clock.
    Cycles { stats: CycleStats, seconds: f64 },
    /// Measured host wall-clock seconds.
    Wall { seconds: f64 },
    /// Analytically modelled seconds (no measurement happened).
    Modelled { seconds: f64 },
}

impl Timing {
    /// Seconds in this timing's own domain.
    pub fn seconds(&self) -> f64 {
        match self {
            Timing::Cycles { seconds, .. }
            | Timing::Wall { seconds }
            | Timing::Modelled { seconds } => *seconds,
        }
    }

    /// Wire name for the report's `backend.timing` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Timing::Cycles { .. } => "cycle-model",
            Timing::Wall { .. } => "wall-clock",
            Timing::Modelled { .. } => "roofline-model",
        }
    }

    /// The device cycle profile, when this backend counts cycles.
    pub fn cycle_stats(&self) -> Option<&CycleStats> {
        match self {
            Timing::Cycles { stats, .. } => Some(stats),
            _ => None,
        }
    }
}

/// Everything one backend execution produced.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Solution in global row order, f64.
    pub x: Vec<f64>,
    /// True relative residual ‖b−Ax‖/‖b‖ recomputed by the backend host-
    /// side in f64 (never trusted from the device).
    pub residual: f64,
    /// Inner iterations executed.
    pub iterations: usize,
    /// (iteration, true relative residual) samples, if recorded.
    pub history: Vec<(usize, f64)>,
    /// Time in the backend's own accounting domain.
    pub timing: Timing,
    /// The full schema-v3 report (its `backend` section names this
    /// backend) — what the unified reporter aggregates.
    pub report: SolveReport,
}

// ----------------------------------------------------------------------
// The trait pair
// ----------------------------------------------------------------------

/// A device that can replay a [`SolvePlan`].
pub trait Backend {
    /// Registry name (`"ipu-sim:par"`, `"cpu"`, `"gpu-model"`, ...).
    fn name(&self) -> String;
    /// Backend family (`"ipu-sim"` | `"cpu"` | `"gpu-model"`) — the
    /// plan-cache key component.
    fn family(&self) -> &'static str;
    /// What this backend can honestly do.
    fn capabilities(&self) -> Capabilities;
    /// Lower the plan to this backend's executable form. Fails with
    /// [`BackendError::Unsupported`] when the solver hierarchy needs
    /// something the backend cannot do.
    fn prepare(&self, plan: &SolvePlan) -> Result<Box<dyn PreparedPlan>, BackendError>;
}

/// A lowered plan, ready to execute against concrete data.
pub trait PreparedPlan {
    /// Solve for right-hand side `b` from initial guess `x0` (zeros when
    /// `None`).
    fn execute(&mut self, b: &[f64], x0: Option<&[f64]>) -> Result<BackendRun, BackendError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips() {
        for name in KNOWN_BACKENDS {
            let spec = BackendSpec::parse(name).unwrap();
            assert_eq!(spec.name(), *name, "canonical name must round-trip");
        }
        // Case/whitespace-insensitive.
        assert_eq!(BackendSpec::parse(" CPU:PAR ").unwrap(), BackendSpec::Cpu { parallel: true });
        assert_eq!(
            BackendSpec::parse("IPU-Sim:Native").unwrap(),
            BackendSpec::IpuSim(IpuVariant::Native)
        );
    }

    #[test]
    fn unknown_names_error_with_the_known_list() {
        for bad in ["tpu", "ipu-sim:vector", "cpu:simd", "gpu", "ipu"] {
            let e = BackendSpec::parse(bad).unwrap_err();
            assert!(e.contains("unknown backend"), "{e}");
            assert!(e.contains("ipu-sim:seq") && e.contains("gpu-model"), "{e}");
        }
    }

    #[test]
    fn families_partition_the_registry() {
        assert_eq!(BackendSpec::parse("ipu-sim:par").unwrap().family(), "ipu-sim");
        assert_eq!(BackendSpec::parse("ipu-sim:legacy").unwrap().family(), "ipu-sim");
        assert_eq!(BackendSpec::parse("cpu:par").unwrap().family(), "cpu");
        assert_eq!(BackendSpec::parse("gpu-model").unwrap().family(), "gpu-model");
    }

    // ---- the consolidation contract (satellite: every combination) ----

    fn resolve(
        backend: Option<&str>,
        par: Option<&str>,
        native: Option<&str>,
        legacy: Option<&str>,
    ) -> Result<Option<BackendSpec>, String> {
        BackendSpec::resolve_env(backend, par, native, legacy)
    }

    #[test]
    fn unset_backend_defers_to_aliases() {
        // Without GRAPHENE_BACKEND, resolution never selects a backend —
        // the engine-level aliases keep their historical behaviour.
        for par in [None, Some("0"), Some("1"), Some("4")] {
            for native in [None, Some("0"), Some("1")] {
                for legacy in [None, Some("0"), Some("1")] {
                    assert_eq!(resolve(None, par, native, legacy), Ok(None));
                    assert_eq!(resolve(Some(""), par, native, legacy), Ok(None));
                    assert_eq!(resolve(Some("  "), par, native, legacy), Ok(None));
                }
            }
        }
    }

    #[test]
    fn alias_typos_stay_loud_even_when_backend_wins() {
        assert!(resolve(Some("cpu"), Some("garbage"), None, None)
            .unwrap_err()
            .contains("GRAPHENE_PAR"));
        assert!(resolve(Some("cpu"), None, Some("maybe"), None)
            .unwrap_err()
            .contains("GRAPHENE_NATIVE"));
        assert!(resolve(Some("cpu"), None, None, Some("2"))
            .unwrap_err()
            .contains("GRAPHENE_LEGACY_INTERP"));
        assert!(resolve(None, Some("-3"), None, None).unwrap_err().contains("GRAPHENE_PAR"));
    }

    #[test]
    fn every_backend_alias_combination_resolves_or_conflicts() {
        // The full matrix: 8 backends x {unset, disabling, enabling} per
        // alias. An enabling alias passes only with the agreeing variant
        // (or the unpinned `ipu-sim`); a disabling alias is inert.
        let enabling_par = ["1", "true", "4"];
        let disabling = ["0", "false", "off", "no"];
        for name in KNOWN_BACKENDS {
            let spec = BackendSpec::parse(name).unwrap();
            let auto = spec == BackendSpec::IpuSim(IpuVariant::Auto);
            // Disabling aliases never conflict with anything.
            for v in disabling {
                assert_eq!(resolve(Some(name), Some(v), None, None), Ok(Some(spec)), "{name}");
                assert_eq!(resolve(Some(name), None, Some(v), None), Ok(Some(spec)), "{name}");
                assert_eq!(resolve(Some(name), None, None, Some(v)), Ok(Some(spec)), "{name}");
                assert_eq!(
                    resolve(Some(name), Some(v), Some(v), Some(v)),
                    Ok(Some(spec)),
                    "{name}"
                );
            }
            // Enabling aliases agree only with their own variant.
            for v in enabling_par {
                let r = resolve(Some(name), Some(v), None, None);
                if auto || spec == BackendSpec::IpuSim(IpuVariant::Par) {
                    assert_eq!(r, Ok(Some(spec)), "{name} PAR={v}");
                } else {
                    let e = r.unwrap_err();
                    assert!(e.contains("conflicts") && e.contains("GRAPHENE_PAR"), "{name}: {e}");
                    assert!(e.contains("ipu-sim:par"), "hint missing: {e}");
                }
            }
            let r = resolve(Some(name), None, Some("1"), None);
            if auto || spec == BackendSpec::IpuSim(IpuVariant::Native) {
                assert_eq!(r, Ok(Some(spec)), "{name} NATIVE=1");
            } else {
                assert!(r.unwrap_err().contains("GRAPHENE_NATIVE"), "{name}");
            }
            let r = resolve(Some(name), None, None, Some("1"));
            if auto || spec == BackendSpec::IpuSim(IpuVariant::Legacy) {
                assert_eq!(r, Ok(Some(spec)), "{name} LEGACY=1");
            } else {
                assert!(r.unwrap_err().contains("GRAPHENE_LEGACY_INTERP"), "{name}");
            }
        }
    }

    #[test]
    fn agreeing_alias_combinations_pass_together() {
        // ipu-sim (unpinned) tolerates any alias mix — it delegates the
        // whole choice to the engine, exactly the historical behaviour.
        assert_eq!(
            resolve(Some("ipu-sim"), Some("4"), Some("1"), Some("1")),
            Ok(Some(BackendSpec::IpuSim(IpuVariant::Auto)))
        );
        // A pinned variant with its own alias and the others disabled.
        assert_eq!(
            resolve(Some("ipu-sim:par"), Some("8"), Some("0"), Some("0")),
            Ok(Some(BackendSpec::IpuSim(IpuVariant::Par)))
        );
        assert_eq!(
            resolve(Some("ipu-sim:native"), Some("0"), Some("1"), None),
            Ok(Some(BackendSpec::IpuSim(IpuVariant::Native)))
        );
        assert_eq!(
            resolve(Some("ipu-sim:legacy"), None, None, Some("1")),
            Ok(Some(BackendSpec::IpuSim(IpuVariant::Legacy)))
        );
        // Cross-pinned enabling aliases conflict both ways.
        assert!(resolve(Some("ipu-sim:par"), None, Some("1"), None).is_err());
        assert!(resolve(Some("ipu-sim:native"), Some("1"), None, None).is_err());
    }

    #[test]
    fn timing_kinds_name_their_domain() {
        assert_eq!(Timing::Wall { seconds: 1.0 }.kind(), "wall-clock");
        assert_eq!(Timing::Modelled { seconds: 1.0 }.kind(), "roofline-model");
        let t = Timing::Cycles { stats: CycleStats::new(1), seconds: 0.5 };
        assert_eq!(t.kind(), "cycle-model");
        assert_eq!(t.seconds(), 0.5);
        assert!(t.cycle_stats().is_some());
        assert!(Timing::Wall { seconds: 1.0 }.cycle_stats().is_none());
    }

    #[test]
    fn backend_error_display_is_structured() {
        let e = BackendError::Unsupported {
            backend: "gpu-model".into(),
            what: "fault injection".into(),
        };
        assert_eq!(e.to_string(), "backend `gpu-model` does not support fault injection");
        assert!(BackendError::Unknown("tpu".into()).to_string().contains("known:"));
    }
}
