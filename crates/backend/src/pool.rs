//! # Capabilities-checked backend handle pool
//!
//! The serving layer runs a fleet of worker threads, each owning its own
//! backend instance ([`Backend`] handles hold `Rc`-based state and are
//! deliberately *not* `Send` — a handle never migrates between threads).
//! What *is* shared is the recipe: [`BackendPool`] wraps a
//! `Send + Sync` factory closure plus the capability contract the fleet
//! needs, validated **once at pool construction** against a probe
//! instance so a capability mismatch (fault injection on the GPU model,
//! auto-tuning on a wall-clock backend) is a typed
//! [`BackendError::Unsupported`] at startup — never a per-job surprise
//! deep inside a worker.
//!
//! ```text
//!   BackendPool::new(required, factory)   — probe + capability check
//!        │ (Arc<BackendPool> is Send + Sync)
//!        ├── worker 0: pool.lease() ──► Box<dyn Backend>   (thread-local)
//!        ├── worker 1: pool.lease() ──► Box<dyn Backend>
//!        └── ...
//! ```

use crate::{Backend, BackendError, Capabilities};

/// The factory recipe a pool stamps worker-local backends from.
pub type BackendFactory = Box<dyn Fn() -> Box<dyn Backend> + Send + Sync>;

/// A validated, shareable source of per-worker backend handles. See the
/// module docs for the threading contract: the pool is `Send + Sync`
/// (share it behind an `Arc`); the handles it leases are not (call
/// [`lease`](BackendPool::lease) *on* the thread that will use the
/// handle).
pub struct BackendPool {
    name: String,
    family: &'static str,
    capabilities: Capabilities,
    factory: BackendFactory,
}

impl BackendPool {
    /// Build a pool, probing one instance to validate the fleet's
    /// capability requirements. A backend lacking any required
    /// capability is a typed [`BackendError::Unsupported`] naming every
    /// missing capability — construction-time refusal, not a runtime
    /// panic.
    pub fn new(
        required: Capabilities,
        factory: BackendFactory,
    ) -> Result<BackendPool, BackendError> {
        let probe = factory();
        let caps = probe.capabilities();
        let missing = caps.missing(required);
        if !missing.is_empty() {
            return Err(BackendError::Unsupported {
                backend: probe.name(),
                what: format!("required capabilities: {}", missing.join(", ")),
            });
        }
        Ok(BackendPool { name: probe.name(), family: probe.family(), capabilities: caps, factory })
    }

    /// Stamp a fresh backend handle for the calling thread.
    pub fn lease(&self) -> Box<dyn Backend> {
        (self.factory)()
    }

    /// Registry name of the pooled backend (probed at construction).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Backend family of the pooled backend.
    pub fn family(&self) -> &'static str {
        self.family
    }

    /// The probed capability matrix (a superset of the requirement the
    /// pool was validated against).
    pub fn capabilities(&self) -> Capabilities {
        self.capabilities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_refuses_missing_capabilities_by_name() {
        // The CPU baseline measures wall-clock; asking the fleet for
        // fault injection + cycle accounting must refuse at construction.
        let required = Capabilities {
            fault_injection: true,
            cycle_accounting: true,
            ..Capabilities::default()
        };
        let e =
            BackendPool::new(required, Box::new(|| Box::new(crate::cpu::CpuBackend::new(false))))
                .err()
                .expect("cpu lacks fault injection");
        match e {
            BackendError::Unsupported { backend, what } => {
                assert_eq!(backend, "cpu");
                assert!(what.contains("fault_injection"), "{what}");
                assert!(what.contains("cycle_accounting"), "{what}");
            }
            other => panic!("expected Unsupported, got {other}"),
        }
    }

    #[test]
    fn pool_leases_fresh_handles_and_reports_probe_identity() {
        let required = Capabilities { wall_clock: true, ..Capabilities::default() };
        let pool =
            BackendPool::new(required, Box::new(|| Box::new(crate::cpu::CpuBackend::new(false))))
                .unwrap();
        assert_eq!(pool.name(), "cpu");
        assert_eq!(pool.family(), "cpu");
        assert!(pool.capabilities().wall_clock);
        let h1 = pool.lease();
        let h2 = pool.lease();
        assert_eq!(h1.name(), h2.name());
        // The pool itself must be shareable across the fleet.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BackendPool>();
    }

    #[test]
    fn capabilities_missing_lists_every_gap() {
        let have = Capabilities { wall_clock: true, ..Capabilities::default() };
        let want = Capabilities { wall_clock: true, ..Capabilities::default() };
        assert!(have.covers(want));
        let want = Capabilities { fault_injection: true, auto_tuning: true, ..want };
        assert_eq!(have.missing(want), vec!["fault_injection", "auto_tuning"]);
        assert!(!have.covers(want));
    }
}
