//! Native f64 CPU baselines (the HYPRE analogue).
//!
//! Implements exactly the operations the paper benchmarks on the Xeon:
//! CSR SpMV (sequential and rayon-parallel — HYPRE-with-MPI's row-block
//! parallelism), ILU(0) factorisation/substitution, and BiCGStab in native
//! double precision (the CPU "uses native double precision without MPIR").
//!
//! Timing follows the paper's methodology (§VI-A): warm the cache with
//! 1,000 operations, then time the next 1,000.

use std::time::Instant;

use json::Json;
use profile::{BackendInfo, SolveReport};
use rayon::prelude::*;
use sparse::formats::CsrMatrix;

/// Sequential CSR SpMV, f64.
pub fn spmv_seq(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    a.spmv(x, y);
}

/// Rayon-parallel CSR SpMV, f64 (row-block parallelism).
pub fn spmv_par(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols);
    assert_eq!(y.len(), a.nrows);
    y.par_iter_mut().enumerate().for_each(|(i, yi)| {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (c, v) in cols.iter().zip(vals) {
            acc += v * x[*c as usize];
        }
        *yi = acc;
    });
}

/// Time one operation with the paper's warm-up methodology: `warmup`
/// untimed repetitions, then the mean of `reps` timed ones.
pub fn time_op(mut op: impl FnMut(), warmup: usize, reps: usize) -> f64 {
    for _ in 0..warmup {
        op();
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        op();
    }
    t0.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// ILU(0) factors of a CSR matrix (global, sequential — the 1-rank HYPRE
/// setting; the multi-rank block variant lives in the IPU framework).
pub struct Ilu0Factors {
    /// Same structure as the input matrix; lower entries hold L (unit
    /// diagonal), upper entries hold U.
    vals: Vec<f64>,
    diag: Vec<f64>,
    cols: Vec<u32>,
    rptr: Vec<usize>,
    n: usize,
}

impl Ilu0Factors {
    /// IKJ factorisation restricted to the original pattern.
    pub fn new(a: &CsrMatrix) -> Ilu0Factors {
        assert_eq!(a.nrows, a.ncols);
        let n = a.nrows;
        let mut diag = vec![0.0; n];
        let mut vals = Vec::with_capacity(a.nnz());
        let mut cols = Vec::with_capacity(a.nnz());
        let mut rptr = vec![0usize];
        for i in 0..n {
            let (cs, vs) = a.row(i);
            for (c, v) in cs.iter().zip(vs) {
                if *c as usize == i {
                    diag[i] = *v;
                } else {
                    cols.push(*c);
                    vals.push(*v);
                }
            }
            rptr.push(vals.len());
            assert!(diag[i] != 0.0, "row {i}: zero diagonal");
        }
        for i in 0..n {
            for kk in rptr[i]..rptr[i + 1] {
                let k = cols[kk] as usize;
                if k >= i {
                    continue;
                }
                let lik = vals[kk] / diag[k];
                vals[kk] = lik;
                // Diagonal update.
                for mm in rptr[k]..rptr[k + 1] {
                    if cols[mm] as usize == i {
                        diag[i] -= lik * vals[mm];
                    }
                }
                // Row updates within the pattern.
                for jj in rptr[i]..rptr[i + 1] {
                    let j = cols[jj] as usize;
                    if j > k {
                        for mm in rptr[k]..rptr[k + 1] {
                            if cols[mm] as usize == j {
                                vals[jj] -= lik * vals[mm];
                            }
                        }
                    }
                }
            }
        }
        Ilu0Factors { vals, diag, cols, rptr, n }
    }

    /// Solve `L U z = r` (forward + backward substitution).
    pub fn solve(&self, r: &[f64], z: &mut [f64]) {
        let n = self.n;
        // Forward: w = L⁻¹ r (unit L).
        for i in 0..n {
            let mut acc = r[i];
            for kk in self.rptr[i]..self.rptr[i + 1] {
                let j = self.cols[kk] as usize;
                if j < i {
                    acc -= self.vals[kk] * z[j];
                }
            }
            z[i] = acc;
        }
        // Backward: z = U⁻¹ w.
        for i in (0..n).rev() {
            let mut acc = z[i];
            for kk in self.rptr[i]..self.rptr[i + 1] {
                let j = self.cols[kk] as usize;
                if j > i {
                    acc -= self.vals[kk] * z[j];
                }
            }
            z[i] = acc / self.diag[i];
        }
    }

    /// Dependency levels of the triangular solves (for the GPU model).
    pub fn level_counts(&self) -> (usize, usize) {
        let mut fwd = vec![0u32; self.n];
        let mut bwd = vec![0u32; self.n];
        let mut fmax = 0;
        let mut bmax = 0;
        for i in 0..self.n {
            for kk in self.rptr[i]..self.rptr[i + 1] {
                let j = self.cols[kk] as usize;
                if j < i {
                    fwd[i] = fwd[i].max(fwd[j] + 1);
                }
            }
            fmax = fmax.max(fwd[i]);
        }
        for i in (0..self.n).rev() {
            for kk in self.rptr[i]..self.rptr[i + 1] {
                let j = self.cols[kk] as usize;
                if j > i {
                    bwd[i] = bwd[i].max(bwd[j] + 1);
                }
            }
            bmax = bmax.max(bwd[i]);
        }
        (fmax as usize + 1, bmax as usize + 1)
    }
}

/// Which Krylov method the CPU baseline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuMethod {
    /// BiCGStab (general systems) — the paper's CPU comparator.
    BiCgStab,
    /// Conjugate Gradient (SPD systems).
    Cg,
}

impl CpuMethod {
    /// Wire name, matching the solver-config `"type"` tags.
    pub fn name(self) -> &'static str {
        match self {
            CpuMethod::BiCgStab => "bi_cg_stab",
            CpuMethod::Cg => "cg",
        }
    }
}

/// Outcome of a CPU baseline solve, with the same accounting split as a
/// `SolveReport` so `summarize` can aggregate IPU and baseline runs into
/// one table (see [`CpuSolveStats::to_solve_report`]).
#[derive(Clone, Debug)]
pub struct CpuSolveStats {
    pub iterations: usize,
    pub relative_residual: f64,
    /// Total wall time: setup (factorisation) + iteration loop.
    pub seconds: f64,
    /// Wall time of the setup phase (ILU factorisation; 0 without it).
    pub setup_seconds: f64,
    /// Wall time of the iteration loop alone — the quantity comparable
    /// to a device solve's `seconds`.
    pub solve_seconds: f64,
    /// (iteration, relative residual) history.
    pub history: Vec<(usize, f64)>,
    /// Executor that ran the kernels: `"cpu"` or `"cpu:par"`.
    pub executor: String,
    /// Wire name of the method (`"bi_cg_stab"` / `"cg"`).
    pub method: &'static str,
}

impl CpuSolveStats {
    /// Package this solve as a schema-v3 [`SolveReport`] with a `backend`
    /// section, so the unified reporter and `summarize` treat baseline
    /// runs exactly like device runs. The cycle sections stay zeroed —
    /// this backend accounts wall-clock time, not cycles.
    pub fn to_solve_report(&self, name: &str, solver: Json, a: &CsrMatrix) -> SolveReport {
        let mut r = SolveReport::new(name);
        r.solver = solver;
        r.n = a.nrows;
        r.nnz = a.nnz();
        r.iterations = self.iterations;
        r.final_residual = self.relative_residual;
        r.seconds = self.solve_seconds;
        r.host_seconds = self.seconds;
        r.executor = self.executor.clone();
        r.history = self.history.clone();
        r.backend = Some(BackendInfo {
            name: self.executor.clone(),
            family: "cpu".to_string(),
            timing: "wall-clock".to_string(),
            seconds: self.solve_seconds,
        });
        r
    }
}

/// The CPU baseline solver: BiCGStab or CG, optionally ILU(0)-
/// preconditioned, in f64 — sequential or rayon-parallel SpMV.
pub struct CpuSolver {
    pub max_iters: usize,
    pub rel_tol: f64,
    pub use_ilu: bool,
    pub method: CpuMethod,
    /// Rayon row-block parallel SpMV (bit-identical to sequential — the
    /// per-row accumulation order does not change).
    pub parallel: bool,
}

impl CpuSolver {
    /// BiCGStab with parallel SpMV — the historical constructor.
    pub fn new(max_iters: usize, rel_tol: f64, use_ilu: bool) -> CpuSolver {
        CpuSolver { max_iters, rel_tol, use_ilu, method: CpuMethod::BiCgStab, parallel: true }
    }

    /// Executor wire name for reports.
    pub fn executor_name(&self) -> &'static str {
        if self.parallel {
            "cpu:par"
        } else {
            "cpu"
        }
    }

    fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        if self.parallel {
            spmv_par(a, x, y);
        } else {
            spmv_seq(a, x, y);
        }
    }

    /// Solve `A x = b` from a zero initial guess.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64], x: &mut [f64]) -> CpuSolveStats {
        self.solve_from(a, b, x, None)
    }

    /// Solve `A x = b` from the initial guess `x0` (zeros when `None`).
    pub fn solve_from(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        x0: Option<&[f64]>,
    ) -> CpuSolveStats {
        let n = a.nrows;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let t0 = Instant::now();
        let ilu = self.use_ilu.then(|| Ilu0Factors::new(a));
        let setup_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        match x0 {
            Some(g) => {
                assert_eq!(g.len(), n);
                x.copy_from_slice(g);
            }
            None => x.fill(0.0),
        }
        // r = b − A·x (exactly b for a zero guess: A·0 accumulates to
        // +0.0 per row and b − 0.0 is bit-identical to b).
        let mut r = vec![0.0; n];
        self.spmv(a, x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut stats = match self.method {
            CpuMethod::BiCgStab => self.bicgstab(a, b, x, r, &ilu),
            CpuMethod::Cg => self.cg(a, b, x, r, &ilu),
        };
        stats.setup_seconds = setup_seconds;
        stats.solve_seconds = t1.elapsed().as_secs_f64();
        stats.seconds = setup_seconds + stats.solve_seconds;
        stats
    }

    /// BiCGStab from residual `r` (x already holds the initial guess).
    fn bicgstab(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        mut r: Vec<f64>,
        ilu: &Option<Ilu0Factors>,
    ) -> CpuSolveStats {
        let n = a.nrows;
        let dot = |u: &[f64], v: &[f64]| u.iter().zip(v).map(|(a, b)| a * b).sum::<f64>();
        let bnorm2 = dot(b, b).max(f64::MIN_POSITIVE);
        let tol2 = self.rel_tol * self.rel_tol * bnorm2;

        let mut r0 = r.clone();
        let mut p = r.clone();
        let mut rho_old = dot(&r0, &r);
        let mut y = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut t = vec![0.0; n];
        let mut s = vec![0.0; n];
        let mut history = Vec::new();
        let mut iterations = 0;
        let mut res2 = dot(&r, &r);

        while iterations < self.max_iters && res2 > tol2 {
            match ilu {
                Some(f) => f.solve(&p, &mut y),
                None => y.copy_from_slice(&p),
            }
            self.spmv(a, &y, &mut v);
            let r0v = dot(&r0, &v);
            let alpha = if r0v == 0.0 { 0.0 } else { rho_old / r0v };
            for i in 0..n {
                s[i] = r[i] - alpha * v[i];
            }
            match ilu {
                Some(f) => f.solve(&s, &mut z),
                None => z.copy_from_slice(&s),
            }
            self.spmv(a, &z, &mut t);
            let tt = dot(&t, &t);
            let omega = if tt == 0.0 { 0.0 } else { dot(&t, &s) / tt };
            for i in 0..n {
                x[i] += alpha * y[i] + omega * z[i];
                r[i] = s[i] - omega * t[i];
            }
            res2 = dot(&r, &r);
            let rho = dot(&r0, &r);
            if rho.abs() <= 1e-12 * res2 || omega == 0.0 {
                // Breakdown: restart from the current residual.
                r0.copy_from_slice(&r);
                p.copy_from_slice(&r);
                rho_old = dot(&r0, &r);
            } else {
                let beta = (rho / rho_old) * (alpha / omega);
                for i in 0..n {
                    p[i] = r[i] + beta * (p[i] - omega * v[i]);
                }
                rho_old = rho;
            }
            iterations += 1;
            history.push((iterations, (res2 / bnorm2).sqrt()));
        }

        CpuSolveStats {
            iterations,
            relative_residual: (res2 / bnorm2).sqrt(),
            seconds: 0.0,
            setup_seconds: 0.0,
            solve_seconds: 0.0,
            history,
            executor: self.executor_name().to_string(),
            method: CpuMethod::BiCgStab.name(),
        }
    }

    /// Preconditioned CG from residual `r` (x already holds the guess).
    fn cg(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        mut r: Vec<f64>,
        ilu: &Option<Ilu0Factors>,
    ) -> CpuSolveStats {
        let n = a.nrows;
        let dot = |u: &[f64], v: &[f64]| u.iter().zip(v).map(|(a, b)| a * b).sum::<f64>();
        let bnorm2 = dot(b, b).max(f64::MIN_POSITIVE);
        let tol2 = self.rel_tol * self.rel_tol * bnorm2;

        let mut z = vec![0.0; n];
        match ilu {
            Some(f) => f.solve(&r, &mut z),
            None => z.copy_from_slice(&r),
        }
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        let mut v = vec![0.0; n];
        let mut history = Vec::new();
        let mut iterations = 0;
        let mut res2 = dot(&r, &r);

        while iterations < self.max_iters && res2 > tol2 {
            self.spmv(a, &p, &mut v);
            let pv = dot(&p, &v);
            if pv == 0.0 || rz == 0.0 {
                break; // breakdown: direction lost its energy norm
            }
            let alpha = rz / pv;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * v[i];
            }
            res2 = dot(&r, &r);
            iterations += 1;
            history.push((iterations, (res2 / bnorm2).sqrt()));
            if res2 <= tol2 {
                break;
            }
            match ilu {
                Some(f) => f.solve(&r, &mut z),
                None => z.copy_from_slice(&r),
            }
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
            rz = rz_new;
        }

        CpuSolveStats {
            iterations,
            relative_residual: (res2 / bnorm2).sqrt(),
            seconds: 0.0,
            setup_seconds: 0.0,
            solve_seconds: 0.0,
            history,
            executor: self.executor_name().to_string(),
            method: CpuMethod::Cg.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, poisson_3d_7pt, rhs_for_ones, tridiagonal};

    #[test]
    fn par_spmv_matches_seq() {
        let a = poisson_3d_7pt(8, 8, 8);
        let x: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut y1 = vec![0.0; a.nrows];
        let mut y2 = vec![0.0; a.nrows];
        spmv_seq(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn ilu_exact_on_tridiagonal() {
        // ILU(0) of a tridiagonal matrix has no discarded fill ⇒ exact LU.
        let a = tridiagonal(50);
        let f = Ilu0Factors::new(&a);
        let b = rhs_for_ones(&a);
        let mut z = vec![0.0; 50];
        f.solve(&b, &mut z);
        for v in &z {
            assert!((v - 1.0).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn bicgstab_converges_f64() {
        let a = poisson_2d_5pt(20, 20, 1.0);
        let b = rhs_for_ones(&a);
        let mut x = vec![0.0; a.nrows];
        let stats = CpuSolver::new(1000, 1e-10, false).solve(&a, &b, &mut x);
        assert!(stats.relative_residual < 1e-10, "{}", stats.relative_residual);
        for v in &x {
            assert!((v - 1.0).abs() < 1e-7, "{v}");
        }
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations_f64() {
        let a = poisson_2d_5pt(24, 24, 1.0);
        let b = rhs_for_ones(&a);
        let mut x = vec![0.0; a.nrows];
        let plain = CpuSolver::new(2000, 1e-9, false).solve(&a, &b, &mut x);
        let pre = CpuSolver::new(2000, 1e-9, true).solve(&a, &b, &mut x);
        assert!(pre.relative_residual < 1e-9);
        assert!(pre.iterations < plain.iterations, "{} vs {}", pre.iterations, plain.iterations);
    }

    #[test]
    fn level_counts_of_tridiagonal_are_n() {
        let a = tridiagonal(30);
        let f = Ilu0Factors::new(&a);
        assert_eq!(f.level_counts(), (30, 30));
        let d = CsrMatrix::identity(10);
        let fd = Ilu0Factors::new(&d);
        assert_eq!(fd.level_counts(), (1, 1));
    }

    #[test]
    fn time_op_returns_positive() {
        let mut acc = 0u64;
        let t = time_op(
            || {
                acc = acc.wrapping_add(std::hint::black_box(1));
            },
            10,
            10,
        );
        assert!(t >= 0.0);
    }
}
