//! A roofline performance model of the NVIDIA H100 SXM (the cuSPARSE
//! analogue).
//!
//! No GPU exists in this environment, so the GPU column of the paper's
//! Figures 7 and 8 is reproduced with a deterministic analytical model.
//! The modelled effects are the ones that dominate sparse linear algebra
//! on GPUs and that the paper's discussion leans on:
//!
//! * SpMV and vector work are **memory-bandwidth bound**: time =
//!   bytes / HBM bandwidth + kernel-launch latency;
//! * sparse **triangular solves** (the ILU substitutions) are limited by
//!   level-set serialisation: every dependency level costs at least one
//!   kernel-scale latency, so matrices with thousands of levels crawl —
//!   the reason cuSPARSE's analysis phase exists;
//! * **dot products** pay a device-wide reduction latency.
//!
//! Parameters default to published H100 SXM numbers. The model is
//! validated qualitatively in EXPERIMENTS.md, not calibrated against real
//! runs.

use sparse::formats::CsrMatrix;

/// Analytical GPU timing model.
#[derive(Clone, Debug)]
pub struct GpuModel {
    /// Effective memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Peak f64 FLOP/s (FP64 on H100 SXM: 34 TFLOP/s).
    pub peak_flops: f64,
    /// Kernel launch + scheduling latency per kernel, seconds.
    pub kernel_latency: f64,
    /// Per-dependency-level synchronisation latency inside a sparse
    /// triangular solve (cuSPARSE runs one kernel with device-side level
    /// barriers, cheaper than a launch but far from free).
    pub level_sync_latency: f64,
    /// Extra latency of a device-wide reduction (dot product), seconds.
    pub reduction_latency: f64,
    /// Fraction of peak bandwidth achieved by irregular (gathered) access.
    pub gather_efficiency: f64,
}

impl GpuModel {
    /// NVIDIA H100 SXM (the paper's comparison GPU, Table III).
    pub fn h100() -> GpuModel {
        GpuModel {
            mem_bandwidth: 3.35e12,
            peak_flops: 34e12,
            kernel_latency: 5e-6,
            level_sync_latency: 1.2e-6,
            reduction_latency: 8e-6,
            gather_efficiency: 0.55,
        }
    }

    /// Bytes moved by one CSR SpMV in f64 (values, column indices, row
    /// pointers, x gathered, y written).
    pub fn spmv_bytes(&self, a: &CsrMatrix) -> f64 {
        let nnz = a.nnz() as f64;
        let rows = a.nrows as f64;
        // vals (8) + col idx (4) per nnz; x gather: one 8-byte access per
        // nnz at reduced efficiency folded in below; rptr (4) + y (8) per
        // row.
        nnz * (8.0 + 4.0) + nnz * 8.0 / self.gather_efficiency + rows * (4.0 + 8.0)
    }

    /// Time for one f64 SpMV.
    pub fn spmv_time(&self, a: &CsrMatrix) -> f64 {
        let bytes = self.spmv_bytes(a);
        let flops = 2.0 * a.nnz() as f64;
        self.kernel_latency + (bytes / self.mem_bandwidth).max(flops / self.peak_flops)
    }

    /// Time for one elementwise vector op over `n` f64 elements
    /// (axpy-like: 2 reads + 1 write).
    pub fn vector_op_time(&self, n: usize) -> f64 {
        self.kernel_latency + 24.0 * n as f64 / self.mem_bandwidth
    }

    /// Time for one dot product over `n` f64 elements.
    pub fn dot_time(&self, n: usize) -> f64 {
        self.reduction_latency + 16.0 * n as f64 / self.mem_bandwidth
    }

    /// Time for one sparse triangular solve with `levels` dependency
    /// levels over `nnz` nonzeros: each level is (at least) one dependent
    /// kernel-scale step, plus the bandwidth term for the matrix data.
    pub fn triangular_solve_time(&self, levels: usize, nnz: usize, rows: usize) -> f64 {
        let bytes = nnz as f64 * (8.0 + 4.0 + 8.0 / self.gather_efficiency)
            + rows as f64 * (4.0 + 8.0 + 8.0);
        self.kernel_latency
            + levels.saturating_sub(1) as f64 * self.level_sync_latency
            + bytes / self.mem_bandwidth
    }

    /// Time for one BiCGStab+ILU(0) iteration: 2 SpMVs, 2 preconditioner
    /// applications (forward+backward each), ~6 vector ops, 4 dots.
    pub fn bicgstab_ilu_iteration_time(
        &self,
        a: &CsrMatrix,
        fwd_levels: usize,
        bwd_levels: usize,
    ) -> f64 {
        let n = a.nrows;
        2.0 * self.spmv_time(a)
            + 2.0
                * (self.triangular_solve_time(fwd_levels, a.nnz() / 2, n)
                    + self.triangular_solve_time(bwd_levels, a.nnz() / 2, n))
            + 6.0 * self.vector_op_time(n)
            + 4.0 * self.dot_time(n)
    }

    /// Time for one unpreconditioned BiCGStab iteration: 2 SpMVs, ~6
    /// vector ops, 4 dots.
    pub fn bicgstab_iteration_time(&self, a: &CsrMatrix) -> f64 {
        let n = a.nrows;
        2.0 * self.spmv_time(a) + 6.0 * self.vector_op_time(n) + 4.0 * self.dot_time(n)
    }

    /// Time for one unpreconditioned CG iteration: 1 SpMV, ~3 vector ops
    /// (x, r, p updates), 2 dots.
    pub fn cg_iteration_time(&self, a: &CsrMatrix) -> f64 {
        let n = a.nrows;
        self.spmv_time(a) + 3.0 * self.vector_op_time(n) + 2.0 * self.dot_time(n)
    }

    /// Time for one CG+ILU(0) iteration: CG plus one preconditioner
    /// application (forward+backward substitution).
    pub fn cg_ilu_iteration_time(
        &self,
        a: &CsrMatrix,
        fwd_levels: usize,
        bwd_levels: usize,
    ) -> f64 {
        let n = a.nrows;
        self.cg_iteration_time(a)
            + self.triangular_solve_time(fwd_levels, a.nnz() / 2, n)
            + self.triangular_solve_time(bwd_levels, a.nnz() / 2, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_3d_7pt, tridiagonal};

    #[test]
    fn spmv_is_bandwidth_bound_for_sparse() {
        let g = GpuModel::h100();
        let a = poisson_3d_7pt(64, 64, 64);
        let t = g.spmv_time(&a);
        // Far above pure latency, far below a second.
        assert!(t > 2.0 * g.kernel_latency);
        assert!(t < 1e-2);
        // Doubling the matrix roughly doubles the time (bandwidth bound).
        let b = poisson_3d_7pt(64, 64, 128);
        let ratio = g.spmv_time(&b) / t;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn triangular_solve_dominated_by_levels_when_sequential() {
        let g = GpuModel::h100();
        // A tridiagonal system: n levels — latency dominated.
        let n = 100_000;
        let t_seq = g.triangular_solve_time(n, 2 * n, n);
        let t_par = g.triangular_solve_time(10, 2 * n, n);
        assert!(t_seq > 50.0 * t_par, "{t_seq} vs {t_par}");
        assert!(t_seq > (n - 1) as f64 * g.level_sync_latency);
        let _ = tridiagonal(4); // keep the import honest
    }

    #[test]
    fn iteration_time_composes() {
        let g = GpuModel::h100();
        let a = poisson_3d_7pt(20, 20, 20);
        let it = g.bicgstab_ilu_iteration_time(&a, 58, 58);
        assert!(it > 2.0 * g.spmv_time(&a));
        assert!(it.is_finite() && it > 0.0);
    }
}
