//! # baselines — the evaluation's CPU and GPU comparators
//!
//! The paper benchmarks its IPU framework against HYPRE on an Intel Xeon
//! Platinum 8470Q (MPI) and HYPRE+cuSPARSE on an NVIDIA H100 (§VI-A).
//! Neither that exact CPU nor any GPU is available here, so:
//!
//! * [`cpu`] implements the same algorithms natively in Rust — f64 CSR
//!   SpMV, BiCGStab and (block-)ILU(0) — sequential and rayon-parallel,
//!   measured in *wall time on the benchmark host* with the paper's
//!   warm-up methodology;
//! * [`gpu`] is a deterministic **roofline performance model** of the H100
//!   (SpMV and vector work bandwidth-bound on HBM3; triangular solves
//!   limited by level-set serialisation and kernel-launch latency), since
//!   no CUDA device exists in this environment.
//!
//! EXPERIMENTS.md documents how these substitutions affect the comparison:
//! the *shape* (who wins, where, by roughly how much) is meaningful, the
//! absolute ratios inherit the host's hardware.

pub mod cpu;
pub mod gpu;

pub use cpu::{CpuMethod, CpuSolveStats, CpuSolver};
pub use gpu::GpuModel;
