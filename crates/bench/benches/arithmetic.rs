//! Criterion microbenchmarks of the arithmetic substrate: native floats
//! versus the two double-word families (host-side throughput; the *device*
//! cycle comparison is `cargo run -p graphene-bench --bin table1`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use twofloat::{joldes, lange_rump, FastTwoFloat, TwoF32, TwoFloat};

fn bench_scalar_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalar_ops");
    let a32 = black_box(1.234567f32);
    let b32 = black_box(7.654321f32);
    g.bench_function("f32_mul", |b| b.iter(|| black_box(a32) * black_box(b32)));
    g.bench_function("f64_mul", |b| b.iter(|| black_box(a32 as f64) * black_box(b32 as f64)));
    let x = TwoF32::from_f64(1.2345678901);
    let y = TwoF32::from_f64(7.6543210987);
    g.bench_function("dw_joldes_add", |b| b.iter(|| black_box(x) + black_box(y)));
    g.bench_function("dw_joldes_mul", |b| b.iter(|| black_box(x) * black_box(y)));
    g.bench_function("dw_joldes_div", |b| b.iter(|| black_box(x) / black_box(y)));
    let xf = FastTwoFloat::<f32>::from_f64(1.2345678901);
    let yf = FastTwoFloat::<f32>::from_f64(7.6543210987);
    g.bench_function("dw_lange_rump_add", |b| b.iter(|| black_box(xf) + black_box(yf)));
    g.bench_function("dw_lange_rump_mul", |b| b.iter(|| black_box(xf) * black_box(yf)));
    g.finish();
}

fn bench_accumulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot_product_1k");
    let xs: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
    let ys: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.73).cos()).collect();
    g.bench_function("f32", |b| b.iter(|| xs.iter().zip(&ys).map(|(x, y)| x * y).sum::<f32>()));
    g.bench_function("dw_joldes", |b| {
        b.iter(|| {
            let mut acc = (0.0f32, 0.0f32);
            for (x, y) in xs.iter().zip(&ys) {
                let (ph, pl) = twofloat::two_prod(*x, *y);
                let t = joldes::add_dw_dw(acc.0, acc.1, ph, pl);
                acc = t;
            }
            acc
        })
    });
    g.bench_function("dw_lange_rump", |b| {
        b.iter(|| {
            let mut acc = (0.0f32, 0.0f32);
            for (x, y) in xs.iter().zip(&ys) {
                let (ph, pl) = twofloat::two_prod(*x, *y);
                let t = lange_rump::add_dw_dw(acc.0, acc.1, ph, pl);
                acc = t;
            }
            acc
        })
    });
    g.bench_function("f64", |b| {
        b.iter(|| xs.iter().zip(&ys).map(|(x, y)| *x as f64 * *y as f64).sum::<f64>())
    });
    g.finish();
}

fn bench_conversions(c: &mut Criterion) {
    c.bench_function("dw_from_f64", |b| {
        b.iter(|| TwoFloat::<f32>::from_f64(black_box(std::f64::consts::PI)))
    });
}

criterion_group!(benches, bench_scalar_ops, bench_accumulation, bench_conversions);
criterion_main!(benches);
