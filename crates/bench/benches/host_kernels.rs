//! Criterion benchmarks of the host-side kernels: the CPU baseline's CSR
//! SpMV (sequential vs rayon), ILU(0) factorisation, and the framework's
//! compile-time analyses (halo decomposition, level sets, partitioning).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse::formats::CsrMatrix;
use sparse::gen::{poisson_3d_7pt, Grid3};
use sparse::halo::HaloDecomposition;
use sparse::levelset::{LevelSets, Sweep};
use sparse::partition::Partition;

fn matrix() -> CsrMatrix {
    poisson_3d_7pt(24, 24, 24)
}

fn bench_spmv(c: &mut Criterion) {
    let a = matrix();
    let x: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.17).sin()).collect();
    let mut y = vec![0.0; a.nrows];
    let mut g = c.benchmark_group("cpu_spmv_24cubed");
    g.bench_function("sequential", |b| {
        b.iter(|| baselines::cpu::spmv_seq(black_box(&a), black_box(&x), &mut y))
    });
    g.bench_function("rayon", |b| {
        b.iter(|| baselines::cpu::spmv_par(black_box(&a), black_box(&x), &mut y))
    });
    g.finish();
}

fn bench_ilu_factorise(c: &mut Criterion) {
    let a = matrix();
    c.bench_function("cpu_ilu0_factorise_24cubed", |b| {
        b.iter(|| baselines::cpu::Ilu0Factors::new(black_box(&a)))
    });
}

fn bench_analyses(c: &mut Criterion) {
    let a = matrix();
    let grid = Grid3 { nx: 24, ny: 24, nz: 24 };
    let mut g = c.benchmark_group("compile_analyses");
    for tiles in [8usize, 64] {
        let part = Partition::grid_3d_auto(grid, tiles);
        g.bench_with_input(BenchmarkId::new("halo_decomposition", tiles), &part, |b, p| {
            b.iter(|| HaloDecomposition::build(black_box(&a), black_box(p)))
        });
    }
    g.bench_function("level_sets_forward", |b| {
        b.iter(|| LevelSets::analyze(black_box(&a), Sweep::Forward))
    });
    g.bench_function("partition_by_nnz_64", |b| {
        b.iter(|| Partition::balanced_by_nnz(black_box(&a), 64))
    });
    g.finish();
}

criterion_group!(benches, bench_spmv, bench_ilu_factorise, bench_analyses);
criterion_main!(benches);
