//! Criterion benchmarks of the *simulation itself*: how long the host
//! takes to symbolically execute, compile and run device programs. These
//! guard the wall-time of the fig5–fig10 harnesses, not device cycles.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use dsl::prelude::*;
use graphene_bench::measure_spmv;
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use sparse::gen::{poisson_2d_5pt, poisson_3d_7pt, rhs_for_ones, Grid3};

fn bench_spmv_simulation(c: &mut Criterion) {
    let grid = Grid3 { nx: 16, ny: 16, nz: 16 };
    let a = Rc::new(poisson_3d_7pt(16, 16, 16));
    c.bench_function("simulate_spmv_16cubed_64tiles", |b| {
        b.iter(|| measure_spmv(a.clone(), &IpuModel::tiny(64), Some(grid), true))
    });
}

fn bench_solver_simulation(c: &mut Criterion) {
    let a = Rc::new(poisson_2d_5pt(16, 16, 1.0));
    let b_vec = rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab {
        max_iters: 30,
        rel_tol: 1e-5,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    };
    let opts = SolveOptions {
        model: IpuModel::tiny(8),
        tiles: Some(8),
        record_history: false,
        ..SolveOptions::default()
    };
    c.bench_function("simulate_bicgstab_ilu_16x16_8tiles", |b| {
        b.iter(|| solve_or_panic(a.clone(), &b_vec, &cfg, &opts))
    });
}

fn bench_symbolic_execution(c: &mut Criterion) {
    // Graph construction + compilation only (the paper's compile-time
    // concern, §III-C).
    c.bench_function("symbolic_exec_fused_expression_64tiles", |b| {
        b.iter(|| {
            let mut ctx = DslCtx::new(IpuModel::tiny(64));
            let x = ctx.vector("x", DType::F32, 6400, 64);
            let y = ctx.vector("y", DType::F32, 6400, 64);
            let _z = ctx.materialize((x * 2.0f32 + y) / (x + 1.0f32));
            ctx.build_engine().unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spmv_simulation, bench_solver_simulation, bench_symbolic_execution
}
criterion_main!(benches);
