//! **Ablations** — benchmarks for the design choices DESIGN.md calls out:
//!
//! A. blockwise region-grouped halo exchange (§IV) vs naive per-cell
//!    copies;
//! B. Joldes et al. vs Lange–Rump double-word arithmetic under chained
//!    accumulation (why the paper picks the slower, renormalising family
//!    for MPIR);
//! C. level-set scheduling across six workers vs one (the IPUTHREADING
//!    payoff, §V-A);
//! D. lazy fused materialisation of TensorDSL expressions vs eager
//!    per-operation temporaries (§III-C).

use std::rc::Rc;

use dsl::prelude::*;
use graphene_bench::{header, Args, Reporter};
use graphene_core::dist::DistSystem;
use graphene_core::solvers::{GaussSeidel, Solver};
use json::Json;
use sparse::gen::{poisson_3d_7pt, Grid3};
use sparse::partition::Partition;
use twofloat::{joldes, lange_rump};

fn main() {
    let args = Args::parse();
    let mut reporter = Reporter::from_env("ablations");
    ablation_halo(&args, &mut reporter);
    ablation_arithmetic();
    ablation_levelset(&args, &mut reporter);
    ablation_fusion(&mut reporter);
    ablation_sell(&mut reporter);
    reporter.finish();
}

/// A: blockwise vs per-cell halo exchange.
fn ablation_halo(args: &Args, reporter: &mut Reporter) {
    let side = args.get("--halo-side", 24.0) as usize;
    header(&format!("Ablation A: blockwise vs naive halo exchange, poisson {side}^3 on 64 tiles"));
    let grid = Grid3 { nx: side, ny: side, nz: side };
    let a = Rc::new(poisson_3d_7pt(side, side, side));
    let model = IpuModel::tiny(64);
    let part = Partition::grid_3d_auto(grid, 64);
    println!("scheme\tcopies\texchange_cycles");
    for naive in [false, true] {
        let mut ctx = DslCtx::new(model.clone());
        let sys = DistSystem::build(&mut ctx, a.clone(), part.clone());
        let x = sys.new_vector(&mut ctx, "x", DType::F32);
        if naive {
            sys.halo_exchange_naive(&mut ctx, x);
        } else {
            sys.halo_exchange(&mut ctx, x);
        }
        let copies = if naive { sys.halo_volume() } else { sys.halo.num_block_copies() };
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.run();
        let scheme = if naive { "naive-per-cell" } else { "blockwise-regions" };
        let cycles = e.stats().phase_cycles(ipu_sim::Phase::Exchange);
        println!("{scheme}\t{copies}\t{cycles}");
        let mut run = Json::obj(vec![
            ("kind", Json::from("halo_ablation")),
            ("copies", Json::from(copies)),
            ("exchange_cycles", Json::from(cycles)),
        ]);
        reporter.add_json(scheme, &mut run);
    }
}

/// B: error growth of the two double-word arithmetics over chained sums.
fn ablation_arithmetic() {
    header("Ablation B: double-word accumulation error, Joldes vs Lange-Rump (f32 pairs)");
    println!("chain_length\tjoldes_rel_err\tlange_rump_rel_err\tplain_f32_rel_err");
    let term = core::f64::consts::PI / 1e6;
    let th = term as f32;
    let tl = (term - th as f64) as f32;
    for n in [1_000u32, 10_000, 100_000, 1_000_000] {
        let mut jo = (0.0f32, 0.0f32);
        let mut lr = (0.0f32, 0.0f32);
        let mut naive = 0.0f32;
        for _ in 0..n {
            jo = joldes::add_dw_dw(jo.0, jo.1, th, tl);
            lr = lange_rump::add_dw_dw(lr.0, lr.1, th, tl);
            naive += th;
        }
        let want = (th as f64 + tl as f64) * n as f64;
        let rel = |v: f64| ((v - want) / want).abs().max(1e-18);
        println!(
            "{n}\t{:.2e}\t{:.2e}\t{:.2e}",
            rel(jo.0 as f64 + jo.1 as f64),
            rel(lr.0 as f64 + lr.1 as f64),
            rel(naive as f64)
        );
    }
}

/// C: a level-set scheduled Gauss-Seidel sweep with 1 vs 6 workers/tile.
fn ablation_levelset(args: &Args, reporter: &mut Reporter) {
    let side = args.get("--ls-side", 16.0) as usize;
    header(&format!(
        "Ablation C: level-set Gauss-Seidel sweep, 1 vs 6 workers/tile, poisson {side}^3 on 8 tiles"
    ));
    println!("workers\tcycles\tspeedup");
    let grid = Grid3 { nx: side, ny: side, nz: side };
    let a = Rc::new(poisson_3d_7pt(side, side, side));
    let part = Partition::grid_3d_auto(grid, 8);
    let mut base = None;
    for workers in [1usize, 6] {
        let mut model = IpuModel::tiny(8);
        model.workers_per_tile = workers;
        let mut ctx = DslCtx::new(model);
        let sys = DistSystem::build(&mut ctx, a.clone(), part.clone());
        let b = sys.new_vector(&mut ctx, "b", DType::F32);
        let x = sys.new_vector(&mut ctx, "x", DType::F32);
        let mut gs = GaussSeidel::new(1, false);
        gs.setup(&mut ctx, &sys);
        gs.solve(&mut ctx, &sys, b, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.run();
        let cycles = e.stats().device_cycles();
        let b0 = *base.get_or_insert(cycles);
        println!("{workers}\t{cycles}\t{:.2}", b0 as f64 / cycles as f64);
        let mut run = Json::obj(vec![
            ("kind", Json::from("levelset_ablation")),
            ("workers", Json::from(workers)),
            ("device_cycles", Json::from(cycles)),
        ]);
        reporter.add_json(&format!("workers={workers}"), &mut run);
    }
}

/// E: CSR vs SELL SpMV codelets on one simulated tile — the paper's
/// §II-C hypothesis: "we anticipate that the performance gains typically
/// associated with ELLPACK and SELL formats would be small on IPUs"
/// (no caches, 2-wide vectors, single-cycle branches).
fn ablation_sell(reporter: &mut Reporter) {
    use graphene_core::dist::DistSystem;
    use sparse::sell::SellMatrix;

    header("Ablation E: CSR vs SELL(c=8) SpMV codelet on one tile, poisson 2D 24x24");
    let a = Rc::new(sparse::gen::poisson_2d_5pt(24, 24, 1.0));
    let n = a.nrows;
    println!("format\tstored_entries\tdevice_cycles");

    // CSR (modified): reuse the framework's SpMV on one tile.
    {
        let part = Partition::balanced_by_nnz(&a, 1);
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let sys = DistSystem::build(&mut ctx, a.clone(), part);
        let x = sys.new_vector(&mut ctx, "x", DType::F32);
        let y = sys.new_vector(&mut ctx, "y", DType::F32);
        sys.spmv_no_exchange(&mut ctx, y, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.run();
        println!("modified-csr\t{}\t{}", a.nnz(), e.stats().device_cycles());
        let mut run = Json::obj(vec![
            ("kind", Json::from("sell_ablation")),
            ("stored_entries", Json::from(a.nnz())),
            ("device_cycles", Json::from(e.stats().device_cycles())),
        ]);
        reporter.add_json("modified-csr", &mut run);
    }

    // SELL with slice height 8.
    {
        let sell = SellMatrix::from_csr(&a, 8);
        let nslices = sell.slice_width.len();
        let c = sell.c as i32;
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let x = ctx.vector("x", DType::F32, n, 1);
        let y = ctx.vector("y", DType::F32, n, 1);
        let vals = ctx.vector("vals", DType::F32, sell.vals.len(), 1);
        let cols = ctx.vector("cols", DType::I32, sell.cols.len(), 1);
        let widths = ctx.vector("widths", DType::I32, nslices, 1);
        let sptr = ctx.vector("sptr", DType::I32, nslices + 1, 1);

        let mut cb = CodeDsl::new("sell_spmv");
        let yp = cb.param(DType::F32, true);
        let xp = cb.param(DType::F32, false);
        let vp = cb.param(DType::F32, false);
        let cp = cb.param(DType::I32, false);
        let wp = cb.param(DType::I32, false);
        let pp = cb.param(DType::I32, false);
        let rows = cb.let_(yp.len());
        cb.par_for(Val::i32(0), wp.len(), |cb, s| {
            let base = cb.let_(pp.at(s.clone()));
            let width = cb.let_(wp.at(s.clone()));
            cb.for_(Val::i32(0), width, Val::i32(1), |cb, k| {
                cb.for_(Val::i32(0), Val::i32(c), Val::i32(1), |cb, r| {
                    let i = cb.let_(s.clone() * c + r.clone());
                    cb.if_(i.clone().lt(rows.clone()), |cb| {
                        let idx = cb.let_(base.clone() + k.clone() * c + r.clone());
                        cb.store(yp, i.clone(), yp.at(i) + vp.at(idx.clone()) * xp.at(cp.at(idx)));
                    });
                });
            });
        });
        let codelet = ctx.add_codelet(cb.build());
        ctx.execute(
            "sell_spmv",
            vec![Vertex {
                tile: 0,
                codelet,
                operands: vec![
                    TensorSlice { tensor: y.id, start: 0, len: n },
                    TensorSlice { tensor: x.id, start: 0, len: n },
                    TensorSlice { tensor: vals.id, start: 0, len: sell.vals.len() },
                    TensorSlice { tensor: cols.id, start: 0, len: sell.cols.len() },
                    TensorSlice { tensor: widths.id, start: 0, len: nslices },
                    TensorSlice { tensor: sptr.id, start: 0, len: nslices + 1 },
                ],
                kind: VertexKind::Simple,
            }],
        );
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(vals.id, &sell.vals);
        e.write_tensor(cols.id, &sell.cols.iter().map(|&v| v as f64).collect::<Vec<_>>());
        e.write_tensor(widths.id, &sell.slice_width.iter().map(|&v| v as f64).collect::<Vec<_>>());
        e.write_tensor(sptr.id, &sell.slice_ptr.iter().map(|&v| v as f64).collect::<Vec<_>>());
        // Correctness spot-check before timing.
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        e.write_tensor(x.id, &xs);
        e.run();
        let got = e.read_tensor(y.id);
        let want = a.spmv_alloc(&xs);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "SELL codelet wrong: {g} vs {w}");
        }
        println!("sell-c8\t{}\t{}", sell.padded_nnz(), e.stats().device_cycles());
        let mut run = Json::obj(vec![
            ("kind", Json::from("sell_ablation")),
            ("stored_entries", Json::from(sell.padded_nnz())),
            ("device_cycles", Json::from(e.stats().device_cycles())),
        ]);
        reporter.add_json("sell-c8", &mut run);
    }
}

/// D: one fused codelet vs a chain of eagerly materialised temporaries.
fn ablation_fusion(reporter: &mut Reporter) {
    header("Ablation D: lazy fused materialisation vs eager temporaries");
    println!("strategy\tcompute_sets\tdevice_cycles");
    let n = 60_000;
    // Fused: w = (x*2 + y) / (x + 1) - y  as one expression.
    {
        let mut ctx = DslCtx::new(IpuModel::tiny(16));
        let x = ctx.vector("x", DType::F32, n, 16);
        let y = ctx.vector("y", DType::F32, n, 16);
        let _w = ctx.materialize((x * 2.0f32 + y) / (x + 1.0f32) - y);
        let sets = ctx.graph().compute_sets.len();
        let mut e = ctx.build_engine().unwrap();
        e.run();
        println!("lazy-fused\t{sets}\t{}", e.stats().device_cycles());
        let mut run = Json::obj(vec![
            ("kind", Json::from("fusion_ablation")),
            ("compute_sets", Json::from(sets)),
            ("device_cycles", Json::from(e.stats().device_cycles())),
        ]);
        reporter.add_json("lazy-fused", &mut run);
    }
    // Eager: one materialisation per operation (what a naive tensor
    // library would do).
    {
        let mut ctx = DslCtx::new(IpuModel::tiny(16));
        let x = ctx.vector("x", DType::F32, n, 16);
        let y = ctx.vector("y", DType::F32, n, 16);
        let t1 = ctx.materialize(x * 2.0f32);
        let t2 = ctx.materialize(t1 + y);
        let t3 = ctx.materialize(x + 1.0f32);
        let t4 = ctx.materialize(t2 / t3);
        let _w = ctx.materialize(t4 - y);
        let sets = ctx.graph().compute_sets.len();
        let mut e = ctx.build_engine().unwrap();
        e.run();
        println!("eager-temporaries\t{sets}\t{}", e.stats().device_cycles());
        let mut run = Json::obj(vec![
            ("kind", Json::from("fusion_ablation")),
            ("compute_sets", Json::from(sets)),
            ("device_cycles", Json::from(e.stats().device_cycles())),
        ]);
        reporter.add_json("eager-temporaries", &mut run);
    }
}
