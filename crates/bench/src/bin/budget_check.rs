//! **budget_check** — the cycle-budget regression gate.
//!
//! Re-runs a fixed fig5-style SpMV and a fixed fig8-style solve and
//! compares their device-cycle totals (plus per-iteration host dispatch,
//! informational) against the committed `results/baselines.json`. Device
//! cycles are bit-deterministic, so any drift is a real cost-model or
//! compiler change: the gate fails when a measurement regresses beyond
//! the tolerance (`--tol`, default 1%). Improvements beyond tolerance
//! also fail — they mean the committed budget is stale and must be
//! re-blessed, keeping the baseline honest in both directions.
//!
//! Knobs:
//!
//! * `GRAPHENE_BUDGET_BLESS=1` — rewrite `results/baselines.json` with
//!   the measured numbers instead of checking (use after an intentional
//!   cost change, and commit the diff);
//! * `GRAPHENE_BUDGET_OVERRIDE=1` — report regressions but exit 0 (the
//!   explicit escape hatch for landing an intentional change that will
//!   be re-blessed in the same PR);
//! * `--tol 0.05` — widen the relative tolerance.
//!
//! Host dispatch seconds vary with the runner's hardware, so they are
//! recorded in the baseline for context but never gate.

use std::rc::Rc;

use graphene_bench::{header, ipu_friendly_grid, measure_spmv, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::gen::poisson_3d_7pt;
use sparse::gen::suitesparse::by_name;

const BASELINE_PATH: &str = "results/baselines.json";

struct Measurement {
    name: &'static str,
    device_cycles: u64,
    iterations: u64,
    host_seconds_per_iter: f64,
}

fn measure() -> Vec<Measurement> {
    // fig5-style: SpMV with halo exchange on a fixed Poisson grid.
    let grid = ipu_friendly_grid(40_000);
    let a = Rc::new(poisson_3d_7pt(grid.nx, grid.ny, grid.nz));
    let model = IpuModel::with_ipus(1);
    let spmv = measure_spmv(a, &model, Some(grid), true);

    // fig8-style: IR-PBiCGStab+ILU(0) with double-word MPIR on the
    // paper's first matrix, small scale.
    let a = Rc::new(by_name("G3_circuit", 0.002));
    let b = sparse::gen::random_vector(a.nrows, 8);
    let cfg = SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision: ExtendedPrecision::DoubleWord,
        max_outer: 60,
        rel_tol: 1e-9,
    };
    let opts =
        SolveOptions { model: IpuModel::m2000(), rows_per_tile: 32, ..SolveOptions::default() };
    let solve = solve_or_panic(a, &b, &cfg, &opts);

    vec![
        Measurement {
            name: "fig5_spmv",
            device_cycles: spmv.total_cycles,
            iterations: 1,
            host_seconds_per_iter: 0.0,
        },
        Measurement {
            name: "fig8_solve",
            device_cycles: solve.stats.device_cycles(),
            iterations: solve.iterations.max(1) as u64,
            host_seconds_per_iter: solve.report.host_seconds / solve.iterations.max(1) as f64,
        },
    ]
}

fn to_json(ms: &[Measurement]) -> Json {
    Json::obj([
        ("bin", Json::from("budget_check")),
        (
            "budgets",
            Json::Obj(
                ms.iter()
                    .map(|m| {
                        (
                            m.name.to_string(),
                            Json::obj([
                                ("device_cycles", Json::from(m.device_cycles)),
                                ("iterations", Json::from(m.iterations)),
                                ("host_seconds_per_iter", Json::from(m.host_seconds_per_iter)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn env_on(key: &str) -> bool {
    std::env::var(key).is_ok_and(|v| v == "1")
}

fn main() {
    let args = Args::parse();
    let tol = args.get("--tol", 0.01);
    header(&format!("budget_check: device-cycle regression gate (tolerance {:.1}%)", tol * 100.0));
    let measured = measure();

    if env_on("GRAPHENE_BUDGET_BLESS") {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write(BASELINE_PATH, to_json(&measured).to_pretty()).expect("write baselines");
        println!("blessed {} budgets into {BASELINE_PATH}", measured.len());
        for m in &measured {
            println!("  {}\tdevice_cycles={}\titers={}", m.name, m.device_cycles, m.iterations);
        }
        return;
    }

    let text = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cannot read {BASELINE_PATH}: {e}\nrun with GRAPHENE_BUDGET_BLESS=1 to create it"
            );
            std::process::exit(2);
        }
    };
    let baseline = Json::parse(&text).expect("baselines.json parses");
    let budgets = baseline.get("budgets").expect("baselines.json has 'budgets'");

    println!("check\tbaseline\tmeasured\tdelta\tverdict");
    let mut failures = 0u32;
    for m in &measured {
        let Some(base) = budgets.get(m.name) else {
            println!("{}\t-\t{}\t-\tNEW (re-bless to record)", m.name, m.device_cycles);
            failures += 1;
            continue;
        };
        let base_cycles = base.get("device_cycles").and_then(Json::as_u64).unwrap_or(0);
        let delta = m.device_cycles as f64 / base_cycles.max(1) as f64 - 1.0;
        let ok = delta.abs() <= tol;
        println!(
            "{}\t{}\t{}\t{:+.3}%\t{}",
            m.name,
            base_cycles,
            m.device_cycles,
            delta * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
        // Host dispatch: informational only (hardware-dependent).
        let base_host = base.get("host_seconds_per_iter").and_then(Json::as_f64).unwrap_or(0.0);
        if base_host > 0.0 && m.host_seconds_per_iter > 0.0 {
            println!(
                "{}.host_dispatch\t{:.6}s\t{:.6}s\t{:+.1}%\tinfo",
                m.name,
                base_host,
                m.host_seconds_per_iter,
                (m.host_seconds_per_iter / base_host - 1.0) * 100.0
            );
        }
    }

    if failures > 0 {
        if env_on("GRAPHENE_BUDGET_OVERRIDE") {
            println!(
                "{failures} budget check(s) failed — overridden by GRAPHENE_BUDGET_OVERRIDE=1; \
                 re-bless the baseline in this change"
            );
            return;
        }
        println!(
            "{failures} budget check(s) failed beyond {:.1}% tolerance.\n\
             If the cycle change is intentional, rerun with GRAPHENE_BUDGET_BLESS=1 and commit \
             the new {BASELINE_PATH}; to land without re-blessing, set GRAPHENE_BUDGET_OVERRIDE=1.",
            tol * 100.0
        );
        std::process::exit(1);
    }
    println!("all budgets within tolerance");
}
