//! Graph-compiler optimisation benchmark — host dispatch overhead of the
//! compiled `ExecPlan` vs the unoptimised plan vs the legacy
//! tree-walking interpreter.
//!
//! Workload: the Figure 8 solver — MPIR(double-word) wrapping
//! PBiCGStab+ILU(0) — on a scaled Poisson system. Device cycles are
//! *identical* in all three modes (the passes are cycle-neutral by
//! contract, asserted here); what changes is host wall-clock per solver
//! iteration, because the optimised plan dispatches fewer steps and the
//! legacy interpreter re-plans every step of every iteration.
//!
//! Output: a small table on stdout and `results/compile_opt.json`
//! (override with `--out <path>`). `--scale <f>` grows the grid,
//! `--repeats <n>` takes the best of `n` timed runs per mode.

use std::rc::Rc;

use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::formats::CsrMatrix;
use sparse::gen::{poisson_3d_7pt, rhs_for_ones};

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.supersteps(),
        r.stats.sync_count(),
        r.stats.labels_by_phase_sorted(),
    )
}

/// Best-of-`repeats` host seconds for one compile/execute mode.
fn run(
    optimise: bool,
    legacy: bool,
    a: Rc<CsrMatrix>,
    b: &[f64],
    cfg: &SolverConfig,
    repeats: usize,
    rows_per_tile: usize,
) -> (SolveResult, f64) {
    let opts = SolveOptions {
        model: IpuModel::mk2(),
        rows_per_tile,
        // History callbacks also give the per-iteration denominator; their
        // host cost is identical across modes.
        record_history: true,
        optimise: Some(optimise),
        legacy_interpreter: Some(legacy),
        ..SolveOptions::default()
    };
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let r = solve_or_panic(a.clone(), b, cfg, &opts);
        best = best.min(r.report.host_seconds);
        last = Some(r);
    }
    (last.expect("at least one repeat"), best)
}

fn mode_json(name: &str, r: &SolveResult, host_s: f64) -> Json {
    let iters = r.iterations.max(1) as f64;
    let compile = r.report.compile.as_ref().expect("runner stamps compile report");
    Json::obj(vec![
        ("mode", Json::from(name)),
        ("host_seconds", Json::from(host_s)),
        ("host_seconds_per_iteration", Json::from(host_s / iters)),
        ("iterations", Json::from(r.iterations as f64)),
        ("device_cycles", Json::from(r.stats.device_cycles() as f64)),
        ("source_steps", Json::from(compile.source_steps as f64)),
        ("plan_steps", Json::from(compile.plan_steps as f64)),
        ("compile", compile.to_value()),
    ])
}

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.1);
    let repeats = args.get("--repeats", 3.0) as usize;
    // The paper-style fig8 runs use 32 rows/tile; finer partitions put
    // proportionally more vertices (and thus more per-superstep planning
    // work for the legacy interpreter) on the device.
    let rows_per_tile = args.get("--rows-per-tile", 16.0) as usize;
    let out = args.get_str("--out", "results/compile_opt.json");

    // 3-D 7-point Poisson, sides scaled from a 32^3 base grid.
    let n = ((32f64.powi(3) * scale).cbrt().round() as usize).max(8);
    let a = Rc::new(poisson_3d_7pt(n, n, n));
    let b = rhs_for_ones(&a);
    // The Figure 8 IPU configuration: MPIR(dw) { PBiCGStab(100) { ILU(0) } }.
    let cfg = SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision: ExtendedPrecision::DoubleWord,
        max_outer: 10,
        rel_tol: 1e-9,
    };

    header(&format!(
        "compile_opt: MPIR(dw)+PBiCGStab+ILU(0) on poisson {n}x{n}x{n} ({} rows, {} nnz)",
        a.nrows,
        a.nnz()
    ));

    let (r_opt, s_opt) = run(true, false, a.clone(), &b, &cfg, repeats, rows_per_tile);
    let (r_no, s_no) = run(false, false, a.clone(), &b, &cfg, repeats, rows_per_tile);
    let (r_leg, s_leg) = run(true, true, a.clone(), &b, &cfg, repeats, rows_per_tile);

    // Cycle-neutrality contract: optimisation may only remove host
    // dispatch overhead, never simulated device work.
    assert_eq!(fingerprint(&r_opt), fingerprint(&r_no), "optimisation changed device semantics");
    assert_eq!(fingerprint(&r_opt), fingerprint(&r_leg), "plan diverged from legacy interpreter");

    let iters = r_opt.iterations.max(1) as f64;
    fn report(r: &SolveResult) -> &profile::CompileReport {
        r.report.compile.as_ref().unwrap()
    }
    println!("mode\thost_s\thost_s/iter\tplan_steps");
    println!("optimised\t{s_opt:.4}\t{:.6}\t{}", s_opt / iters, report(&r_opt).plan_steps);
    println!("no_opt\t{s_no:.4}\t{:.6}\t{}", s_no / iters, report(&r_no).plan_steps);
    println!("legacy\t{s_leg:.4}\t{:.6}\t{}", s_leg / iters, report(&r_leg).plan_steps);
    println!(
        "speedup vs no_opt: {:.2}x; vs legacy interpreter: {:.2}x (device cycles identical: {})",
        s_no / s_opt,
        s_leg / s_opt,
        r_opt.stats.device_cycles()
    );
    print!("{}", report(&r_opt).render());

    let doc = Json::obj(vec![
        ("bin", Json::from("compile_opt")),
        ("grid", Json::from(n as f64)),
        ("rows", Json::from(a.nrows as f64)),
        ("nnz", Json::from(a.nnz() as f64)),
        ("rows_per_tile", Json::from(rows_per_tile as f64)),
        ("repeats", Json::from(repeats as f64)),
        ("device_cycles", Json::from(r_opt.stats.device_cycles() as f64)),
        ("cycle_identical", Json::from(true)),
        ("speedup_vs_no_opt", Json::from(s_no / s_opt)),
        ("speedup_vs_legacy", Json::from(s_leg / s_opt)),
        (
            "modes",
            Json::arr(vec![
                mode_json("optimised", &r_opt, s_opt),
                mode_json("no_opt", &r_no, s_no),
                mode_json("legacy_interpreter", &r_leg, s_leg),
            ]),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {out}"),
        Err(e) => eprintln!("[graphene] cannot write {out}: {e}"),
    }
}
