//! **Figure 10** — convergence of PBiCGStab+ILU(0) on af_shell7 under the
//! same four refinement configurations as Figure 9.

use graphene_bench::Args;

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.008);
    graphene_bench::convergence_figure(
        "Fig 10",
        "af_shell7",
        scale,
        args.get("--inner", 100.0) as u32,
    );
}
