//! **Figure 5** — strong scaling of SpMV.
//!
//! The paper: a 7-point Poisson matrix with ~58 M entries (200³ grid),
//! executed on 1–16 IPUs; near-ideal speedup, with the halo exchange
//! causing the only deviation as the surface-to-volume ratio grows.
//!
//! Default here: a 96³ grid (≈6.2 M entries); pass `--scale 1` to grow
//! toward paper scale (wall-time of the simulation grows linearly).
//!
//! Output: one row per IPU count — total time, compute-only time, and the
//! speedups relative to one IPU (the paper's blue and orange series).

use std::rc::Rc;

use graphene_bench::{header, ipu_friendly_grid, measure_spmv, Args, Reporter};
use ipu_sim::model::IpuModel;
use sparse::gen::poisson_3d_7pt;

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.35);
    // Paper grid: 200³. Scale the cell count, keeping sides divisible by
    // the tile-box factorisations so the decomposition is perfectly
    // balanced (as the paper does).
    let grid = ipu_friendly_grid((200f64.powi(3) * scale) as usize);
    let a = Rc::new(poisson_3d_7pt(grid.nx, grid.ny, grid.nz));
    header(&format!(
        "Fig 5: strong scaling of SpMV, poisson {}x{}x{} ({} rows, {} nnz)",
        grid.nx,
        grid.ny,
        grid.nz,
        a.nrows,
        a.nnz()
    ));
    println!("ipus\ttotal_us\tcompute_us\tspeedup\tspeedup_compute\tideal");

    let mut reporter = Reporter::from_env("fig5");
    let mut base_total = None;
    let mut base_compute = None;
    for ipus in [1usize, 2, 4, 8, 16] {
        let model = IpuModel::with_ipus(ipus);
        let m = measure_spmv(a.clone(), &model, Some(grid), true);
        reporter.add_spmv(&format!("ipus={ipus}"), &m);
        let total_s = model.cycles_to_seconds(m.total_cycles);
        let compute_s = model.cycles_to_seconds(m.compute_cycles);
        let bt = *base_total.get_or_insert(total_s);
        let bc = *base_compute.get_or_insert(compute_s);
        println!(
            "{ipus}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}",
            total_s * 1e6,
            compute_s * 1e6,
            bt / total_s,
            bc / compute_s,
            ipus
        );
    }
    reporter.finish();
}
