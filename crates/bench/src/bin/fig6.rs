//! **Figure 6** — weak scaling of SpMV.
//!
//! The paper: Poisson matrices from 58 M to 890 M entries, constant rows
//! per tile, 1–16 IPUs; ideal weak scaling, with the halo-exchange time
//! *constant* thanks to the all-to-all fabric ("while the total
//! communication volume increases linearly with the number of IPUs, the
//! time required for halo exchange remains constant").
//!
//! Each tile always owns the same cubic box of the grid: the grid is the
//! box tiled by the per-IPU-count factorisation (23·2^a·2^b boxes), so
//! rows/tile is exactly constant across the sweep.
//!
//! Output: per IPU count — rows, rows/tile, total/compute/exchange/sync
//! time, and weak-scaling efficiency (t₁/tₙ).

use std::rc::Rc;

use graphene_bench::{header, measure_spmv_with_partition, Args, Reporter};
use ipu_sim::model::IpuModel;
use sparse::gen::{poisson_3d_7pt, Grid3};
use sparse::partition::Partition;

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.05);
    // Paper: ~5435 rows per tile throughout. Use a cubic box per tile.
    let side = ((5435.0 * scale).cbrt().round().max(2.0)) as usize;
    let rows_per_tile = side * side * side;
    header(&format!("Fig 6: weak scaling of SpMV, poisson, {side}^3 = {rows_per_tile} rows/tile"));
    println!("ipus\trows\trows_per_tile\ttotal_us\tcompute_us\texchange_us\tsync_us\tefficiency");

    // 1472·n tiles factor as 23 × py × pz.
    let factorisations: [(usize, usize, usize); 5] =
        [(1, 8, 8), (2, 16, 8), (4, 16, 16), (8, 32, 16), (16, 32, 32)];
    let mut reporter = Reporter::from_env("fig6");
    let mut base_total = None;
    for (ipus, py, pz) in factorisations {
        let model = IpuModel::with_ipus(ipus);
        let grid = Grid3 { nx: 23 * side, ny: py * side, nz: pz * side };
        assert_eq!(grid.num_cells(), model.num_tiles() * rows_per_tile);
        let a = Rc::new(poisson_3d_7pt(grid.nx, grid.ny, grid.nz));
        let part = Partition::grid_3d(grid, 23, py, pz);
        let m = measure_spmv_with_partition(a.clone(), &model, part, true);
        reporter.add_spmv(&format!("ipus={ipus}"), &m);
        let total = model.cycles_to_seconds(m.total_cycles) * 1e6;
        let compute = model.cycles_to_seconds(m.compute_cycles) * 1e6;
        let exchange = model.cycles_to_seconds(m.exchange_cycles) * 1e6;
        let sync = model.cycles_to_seconds(m.sync_cycles) * 1e6;
        let bt = *base_total.get_or_insert(total);
        println!(
            "{ipus}\t{}\t{rows_per_tile}\t{total:.2}\t{compute:.2}\t{exchange:.2}\t{sync:.2}\t{:.3}",
            a.nrows,
            bt / total
        );
    }
    reporter.finish();
}
