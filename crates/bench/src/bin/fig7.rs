//! **Figure 7** — SpMV execution times on IPU / CPU / GPU.
//!
//! The paper compares one GraphCore M2000 (4 IPUs, 5,888 tiles) against an
//! Intel Xeon 8470Q (HYPRE, MPI) and an NVIDIA H100 (cuSPARSE), on four
//! SuiteSparse matrices, reporting IPU speedups of 13–19x over the GPU and
//! 55–150x over the CPU.
//!
//! Substitutions here (see DESIGN.md §1): synthetic SuiteSparse analogues
//! at `--scale` of the paper's row counts; IPU time from the cycle model;
//! CPU time measured on *this* host (rayon-parallel f64, warm-cache
//! methodology); GPU time from the H100 roofline model.

use std::rc::Rc;

use baselines::cpu::{spmv_par, time_op};
use baselines::gpu::GpuModel;
use graphene_bench::{header, measure_spmv, Args, Reporter};
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::gen::suitesparse::{by_name, PAPER_MATRICES};

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.05);
    let reps = args.get("--reps", 20.0) as usize;
    header(&format!("Fig 7: SpMV execution times, matrices at scale {scale}"));
    println!(
        "matrix\trows\tnnz\tipu_us\tcpu_us\tgpu_us\tipu_vs_cpu\tipu_vs_gpu\tipu_uj\tcpu_uj\tgpu_uj"
    );

    let mut reporter = Reporter::from_env("fig7");
    // Per-backend artifacts (`results/fig7.<backend>.json`) so downstream
    // tooling can diff one backend's series without parsing the combined
    // document; names match the `GRAPHENE_BACKEND` registry grammar.
    let mut ipu_reporter = Reporter::from_env("fig7.ipu-sim");
    let mut cpu_reporter = Reporter::from_env("fig7.cpu");
    let mut gpu_reporter = Reporter::from_env("fig7.gpu-model");
    let model = IpuModel::m2000();
    let gpu = GpuModel::h100();
    for info in PAPER_MATRICES {
        let a = Rc::new(by_name(info.name, scale));
        // IPU: deterministic cycle model.
        let m = measure_spmv(a.clone(), &model, None, true);
        let ipu = model.cycles_to_seconds(m.total_cycles);
        // CPU: wall time on this host, warm-cache methodology (§VI-A,
        // scaled-down repetition counts).
        let x: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; a.nrows];
        let cpu = time_op(|| spmv_par(&a, &x, &mut y), reps / 2, reps);
        // GPU: roofline model.
        let g = gpu.spmv_time(&a);
        let mut run = m.to_value();
        if let Json::Obj(fields) = &mut run {
            fields.push(("ipu_seconds".to_string(), Json::from(ipu)));
            fields.push(("cpu_seconds".to_string(), Json::from(cpu)));
            fields.push(("gpu_seconds".to_string(), Json::from(g)));
        }
        reporter.add_json(info.name, &mut run);
        let per_backend = |rep: &mut Reporter, backend: &str, timing: &str, secs: f64| {
            let mut row = Json::obj(vec![
                ("backend", Json::from(backend)),
                ("timing", Json::from(timing)),
                ("seconds", Json::from(secs)),
                ("rows", Json::from(a.nrows as u64)),
                ("nnz", Json::from(a.nnz() as u64)),
            ]);
            rep.add_json(info.name, &mut row);
        };
        per_backend(&mut ipu_reporter, "ipu-sim", "cycle-model", ipu);
        per_backend(&mut cpu_reporter, "cpu:par", "wall-clock", cpu);
        per_backend(&mut gpu_reporter, "gpu-model", "roofline-model", g);
        use graphene_bench::power;
        println!(
            "{}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            info.name,
            a.nrows,
            a.nnz(),
            ipu * 1e6,
            cpu * 1e6,
            g * 1e6,
            cpu / ipu,
            g / ipu,
            power::mj(ipu, power::IPU_M2000_W) * 1e3,
            power::mj(cpu, power::CPU_XEON_W) * 1e3,
            power::mj(g, power::GPU_H100_W) * 1e3,
        );
    }
    reporter.finish();
    ipu_reporter.finish();
    cpu_reporter.finish();
    gpu_reporter.finish();
}
