//! **Figure 8** — time for IR-PBiCGStab+ILU(0) to converge to a relative
//! residual of 1e-9, on IPU / CPU / GPU.
//!
//! The paper: IPU uses MPIR with double-word arithmetic (no native f64);
//! CPU and GPU use native double precision without MPIR. IPU wins 5–36x
//! over the GPU and 3–7x over the CPU; the CPU fares *relatively* better
//! than in the SpMV benchmark because tile-local (block-Jacobi) ILU loses
//! strength when the domain splits into thousands of small subdomains.
//!
//! Substitutions as in fig7; GPU solve time = f64 iteration count (from
//! the CPU reference) × modelled per-iteration time.

use std::rc::Rc;

use baselines::cpu::{CpuSolver, Ilu0Factors};
use baselines::gpu::GpuModel;
use graphene_bench::{header, Args, Reporter};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;
use sparse::gen::suitesparse::{by_name, PAPER_MATRICES};

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.008);
    let tol = 1e-9;
    header(&format!(
        "Fig 8: IR-PBiCGStab+ILU(0) time to rel. residual {tol:.0e}, matrices at scale {scale}"
    ));
    println!(
        "matrix\trows\tipu_ms\tipu_iters\tcpu_ms\tcpu_iters\tgpu_ms\tipu_vs_cpu\tipu_vs_gpu\tipu_mj\tcpu_mj\tgpu_mj"
    );

    let mut reporter = Reporter::from_env("fig8");
    let model = IpuModel::m2000();
    let gpu = GpuModel::h100();
    for info in PAPER_MATRICES {
        let a = Rc::new(by_name(info.name, scale));
        let b = sparse::gen::random_vector(a.nrows, 8);

        // IPU: MPIR(double-word) { PBiCGStab(100) { ILU(0) } }.
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: 100,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: ExtendedPrecision::DoubleWord,
            max_outer: 60,
            rel_tol: tol,
        };
        let opts =
            SolveOptions { model: model.clone(), rows_per_tile: 32, ..SolveOptions::default() };
        let ipu = solve_or_panic(a.clone(), &b, &cfg, &opts);
        reporter.add_solve(info.name, &ipu);

        // CPU: native f64 BiCGStab + global ILU(0), wall time on this host.
        let mut x = vec![0.0; a.nrows];
        let cpu = CpuSolver::new(200_000, tol, true).solve(&a, &b, &mut x);

        // GPU: f64 iteration count × modelled iteration time (+ the
        // cuSPARSE analysis/factorisation cost once).
        let f = Ilu0Factors::new(&a);
        let (fl, bl) = f.level_counts();
        let gpu_secs = cpu.iterations as f64 * gpu.bicgstab_ilu_iteration_time(&a, fl, bl)
            + gpu.spmv_time(&a) * 10.0;
        use graphene_bench::power;
        println!(
            "{}\t{}\t{:.2}\t{}\t{:.2}\t{}\t{:.2}\t{:.1}\t{:.1}\t{:.2}\t{:.2}\t{:.2}",
            info.name,
            a.nrows,
            ipu.seconds * 1e3,
            ipu.iterations,
            cpu.seconds * 1e3,
            cpu.iterations,
            gpu_secs * 1e3,
            cpu.seconds / ipu.seconds,
            gpu_secs / ipu.seconds,
            power::mj(ipu.seconds, power::IPU_M2000_W),
            power::mj(cpu.seconds, power::CPU_XEON_W),
            power::mj(gpu_secs, power::GPU_H100_W),
        );
        if ipu.residual > tol * 10.0 {
            println!("#   warning: IPU run ended at residual {:.2e}", ipu.residual);
        }
    }
    reporter.finish();
}
