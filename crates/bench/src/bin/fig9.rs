//! **Figure 9** — convergence of PBiCGStab+ILU(0) on Geo_1438 under four
//! refinement configurations: no IR, IR (working precision), MPIR with
//! double-word arithmetic, MPIR with emulated f64.
//!
//! The paper: both non-MPIR configurations stall at a relative residual of
//! ~1e-6; MPIR-DW reaches 1e-13 and MPIR-DP 1e-15. 100 PBiCGStab
//! iterations per refinement step.
//!
//! Output: `iter <tab> residual` series per configuration.

use graphene_bench::Args;

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.004);
    graphene_bench::convergence_figure(
        "Fig 9",
        "Geo_1438",
        scale,
        args.get("--inner", 100.0) as u32,
    );
}
