//! **native_speedup** — host-dispatch speedup gate for the native
//! fused-kernel executor (`ExecutorKind::Native`).
//!
//! Runs the fig8-class solve (IR-PBiCGStab+ILU(0) with double-word MPIR,
//! the budget_check workload) under the sequential interpreter and under
//! the native executor, and
//!
//! 1. asserts every device observable is identical (solution bits, device
//!    cycles, exchanged bytes, superstep/sync counts, per-label splits) —
//!    the native executor's bit-and-cycle-identity contract;
//! 2. asserts the fig8 hot-op codelets actually fused (SpMV, the residual
//!    SpMV, both triangular sweeps, at least one map and one reduction) —
//!    a silent fallback would quietly forfeit the speedup;
//! 3. gates on per-iteration host dispatch time: native must beat the
//!    interpreter by at least `--min-speedup` (default 5).
//!
//! Output: a small table on stdout and `results/native_speedup.json`
//! (override with `--out <path>`). `--scale <f>` grows the matrix,
//! `--repeats <n>` takes the best of `n` timed runs per executor.

use std::rc::Rc;

use graph::ExecutorKind;
use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::formats::CsrMatrix;
use sparse::gen::suitesparse::by_name;

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.supersteps(),
        r.stats.sync_count(),
        r.stats.labels_by_phase_sorted(),
    )
}

/// Best-of-`repeats` host seconds for one executor (plus the last result —
/// every repeat is bit-identical by construction).
fn run(
    kind: ExecutorKind,
    a: Rc<CsrMatrix>,
    b: &[f64],
    cfg: &SolverConfig,
    repeats: usize,
) -> (SolveResult, f64) {
    let opts = SolveOptions {
        model: IpuModel::m2000(),
        rows_per_tile: 32,
        // Keep the residual monitor wired (as budget_check does) so
        // `iterations` is the real count — per-iteration host dispatch is
        // the number the gate compares.
        record_history: true,
        executor: Some(kind),
        ..SolveOptions::default()
    };
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let r = solve_or_panic(a.clone(), b, cfg, &opts);
        best = best.min(r.report.host_seconds);
        last = Some(r);
    }
    (last.expect("at least one repeat"), best)
}

/// The fused-kernel names the fig8 hot path must hit. A fallback on any of
/// these rebuilds the interpreter bottleneck this executor exists to
/// remove, so it fails the gate rather than just slowing down.
const REQUIRED_KERNELS: &[&str] =
    &["spmv", "spmv_residual", "forward_subst", "backward_subst_div", "map", "reduce"];

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.002);
    let repeats = args.get("--repeats", 3.0) as usize;
    let min_speedup = args.get("--min-speedup", 5.0);
    let out = args.get_str("--out", "results/native_speedup.json");

    // The budget_check fig8 workload: MPIR(dw) { PBiCGStab(100) { ILU(0) } }.
    let a = Rc::new(by_name("G3_circuit", scale));
    let b = sparse::gen::random_vector(a.nrows, 8);
    let cfg = SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision: ExtendedPrecision::DoubleWord,
        max_outer: 60,
        rel_tol: 1e-9,
    };
    header(&format!(
        "native_speedup: fig8-class MPIR solve on G3_circuit@{scale} ({} rows, {} nnz)",
        a.nrows,
        a.nnz()
    ));

    let (rs, seq_s) = run(ExecutorKind::Sequential, a.clone(), &b, &cfg, repeats);
    let (rn, nat_s) = run(ExecutorKind::Native, a.clone(), &b, &cfg, repeats);

    // 1. Bit-and-cycle identity.
    assert_eq!(
        fingerprint(&rs),
        fingerprint(&rn),
        "native executor disagrees with the interpreter — determinism violation"
    );

    // 2. Kernel coverage.
    let sel = rn
        .report
        .compile
        .as_ref()
        .and_then(|c| c.pass("native-kernel-selection"))
        .expect("native run stamps the kernel selection into its compile report");
    let fallbacks: Vec<String> = sel
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("fallback."))
        .map(|(k, _)| k["fallback.".len()..].to_string())
        .collect();
    let missing: Vec<&str> = REQUIRED_KERNELS
        .iter()
        .copied()
        .filter(|k| sel.counter(&format!("fused.{k}")) == 0)
        .collect();
    println!(
        "kernels: {}/{} codelets fused; fallbacks: [{}]",
        sel.counter("codelets_fused"),
        sel.counter("codelets_total"),
        fallbacks.join(", ")
    );
    if !missing.is_empty() {
        eprintln!("hot-op codelets fell back to the interpreter: {missing:?}");
        std::process::exit(1);
    }

    // 3. Per-iteration host-dispatch speedup.
    let iters = rs.iterations.max(1) as f64;
    let seq_per_iter = seq_s / iters;
    let nat_per_iter = nat_s / iters;
    let speedup = seq_per_iter / nat_per_iter;
    println!("executor\thost_s\thost_s_per_iter\tdevice_cycles");
    println!("sequential\t{seq_s:.4}\t{seq_per_iter:.6}\t{}", rs.stats.device_cycles());
    println!("native\t{nat_s:.4}\t{nat_per_iter:.6}\t{}", rn.stats.device_cycles());
    println!("speedup\t{speedup:.2}x\t(gate: >= {min_speedup:.1}x)");

    let doc = Json::obj(vec![
        ("bin", Json::from("native_speedup")),
        ("matrix", Json::from("G3_circuit")),
        ("scale", Json::from(scale)),
        ("rows", Json::from(a.nrows as f64)),
        ("nnz", Json::from(a.nnz() as f64)),
        ("repeats", Json::from(repeats as f64)),
        ("iterations", Json::from(rs.iterations as f64)),
        ("seq_host_seconds", Json::from(seq_s)),
        ("native_host_seconds", Json::from(nat_s)),
        ("seq_host_seconds_per_iter", Json::from(seq_per_iter)),
        ("native_host_seconds_per_iter", Json::from(nat_per_iter)),
        ("speedup", Json::from(speedup)),
        ("min_speedup", Json::from(min_speedup)),
        ("codelets_total", Json::from(sel.counter("codelets_total"))),
        ("codelets_fused", Json::from(sel.counter("codelets_fused"))),
        ("fallbacks", Json::arr(fallbacks.iter().map(|f| Json::from(f.as_str())))),
        ("device_cycles", Json::from(rs.stats.device_cycles() as f64)),
        ("bit_identical", Json::from(true)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {out}"),
        Err(e) => eprintln!("[graphene] cannot write {out}: {e}"),
    }

    if speedup < min_speedup {
        eprintln!(
            "native per-iteration host dispatch speedup {speedup:.2}x is below the \
             {min_speedup:.1}x gate"
        );
        std::process::exit(1);
    }
}
