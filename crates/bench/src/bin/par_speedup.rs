//! Host-executor speedup check — sequential vs tile-parallel `Engine`.
//!
//! Runs the *same* solve under both host executors, asserts that every
//! observable (solution bits, device cycles, exchanged bytes, superstep
//! and sync counts, per-label splits) is identical, and reports the host
//! wall-clock for each. On a multi-core runner the parallel executor
//! should win; on a single-core box the numbers are informational only,
//! so this binary never fails on a missing speedup — only on a
//! determinism violation.
//!
//! Output: a small table on stdout and `results/par_speedup.json`
//! (override with `--out <path>`). `--scale <f>` grows the grid,
//! `--repeats <n>` takes the best of `n` timed runs per executor.

use std::rc::Rc;

use graph::ExecutorKind;
use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::formats::CsrMatrix;
use sparse::gen::{poisson_3d_7pt, rhs_for_ones};

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.supersteps(),
        r.stats.sync_count(),
        r.stats.labels_by_phase_sorted(),
    )
}

/// Best-of-`repeats` host seconds for one executor (plus the last result
/// for fingerprinting — every repeat is bit-identical by construction).
fn run(
    kind: ExecutorKind,
    a: Rc<CsrMatrix>,
    b: &[f64],
    cfg: &SolverConfig,
    repeats: usize,
) -> (SolveResult, f64) {
    let opts = SolveOptions {
        model: IpuModel::mk2(),
        record_history: false,
        executor: Some(kind),
        ..SolveOptions::default()
    };
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let r = solve_or_panic(a.clone(), b, cfg, &opts);
        best = best.min(r.report.host_seconds);
        last = Some(r);
    }
    (last.expect("at least one repeat"), best)
}

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.35);
    let repeats = args.get("--repeats", 3.0) as usize;
    let out = args.get_str("--out", "results/par_speedup.json");

    // 3-D 7-point Poisson, sides scaled from a 32^3 base grid.
    let n = ((32f64.powi(3) * scale).cbrt().round() as usize).max(8);
    let a = Rc::new(poisson_3d_7pt(n, n, n));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab { max_iters: 30, rel_tol: 1e-8, precond: None };

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    header(&format!(
        "par_speedup: BiCgStab on poisson {n}x{n}x{n} ({} rows, {} nnz), {threads} host cores",
        a.nrows,
        a.nnz()
    ));

    let (rs, seq_s) = run(ExecutorKind::Sequential, a.clone(), &b, &cfg, repeats);
    let (rp, par_s) = run(ExecutorKind::Parallel, a.clone(), &b, &cfg, repeats);

    // Determinism contract: nothing observable may differ.
    assert_eq!(fingerprint(&rs), fingerprint(&rp), "executors disagree — determinism violation");

    let speedup = seq_s / par_s;
    println!("executor\thost_s\tdevice_cycles");
    println!("sequential\t{seq_s:.4}\t{}", rs.stats.device_cycles());
    println!("parallel\t{par_s:.4}\t{}", rp.stats.device_cycles());
    println!("speedup\t{speedup:.2}x\t(threads={threads})");

    let doc = Json::obj(vec![
        ("bin", Json::from("par_speedup")),
        ("grid", Json::from(n as f64)),
        ("rows", Json::from(rs.x.len() as f64)),
        ("nnz", Json::from(a.nnz() as f64)),
        ("threads", Json::from(threads as f64)),
        ("repeats", Json::from(repeats as f64)),
        ("seq_host_seconds", Json::from(seq_s)),
        ("par_host_seconds", Json::from(par_s)),
        ("speedup", Json::from(speedup)),
        ("device_cycles", Json::from(rs.stats.device_cycles() as f64)),
        ("bit_identical", Json::from(true)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {out}"),
        Err(e) => eprintln!("[graphene] cannot write {out}: {e}"),
    }
}
