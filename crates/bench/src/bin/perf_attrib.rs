//! **perf_attrib** — plan-aware performance attribution on the paper's
//! headline solver stack (the fig8 configuration: IR-PBiCGStab+ILU(0)
//! with double-word MPIR).
//!
//! Runs the same solve under the sequential and the tile-parallel host
//! executor, hard-asserts the attribution contract —
//!
//! * per-step cycles partition `device_cycles` with zero remainder,
//! * the attribution section is bit-identical across executors,
//! * attaching the recorder adds zero device cycles,
//!
//! — then prints the top steps by cycles with their imbalance and
//! roofline numbers, and writes `results/perf_attrib.json`.

use std::rc::Rc;

use graph::ExecutorKind;
use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::gen::suitesparse::{by_name, PAPER_MATRICES};

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.004);
    let top_k = args.get("--top", 10.0) as usize;
    let info = &PAPER_MATRICES[0];
    header(&format!(
        "perf_attrib: per-step attribution of IR-PBiCGStab+ILU(0) on {} at scale {scale}",
        info.name
    ));

    let a = Rc::new(by_name(info.name, scale));
    let b = sparse::gen::random_vector(a.nrows, 8);
    let cfg = SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision: ExtendedPrecision::DoubleWord,
        max_outer: 60,
        rel_tol: 1e-9,
    };
    let model = IpuModel::m2000();

    let run = |executor: ExecutorKind| {
        let opts = SolveOptions {
            model: model.clone(),
            rows_per_tile: 32,
            executor: Some(executor),
            ..SolveOptions::default()
        };
        solve_or_panic(a.clone(), &b, &cfg, &opts)
    };

    let seq = run(ExecutorKind::Sequential);
    let par = run(ExecutorKind::Parallel);

    // -- The attribution contract, hard-asserted on every run. ---------
    let perf = seq.report.perf.as_ref().expect("planned runs always record attribution");
    let perf_par = par.report.perf.as_ref().expect("planned runs always record attribution");
    assert_eq!(
        perf.steps_total(),
        seq.stats.device_cycles(),
        "per-step cycles must partition device_cycles exactly"
    );
    assert_eq!(
        perf.attribution_json(),
        perf_par.attribution_json(),
        "attribution must be bit-identical across host executors"
    );
    assert_eq!(
        seq.stats.device_cycles(),
        par.stats.device_cycles(),
        "attaching the recorder must not perturb device cycles"
    );

    println!(
        "rows\t{}\tnnz\t{}\titers\t{}\tdevice_cycles\t{}\tattributed\t{}",
        a.nrows,
        a.nnz(),
        seq.iterations,
        seq.stats.device_cycles(),
        perf.steps_total(),
    );
    print!("{}", perf.render(top_k));

    // -- results/perf_attrib.json: top-k steps by total cycles. --------
    let steps = Json::arr(perf.steps.iter().take(top_k).map(|s| {
        Json::obj([
            ("id", Json::from(s.id)),
            ("kind", Json::from(s.kind.as_str())),
            ("label", Json::from(s.label.as_str())),
            ("name", Json::from(s.name.as_str())),
            ("runs", Json::from(s.runs)),
            ("total_cycles", Json::from(s.total_cycles)),
            ("compute_cycles", Json::from(s.compute_cycles)),
            ("exchange_cycles", Json::from(s.exchange_cycles)),
            ("sync_cycles", Json::from(s.sync_cycles)),
            ("exchange_bytes", Json::from(s.exchange_bytes())),
            ("imbalance_pct", Json::from(s.imbalance_pct)),
            ("arithmetic_intensity", Json::from(s.arithmetic_intensity)),
            ("peak_pct", Json::from(s.peak_pct)),
        ])
    }));
    let t = &perf.totals;
    let doc = Json::obj([
        ("bin", Json::from("perf_attrib")),
        ("matrix", Json::from(info.name)),
        ("rows", Json::from(a.nrows)),
        ("nnz", Json::from(a.nnz())),
        ("iterations", Json::from(seq.iterations)),
        ("device_cycles", Json::from(seq.stats.device_cycles())),
        ("attributed_cycles", Json::from(perf.steps_total())),
        ("partition_exact", Json::from(true)),
        ("bit_identical_across_executors", Json::from(true)),
        (
            "speed_of_light",
            Json::obj([
                ("perfect_balance_cycles", Json::from(t.perfect_balance_cycles)),
                ("zero_exchange_cycles", Json::from(t.zero_exchange_cycles)),
                ("ideal_cycles", Json::from(t.ideal_cycles)),
            ]),
        ),
        ("top_steps", steps),
    ]);
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[graphene] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("perf_attrib.json");
    match std::fs::write(&path, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {}", path.display()),
        Err(e) => eprintln!("[graphene] cannot write {}: {e}", path.display()),
    }
}
