//! Fault-class resilience sweep over the paper's solver stacks.
//!
//! For each fault class (`flip`, `xflip`, `xdrop`, `stall`) a set of
//! seeded single-fault plans — confined to the measured superstep span of
//! the healthy program — is injected into (a) the preconditioned
//! BiCGStab stack and (b) the flagship MPIR(double-word){PBiCGStab{ILU}}
//! stack. Every outcome is tallied against the resilience trichotomy
//! (converged | recovered | structured error) and every *accepted*
//! solution's residual is recomputed independently in f64: the
//! silent-data-corruption escape count must be zero, and the binary exits
//! nonzero otherwise.
//!
//! Also asserts the zero-overhead-when-off contract (a solve with the
//! inert default `RecoveryPolicy` is bit-identical to a plain solve) and
//! reports the mean device-cycle overhead of recovery per class.
//!
//! Output: a per-class table on stdout and `results/resilience.json`
//! (override with `--out <path>`). `--scale <f>` grows the grid,
//! `--seeds <n>` sets the number of seeded plans per (class, stack).

use std::rc::Rc;

use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve, SolveOptions, SolveResult, TOLERANCE_SAFETY};
use graphene_core::{RecoveryPolicy, SolveStatus};
use ipu_sim::fault::FaultPlan;
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::formats::CsrMatrix;
use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

const CLASSES: [&str; 4] = ["flip", "xflip", "xdrop", "stall"];

/// Independent ground truth: ‖b − A·x‖/‖b‖ in f64.
fn true_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.spmv_alloc(x);
    let r2: f64 = b.iter().zip(&ax).map(|(b, a)| (b - a) * (b - a)).sum();
    let b2: f64 = b.iter().map(|v| v * v).sum();
    r2.sqrt() / b2.sqrt().max(f64::MIN_POSITIVE)
}

#[derive(Default, Clone)]
struct ClassTally {
    cases: u32,
    fired: u32,
    converged: u32,
    recovered: u32,
    errored: u32,
    sdc_escapes: u32,
    total_attempts: u32,
    /// Σ resilience.total_device_cycles over all Ok cases.
    total_cycles: u64,
    ok_cases: u32,
}

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.labels_by_phase_sorted(),
    )
}

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 1.0);
    let seeds = args.get("--seeds", 5.0) as u64;
    let out = args.get_str("--out", "results/resilience.json");

    let n = ((16f64 * scale.sqrt()).round() as usize).max(8);
    let a = Rc::new(poisson_2d_5pt(n, n, 1.0));
    let b = rhs_for_ones(&a);
    header(&format!(
        "resilience: seeded fault sweep on poisson {n}x{n} ({} rows, {} nnz), {seeds} seeds/class",
        a.nrows,
        a.nnz()
    ));

    let stacks: Vec<(&str, SolverConfig, f64)> = vec![
        (
            "pbicgstab+ilu0",
            SolverConfig::BiCgStab {
                max_iters: 200,
                rel_tol: 1e-6,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            },
            1e-6,
        ),
        (
            "mpir{pbicgstab+ilu0}",
            SolverConfig::from_json(
                r#"{"type":"mpir","precision":"double_word","max_outer":6,"rel_tol":1e-10,
                    "inner":{"type":"bi_cg_stab","max_iters":40,"rel_tol":0.0,
                             "precond":{"type":"ilu0"}}}"#,
            )
            .expect("valid stack"),
            1e-10,
        ),
    ];

    let opts = SolveOptions {
        model: IpuModel::tiny(4),
        tiles: Some(4),
        record_history: false,
        ..SolveOptions::default()
    };
    // The runner's judge admits true residuals up to tolerance x
    // TOLERANCE_SAFETY (the recursive-vs-true residual safety factor);
    // an accepted solution beyond that is an SDC escape.
    let safety = TOLERANCE_SAFETY;

    let mut stack_docs = Vec::new();
    let mut total_escapes = 0u32;

    for (stack_name, cfg, tol) in &stacks {
        // Healthy baseline: cycles for the overhead ratio, supersteps to
        // confine the seeded coordinates inside the program. A failure
        // here is a broken stack, not a fault-injection outcome — exit
        // nonzero with the structured error instead of panicking.
        let healthy = match solve(a.clone(), &b, cfg, &opts) {
            Ok(res) => res,
            Err(e) => {
                eprintln!("[{stack_name}] healthy baseline failed: {e}");
                std::process::exit(1);
            }
        };
        let smax = healthy.stats.supersteps().max(2);
        let healthy_cycles = healthy.stats.device_cycles();

        // Zero-overhead-when-off: the inert default policy must not
        // perturb the program at all.
        let off = solve(
            a.clone(),
            &b,
            cfg,
            &SolveOptions { recovery: Some(RecoveryPolicy::default()), ..opts.clone() },
        )
        .expect("policy-off solve");
        assert_eq!(
            fingerprint(&healthy),
            fingerprint(&off),
            "[{stack_name}] inert recovery policy perturbed the program"
        );
        assert!(off.report.resilience.is_none());

        println!("\n## {stack_name} (healthy: {healthy_cycles} cycles, {smax} supersteps)");
        println!("class\tcases\tfired\tconv\trecov\terror\tsdc\tavg_attempts\tcycle_overhead");

        let mut class_docs = Vec::new();
        for class in CLASSES {
            let mut t = ClassTally::default();
            for seed in 1..=seeds {
                let spec = format!("seed={seed};n=1;classes={class};smax={smax};wmax=16");
                let plan = FaultPlan::parse(&spec).expect("spec parses");
                let fopts = SolveOptions { faults: Some(plan), ..opts.clone() };
                t.cases += 1;
                match solve(a.clone(), &b, cfg, &fopts) {
                    Ok(res) => {
                        let resil =
                            res.report.resilience.clone().expect("faulted solve stamps resilience");
                        if !resil.faults_injected.is_empty() {
                            t.fired += 1;
                        }
                        t.total_attempts += resil.attempts;
                        t.total_cycles += resil.total_device_cycles;
                        t.ok_cases += 1;
                        let rel = true_residual(&a, &res.x, &b);
                        if rel > tol * safety {
                            eprintln!(
                                "[{stack_name}/{class}] seed {seed}: SDC escape! \
                                 accepted residual {rel:.3e} (bound {:.3e})",
                                tol * safety
                            );
                            t.sdc_escapes += 1;
                        }
                        match res.status {
                            SolveStatus::Converged => t.converged += 1,
                            SolveStatus::Recovered => t.recovered += 1,
                            SolveStatus::MaxIters => {
                                eprintln!(
                                    "[{stack_name}/{class}] seed {seed}: accepted MaxIters \
                                     under a resilient policy"
                                );
                                t.sdc_escapes += 1;
                            }
                        }
                    }
                    Err(e) => {
                        t.errored += 1;
                        t.total_attempts += 1;
                        println!("  ({class} seed {seed}: {e})");
                    }
                }
            }
            let avg_attempts =
                if t.ok_cases > 0 { t.total_attempts as f64 / t.cases as f64 } else { 1.0 };
            let overhead = if t.ok_cases > 0 {
                t.total_cycles as f64 / (t.ok_cases as u64 * healthy_cycles) as f64
            } else {
                f64::NAN
            };
            println!(
                "{class}\t{}\t{}\t{}\t{}\t{}\t{}\t{avg_attempts:.2}\t{overhead:.3}x",
                t.cases, t.fired, t.converged, t.recovered, t.errored, t.sdc_escapes
            );
            total_escapes += t.sdc_escapes;
            class_docs.push((
                class.to_string(),
                Json::obj(vec![
                    ("cases", Json::from(t.cases as f64)),
                    ("fired", Json::from(t.fired as f64)),
                    ("converged", Json::from(t.converged as f64)),
                    ("recovered", Json::from(t.recovered as f64)),
                    ("errored", Json::from(t.errored as f64)),
                    ("sdc_escapes", Json::from(t.sdc_escapes as f64)),
                    ("avg_attempts", Json::from(avg_attempts)),
                    ("cycle_overhead", Json::from(overhead)),
                ]),
            ));
        }
        stack_docs.push((
            stack_name.to_string(),
            Json::obj(vec![
                ("healthy_cycles", Json::from(healthy_cycles as f64)),
                ("supersteps", Json::from(smax as f64)),
                ("zero_overhead_when_off", Json::from(true)),
                ("classes", Json::Obj(class_docs)),
            ]),
        ));
    }

    let doc = Json::obj(vec![
        ("bin", Json::from("resilience")),
        ("grid", Json::from(n as f64)),
        ("rows", Json::from(a.nrows as f64)),
        ("nnz", Json::from(a.nnz() as f64)),
        ("seeds_per_class", Json::from(seeds as f64)),
        ("sdc_escapes_total", Json::from(total_escapes as f64)),
        ("stacks", Json::Obj(stack_docs)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {out}"),
        Err(e) => eprintln!("[graphene] cannot write {out}: {e}"),
    }

    assert_eq!(total_escapes, 0, "silent data corruption escaped the detectors");
    println!("\nno silently-wrong answer escaped ({} faulted runs)", {
        stacks.len() as u64 * CLASSES.len() as u64 * seeds
    });
}
