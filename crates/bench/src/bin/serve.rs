//! Serving-layer benchmark and chaos gate.
//!
//! Two modes over the `graphene-serve` multi-tenant engine:
//!
//! * **Throughput (default)** — an open-loop mixed workload (several
//!   tenants, several matrix structures and solver stacks) submitted
//!   up-front and drained; reports sustained solves/sec and exact
//!   p50/p99 admission→done latency to `results/serve.json`.
//! * **Chaos (`--chaos`)** — the robustness gate: a seeded fault storm
//!   (on fault-capable backends), panic-chaos jobs, poison jobs and
//!   zero-deadline jobs, run **twice with the same seed**. Hard-fails
//!   (exit 1, diagnostic on stderr) on any SDC escape, any lost job
//!   (accounting violation), any quarantine-policy violation, or any
//!   divergence between the two same-seed runs.
//!
//! The backend comes from `GRAPHENE_BACKEND` (default `ipu-sim`); the
//! chaos storm is only armed when the backend supports fault injection,
//! so the same binary gates both the simulator and the CPU baseline.
//!
//! Flags: `--jobs <n>` (default 24), `--workers <n>` (default 2),
//! `--seed <n>` (default 42), `--chaos`, `--out <path>`.

use std::sync::Arc;
use std::time::Duration;

use backend::BackendSpec;
use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::resilience::Backoff;
use json::Json;
use serve::{Chaos, JobSpec, ServeEngine, ServeOptions, ServeStats, StormSpec};
use sparse::formats::CsrMatrix;
use sparse::gen::{poisson_2d_5pt, tridiagonal};

/// Structured failure: diagnostic on stderr, nonzero exit — the typed
/// path the CI chaos gate watches (never a panic).
fn fail(msg: &str) -> ! {
    eprintln!("[serve] FAIL: {msg}");
    std::process::exit(1);
}

const TENANTS: [&str; 3] = ["alice", "bob", "carol"];

/// Solver mix. The CPU baseline implements cg/bi_cg_stab (± ilu0) only,
/// so the third stack differs by backend family; both mixes exercise a
/// preconditioned and two plain Krylov stacks.
fn solver_for(i: usize, ipu: bool) -> SolverConfig {
    match i % 3 {
        0 => SolverConfig::Cg { max_iters: 300, rel_tol: 1e-6, precond: None },
        1 => SolverConfig::BiCgStab { max_iters: 300, rel_tol: 1e-6, precond: None },
        _ if ipu => SolverConfig::Cg {
            max_iters: 300,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Jacobi { sweeps: 2, omega: 2.0 / 3.0 })),
        },
        _ => SolverConfig::BiCgStab {
            max_iters: 300,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        },
    }
}

/// The deterministic job mix: job `i` gets tenant `i % 3`, one of two
/// shared matrices (coalescing food), and one of three solver stacks.
fn workload(jobs: usize, scale: f64, ipu: bool) -> Vec<JobSpec> {
    let n1 = ((24.0 * scale.sqrt()).round() as usize).max(8);
    let g = ((8.0 * scale.sqrt()).round() as usize).max(4);
    let mats: [Arc<CsrMatrix>; 2] =
        [Arc::new(tridiagonal(n1)), Arc::new(poisson_2d_5pt(g, g, 1.0))];
    (0..jobs)
        .map(|i| {
            let a = Arc::clone(&mats[i % 2]);
            let n = a.nrows;
            JobSpec::new(TENANTS[i % TENANTS.len()], a, vec![1.0; n], solver_for(i, ipu))
        })
        .collect()
}

fn base_options(args: &Args, spec: BackendSpec) -> ServeOptions {
    ServeOptions {
        workers: args.get("--workers", 2.0) as usize,
        queue_capacity: 4096, // open-loop: admission must not shed deterministically-compared jobs
        max_attempts: 3,
        seed: args.get("--seed", 42.0) as u64,
        backend: spec,
        ..ServeOptions::default()
    }
}

/// Run one engine over a prepared workload; returns per-job (class,
/// digest) pairs in submission order plus the final stats.
fn run(opts: ServeOptions, specs: &[JobSpec]) -> (Vec<(String, u64)>, ServeStats) {
    let engine = match ServeEngine::start(opts) {
        Ok(e) => e,
        Err(e) => fail(&format!("engine start: {e}")),
    };
    let mut ids = Vec::with_capacity(specs.len());
    for spec in specs {
        match engine.submit(spec.clone()) {
            Ok(id) => ids.push(id),
            Err(e) => fail(&format!("submission rejected unexpectedly: {e}")),
        }
    }
    if let Err(e) = engine.drain(Duration::from_secs(600)) {
        fail(&format!("drain did not complete: {e} (possible deadlock or lost job)"));
    }
    let outcomes: Vec<(String, u64)> = ids
        .iter()
        .map(|id| {
            let o = engine
                .outcome(*id)
                .unwrap_or_else(|| fail(&format!("job {id} has no terminal outcome: lost")));
            (o.class().to_string(), o.digest())
        })
        .collect();
    (outcomes, engine.finish())
}

fn check_accounting(stats: &ServeStats) {
    if !stats.accounting_ok() {
        fail(&format!(
            "accounting violated: submitted={} accepted={} rejected={} \
             done={} quarantined={} deadline_exceeded={}",
            stats.submitted,
            stats.accepted,
            stats.rejected,
            stats.done,
            stats.quarantined,
            stats.deadline_exceeded
        ));
    }
    if stats.sdc_escapes != 0 {
        fail(&format!("{} silent-data-corruption escapes", stats.sdc_escapes));
    }
}

fn main() {
    let args = Args::parse();
    let jobs = args.get("--jobs", 24.0) as usize;
    let scale = args.get("--scale", 1.0);
    let chaos = args.has("--chaos");
    let out = args.get_str("--out", "results/serve.json");

    let spec = match BackendSpec::from_env() {
        Ok(s) => s.unwrap_or(BackendSpec::IpuSim(backend::IpuVariant::Auto)),
        Err(e) => fail(&e),
    };
    let fault_capable = spec.family() == "ipu-sim";
    header(&format!(
        "serve: {} mode, backend {}, {jobs} jobs, {} workers",
        if chaos { "chaos" } else { "throughput" },
        spec.name(),
        args.get("--workers", 2.0) as usize
    ));

    let mut specs = workload(jobs, scale, fault_capable);
    let mut opts = base_options(&args, spec);

    if chaos {
        // Arm the storm where the backend can honour it, plus the
        // orthogonal chaos classes: every 5th job panics once (crash
        // containment), every 11th is poison (quarantine), every 7th
        // carries an already-expired deadline (queued expiry). All
        // deterministic functions of the job index.
        if fault_capable {
            opts.storm = Some(StormSpec::storm());
        }
        opts.backoff = Backoff { base_ms: 1, max_ms: 8, jitter: 0.5, ..Backoff::default() };
        for (i, s) in specs.iter_mut().enumerate() {
            if i % 5 == 1 {
                s.chaos = Chaos { panic_attempts: 1 };
            }
            if i % 11 == 3 {
                s.chaos = Chaos { panic_attempts: u32::MAX };
            }
            if i % 7 == 2 {
                s.deadline = Some(Duration::ZERO);
            }
        }
    }

    let (outcomes, stats) = run(opts.clone(), &specs);
    check_accounting(&stats);

    let mut doc = vec![
        ("bin", Json::from("serve")),
        ("mode", Json::from(if chaos { "chaos" } else { "throughput" })),
        ("backend", Json::from(spec.name())),
        ("jobs", Json::from(jobs as u64)),
        ("workers", Json::from(opts.workers as u64)),
        ("seed", Json::from(opts.seed)),
        ("solves_per_sec", Json::from(stats.solves_per_sec)),
        ("p50_ms", Json::from(stats.p50_ms)),
        ("p99_ms", Json::from(stats.p99_ms)),
        ("stats", stats.to_value()),
    ];

    if chaos {
        // Quarantine-policy check: poison jobs must be quarantined with
        // exactly max_attempts attempts; panic-once and healthy jobs
        // must not be.
        for (i, (class, _)) in outcomes.iter().enumerate() {
            let poison = i % 11 == 3;
            let expired = i % 7 == 2;
            if poison && !expired && class != "quarantined" {
                fail(&format!("poison job {i} ended as `{class}`, not quarantined"));
            }
            if !poison && class == "quarantined" && !fault_capable {
                fail(&format!("non-poison job {i} was quarantined without a storm"));
            }
            if expired && class != "deadline" {
                fail(&format!("expired job {i} ended as `{class}`, not deadline"));
            }
        }
        // Determinism: an identical engine over an identical workload
        // must reproduce every outcome bit-for-bit.
        let (outcomes2, stats2) = run(opts.clone(), &specs);
        check_accounting(&stats2);
        if outcomes != outcomes2 {
            let diff = outcomes
                .iter()
                .zip(&outcomes2)
                .position(|(a, b)| a != b)
                .map(|i| {
                    format!("first divergence at job {i}: {:?} vs {:?}", outcomes[i], outcomes2[i])
                })
                .unwrap_or_else(|| "length mismatch".into());
            fail(&format!("same-seed chaos runs diverged: {diff}"));
        }
        println!(
            "chaos gate: {} done, {} quarantined, {} deadline-expired, {} worker losses, \
             {} retries, 0 SDC escapes, 0 lost jobs, runs bit-identical",
            stats.done,
            stats.quarantined,
            stats.deadline_exceeded,
            stats.worker_losses,
            stats.retries
        );
        doc.push(("runs_bit_identical", Json::from(true)));
        doc.push(("storm_armed", Json::from(fault_capable)));
    } else {
        println!(
            "throughput: {:.1} solves/sec over {} jobs ({} workers), p50 {:.2} ms, p99 {:.2} ms",
            stats.solves_per_sec, stats.done, opts.workers, stats.p50_ms, stats.p99_ms
        );
    }

    let doc = Json::obj(doc);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {out}"),
        Err(e) => fail(&format!("cannot write {out}: {e}")),
    }
}
