//! **summarize** — aggregate every `results/*.json` experiment artifact
//! into one machine-readable `results/summary.json` plus a human-readable
//! markdown table `results/summary.md`.
//!
//! Two artifact shapes are understood:
//!
//! * Reporter documents — `{"bin": ..., "runs": [...]}`, where each run is
//!   either a full `SolveReport` (summarised as a solve row: iterations,
//!   residual, device cycles, schema version) or an ad-hoc labelled
//!   object (its scalar fields are carried through);
//! * bespoke top-level objects (`par_speedup.json`, `resilience.json`,
//!   `perf_attrib.json`...) — their top-level scalars are carried through.
//!
//! Unparseable or unknown files are listed under `"skipped"` rather than
//! failing the aggregation: a half-finished experiment sweep still
//! summarises.

use graphene_bench::{header, Args};
use json::Json;
use profile::SolveReport;

/// Scalar top-level fields of an object, in document order.
fn scalars(v: &Json) -> Vec<(String, Json)> {
    match v {
        Json::Obj(pairs) => pairs
            .iter()
            .filter(|(_, v)| matches!(v, Json::Num(_) | Json::Str(_) | Json::Bool(_)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        _ => Vec::new(),
    }
}

fn fmt_cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn main() {
    let args = Args::parse();
    let dir = std::path::PathBuf::from(args.get_str("--dir", "results"));
    header(&format!("summarize: aggregating {}/*.json", dir.display()));

    let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().and_then(|e| e.to_str()) == Some("json")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .map_or(false, |n| n != "summary.json" && !n.starts_with("summary"))
            })
            .collect(),
        Err(e) => {
            eprintln!("[graphene] cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    files.sort();

    let mut solves: Vec<Json> = Vec::new();
    let mut bins: Vec<(String, Json)> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for path in &files {
        let fname = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                skipped.push(format!("{fname}: {e}"));
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                skipped.push(format!("{fname}: {e}"));
                continue;
            }
        };
        let bin = doc
            .get("bin")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| fname.trim_end_matches(".json").to_string());
        match doc.get("runs").and_then(Json::as_arr) {
            Some(runs) => {
                let mut adhoc = 0usize;
                for run in runs {
                    if let Ok(r) = SolveReport::from_value(run) {
                        solves.push(Json::obj([
                            ("file", Json::from(fname.as_str())),
                            ("name", Json::from(r.name.as_str())),
                            ("schema", Json::from(r.schema)),
                            ("n", Json::from(r.n)),
                            ("nnz", Json::from(r.nnz)),
                            ("tiles", Json::from(r.tiles)),
                            ("iterations", Json::from(r.iterations)),
                            ("final_residual", Json::from(r.final_residual)),
                            ("device_cycles", Json::from(r.cycles.device)),
                            ("seconds", Json::from(r.seconds)),
                            ("executor", Json::from(r.executor.as_str())),
                            ("has_perf", Json::from(r.perf.is_some())),
                        ]));
                    } else {
                        adhoc += 1;
                    }
                }
                let mut facts = vec![("solve_runs".to_string(), Json::from(runs.len() - adhoc))];
                if adhoc > 0 {
                    facts.push(("adhoc_runs".to_string(), Json::from(adhoc)));
                }
                bins.push((bin, Json::Obj(facts)));
            }
            None => bins.push((bin, Json::Obj(scalars(&doc)))),
        }
    }

    // -- summary.json --------------------------------------------------
    let summary = Json::obj([
        ("bin", Json::from("summarize")),
        (
            "files",
            Json::arr(
                files
                    .iter()
                    .map(|p| Json::from(p.file_name().and_then(|n| n.to_str()).unwrap_or("?"))),
            ),
        ),
        ("solves", Json::Arr(solves.clone())),
        ("bins", Json::Obj(bins.clone())),
        ("skipped", Json::arr(skipped.iter().map(|s| Json::from(s.as_str())))),
    ]);
    let json_path = dir.join("summary.json");
    match std::fs::write(&json_path, summary.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {}", json_path.display()),
        Err(e) => eprintln!("[graphene] cannot write {}: {e}", json_path.display()),
    }

    // -- summary.md ----------------------------------------------------
    let mut md = String::from("# Experiment summary\n\n## Solves\n\n");
    md.push_str("| report | n | nnz | tiles | iters | residual | device cycles | device s |\n");
    md.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for s in &solves {
        let g = |k: &str| s.get(k).map(fmt_cell).unwrap_or_default();
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            g("name"),
            g("n"),
            g("nnz"),
            g("tiles"),
            g("iterations"),
            g("final_residual"),
            g("device_cycles"),
            g("seconds"),
        ));
    }
    md.push_str("\n## Per-binary facts\n\n");
    for (bin, facts) in &bins {
        md.push_str(&format!("### {bin}\n\n"));
        let pairs = scalars(facts);
        if pairs.is_empty() {
            md.push_str("(no scalar facts)\n\n");
            continue;
        }
        md.push_str("| key | value |\n|---|---|\n");
        for (k, v) in pairs {
            md.push_str(&format!("| {k} | {} |\n", fmt_cell(&v)));
        }
        md.push('\n');
    }
    if !skipped.is_empty() {
        md.push_str("## Skipped\n\n");
        for s in &skipped {
            md.push_str(&format!("- {s}\n"));
        }
    }
    let md_path = dir.join("summary.md");
    match std::fs::write(&md_path, &md) {
        Ok(()) => eprintln!("[graphene] wrote {}", md_path.display()),
        Err(e) => eprintln!("[graphene] cannot write {}: {e}", md_path.display()),
    }
    println!(
        "summarized {} files: {} solve rows, {} bins, {} skipped",
        files.len(),
        solves.len(),
        bins.len(),
        skipped.len()
    );
}
