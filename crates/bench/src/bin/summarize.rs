//! **summarize** — aggregate every `results/*.json` experiment artifact
//! into one machine-readable `results/summary.json` plus a human-readable
//! markdown table `results/summary.md`.
//!
//! Two artifact shapes are understood:
//!
//! * Reporter documents — `{"bin": ..., "runs": [...]}`, where each run is
//!   either a full `SolveReport` (summarised as a solve row: iterations,
//!   residual, device cycles, schema version; any schema back to v1) or an
//!   ad-hoc labelled object (its scalar fields are carried through);
//! * bespoke top-level objects (`par_speedup.json`, `resilience.json`,
//!   `perf_attrib.json`...) — their top-level scalars are carried through.
//!
//! A missing results directory, unreadable files, truncated JSON and
//! unknown shapes are all listed under `"skipped"` rather than failing
//! the aggregation: a half-finished experiment sweep still summarises.
//! The logic lives in `graphene_bench::summary` (tested there).

use graphene_bench::summary::summarize_dir;
use graphene_bench::{header, Args};

fn main() {
    let args = Args::parse();
    let dir = std::path::PathBuf::from(args.get_str("--dir", "results"));
    header(&format!("summarize: aggregating {}/*.json", dir.display()));

    let summary = summarize_dir(&dir);
    for s in &summary.skipped {
        eprintln!("[graphene] skipped {s}");
    }

    if summary.files.is_empty() && !summary.skipped.is_empty() {
        // Nothing aggregatable (most likely the directory is missing):
        // warn, still write nothing, but exit cleanly.
        eprintln!("[graphene] nothing to summarize under {}", dir.display());
        println!("summarized 0 files: 0 solve rows, 0 bins, {} skipped", summary.skipped.len());
        return;
    }

    let json_path = dir.join("summary.json");
    match std::fs::write(&json_path, summary.to_json().to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {}", json_path.display()),
        Err(e) => eprintln!("[graphene] cannot write {}: {e}", json_path.display()),
    }
    let md_path = dir.join("summary.md");
    match std::fs::write(&md_path, summary.to_markdown()) {
        Ok(()) => eprintln!("[graphene] wrote {}", md_path.display()),
        Err(e) => eprintln!("[graphene] cannot write {}: {e}", md_path.display()),
    }
    println!(
        "summarized {} files: {} solve rows, {} bins, {} skipped",
        summary.files.len(),
        summary.solves.len(),
        summary.bins.len(),
        summary.skipped.len()
    );
}
