//! **Table I** — cycle counts of the three floating-point families.
//!
//! Prints the cost model's per-operation cycles (which *are* the paper's
//! Table I values for the arithmetic rows) and then verifies them by
//! measuring a microbench codelet of N back-to-back operations through the
//! interpreter, per type.

use dsl::prelude::*;
use graphene_bench::{header, Reporter};
use ipu_sim::cost::{CostModel, Op};
use json::Json;

fn measured_cycles(dtype: DType, op: &str, n: i32) -> f64 {
    // A codelet performing n dependent ops on values of `dtype`, in a
    // length-2 tensor on one tile; cycles divided by n after subtracting
    // the same codelet with 0 ops.
    let run = |ops: i32| -> u64 {
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let x = ctx.vector("x", dtype, 2, 1);
        let mut cb = CodeDsl::new("micro");
        let p = cb.param(dtype, true);
        let acc = cb.var(p.at(Val::i32(0)));
        let o = cb.let_(p.at(Val::i32(1)));
        for _ in 0..ops {
            match op {
                "add" => cb.assign(acc, acc.get() + o.clone()),
                "mul" => cb.assign(acc, acc.get() * o.clone()),
                "div" => cb.assign(acc, acc.get() / o.clone()),
                other => panic!("unknown op {other}"),
            }
        }
        cb.store(p, Val::i32(0), acc.get());
        let codelet = ctx.add_codelet(cb.build());
        let chunks = ctx.chunks_of(x).to_vec();
        ctx.execute(
            "micro",
            vec![Vertex {
                tile: 0,
                codelet,
                operands: vec![TensorSlice { tensor: x.id, start: chunks[0].start, len: 2 }],
                kind: VertexKind::Simple,
            }],
        );
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &[1.25, 1.0000001]);
        e.run();
        e.stats().device_cycles()
    };
    let n0 = run(0);
    let nn = run(n);
    (nn - n0) as f64 / n as f64
}

fn main() {
    header("Table I: floating-point families on the simulated IPU");
    let mut reporter = Reporter::from_env("table1");
    let cm = CostModel::default();
    println!("row\tsingle_precision\tdouble_word\tdouble_precision(emulated)");
    println!("algorithm\tnative\tJoldes et al.\tcompiler-rt (emulated)");
    println!("decimal digits\t7.2\t13.3-14.0\t16.0");
    println!("range\t1e-38..1e38\t1e-38..1e38\t1e-308..1e308");
    for (name, op) in [("addition", Op::Add), ("multiplication", Op::Mul), ("division", Op::Div)] {
        let (f32c, dwc, dpc) = (
            cm.op_cycles(op, DType::F32),
            cm.op_cycles(op, DType::DoubleWord),
            cm.op_cycles(op, DType::F64Emulated),
        );
        println!("{name} (model)\t{f32c}\t{dwc}\t{dpc}");
        let mut run = Json::obj(vec![
            ("kind", Json::from("op_cycles_model")),
            ("f32", Json::from(f32c)),
            ("double_word", Json::from(dwc)),
            ("f64_emulated", Json::from(dpc)),
        ]);
        reporter.add_json(name, &mut run);
    }
    println!("#");
    println!("# measured through the codelet interpreter (100 chained ops):");
    for (name, op) in [("addition", "add"), ("multiplication", "mul"), ("division", "div")] {
        let (f32c, dwc, dpc) = (
            measured_cycles(DType::F32, op, 100),
            measured_cycles(DType::DoubleWord, op, 100),
            measured_cycles(DType::F64Emulated, op, 100),
        );
        println!("{name} (measured)\t{f32c:.0}\t{dwc:.0}\t{dpc:.0}");
        let mut run = Json::obj(vec![
            ("kind", Json::from("op_cycles_measured")),
            ("f32", Json::from(f32c)),
            ("double_word", Json::from(dwc)),
            ("f64_emulated", Json::from(dpc)),
        ]);
        reporter.add_json(&format!("{name}_measured"), &mut run);
    }
    reporter.finish();
}
