//! **Table IV** — relative computation times of the parts of the
//! MPIR+PBiCGStab+ILU(0) solver on G3_circuit, with double-word versus
//! emulated-double extended precision; 10 BiCGStab iterations per IR step.
//!
//! The paper: ILU(0) solve 75%/66%, SpMV 7%/6%, Reduce 12%/11%,
//! elementwise 4%/3%, extended-precision ops 2%/14%.

use std::rc::Rc;

use graphene_bench::{header, Args, Reporter};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.01);
    let a = Rc::new(sparse::gen::suitesparse::g3_circuit_like(scale));
    let b = sparse::gen::random_vector(a.nrows, 4);
    header(&format!(
        "Table IV: time breakdown of MPIR+PBiCGStab(10)+ILU(0) on G3_circuit analogue \
         ({} rows, {} nnz)",
        a.nrows,
        a.nnz()
    ));

    println!("operation\tdouble_word\tdouble_precision");
    let mut reporter = Reporter::from_env("table4");
    let mut columns = Vec::new();
    for precision in [ExtendedPrecision::DoubleWord, ExtendedPrecision::EmulatedF64] {
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: 10,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision,
            max_outer: 8,
            rel_tol: 1e-12,
        };
        let opts = SolveOptions {
            model: IpuModel::m2000(),
            // The paper's G3_circuit run puts ~269 rows on each of the
            // 5,888 tiles; keep the same granularity at reduced scale.
            rows_per_tile: 269,
            record_history: false,
            ..SolveOptions::default()
        };
        let res = solve_or_panic(a.clone(), &b, &cfg, &opts);
        let label = match precision {
            ExtendedPrecision::DoubleWord => "double_word",
            _ => "double_precision",
        };
        reporter.add_solve(label, &res);
        let total = res.stats.device_cycles().max(1) as f64;
        let pct = |labels: &[&str]| {
            100.0 * labels.iter().map(|l| res.stats.label_cycles(l)).sum::<u64>() as f64 / total
        };
        columns.push([
            pct(&["ilu_solve"]),
            pct(&["spmv"]),
            pct(&["reduce"]),
            pct(&["elementwise"]),
            pct(&["extended"]),
            pct(&["ilu_factorize"]),
        ]);
    }
    for (i, row) in [
        "ILU(0) solve",
        "SpMV",
        "Reduce",
        "Elementwise ops",
        "Extended-precision ops",
        "(ILU(0) factorisation, one-time)",
    ]
    .iter()
    .enumerate()
    {
        println!("{row}\t{:.1}%\t{:.1}%", columns[0][i], columns[1][i]);
    }
    reporter.finish();
}
