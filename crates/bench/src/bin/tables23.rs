//! **Tables II and III** — the static inventories of benchmark matrices
//! and architectures, reprinted with the substituted values used by this
//! reproduction alongside the paper's.

use graphene_bench::{header, Args, Reporter};
use ipu_sim::model::IpuModel;
use json::Json;
use sparse::gen::suitesparse::{by_name, PAPER_MATRICES};

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.01);
    let mut reporter = Reporter::from_env("tables23");

    header("Table II: benchmark matrices (paper vs synthetic analogue at --scale)");
    println!("matrix\tpaper_rows\tpaper_nnz\tanalogue_rows\tanalogue_nnz\tnnz_per_row\tsymmetric\tspd_diag");
    for info in PAPER_MATRICES {
        let a = by_name(info.name, scale);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.1}\t{}\t{}",
            info.name,
            info.paper_rows,
            info.paper_nnz,
            a.nrows,
            a.nnz(),
            a.nnz() as f64 / a.nrows as f64,
            a.is_symmetric(1e-10),
            a.has_full_nonzero_diagonal()
        );
        let mut run = Json::obj(vec![
            ("kind", Json::from("matrix_inventory")),
            ("paper_rows", Json::from(info.paper_rows)),
            ("paper_nnz", Json::from(info.paper_nnz)),
            ("analogue_rows", Json::from(a.nrows)),
            ("analogue_nnz", Json::from(a.nnz())),
        ]);
        reporter.add_json(info.name, &mut run);
    }
    reporter.finish();

    println!();
    header("Table III: benchmark architectures");
    let m2000 = IpuModel::m2000();
    println!("architecture\tcores\tmemory\tnotes");
    println!(
        "GraphCore M2000 (4x Mk2, simulated)\t{} tiles x {} workers\t{:.1} GB SRAM\tcycle model @ {:.3} GHz, Table I arithmetic costs",
        m2000.num_tiles(),
        m2000.workers_per_tile,
        m2000.total_memory_bytes() as f64 / 1e9,
        m2000.clock_hz / 1e9
    );
    println!("Intel Xeon 8470Q (paper)\t52 cores\t208 GB DDR5\tsubstituted by native-Rust f64 kernels on this host");
    let nproc = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("This host (CPU baseline)\t{nproc} hw threads\t-\trayon-parallel f64 CSR kernels");
    println!("NVIDIA H100 SXM (paper)\t14592 CUDA cores\t80 GB HBM3\tsubstituted by roofline model: 3.35 TB/s, 34 FP64 TFLOP/s, 5 us kernel latency");
}
