//! **tune_cache** — gate for the cost-model auto-tuner and its persistent
//! plan cache (`GRAPHENE_TUNE`, see DESIGN.md §15).
//!
//! Runs the fig8-class solve (IR-PBiCGStab+ILU(0) with double-word MPIR,
//! the budget_check workload) with tuning enabled against a dedicated
//! plan-cache directory, and gates on the tuner's whole contract:
//!
//! 1. the tuned plan's modelled probe cycles are no worse than the
//!    default heuristic's (the default candidate is always in the search
//!    space, so the argmin can only tie or win);
//! 2. the second solve is a **cache hit**: zero candidates scored, and
//!    the solve it produces is bit-identical to the cold-tuned one —
//!    loading a plan must be indistinguishable from searching for it;
//! 3. the tuned configuration keeps the executor-equivalence contract:
//!    sequential, tile-parallel, native and native-fusion-off runs agree
//!    on every device observable.
//!
//! `--expect-hit` additionally requires the *first* solve to already hit
//! the cache (the CI second invocation); `--cache <dir>` overrides the
//! cache directory (default `results/tune-cache`, or `GRAPHENE_TUNE_CACHE`
//! when set). Output: a table on stdout and `results/tune.json`
//! (override with `--out <path>`).

use std::rc::Rc;

use graph::ExecutorKind;
use graphene_bench::{header, Args};
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use graphene_core::solvers::ExtendedPrecision;
use ipu_sim::model::IpuModel;
use json::Json;
use profile::PassStat;

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.supersteps(),
        r.stats.sync_count(),
        r.stats.labels_by_phase_sorted(),
    )
}

fn tune_pass(r: &SolveResult) -> PassStat {
    r.report
        .compile
        .as_ref()
        .and_then(|c| c.pass("graphene-tune"))
        .expect("tuned solve stamps the graphene-tune pass into its compile report")
        .clone()
}

fn main() {
    let args = Args::parse();
    let scale = args.get("--scale", 0.002);
    let expect_hit = args.has("--expect-hit");
    let out = args.get_str("--out", "results/tune.json");
    let cache_default =
        std::env::var("GRAPHENE_TUNE_CACHE").unwrap_or_else(|_| "results/tune-cache".to_string());
    let cache = std::path::PathBuf::from(args.get_str("--cache", &cache_default));

    // The budget_check fig8 workload: MPIR(dw) { PBiCGStab(100) { ILU(0) } }.
    let a = Rc::new(sparse::gen::suitesparse::by_name("G3_circuit", scale));
    let b = sparse::gen::random_vector(a.nrows, 8);
    let cfg = SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision: ExtendedPrecision::DoubleWord,
        max_outer: 60,
        rel_tol: 1e-9,
    };
    header(&format!(
        "tune_cache: fig8-class MPIR solve on G3_circuit@{scale} ({} rows, {} nnz), cache {}",
        a.nrows,
        a.nnz(),
        cache.display()
    ));

    let tuned_opts = |executor| SolveOptions {
        model: IpuModel::m2000(),
        rows_per_tile: 32,
        record_history: true,
        executor: Some(executor),
        tune: Some(true),
        tune_cache: Some(cache.clone()),
        ..SolveOptions::default()
    };

    // -- 1st solve: cold tune (or a hit, when the cache is pre-warmed). --
    let r1 = solve_or_panic(a.clone(), &b, &cfg, &tuned_opts(ExecutorKind::Sequential));
    let p1 = tune_pass(&r1);
    println!(
        "run1: cache_hit={} candidates={} modelled={} default={} rpt={} tiles={} search_us={}",
        p1.counter("cache_hit"),
        p1.counter("candidates_scored"),
        p1.counter("modelled_cycles"),
        p1.counter("default_cycles"),
        p1.counter("rows_per_tile"),
        p1.counter("tiles"),
        p1.counter("search_micros"),
    );
    if expect_hit && p1.counter("cache_hit") != 1 {
        eprintln!("--expect-hit: first solve missed the cache (was it cleared?)");
        std::process::exit(1);
    }
    if !expect_hit && p1.counter("cache_hit") != 0 {
        eprintln!("first solve unexpectedly hit the cache — stale cache dir? pass --expect-hit");
        std::process::exit(1);
    }

    // Gate 1: the search can only tie or beat the default heuristic.
    if p1.counter("modelled_cycles") > p1.counter("default_cycles") {
        eprintln!(
            "tuned plan ({} modelled cycles) is worse than the default heuristic ({})",
            p1.counter("modelled_cycles"),
            p1.counter("default_cycles")
        );
        std::process::exit(1);
    }

    // -- 2nd solve: must hit, score nothing, and reproduce run1 exactly. --
    let r2 = solve_or_panic(a.clone(), &b, &cfg, &tuned_opts(ExecutorKind::Sequential));
    let p2 = tune_pass(&r2);
    println!(
        "run2: cache_hit={} candidates={} search_us={}",
        p2.counter("cache_hit"),
        p2.counter("candidates_scored"),
        p2.counter("search_micros"),
    );
    if p2.counter("cache_hit") != 1 || p2.counter("candidates_scored") != 0 {
        eprintln!("second solve did not hit the plan cache");
        std::process::exit(1);
    }
    if fingerprint(&r1) != fingerprint(&r2) {
        eprintln!("cache hit is not bit-identical to the cold tune — determinism violation");
        std::process::exit(1);
    }

    // -- Gate 3: executor equivalence of the tuned (cache-hit) config. --
    for (name, executor, fusion) in [
        ("parallel", ExecutorKind::Parallel, None),
        ("native", ExecutorKind::Native, None),
        ("native-nofusion", ExecutorKind::Native, Some(false)),
    ] {
        let r = solve_or_panic(
            a.clone(),
            &b,
            &cfg,
            &SolveOptions { native_fusion: fusion, ..tuned_opts(executor) },
        );
        if tune_pass(&r).counter("cache_hit") != 1 {
            eprintln!("{name}: tuned leg missed the cache");
            std::process::exit(1);
        }
        if fingerprint(&r1) != fingerprint(&r) {
            eprintln!("{name}: tuned solve differs from the sequential reference");
            std::process::exit(1);
        }
    }
    println!("executors: sequential/parallel/native/native-nofusion bit-identical under tuning");

    // -- Informational: the untuned solve on the same stack. ------------
    let untuned = solve_or_panic(
        a.clone(),
        &b,
        &cfg,
        &SolveOptions {
            model: IpuModel::m2000(),
            rows_per_tile: 32,
            record_history: true,
            executor: Some(ExecutorKind::Sequential),
            tune: Some(false),
            ..SolveOptions::default()
        },
    );
    println!("metric\tuntuned\ttuned");
    println!("device_cycles\t{}\t{}", untuned.stats.device_cycles(), r1.stats.device_cycles());
    println!("iterations\t{}\t{}", untuned.iterations, r1.iterations);
    println!(
        "modelled probe cycles: tuned {} vs default {} ({}x)",
        p1.counter("modelled_cycles"),
        p1.counter("default_cycles"),
        p1.counter("default_cycles") as f64 / p1.counter("modelled_cycles").max(1) as f64
    );

    let strategy = p1
        .counters
        .iter()
        .find(|(k, _)| k.starts_with("strategy."))
        .map(|(k, _)| k["strategy.".len()..].to_string())
        .unwrap_or_default();
    let doc = Json::obj(vec![
        ("bin", Json::from("tune_cache")),
        ("matrix", Json::from("G3_circuit")),
        ("scale", Json::from(scale)),
        ("rows", Json::from(a.nrows as f64)),
        ("nnz", Json::from(a.nnz() as f64)),
        ("expect_hit", Json::from(expect_hit)),
        ("run1_cache_hit", Json::from(p1.counter("cache_hit"))),
        ("run2_cache_hit", Json::from(p2.counter("cache_hit"))),
        ("candidates_scored", Json::from(p1.counter("candidates_scored"))),
        ("modelled_cycles", Json::from(p1.counter("modelled_cycles"))),
        ("default_cycles", Json::from(p1.counter("default_cycles"))),
        ("strategy", Json::from(strategy.as_str())),
        ("rows_per_tile", Json::from(p1.counter("rows_per_tile"))),
        ("tiles", Json::from(p1.counter("tiles"))),
        ("sell_c", Json::from(p1.counter("sell_c"))),
        ("search_micros_cold", Json::from(p1.counter("search_micros"))),
        ("search_micros_hit", Json::from(p2.counter("search_micros"))),
        ("untuned_device_cycles", Json::from(untuned.stats.device_cycles())),
        ("tuned_device_cycles", Json::from(r1.stats.device_cycles())),
        ("untuned_iterations", Json::from(untuned.iterations)),
        ("tuned_iterations", Json::from(r1.iterations)),
        ("bit_identical", Json::from(true)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, doc.to_pretty()) {
        Ok(()) => eprintln!("[graphene] wrote {out}"),
        Err(e) => eprintln!("[graphene] cannot write {out}: {e}"),
    }
}
