//! Shared infrastructure for the evaluation binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md §3 for the index). All accept `--scale <f>` to grow problem
//! sizes toward paper scale and print tab-separated series suitable for
//! plotting.

use std::rc::Rc;

use dsl::prelude::*;
use graphene_core::dist::DistSystem;
use ipu_sim::clock::Phase;
use sparse::formats::CsrMatrix;
use sparse::gen::Grid3;
use sparse::partition::Partition;

/// Minimal CLI parsing: `--scale 0.05 --ipus 4 ...` (flags of f64).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Args {
        Args { raw: std::env::args().collect() }
    }

    pub fn get(&self, flag: &str, default: f64) -> f64 {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }
}

/// Outcome of one simulated SpMV measurement.
#[derive(Clone, Copy, Debug)]
pub struct SpmvMeasurement {
    pub total_cycles: u64,
    pub compute_cycles: u64,
    pub exchange_cycles: u64,
    pub sync_cycles: u64,
    pub seconds: f64,
    pub halo_elements: usize,
    pub block_copies: usize,
}

/// Run one SpMV on the simulated machine and report its cycle profile.
///
/// `partition` defaults to a geometric box decomposition when `grid` is
/// given (the paper's mesh subdivision), else nnz-balanced row blocks.
pub fn measure_spmv(
    a: Rc<CsrMatrix>,
    model: &IpuModel,
    grid: Option<Grid3>,
    with_exchange: bool,
) -> SpmvMeasurement {
    let tiles = model.num_tiles().min(a.nrows);
    let part = match grid {
        Some(g) if g.num_cells() == a.nrows => Partition::grid_3d_auto(g, tiles),
        _ => Partition::balanced_by_nnz(&a, tiles),
    };
    measure_spmv_with_partition(a, model, part, with_exchange)
}

/// [`measure_spmv`] with an explicit partition.
pub fn measure_spmv_with_partition(
    a: Rc<CsrMatrix>,
    model: &IpuModel,
    part: Partition,
    with_exchange: bool,
) -> SpmvMeasurement {
    let mut ctx = DslCtx::new(model.clone());
    let sys = DistSystem::build(&mut ctx, a, part);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);
    let y = sys.new_vector(&mut ctx, "y", DType::F32);
    if with_exchange {
        sys.spmv(&mut ctx, y, x);
    } else {
        sys.spmv_no_exchange(&mut ctx, y, x);
    }
    let halo_elements = sys.halo_volume();
    let block_copies = sys.halo.num_block_copies();
    let mut engine = ctx.build_engine().expect("spmv program compiles");
    sys.upload(&mut engine);
    engine.run();
    let stats = engine.stats();
    SpmvMeasurement {
        total_cycles: stats.device_cycles(),
        compute_cycles: stats.phase_cycles(Phase::Compute),
        exchange_cycles: stats.phase_cycles(Phase::Exchange),
        sync_cycles: stats.phase_cycles(Phase::Sync),
        seconds: engine.elapsed_seconds(),
        halo_elements,
        block_copies,
    }
}

/// Pick a cubic grid whose cell count is close to `target_rows`.
pub fn cubic_grid(target_rows: usize) -> Grid3 {
    let side = (target_rows as f64).cbrt().round().max(4.0) as usize;
    Grid3 { nx: side, ny: side, nz: side }
}

/// Pick a grid close to `target_rows` whose sides divide evenly into the
/// box decompositions of 1–16 Mk2 IPUs (tile counts 1472·n = 23·2^k boxes,
/// factored as 23·2^i × 2^j × 2^l). The paper does the same: grid sizes
/// are adjusted "to ensure each tile processed the same number of rows",
/// making load imbalance zero and leaving the halo exchange as the only
/// deviation from ideal scaling.
pub fn ipu_friendly_grid(target_rows: usize) -> Grid3 {
    let s = (target_rows as f64).cbrt();
    let nx = 23 * ((s / 23.0).round().max(1.0) as usize);
    let ny = 32 * ((s / 32.0).round().max(1.0) as usize);
    let nz = ny;
    Grid3 { nx, ny, nz }
}

/// Pretty separator line for the binaries.
pub fn header(title: &str) {
    println!("# {title}");
}

/// Power draws used for the paper's energy comparison (Table III):
/// measured IPU power (420 W for four Mk2s on an M2000), CPU TDP (350 W),
/// GPU TDP (700 W).
pub mod power {
    pub const IPU_M2000_W: f64 = 420.0;
    pub const CPU_XEON_W: f64 = 350.0;
    pub const GPU_H100_W: f64 = 700.0;

    /// Energy in millijoules for a duration at a power draw.
    pub fn mj(seconds: f64, watts: f64) -> f64 {
        seconds * watts * 1e3
    }
}

/// The shared driver of Figures 9 and 10: convergence of
/// PBiCGStab+ILU(0) on one benchmark matrix under the four refinement
/// configurations the paper compares.
pub fn convergence_figure(fig: &str, matrix: &str, scale: f64, inner_iters: u32) {
    use graphene_core::config::SolverConfig;
    use graphene_core::runner::{solve, SolveOptions};
    use graphene_core::solvers::ExtendedPrecision;

    let a = Rc::new(sparse::gen::suitesparse::by_name(matrix, scale));
    let b = sparse::gen::random_vector(a.nrows, 9);
    header(&format!(
        "{fig}: convergence of PBiCGStab+ILU(0) on {matrix} analogue \
         ({} rows, {} nnz), {inner_iters} iterations per IR step",
        a.nrows,
        a.nnz()
    ));

    let total_iters = 6 * inner_iters;
    let configs: [(&str, SolverConfig); 4] = [
        (
            "no_ir",
            SolverConfig::BiCgStab {
                max_iters: total_iters,
                rel_tol: 1e-20,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            },
        ),
        ("ir", mpir_cfg(ExtendedPrecision::Working, inner_iters)),
        ("mpir_dw", mpir_cfg(ExtendedPrecision::DoubleWord, inner_iters)),
        ("mpir_dp", mpir_cfg(ExtendedPrecision::EmulatedF64, inner_iters)),
    ];

    let opts = SolveOptions {
        model: IpuModel::m2000(),
        tiles: None,
        rows_per_tile: 32,
        record_history: true,
        partition: None,
    };
    for (name, cfg) in configs {
        let res = solve(a.clone(), &b, &cfg, &opts);
        println!("## config {name}: final residual {:.3e}", res.residual);
        println!("config\titer\trel_residual");
        for (it, r) in &res.history {
            println!("{name}\t{it}\t{r:.6e}");
        }
    }
}

fn mpir_cfg(
    precision: graphene_core::solvers::ExtendedPrecision,
    inner_iters: u32,
) -> graphene_core::config::SolverConfig {
    use graphene_core::config::SolverConfig;
    SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: inner_iters,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision,
        max_outer: 6,
        rel_tol: 1e-20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::poisson_3d_7pt;

    #[test]
    fn measure_spmv_is_deterministic() {
        let g = Grid3 { nx: 8, ny: 8, nz: 8 };
        let a = Rc::new(poisson_3d_7pt(8, 8, 8));
        let m1 = measure_spmv(a.clone(), &IpuModel::tiny(8), Some(g), true);
        let m2 = measure_spmv(a, &IpuModel::tiny(8), Some(g), true);
        assert_eq!(m1.total_cycles, m2.total_cycles);
        assert!(m1.exchange_cycles > 0);
        assert!(m1.compute_cycles > 0);
    }

    #[test]
    fn no_exchange_variant_is_cheaper() {
        let g = Grid3 { nx: 8, ny: 8, nz: 8 };
        let a = Rc::new(poisson_3d_7pt(8, 8, 8));
        let with = measure_spmv(a.clone(), &IpuModel::tiny(8), Some(g), true);
        let without = measure_spmv(a, &IpuModel::tiny(8), Some(g), false);
        assert!(without.total_cycles < with.total_cycles);
        assert_eq!(without.exchange_cycles, 0);
    }

    #[test]
    fn cubic_grid_near_target() {
        let g = cubic_grid(1000);
        assert_eq!((g.nx, g.ny, g.nz), (10, 10, 10));
    }
}
