//! Shared infrastructure for the evaluation binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md §3 for the index). All accept `--scale <f>` to grow problem
//! sizes toward paper scale and print tab-separated series suitable for
//! plotting.

pub mod summary;

use std::path::PathBuf;
use std::rc::Rc;

use dsl::prelude::*;
use graphene_core::dist::DistSystem;
use graphene_core::runner::SolveResult;
use ipu_sim::clock::Phase;
use json::Json;
use sparse::formats::CsrMatrix;
use sparse::gen::Grid3;
use sparse::partition::Partition;

/// Minimal CLI parsing: `--scale 0.05 --ipus 4 ...` (flags of f64).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Args {
        Args { raw: std::env::args().collect() }
    }

    pub fn get(&self, flag: &str, default: f64) -> f64 {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    /// String-valued flag (`--out path/to/file.json`).
    pub fn get_str(&self, flag: &str, default: &str) -> String {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Outcome of one simulated SpMV measurement.
#[derive(Clone, Copy, Debug)]
pub struct SpmvMeasurement {
    pub total_cycles: u64,
    pub compute_cycles: u64,
    pub exchange_cycles: u64,
    pub sync_cycles: u64,
    pub seconds: f64,
    pub halo_elements: usize,
    pub block_copies: usize,
}

impl SpmvMeasurement {
    /// Machine-readable form for [`Reporter`] runs.
    pub fn to_value(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::from("spmv")),
            ("total_cycles", Json::from(self.total_cycles)),
            ("compute_cycles", Json::from(self.compute_cycles)),
            ("exchange_cycles", Json::from(self.exchange_cycles)),
            ("sync_cycles", Json::from(self.sync_cycles)),
            ("seconds", Json::from(self.seconds)),
            ("halo_elements", Json::from(self.halo_elements)),
            ("block_copies", Json::from(self.block_copies)),
        ])
    }
}

/// Collects per-run [`SolveReport`](profile::SolveReport)s / measurements
/// from one evaluation binary and, when `GRAPHENE_REPORT=<dir>` is set,
/// writes them as `<dir>/<bin>.json` on [`Reporter::finish`].
///
/// The JSON shape is `{"bin": <name>, "runs": [<run>, ...]}` where each
/// run is either a full SolveReport object (see DESIGN.md §profiling) or
/// an ad-hoc object tagged with `"label"`.
pub struct Reporter {
    bin: String,
    dir: Option<PathBuf>,
    runs: Vec<Json>,
}

impl Reporter {
    /// A reporter for binary `bin`; inert unless `GRAPHENE_REPORT` is set.
    pub fn from_env(bin: &str) -> Reporter {
        Reporter { bin: bin.to_string(), dir: profile::report_dir_from_env(), runs: Vec::new() }
    }

    /// Whether reports will actually be written.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Record a full solve under `label` (stores its [`profile::SolveReport`]).
    pub fn add_solve(&mut self, label: &str, res: &SolveResult) {
        if self.dir.is_none() {
            return;
        }
        let mut report = res.report.clone();
        report.name = format!("{}/{label}", self.bin);
        self.runs.push(report.to_value());
    }

    /// Record an SpMV measurement under `label`.
    pub fn add_spmv(&mut self, label: &str, m: &SpmvMeasurement) {
        let mut v = m.to_value();
        self.add_json(label, &mut v);
    }

    /// Record an arbitrary JSON object under `label`.
    ///
    /// `value` should be an object; the label is spliced in as `"label"`.
    pub fn add_json(&mut self, label: &str, value: &mut Json) {
        if self.dir.is_none() {
            return;
        }
        if let Json::Obj(fields) = value {
            fields.insert(0, ("label".to_string(), Json::from(label)));
        }
        self.runs.push(value.clone());
    }

    /// Write `<dir>/<bin>.json` (pretty) when reporting is enabled.
    ///
    /// Returns the path written, if any. Errors are reported to stderr
    /// rather than panicking: a failed report must not fail the benchmark.
    pub fn finish(&self) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let doc = Json::obj(vec![
            ("bin", Json::from(self.bin.as_str())),
            ("runs", Json::Arr(self.runs.clone())),
        ]);
        let path = dir.join(format!("{}.json", self.bin));
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[graphene] cannot create report dir {}: {e}", dir.display());
            return None;
        }
        match std::fs::write(&path, doc.to_pretty()) {
            Ok(()) => {
                eprintln!("[graphene] wrote solve report {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("[graphene] cannot write report {}: {e}", path.display());
                None
            }
        }
    }
}

/// Run one SpMV on the simulated machine and report its cycle profile.
///
/// `partition` defaults to a geometric box decomposition when `grid` is
/// given (the paper's mesh subdivision), else nnz-balanced row blocks.
pub fn measure_spmv(
    a: Rc<CsrMatrix>,
    model: &IpuModel,
    grid: Option<Grid3>,
    with_exchange: bool,
) -> SpmvMeasurement {
    let tiles = model.num_tiles().min(a.nrows);
    let part = match grid {
        Some(g) if g.num_cells() == a.nrows => Partition::grid_3d_auto(g, tiles),
        _ => Partition::balanced_by_nnz(&a, tiles),
    };
    measure_spmv_with_partition(a, model, part, with_exchange)
}

/// [`measure_spmv`] with an explicit partition.
pub fn measure_spmv_with_partition(
    a: Rc<CsrMatrix>,
    model: &IpuModel,
    part: Partition,
    with_exchange: bool,
) -> SpmvMeasurement {
    let mut ctx = DslCtx::new(model.clone());
    let sys = DistSystem::build(&mut ctx, a, part);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);
    let y = sys.new_vector(&mut ctx, "y", DType::F32);
    if with_exchange {
        sys.spmv(&mut ctx, y, x);
    } else {
        sys.spmv_no_exchange(&mut ctx, y, x);
    }
    let halo_elements = sys.halo_volume();
    let block_copies = sys.halo.num_block_copies();
    let mut engine = ctx.build_engine().expect("spmv program compiles");
    // GRAPHENE_TRACE=<path> drops a Chrome trace + text report per
    // measurement (sequence-numbered across runs in one process).
    let trace_path = profile::next_trace_path();
    if trace_path.is_some() {
        engine.set_trace(profile::TraceRecorder::new());
        engine.enable_perf();
    }
    sys.upload(&mut engine);
    engine.run();
    if let (Some(path), Some(trace)) = (&trace_path, engine.trace()) {
        let perf = engine.perf_report(12);
        profile::write_trace_artifacts(path, trace, engine.stats(), perf.as_ref(), 12);
    }
    let stats = engine.stats();
    SpmvMeasurement {
        total_cycles: stats.device_cycles(),
        compute_cycles: stats.phase_cycles(Phase::Compute),
        exchange_cycles: stats.phase_cycles(Phase::Exchange),
        sync_cycles: stats.phase_cycles(Phase::Sync),
        seconds: engine.elapsed_seconds(),
        halo_elements,
        block_copies,
    }
}

/// Pick a cubic grid whose cell count is close to `target_rows`.
pub fn cubic_grid(target_rows: usize) -> Grid3 {
    let side = (target_rows as f64).cbrt().round().max(4.0) as usize;
    Grid3 { nx: side, ny: side, nz: side }
}

/// Pick a grid close to `target_rows` whose sides divide evenly into the
/// box decompositions of 1–16 Mk2 IPUs (tile counts 1472·n = 23·2^k boxes,
/// factored as 23·2^i × 2^j × 2^l). The paper does the same: grid sizes
/// are adjusted "to ensure each tile processed the same number of rows",
/// making load imbalance zero and leaving the halo exchange as the only
/// deviation from ideal scaling.
pub fn ipu_friendly_grid(target_rows: usize) -> Grid3 {
    let s = (target_rows as f64).cbrt();
    let nx = 23 * ((s / 23.0).round().max(1.0) as usize);
    let ny = 32 * ((s / 32.0).round().max(1.0) as usize);
    let nz = ny;
    Grid3 { nx, ny, nz }
}

/// Pretty separator line for the binaries.
pub fn header(title: &str) {
    println!("# {title}");
}

/// Power draws used for the paper's energy comparison (Table III):
/// measured IPU power (420 W for four Mk2s on an M2000), CPU TDP (350 W),
/// GPU TDP (700 W).
pub mod power {
    pub const IPU_M2000_W: f64 = 420.0;
    pub const CPU_XEON_W: f64 = 350.0;
    pub const GPU_H100_W: f64 = 700.0;

    /// Energy in millijoules for a duration at a power draw.
    pub fn mj(seconds: f64, watts: f64) -> f64 {
        seconds * watts * 1e3
    }
}

/// The shared driver of Figures 9 and 10: convergence of
/// PBiCGStab+ILU(0) on one benchmark matrix under the four refinement
/// configurations the paper compares.
pub fn convergence_figure(fig: &str, matrix: &str, scale: f64, inner_iters: u32) {
    use graphene_core::config::SolverConfig;
    use graphene_core::runner::{solve_or_panic, SolveOptions};
    use graphene_core::solvers::ExtendedPrecision;

    let a = Rc::new(sparse::gen::suitesparse::by_name(matrix, scale));
    let b = sparse::gen::random_vector(a.nrows, 9);
    header(&format!(
        "{fig}: convergence of PBiCGStab+ILU(0) on {matrix} analogue \
         ({} rows, {} nnz), {inner_iters} iterations per IR step",
        a.nrows,
        a.nnz()
    ));

    let total_iters = 6 * inner_iters;
    let configs: [(&str, SolverConfig); 4] = [
        (
            "no_ir",
            SolverConfig::BiCgStab {
                max_iters: total_iters,
                rel_tol: 1e-20,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            },
        ),
        ("ir", mpir_cfg(ExtendedPrecision::Working, inner_iters)),
        ("mpir_dw", mpir_cfg(ExtendedPrecision::DoubleWord, inner_iters)),
        ("mpir_dp", mpir_cfg(ExtendedPrecision::EmulatedF64, inner_iters)),
    ];

    let opts =
        SolveOptions { model: IpuModel::m2000(), rows_per_tile: 32, ..SolveOptions::default() };
    // "Fig 9" -> "fig9": the GRAPHENE_REPORT file name for this figure.
    let mut reporter = Reporter::from_env(&fig.to_lowercase().replace(' ', ""));
    for (name, cfg) in configs {
        let res = solve_or_panic(a.clone(), &b, &cfg, &opts);
        reporter.add_solve(name, &res);
        println!("## config {name}: final residual {:.3e}", res.residual);
        println!("config\titer\trel_residual");
        for (it, r) in &res.history {
            println!("{name}\t{it}\t{r:.6e}");
        }
    }
    reporter.finish();
}

fn mpir_cfg(
    precision: graphene_core::solvers::ExtendedPrecision,
    inner_iters: u32,
) -> graphene_core::config::SolverConfig {
    use graphene_core::config::SolverConfig;
    SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: inner_iters,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }),
        precision,
        max_outer: 6,
        rel_tol: 1e-20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::poisson_3d_7pt;

    #[test]
    fn measure_spmv_is_deterministic() {
        let g = Grid3 { nx: 8, ny: 8, nz: 8 };
        let a = Rc::new(poisson_3d_7pt(8, 8, 8));
        let m1 = measure_spmv(a.clone(), &IpuModel::tiny(8), Some(g), true);
        let m2 = measure_spmv(a, &IpuModel::tiny(8), Some(g), true);
        assert_eq!(m1.total_cycles, m2.total_cycles);
        assert!(m1.exchange_cycles > 0);
        assert!(m1.compute_cycles > 0);
    }

    #[test]
    fn no_exchange_variant_is_cheaper() {
        let g = Grid3 { nx: 8, ny: 8, nz: 8 };
        let a = Rc::new(poisson_3d_7pt(8, 8, 8));
        let with = measure_spmv(a.clone(), &IpuModel::tiny(8), Some(g), true);
        let without = measure_spmv(a, &IpuModel::tiny(8), Some(g), false);
        assert!(without.total_cycles < with.total_cycles);
        assert_eq!(without.exchange_cycles, 0);
    }

    #[test]
    fn cubic_grid_near_target() {
        let g = cubic_grid(1000);
        assert_eq!((g.nx, g.ny, g.nz), (10, 10, 10));
    }

    #[test]
    fn reporter_inert_without_env_and_writes_json_with_it() {
        // Without GRAPHENE_REPORT the reporter is a no-op.
        std::env::remove_var("GRAPHENE_REPORT");
        let mut off = Reporter::from_env("unit");
        assert!(!off.enabled());
        let mut v = Json::obj(vec![("x", Json::from(1u64))]);
        off.add_json("a", &mut v);
        assert!(off.finish().is_none());

        // With it, finish() writes <dir>/<bin>.json holding all runs.
        let dir = std::env::temp_dir().join(format!("graphene-report-test-{}", std::process::id()));
        std::env::set_var("GRAPHENE_REPORT", &dir);
        let mut on = Reporter::from_env("unit");
        std::env::remove_var("GRAPHENE_REPORT");
        assert!(on.enabled());
        let g = Grid3 { nx: 6, ny: 6, nz: 6 };
        let a = Rc::new(sparse::gen::poisson_3d_7pt(6, 6, 6));
        let m = measure_spmv(a, &IpuModel::tiny(4), Some(g), true);
        on.add_spmv("tiny", &m);
        let path = on.finish().expect("report written");
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("bin").and_then(|b| b.as_str()), Some("unit"));
        let runs = doc.get("runs").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("label").and_then(|l| l.as_str()), Some("tiny"));
        assert_eq!(runs[0].get("total_cycles").and_then(|c| c.as_u64()), Some(m.total_cycles));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
