//! Aggregation behind the `summarize` binary, as a library so the
//! robustness contract is testable: a half-finished experiment sweep —
//! missing directory, truncated JSON, unknown shapes, pre-v2 schema
//! reports — must still summarise, with every casualty listed under
//! `skipped` instead of failing the aggregation.

use std::path::Path;

use json::Json;
use profile::SolveReport;

/// Everything one aggregation pass collected.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// The `*.json` files considered, in sorted order.
    pub files: Vec<String>,
    /// One row per parseable `SolveReport` run.
    pub solves: Vec<Json>,
    /// Per-binary scalar facts, in file order.
    pub bins: Vec<(String, Json)>,
    /// Files (or the directory itself) that could not be read or parsed,
    /// with the reason. Never fatal.
    pub skipped: Vec<String>,
}

/// Scalar top-level fields of an object, in document order.
fn scalars(v: &Json) -> Vec<(String, Json)> {
    match v {
        Json::Obj(pairs) => pairs
            .iter()
            .filter(|(_, v)| matches!(v, Json::Num(_) | Json::Str(_) | Json::Bool(_)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        _ => Vec::new(),
    }
}

fn fmt_cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Aggregate every `<dir>/*.json` artifact (except `summary*`).
///
/// A missing or unreadable directory yields an *empty* summary with the
/// failure recorded in `skipped` — callers decide whether that is fatal;
/// the `summarize` binary just reports it.
pub fn summarize_dir(dir: &Path) -> Summary {
    let mut summary = Summary::default();
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().and_then(|e| e.to_str()) == Some("json")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .map_or(false, |n| !n.starts_with("summary"))
            })
            .collect(),
        Err(e) => {
            summary.skipped.push(format!("{}: {e}", dir.display()));
            return summary;
        }
    };
    paths.sort();

    for path in &paths {
        let fname = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        summary.files.push(fname.clone());
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                summary.skipped.push(format!("{fname}: {e}"));
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                summary.skipped.push(format!("{fname}: {e}"));
                continue;
            }
        };
        let bin = doc
            .get("bin")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| fname.trim_end_matches(".json").to_string());
        match doc.get("runs").and_then(Json::as_arr) {
            Some(runs) => {
                let mut adhoc = 0usize;
                for run in runs {
                    // `from_value` accepts every schema back to v1 (absent
                    // "schema" parses as 1); runs that are not solve
                    // reports at all count as ad-hoc rather than skipping
                    // the file.
                    if let Ok(r) = SolveReport::from_value(run) {
                        summary.solves.push(Json::obj([
                            ("file", Json::from(fname.as_str())),
                            ("name", Json::from(r.name.as_str())),
                            ("schema", Json::from(r.schema)),
                            ("n", Json::from(r.n)),
                            ("nnz", Json::from(r.nnz)),
                            ("tiles", Json::from(r.tiles)),
                            ("iterations", Json::from(r.iterations)),
                            ("final_residual", Json::from(r.final_residual)),
                            ("device_cycles", Json::from(r.cycles.device)),
                            ("seconds", Json::from(r.seconds)),
                            ("executor", Json::from(r.executor.as_str())),
                            // Pre-v3 reports carry no backend section; all
                            // of those were simulator runs by construction.
                            (
                                "backend",
                                Json::from(
                                    r.backend.as_ref().map_or("ipu-sim", |b| b.name.as_str()),
                                ),
                            ),
                            (
                                "timing",
                                Json::from(
                                    r.backend.as_ref().map_or("cycle-model", |b| b.timing.as_str()),
                                ),
                            ),
                            ("has_perf", Json::from(r.perf.is_some())),
                        ]));
                    } else {
                        adhoc += 1;
                    }
                }
                let mut facts = vec![("solve_runs".to_string(), Json::from(runs.len() - adhoc))];
                if adhoc > 0 {
                    facts.push(("adhoc_runs".to_string(), Json::from(adhoc)));
                }
                summary.bins.push((bin, Json::Obj(facts)));
            }
            None => summary.bins.push((bin, Json::Obj(scalars(&doc)))),
        }
    }
    summary
}

impl Summary {
    /// The machine-readable `summary.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bin", Json::from("summarize")),
            ("files", Json::arr(self.files.iter().map(|f| Json::from(f.as_str())))),
            ("solves", Json::Arr(self.solves.clone())),
            ("bins", Json::Obj(self.bins.clone())),
            ("skipped", Json::arr(self.skipped.iter().map(|s| Json::from(s.as_str())))),
        ])
    }

    /// The human-readable `summary.md` document.
    pub fn to_markdown(&self) -> String {
        let mut md = String::from("# Experiment summary\n\n## Solves\n\n");
        md.push_str(
            "| report | backend | n | nnz | tiles | iters | residual | device cycles | device s |\n",
        );
        md.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|\n");
        for s in &self.solves {
            let g = |k: &str| s.get(k).map(fmt_cell).unwrap_or_default();
            md.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                g("name"),
                g("backend"),
                g("n"),
                g("nnz"),
                g("tiles"),
                g("iterations"),
                g("final_residual"),
                g("device_cycles"),
                g("seconds"),
            ));
        }
        md.push_str("\n## Per-binary facts\n\n");
        for (bin, facts) in &self.bins {
            md.push_str(&format!("### {bin}\n\n"));
            let pairs = scalars(facts);
            if pairs.is_empty() {
                md.push_str("(no scalar facts)\n\n");
                continue;
            }
            md.push_str("| key | value |\n|---|---|\n");
            for (k, v) in pairs {
                md.push_str(&format!("| {k} | {} |\n", fmt_cell(&v)));
            }
            md.push('\n');
        }
        if !self.skipped.is_empty() {
            md.push_str("## Skipped\n\n");
            for s in &self.skipped {
                md.push_str(&format!("- {s}\n"));
            }
        }
        md
    }
}
