//! Robustness contract of the `summarize` aggregation: partial sweeps —
//! truncated JSON, pre-v2 schema reports, unknown shapes, a missing
//! directory — summarise instead of failing.

use std::path::PathBuf;
use std::rc::Rc;

use graphene_bench::summary::summarize_dir;
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use json::Json;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphene-summarize-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn missing_directory_is_a_warning_not_a_crash() {
    let dir = std::env::temp_dir().join("graphene-summarize-definitely-absent");
    let _ = std::fs::remove_dir_all(&dir);
    let s = summarize_dir(&dir);
    assert!(s.files.is_empty());
    assert!(s.solves.is_empty());
    assert_eq!(s.skipped.len(), 1, "{:?}", s.skipped);
    // The documents still render.
    assert!(s.to_json().get("skipped").is_some());
    assert!(s.to_markdown().contains("## Skipped"));
}

#[test]
fn partial_sweep_skips_casualties_and_keeps_the_rest() {
    let dir = tmp_dir("mixed");

    // 1. A valid Reporter document holding a real (current-schema) solve.
    let a = Rc::new(sparse::gen::poisson_2d_5pt(8, 8, 1.0));
    let b = sparse::gen::rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab { max_iters: 50, rel_tol: 1e-5, precond: None };
    let opts = SolveOptions {
        model: ipu_sim::IpuModel::tiny(4),
        tiles: Some(4),
        ..SolveOptions::default()
    };
    let res = solve_or_panic(a, &b, &cfg, &opts);
    let doc =
        Json::obj([("bin", Json::from("unit")), ("runs", Json::Arr(vec![res.report.to_value()]))]);
    std::fs::write(dir.join("good.json"), doc.to_pretty()).unwrap();

    // 2. The same report stripped down to the v1 schema (no "schema", no
    //    "perf" section) — still summarises, as schema 1.
    let mut v1 = res.report.to_value();
    if let Json::Obj(pairs) = &mut v1 {
        pairs.retain(|(k, _)| k != "schema" && k != "perf" && k != "backend");
    }
    let v1doc = Json::obj([("bin", Json::from("oldrun")), ("runs", Json::Arr(vec![v1]))]);
    std::fs::write(dir.join("oldrun.json"), v1doc.to_pretty()).unwrap();

    // 3. A truncated artifact (a run that died mid-write).
    std::fs::write(dir.join("truncated.json"), "{\"bin\": \"crashed\", \"runs\": [{\"na").unwrap();

    // 4. A bespoke top-level object: scalars carry through.
    std::fs::write(
        dir.join("bespoke.json"),
        Json::obj([("speedup", Json::from(3.5)), ("legs", Json::from(4u64))]).to_pretty(),
    )
    .unwrap();

    let s = summarize_dir(&dir);
    assert_eq!(s.files.len(), 4, "{:?}", s.files);
    assert_eq!(s.skipped.len(), 1, "only the truncated file skips: {:?}", s.skipped);
    assert!(s.skipped[0].starts_with("truncated.json"), "{:?}", s.skipped);
    assert_eq!(s.solves.len(), 2, "current + v1 schema rows: {:?}", s.solves);
    let schemas: Vec<u64> =
        s.solves.iter().filter_map(|r| r.get("schema").and_then(Json::as_u64)).collect();
    assert!(schemas.contains(&1), "v1 report must summarise as schema 1: {schemas:?}");
    // The backend column: v3 reports carry their own attribution; the
    // backendless v1 row defaults to the simulator (all pre-v3 artifacts
    // were simulator runs by construction).
    let backends: Vec<&str> =
        s.solves.iter().filter_map(|r| r.get("backend").and_then(Json::as_str)).collect();
    assert!(backends.contains(&"ipu-sim:seq"), "{backends:?}");
    assert!(backends.contains(&"ipu-sim"), "v1 fallback: {backends:?}");
    let bins: Vec<&str> = s.bins.iter().map(|(b, _)| b.as_str()).collect();
    assert_eq!(bins, ["bespoke", "unit", "oldrun"], "sorted file order, bespoke first");
    let bespoke = &s.bins.iter().find(|(b, _)| b == "bespoke").unwrap().1;
    assert_eq!(bespoke.get("legs").and_then(Json::as_u64), Some(4));

    // The rendered artifacts mention both the survivors and the casualty.
    let md = s.to_markdown();
    assert!(md.contains("truncated.json"));
    assert!(md.contains("### bespoke"));
    let _ = std::fs::remove_dir_all(&dir);
}
