//! Cost-model auto-tuning for [`crate::runner::solve`].
//!
//! This is the runner-side half of the `tune` crate: it knows how to turn
//! a [`tune::Candidate`] into an actual partition and a compiled **probe
//! program** (one distributed SpMV over the real matrix on the real
//! machine model), and scores it by the probe's modelled device cycles.
//! The probe is value-independent — the cost model charges by structure,
//! not data — and fault-free (fault state is only ever injected by the
//! runner into solve attempts), so scores are bit-deterministic and
//! executor-independent.
//!
//! The search itself, the argmin and the persistent plan cache live in
//! `tune`; this module supplies the scorer, derives the cache key from
//! (structure fingerprint, solver config, machine model, pinned options)
//! and packages the decision for the runner to apply and stamp into the
//! report.

use std::rc::Rc;

use dsl::prelude::*;
use profile::PassStat;
use sparse::fingerprint::StructureFingerprint;
use sparse::formats::CsrMatrix;
use sparse::gen::Grid3;
use sparse::partition::Partition;
use tune::{
    candidate_space, pick_sell_c, solver_key, tune_with_cache, Candidate, PlanCache, Score,
    Strategy, TuneKey, TunedPlan, SELL_C_LADDER,
};

use crate::config::SolverConfig;
use crate::dist::DistSystem;
use crate::resilience::SolveError;
use crate::runner::SolveOptions;

/// What the tuner decided for one solve, ready to apply and to stamp.
#[derive(Clone, Debug)]
pub struct TuneDecision {
    /// The winning partition, built for the solve to use directly.
    pub partition: Partition,
    /// Tile count the partition targets (its part count).
    pub tiles: usize,
    /// `CompileOptions::optimise` the winner was scored with.
    pub optimise: bool,
    /// The full plan — freshly searched or loaded from the cache.
    pub plan: TunedPlan,
    /// `true` when the plan came from the on-disk cache.
    pub cache_hit: bool,
    /// Candidates scored by this call (0 on a cache hit).
    pub candidates_scored: usize,
    /// Host microseconds the search took (~0 on a hit).
    pub search_micros: u64,
}

impl TuneDecision {
    /// The `"graphene-tune"` pass stamp for the compile report: how the
    /// plan was obtained and what it says.
    pub fn pass_stat(&self) -> PassStat {
        let mut s = PassStat::new("graphene-tune", 0);
        s.count("cache_hit", self.cache_hit as u64);
        s.count("candidates_scored", self.candidates_scored as u64);
        s.count("modelled_cycles", self.plan.modelled_cycles);
        s.count("default_cycles", self.plan.default_cycles);
        s.count("rows_per_tile", self.plan.rows_per_tile as u64);
        s.count("tiles", self.tiles as u64);
        s.count(&format!("strategy.{}", self.plan.strategy.name()), 1);
        s.count("optimise", self.plan.optimise as u64);
        s.count("sell_c", self.plan.sell_c as u64);
        s.count("search_micros", self.search_micros);
        s
    }
}

/// Strict `GRAPHENE_TUNE` parse: unset/empty and the usual falsy spellings
/// disable, truthy spellings enable, anything else is a configuration
/// error (same contract as the engine's env knobs — no silent typo-off).
pub fn tune_enabled_from_env() -> Result<bool, SolveError> {
    match std::env::var("GRAPHENE_TUNE") {
        Err(_) => Ok(false),
        Ok(v) => parse_tune_flag(&v).map_err(SolveError::Config),
    }
}

/// The pure half of [`tune_enabled_from_env`]: empty means unset (CI
/// templating produces empty strings), typos are errors, not silent offs.
pub fn parse_tune_flag(v: &str) -> Result<bool, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "" => Ok(false),
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        other => Err(format!(
            "GRAPHENE_TUNE: unrecognised value `{other}` (expected 0/1/true/false/on/off/yes/no)"
        )),
    }
}

/// Tile count a candidate's rows-per-tile maps to — the same rule as
/// `SolveOptions::pick_tiles`, with the ladder's rpt in place of the
/// configured one. A pinned `opts.tiles` wins outright.
fn tiles_for(opts: &SolveOptions, nrows: usize, rows_per_tile: usize) -> usize {
    let by_rows = nrows.div_ceil(rows_per_tile).max(1);
    opts.tiles.unwrap_or(by_rows).min(opts.model.num_tiles()).min(nrows)
}

/// Build the partition a candidate describes, or say why it cannot exist
/// (only the geometric family can fail — an unfactorable part count).
fn build_partition(
    a: &CsrMatrix,
    grid: Option<Grid3>,
    strategy: Strategy,
    tiles: usize,
) -> Result<Partition, String> {
    match strategy {
        Strategy::Contiguous => Ok(Partition::contiguous(a.nrows, tiles)),
        Strategy::BalancedByNnz => Ok(Partition::balanced_by_nnz(a, tiles)),
        Strategy::Grid3dAuto => {
            let g = grid.ok_or("no grid supplied")?;
            Partition::try_grid_3d_auto(g, tiles).ok_or_else(|| {
                format!("cannot factor {tiles} parts into {}x{}x{}", g.nx, g.ny, g.nz)
            })
        }
    }
}

/// Compile and run the probe (one distributed SpMV) for a candidate and
/// return its modelled device cycles.
fn probe_cycles(
    a: &Rc<CsrMatrix>,
    model: &IpuModel,
    part: &Partition,
    optimise: bool,
) -> Result<u64, String> {
    let mut ctx = DslCtx::new(model.clone());
    let sys = DistSystem::build(&mut ctx, a.clone(), part.clone());
    let x = sys.new_vector(&mut ctx, "tune_x", DType::F32);
    let y = sys.new_vector(&mut ctx, "tune_y", DType::F32);
    sys.spmv(&mut ctx, y, x);
    let mut engine =
        ctx.build_engine_with(CompileOptions { optimise }).map_err(|e| e.to_string())?;
    sys.upload(&mut engine);
    engine.run();
    Ok(engine.stats().device_cycles())
}

/// Search (or load) the best plan for `(a, config, opts)`.
///
/// Only called when tuning is enabled and the caller did not pin a
/// partition. Never fails the solve on cache trouble — only on a
/// candidate space where even the default heuristic cannot be scored.
pub fn tune(
    a: &Rc<CsrMatrix>,
    config: &SolverConfig,
    opts: &SolveOptions,
) -> Result<TuneDecision, SolveError> {
    // The effective pass-toggle default, and whether it is pinned. A
    // pinned toggle (explicit option or GRAPHENE_NO_OPT in the
    // environment) keeps the search inside the caller's compile mode, so
    // e.g. the plan-equivalence harness's optimise-on/off legs still
    // enumerate identical partition candidates (passes are cycle-neutral,
    // so the winner cannot depend on the toggle either way).
    let no_opt_env = std::env::var("GRAPHENE_NO_OPT").is_ok();
    let eff_optimise = match opts.optimise {
        Some(o) => o,
        None => CompileOptions::from_env().optimise,
    };
    let optimise_choices: Vec<bool> = if opts.optimise.is_some() || no_opt_env {
        vec![eff_optimise]
    } else {
        vec![eff_optimise, !eff_optimise]
    };
    // The geometric family needs a grid that actually describes the rows.
    let grid = opts.grid.filter(|g| g.num_cells() == a.nrows);

    let (candidates, default_idx) = candidate_space(
        opts.rows_per_tile,
        opts.tiles.is_some(),
        grid.is_some(),
        &optimise_choices,
    );

    // Cache key: structure fingerprint x everything else that shapes the
    // probe or the space.
    let fp = StructureFingerprint::of(a);
    let m = &opts.model;
    let choice_str =
        optimise_choices.iter().map(|b| if *b { "1" } else { "0" }).collect::<String>();
    let key_parts = [
        config.to_value().to_string(),
        format!(
            "model:{}x{}x{}:mem{}:clk{}",
            m.num_ipus, m.tiles_per_ipu, m.workers_per_tile, m.tile_memory_bytes, m.clock_hz
        ),
        format!("rpt:{}", opts.rows_per_tile),
        format!("tiles:{:?}", opts.tiles),
        format!("opt:{choice_str}"),
        format!("grid:{}", grid.map(|g| format!("{}x{}x{}", g.nx, g.ny, g.nz)).unwrap_or_default()),
        // Backend family: only ipu-sim plans are tuned today, but the key
        // must never collide with a future backend's plans for the same
        // matrix (the plan encodes ipu-sim partition decisions).
        "backend:ipu-sim".to_string(),
    ];
    let key_refs: Vec<&str> = key_parts.iter().map(String::as_str).collect();
    let key = TuneKey::new(fp.digest, solver_key(&key_refs));
    let cache = match &opts.tune_cache {
        Some(dir) => PlanCache::at(dir.clone()),
        None => PlanCache::at(PlanCache::default_dir()),
    };

    let (sell_c, _bytes) = pick_sell_c(a, SELL_C_LADDER);
    let score = |cand: &Candidate| -> Result<Score, String> {
        let tiles = tiles_for(opts, a.nrows, cand.rows_per_tile);
        let part = build_partition(a, grid, cand.strategy, tiles)?;
        let device_cycles = probe_cycles(a, &opts.model, &part, cand.optimise)?;
        let imbalance_milli = (part.nnz_imbalance(a) * 1000.0).round() as u64;
        Ok(Score { device_cycles, imbalance_milli })
    };

    let outcome = tune_with_cache(&cache, &key, &candidates, default_idx, sell_c, score)
        .map_err(SolveError::Config)?;

    // Materialise the winner (identical whether it was just scored or
    // loaded: partition construction is deterministic in the plan).
    let plan = outcome.plan;
    let tiles = tiles_for(opts, a.nrows, plan.rows_per_tile);
    let partition = build_partition(a, grid, plan.strategy, tiles).map_err(|e| {
        SolveError::Config(format!("cached plan is not realisable ({e}); clear the tune cache"))
    })?;
    Ok(TuneDecision {
        partition,
        tiles,
        optimise: plan.optimise,
        plan,
        cache_hit: outcome.cache_hit,
        candidates_scored: outcome.candidates_scored,
        search_micros: outcome.search_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_flag_grammar() {
        for (v, want) in [
            ("", false),
            ("  ", false),
            ("1", true),
            ("true", true),
            ("ON", true),
            ("yes", true),
            ("0", false),
            ("false", false),
            ("off", false),
            ("No", false),
        ] {
            assert_eq!(parse_tune_flag(v).unwrap(), want, "{v:?}");
        }
        for v in ["maybe", "2", "tuned", "-1"] {
            let e = parse_tune_flag(v).unwrap_err();
            assert!(e.contains("GRAPHENE_TUNE") && e.contains(v), "{e}");
        }
    }

    #[test]
    fn probe_cycles_are_deterministic_and_partition_sensitive() {
        let a = Rc::new(sparse::gen::poisson_2d_5pt(12, 12, 1.0));
        let model = IpuModel::tiny(8);
        let p4 = Partition::balanced_by_nnz(&a, 4);
        let c1 = probe_cycles(&a, &model, &p4, true).unwrap();
        let c2 = probe_cycles(&a, &model, &p4, true).unwrap();
        assert_eq!(c1, c2, "probe must be bit-deterministic");
        // Pass toggles are cycle-neutral — the probe must agree.
        let c3 = probe_cycles(&a, &model, &p4, false).unwrap();
        assert_eq!(c1, c3, "optimise toggle changed modelled cycles");
        // More tiles → a different (here: cheaper) modelled program.
        let p8 = Partition::balanced_by_nnz(&a, 8);
        let c8 = probe_cycles(&a, &model, &p8, true).unwrap();
        assert_ne!(c1, c8, "partition must move the objective");
    }
}
