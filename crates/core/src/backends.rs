//! # The backend registry — `graphene_core`'s side of the abstraction
//!
//! The `backend` crate defines the device contract ([`Backend`] /
//! [`PreparedPlan`]) and implements the CPU and GPU-model baselines; this
//! module adds the piece that must live above the DSL and solver layers:
//!
//! * [`IpuSimBackend`] — the cycle-modelled IPU simulator behind the
//!   trait. One type, four variants ([`IpuVariant`]): the sequential,
//!   parallel and native host executors plus the legacy tree-walking
//!   interpreter, each a pinned [`runner::solve`] under the hood, so a
//!   trait-level run is bit- and cycle-identical to the corresponding
//!   `SolveOptions::executor` run.
//! * [`resolve`] / [`backend_for`] — the name → backend registry behind
//!   `GRAPHENE_BACKEND` and `SolveOptions::backend`. Unknown names are
//!   [`SolveError::Config`].
//! * [`external_solve`] — the runner's dispatch path for non-IPU
//!   backends: capability checks first (fault injection or auto-tuning on
//!   a backend that lacks them is a typed [`SolveError::Backend`], never
//!   a panic), then prepare/execute through the trait, then the same
//!   tolerance judgement the IPU path applies.

use std::rc::Rc;

use backend::{
    Backend, BackendError, BackendRun, BackendSpec, Capabilities, IpuVariant, PreparedPlan,
    SolvePlan, Timing,
};
use ipu_sim::clock::CycleStats;
use ipu_sim::fault::FaultPlan;
use sparse::formats::CsrMatrix;

use crate::config::SolverConfig;
use crate::resilience::{target_tolerance, SolveError, SolveStatus};
use crate::runner::{solve, SolveOptions, SolveResult, TOLERANCE_SAFETY};

// ----------------------------------------------------------------------
// The IPU simulator as a backend
// ----------------------------------------------------------------------

/// The simulated IPU behind the [`Backend`] trait. Each prepared plan
/// replays through [`runner::solve`](crate::runner::solve) with the
/// variant's executor pinned, so results, `CycleStats` and reports are
/// identical to calling the runner directly.
pub struct IpuSimBackend {
    variant: IpuVariant,
    /// Machine/partition options every execution of this backend uses
    /// (its `executor`/`legacy_interpreter`/`backend` fields are
    /// overridden by the variant).
    base: SolveOptions,
}

impl IpuSimBackend {
    pub fn new(variant: IpuVariant, base: SolveOptions) -> IpuSimBackend {
        IpuSimBackend { variant, base }
    }
}

impl Backend for IpuSimBackend {
    fn name(&self) -> String {
        BackendSpec::IpuSim(self.variant).name().to_string()
    }

    fn family(&self) -> &'static str {
        "ipu-sim"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accounting: true,
            fault_injection: true,
            auto_tuning: true,
            // The legacy tree-walker has no plan step ids to attribute to.
            perf_attribution: self.variant != IpuVariant::Legacy,
            parallel_host: self.variant == IpuVariant::Par,
            ..Capabilities::default()
        }
    }

    fn prepare(&self, plan: &SolvePlan) -> Result<Box<dyn PreparedPlan>, BackendError> {
        let config = SolverConfig::from_value(&plan.solver).map_err(|e| {
            BackendError::Unsupported { backend: self.name(), what: format!("solver config: {e}") }
        })?;
        let mut opts = self.base.clone();
        opts.backend = Some(BackendSpec::IpuSim(self.variant));
        opts.executor = None;
        opts.legacy_interpreter = None;
        opts.record_history = plan.record_history;
        Ok(Box::new(IpuSimPrepared { name: self.name(), a: Rc::clone(&plan.a), config, opts }))
    }
}

struct IpuSimPrepared {
    name: String,
    a: Rc<CsrMatrix>,
    config: SolverConfig,
    opts: SolveOptions,
}

impl PreparedPlan for IpuSimPrepared {
    fn execute(&mut self, b: &[f64], x0: Option<&[f64]>) -> Result<BackendRun, BackendError> {
        let mut opts = self.opts.clone();
        opts.x0 = x0.map(<[f64]>::to_vec);
        let res = solve(Rc::clone(&self.a), b, &self.config, &opts).map_err(|e| {
            BackendError::Failed { backend: self.name.clone(), reason: e.to_string() }
        })?;
        Ok(BackendRun {
            x: res.x,
            residual: res.residual,
            iterations: res.iterations,
            history: res.history,
            timing: Timing::Cycles { stats: res.stats, seconds: res.seconds },
            report: res.report,
        })
    }
}

// ----------------------------------------------------------------------
// The registry
// ----------------------------------------------------------------------

/// Instantiate the backend a parsed spec names. `base` supplies the
/// machine/partition options for the IPU simulator (ignored by the
/// baselines, which have no tiles to configure).
pub fn backend_for(spec: BackendSpec, base: &SolveOptions) -> Box<dyn Backend> {
    match spec {
        BackendSpec::IpuSim(v) => Box::new(IpuSimBackend::new(v, base.clone())),
        BackendSpec::Cpu { parallel } => Box::new(backend::cpu::CpuBackend::new(parallel)),
        BackendSpec::GpuModel => Box::new(backend::gpu::GpuModelBackend::h100()),
    }
}

/// Look a backend up by registry name (the `GRAPHENE_BACKEND` grammar).
/// Unknown names are a [`SolveError::Config`] carrying the known list.
pub fn resolve(name: &str, base: &SolveOptions) -> Result<Box<dyn Backend>, SolveError> {
    let spec = BackendSpec::parse(name).map_err(SolveError::Config)?;
    Ok(backend_for(spec, base))
}

// ----------------------------------------------------------------------
// The runner's external dispatch path
// ----------------------------------------------------------------------

/// Run a solve on a non-IPU backend: capability checks, then the trait.
/// Called by `runner::solve` when `SolveOptions::backend` /
/// `GRAPHENE_BACKEND` selects `cpu`, `cpu:par` or `gpu-model`.
pub(crate) fn external_solve(
    spec: BackendSpec,
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
    opts: &SolveOptions,
) -> Result<SolveResult, SolveError> {
    // External backends have no mid-run abort hook, so the deadline is
    // enforced post-hoc: a run that finishes past the cutoff is a typed
    // DeadlineExceeded, never a silently late result.
    let start = std::time::Instant::now();
    let be = backend_for(spec, opts);
    let caps = be.capabilities();
    let name = be.name();

    // Engine-level pins are ipu-sim knobs; combining them with an
    // external backend is a configuration error, not a silent ignore.
    if opts.executor.is_some() || opts.legacy_interpreter.is_some() || opts.native_fusion.is_some()
    {
        return Err(SolveError::Config(format!(
            "backend `{name}` does not take ipu-sim engine options \
             (executor/legacy_interpreter/native_fusion)"
        )));
    }
    // Capability mismatches are typed refusals (satellite contract).
    let fault_plan = match &opts.faults {
        Some(p) => Some(p.clone()),
        None => FaultPlan::from_env().map_err(SolveError::Config)?,
    };
    if fault_plan.is_some() && !caps.fault_injection {
        return Err(SolveError::Backend {
            backend: name.clone(),
            reason: "fault injection requested, but this backend does not support it".into(),
        });
    }
    let tune_on = match opts.tune {
        Some(t) => t,
        None => crate::autotune::tune_enabled_from_env()?,
    };
    if tune_on && !caps.auto_tuning {
        return Err(SolveError::Backend {
            backend: name.clone(),
            reason: "auto-tuning requested, but this backend does not support it".into(),
        });
    }

    let plan = SolvePlan {
        a: Rc::clone(&a),
        solver: config.to_value(),
        record_history: opts.record_history,
    };
    let map_err = |e: BackendError| match e {
        BackendError::Unknown(n) => SolveError::Config(format!("unknown backend `{n}`")),
        BackendError::Unsupported { backend, what } => {
            SolveError::Backend { backend, reason: format!("does not support {what}") }
        }
        BackendError::Failed { backend, reason } => SolveError::Backend { backend, reason },
    };
    let mut prepared = be.prepare(&plan).map_err(map_err)?;
    let run = prepared.execute(b, opts.x0.as_deref()).map_err(map_err)?;
    if let Some(budget) = opts.deadline {
        if start.elapsed() >= budget {
            return Err(SolveError::DeadlineExceeded {
                elapsed_ms: start.elapsed().as_millis() as u64,
                budget_ms: budget.as_millis() as u64,
            });
        }
    }

    // The same judgement contract as the IPU path: a non-finite or
    // tolerance-missing result is a typed error, never a silently wrong x.
    if !run.residual.is_finite() || run.x.iter().any(|v| !v.is_finite()) {
        return Err(SolveError::NonFinite { attempt: 1 });
    }
    let status = match target_tolerance(config) {
        Some(t) => {
            if run.residual <= t * TOLERANCE_SAFETY {
                SolveStatus::Converged
            } else {
                return Err(SolveError::ToleranceNotReached {
                    residual: run.residual,
                    target: t,
                    attempts: 1,
                });
            }
        }
        None => SolveStatus::MaxIters,
    };
    let seconds = run.timing.seconds();
    Ok(SolveResult {
        x: run.x,
        residual: run.residual,
        history: run.history,
        iterations: run.iterations,
        // External backends count no device cycles; their time lives in
        // the report's `backend` section in its own domain.
        stats: CycleStats::new(0),
        seconds,
        status,
        report: run.report,
    })
}

#[cfg(test)]
mod tests {
    use dsl::prelude::IpuModel;
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

    use super::*;

    fn sim_opts() -> SolveOptions {
        SolveOptions {
            model: IpuModel::tiny(4),
            tiles: Some(4),
            record_history: false,
            ..SolveOptions::default()
        }
    }

    fn cfg() -> SolverConfig {
        SolverConfig::BiCgStab { max_iters: 60, rel_tol: 1e-6, precond: None }
    }

    #[test]
    fn unknown_backend_names_are_config_errors() {
        let e = resolve("tpu", &sim_opts()).err().expect("unknown name must fail");
        match e {
            SolveError::Config(msg) => {
                assert!(msg.contains("unknown backend"), "{msg}");
                assert!(msg.contains("gpu-model"), "{msg}");
            }
            other => panic!("expected Config, got {other}"),
        }
    }

    #[test]
    fn registry_names_round_trip_through_the_trait() {
        for name in backend::KNOWN_BACKENDS {
            let be = resolve(name, &sim_opts()).unwrap();
            assert_eq!(be.name(), *name);
            assert_eq!(be.family(), BackendSpec::parse(name).unwrap().family());
        }
    }

    #[test]
    fn ipu_sim_backend_matches_a_direct_runner_call() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let direct = solve(Rc::clone(&a), &b, &cfg(), &sim_opts()).unwrap();

        let be = IpuSimBackend::new(IpuVariant::Seq, sim_opts());
        assert!(be.capabilities().cycle_accounting);
        let plan = SolvePlan { a: Rc::clone(&a), solver: cfg().to_value(), record_history: false };
        let run = be.prepare(&plan).unwrap().execute(&b, None).unwrap();

        assert_eq!(run.x, direct.x, "trait-level run must be bit-identical");
        assert_eq!(run.residual, direct.residual);
        let stats = run.timing.cycle_stats().expect("ipu-sim counts cycles");
        assert_eq!(stats.device_cycles(), direct.stats.device_cycles());
        let info = run.report.backend.as_ref().expect("schema v3 stamps the backend");
        assert_eq!(info.name, "ipu-sim:seq");
        assert_eq!(info.timing, "cycle-model");
    }

    #[test]
    fn ipu_sim_backend_refuses_malformed_solver_json() {
        let be = IpuSimBackend::new(IpuVariant::Seq, sim_opts());
        let plan = SolvePlan {
            a: Rc::new(poisson_2d_5pt(4, 4, 1.0)),
            solver: json::Json::obj([("type", json::Json::Str("warp-drive".into()))]),
            record_history: false,
        };
        match be.prepare(&plan) {
            Err(BackendError::Unsupported { backend, what }) => {
                assert_eq!(backend, "ipu-sim:seq");
                assert!(what.contains("solver config"), "{what}");
            }
            Err(other) => panic!("expected Unsupported, got {other}"),
            Ok(_) => panic!("malformed config must not prepare"),
        }
    }
}
