//! JSON solver configuration (paper §V).
//!
//! "The solver hierarchy and associated parameters are easily configured
//! through a JSON file" — a configuration is a recursive tree: any solver
//! can be the preconditioner of any other.
//!
//! ```json
//! {
//!   "type": "mpir",
//!   "precision": "double_word",
//!   "max_outer": 20,
//!   "rel_tol": 1e-13,
//!   "inner": {
//!     "type": "bi_cg_stab",
//!     "max_iters": 100,
//!     "rel_tol": 0.0,
//!     "precond": { "type": "ilu0" }
//!   }
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::solvers::ExtendedPrecision;

/// A recursive solver/preconditioner configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum SolverConfig {
    /// `M = I`.
    Identity,
    /// Damped Jacobi: `sweeps` applications of `x += ω D⁻¹ (b − A x)`.
    Jacobi {
        sweeps: u32,
        #[serde(default = "default_omega")]
        omega: f32,
    },
    /// Level-set scheduled Gauss-Seidel sweeps. With `rel_tol > 0` it is
    /// a standalone solver that stops once ‖b − A x‖ ≤ rel_tol·‖b‖.
    GaussSeidel {
        sweeps: u32,
        #[serde(default)]
        symmetric: bool,
        #[serde(default)]
        rel_tol: f32,
    },
    /// Chebyshev polynomial smoother of the given degree on the interval
    /// [λmax/eig_ratio, λmax] (λmax estimated at setup).
    Chebyshev {
        degree: u32,
        #[serde(default = "default_eig_ratio")]
        eig_ratio: f64,
    },
    /// ILU(0) factorisation + substitution.
    Ilu0 {},
    /// Diagonal-based incomplete LU.
    Dilu {},
    /// Preconditioned Conjugate Gradient (SPD systems). `rel_tol = 0`
    /// runs exactly `max_iters` iterations.
    Cg {
        max_iters: u32,
        #[serde(default)]
        rel_tol: f32,
        #[serde(default)]
        precond: Option<Box<SolverConfig>>,
    },
    /// Preconditioned BiCGStab. `rel_tol = 0` runs exactly `max_iters`
    /// iterations.
    BiCgStab {
        max_iters: u32,
        #[serde(default)]
        rel_tol: f32,
        #[serde(default)]
        precond: Option<Box<SolverConfig>>,
    },
    /// Mixed-precision iterative refinement around an inner solver.
    Mpir {
        inner: Box<SolverConfig>,
        precision: ExtendedPrecision,
        max_outer: u32,
        #[serde(default)]
        rel_tol: f64,
    },
}

fn default_omega() -> f32 {
    2.0 / 3.0
}

fn default_eig_ratio() -> f64 {
    30.0
}

impl SolverConfig {
    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<SolverConfig, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("solver config serialises")
    }

    /// The paper's flagship configuration:
    /// MPIR(double-word) { PBiCGStab(inner_iters) { ILU(0) } }.
    pub fn paper_default(inner_iters: u32, max_outer: u32, rel_tol: f64) -> SolverConfig {
        SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: inner_iters,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: ExtendedPrecision::DoubleWord,
            max_outer,
            rel_tol,
        }
    }

    /// Depth of the nesting tree (1 for a leaf solver).
    pub fn depth(&self) -> usize {
        match self {
            SolverConfig::BiCgStab { precond: Some(p), .. }
            | SolverConfig::Cg { precond: Some(p), .. } => 1 + p.depth(),
            SolverConfig::Mpir { inner, .. } => 1 + inner.depth(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let cfg = SolverConfig::paper_default(100, 20, 1e-13);
        let json = cfg.to_json();
        let back = SolverConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(cfg.depth(), 3);
    }

    #[test]
    fn parse_handwritten_json() {
        let json = r#"{
            "type": "bi_cg_stab",
            "max_iters": 500,
            "rel_tol": 1e-6,
            "precond": { "type": "gauss_seidel", "sweeps": 2 }
        }"#;
        let cfg = SolverConfig::from_json(json).unwrap();
        match cfg {
            SolverConfig::BiCgStab { max_iters, rel_tol, precond } => {
                assert_eq!(max_iters, 500);
                assert!((rel_tol - 1e-6).abs() < 1e-12);
                assert_eq!(
                    *precond.unwrap(),
                    SolverConfig::GaussSeidel { sweeps: 2, symmetric: false, rel_tol: 0.0 }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn defaults_apply() {
        let cfg = SolverConfig::from_json(r#"{"type":"jacobi","sweeps":3}"#).unwrap();
        assert_eq!(cfg, SolverConfig::Jacobi { sweeps: 3, omega: 2.0 / 3.0 });
        let cfg = SolverConfig::from_json(r#"{"type":"bi_cg_stab","max_iters":10}"#).unwrap();
        assert_eq!(cfg, SolverConfig::BiCgStab { max_iters: 10, rel_tol: 0.0, precond: None });
    }

    #[test]
    fn precision_names() {
        let json = r#"{
            "type": "mpir", "precision": "emulated_f64", "max_outer": 5,
            "inner": {"type": "identity"}
        }"#;
        match SolverConfig::from_json(json).unwrap() {
            SolverConfig::Mpir { precision, .. } => {
                assert_eq!(precision, ExtendedPrecision::EmulatedF64)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(SolverConfig::from_json(r#"{"type":"amg"}"#).is_err());
    }
}
