//! JSON solver configuration (paper §V).
//!
//! "The solver hierarchy and associated parameters are easily configured
//! through a JSON file" — a configuration is a recursive tree: any solver
//! can be the preconditioner of any other.
//!
//! ```json
//! {
//!   "type": "mpir",
//!   "precision": "double_word",
//!   "max_outer": 20,
//!   "rel_tol": 1e-13,
//!   "inner": {
//!     "type": "bi_cg_stab",
//!     "max_iters": 100,
//!     "rel_tol": 0.0,
//!     "precond": { "type": "ilu0" }
//!   }
//! }
//! ```
//!
//! The wire format is internally tagged (`"type"` field, snake_case) and
//! hand-mapped onto [`json::Json`]; the offline build image cannot fetch
//! serde, and the explicit mapping also yields better error messages
//! (unknown fields and types are rejected by name).

use std::fmt;

use json::Json;

use crate::solvers::ExtendedPrecision;

/// A recursive solver/preconditioner configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverConfig {
    /// `M = I`.
    Identity,
    /// Damped Jacobi: `sweeps` applications of `x += ω D⁻¹ (b − A x)`.
    Jacobi { sweeps: u32, omega: f32 },
    /// Level-set scheduled Gauss-Seidel sweeps. With `rel_tol > 0` it is
    /// a standalone solver that stops once ‖b − A x‖ ≤ rel_tol·‖b‖.
    GaussSeidel { sweeps: u32, symmetric: bool, rel_tol: f32 },
    /// Chebyshev polynomial smoother of the given degree on the interval
    /// [λmax/eig_ratio, λmax] (λmax estimated at setup).
    Chebyshev { degree: u32, eig_ratio: f64 },
    /// ILU(0) factorisation + substitution.
    Ilu0 {},
    /// Diagonal-based incomplete LU.
    Dilu {},
    /// Preconditioned Conjugate Gradient (SPD systems). `rel_tol = 0`
    /// runs exactly `max_iters` iterations.
    Cg { max_iters: u32, rel_tol: f32, precond: Option<Box<SolverConfig>> },
    /// Preconditioned BiCGStab. `rel_tol = 0` runs exactly `max_iters`
    /// iterations.
    BiCgStab { max_iters: u32, rel_tol: f32, precond: Option<Box<SolverConfig>> },
    /// Mixed-precision iterative refinement around an inner solver.
    Mpir { inner: Box<SolverConfig>, precision: ExtendedPrecision, max_outer: u32, rel_tol: f64 },
}

fn default_omega() -> f32 {
    2.0 / 3.0
}

fn default_eig_ratio() -> f64 {
    30.0
}

/// Error produced when parsing a [`SolverConfig`]: either malformed JSON
/// (with position) or a well-formed document that does not describe a
/// solver (with a field-level message).
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    Json(json::JsonError),
    Schema(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "{e}"),
            ConfigError::Schema(msg) => write!(f, "solver config error: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<json::JsonError> for ConfigError {
    fn from(e: json::JsonError) -> ConfigError {
        ConfigError::Json(e)
    }
}

fn schema(msg: impl Into<String>) -> ConfigError {
    ConfigError::Schema(msg.into())
}

impl SolverConfig {
    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<SolverConfig, ConfigError> {
        SolverConfig::from_value(&Json::parse(text)?)
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Build from an already-parsed JSON value.
    pub fn from_value(v: &Json) -> Result<SolverConfig, ConfigError> {
        let fields = Fields::new(v)?;
        let cfg = match fields.tag {
            "identity" => SolverConfig::Identity,
            "jacobi" => SolverConfig::Jacobi {
                sweeps: fields.u32("sweeps")?,
                omega: fields.f32_or("omega", default_omega())?,
            },
            "gauss_seidel" => SolverConfig::GaussSeidel {
                sweeps: fields.u32("sweeps")?,
                symmetric: fields.bool_or("symmetric", false)?,
                rel_tol: fields.f32_or("rel_tol", 0.0)?,
            },
            "chebyshev" => SolverConfig::Chebyshev {
                degree: fields.u32("degree")?,
                eig_ratio: fields.f64_or("eig_ratio", default_eig_ratio())?,
            },
            "ilu0" => SolverConfig::Ilu0 {},
            "dilu" => SolverConfig::Dilu {},
            "cg" => SolverConfig::Cg {
                max_iters: fields.u32("max_iters")?,
                rel_tol: fields.f32_or("rel_tol", 0.0)?,
                precond: fields.precond()?,
            },
            "bi_cg_stab" => SolverConfig::BiCgStab {
                max_iters: fields.u32("max_iters")?,
                rel_tol: fields.f32_or("rel_tol", 0.0)?,
                precond: fields.precond()?,
            },
            "mpir" => SolverConfig::Mpir {
                inner: Box::new(SolverConfig::from_value(fields.required("inner")?)?),
                precision: precision_from_str(
                    fields
                        .required("precision")?
                        .as_str()
                        .ok_or_else(|| schema("'precision' must be a string"))?,
                )?,
                max_outer: fields.u32("max_outer")?,
                rel_tol: fields.f64_or("rel_tol", 0.0)?,
            },
            other => return Err(schema(format!("unknown solver type '{other}'"))),
        };
        Ok(cfg)
    }

    /// Lower to a JSON value (internally tagged, snake_case).
    pub fn to_value(&self) -> Json {
        match self {
            SolverConfig::Identity => Json::obj([("type", Json::from("identity"))]),
            SolverConfig::Jacobi { sweeps, omega } => Json::obj([
                ("type", Json::from("jacobi")),
                ("sweeps", Json::from(*sweeps)),
                ("omega", Json::from(*omega)),
            ]),
            SolverConfig::GaussSeidel { sweeps, symmetric, rel_tol } => Json::obj([
                ("type", Json::from("gauss_seidel")),
                ("sweeps", Json::from(*sweeps)),
                ("symmetric", Json::from(*symmetric)),
                ("rel_tol", Json::from(*rel_tol)),
            ]),
            SolverConfig::Chebyshev { degree, eig_ratio } => Json::obj([
                ("type", Json::from("chebyshev")),
                ("degree", Json::from(*degree)),
                ("eig_ratio", Json::from(*eig_ratio)),
            ]),
            SolverConfig::Ilu0 {} => Json::obj([("type", Json::from("ilu0"))]),
            SolverConfig::Dilu {} => Json::obj([("type", Json::from("dilu"))]),
            SolverConfig::Cg { max_iters, rel_tol, precond } => {
                krylov_value("cg", *max_iters, *rel_tol, precond)
            }
            SolverConfig::BiCgStab { max_iters, rel_tol, precond } => {
                krylov_value("bi_cg_stab", *max_iters, *rel_tol, precond)
            }
            SolverConfig::Mpir { inner, precision, max_outer, rel_tol } => Json::obj([
                ("type", Json::from("mpir")),
                ("inner", inner.to_value()),
                ("precision", Json::from(precision_name(*precision))),
                ("max_outer", Json::from(*max_outer)),
                ("rel_tol", Json::from(*rel_tol)),
            ]),
        }
    }

    /// The paper's flagship configuration:
    /// MPIR(double-word) { PBiCGStab(inner_iters) { ILU(0) } }.
    pub fn paper_default(inner_iters: u32, max_outer: u32, rel_tol: f64) -> SolverConfig {
        SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: inner_iters,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: ExtendedPrecision::DoubleWord,
            max_outer,
            rel_tol,
        }
    }

    /// Depth of the nesting tree (1 for a leaf solver).
    pub fn depth(&self) -> usize {
        match self {
            SolverConfig::BiCgStab { precond: Some(p), .. }
            | SolverConfig::Cg { precond: Some(p), .. } => 1 + p.depth(),
            SolverConfig::Mpir { inner, .. } => 1 + inner.depth(),
            _ => 1,
        }
    }
}

/// One entry of the differential verification suite (`graphene-verify`):
/// a named solver configuration paired with the accuracy it must reach
/// against the host-side f64 oracle on the suite's small, well-conditioned
/// generated matrices.
#[derive(Clone, Debug)]
pub struct VerifyCase {
    /// Stable name used in verification reports and failure messages.
    pub name: &'static str,
    pub config: SolverConfig,
    /// Maximum allowed relative residual ‖b − A·x‖ / ‖b‖ (computed in f64
    /// against the f32-rounded system the device sees).
    pub residual_bound: f64,
    /// Maximum allowed relative forward error ‖x − x*‖ / ‖x*‖ against the
    /// dense-LU oracle solution x* (condition numbers of the generated
    /// families are small, so this is residual_bound × a modest factor).
    pub forward_bound: f64,
    /// Config is only valid on symmetric positive-definite systems.
    pub spd_only: bool,
    /// Skip matrix families whose estimated condition number exceeds
    /// this. Krylov/MPIR configs take `f64::INFINITY`; fixed-sweep
    /// smoothers (Jacobi, Gauss-Seidel, Chebyshev) contract at a
    /// κ-dependent rate, so their bounded iteration budgets only promise
    /// the stated accuracy on well-conditioned systems.
    pub cond_bound: f64,
}

/// Every solver configuration the verification suite runs differentially
/// against the f64 oracle — one entry per solver family, the
/// ILU-preconditioned Krylov variants, and MPIR in all three extended
/// precisions. Multigrid is structured-grid-only and handled separately
/// by `graphene-verify` (it is not expressible as a [`SolverConfig`]).
pub fn verification_suite() -> Vec<VerifyCase> {
    let ilu = || Some(Box::new(SolverConfig::Ilu0 {}));
    let inner = || -> Box<SolverConfig> {
        Box::new(SolverConfig::BiCgStab { max_iters: 40, rel_tol: 0.0, precond: ilu() })
    };
    vec![
        VerifyCase {
            name: "cg",
            config: SolverConfig::Cg { max_iters: 300, rel_tol: 1e-6, precond: None },
            residual_bound: 5e-5,
            forward_bound: 5e-3,
            spd_only: true,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "cg+ilu0",
            config: SolverConfig::Cg { max_iters: 300, rel_tol: 1e-6, precond: ilu() },
            residual_bound: 5e-5,
            forward_bound: 5e-3,
            spd_only: true,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "bicgstab",
            config: SolverConfig::BiCgStab { max_iters: 300, rel_tol: 1e-6, precond: None },
            residual_bound: 5e-5,
            forward_bound: 5e-3,
            spd_only: false,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "bicgstab+ilu0",
            config: SolverConfig::BiCgStab { max_iters: 300, rel_tol: 1e-6, precond: ilu() },
            residual_bound: 5e-5,
            forward_bound: 5e-3,
            spd_only: false,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "bicgstab+gauss_seidel",
            config: SolverConfig::BiCgStab {
                max_iters: 300,
                rel_tol: 1e-6,
                precond: Some(Box::new(SolverConfig::GaussSeidel {
                    sweeps: 2,
                    symmetric: true,
                    rel_tol: 0.0,
                })),
            },
            residual_bound: 5e-5,
            forward_bound: 5e-3,
            spd_only: false,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "jacobi",
            config: SolverConfig::Jacobi { sweeps: 300, omega: 2.0 / 3.0 },
            residual_bound: 1e-3,
            forward_bound: 1e-1,
            spd_only: false,
            cond_bound: 100.0,
        },
        VerifyCase {
            name: "gauss_seidel",
            config: SolverConfig::GaussSeidel { sweeps: 300, symmetric: false, rel_tol: 1e-5 },
            residual_bound: 1e-3,
            forward_bound: 1e-1,
            spd_only: false,
            cond_bound: 100.0,
        },
        VerifyCase {
            name: "chebyshev",
            config: SolverConfig::Chebyshev { degree: 60, eig_ratio: 30.0 },
            residual_bound: 1e-2,
            forward_bound: 5e-1,
            spd_only: true,
            cond_bound: 100.0,
        },
        VerifyCase {
            name: "mpir-working",
            config: SolverConfig::Mpir {
                inner: inner(),
                precision: ExtendedPrecision::Working,
                max_outer: 6,
                rel_tol: 1e-7,
            },
            residual_bound: 1e-5,
            forward_bound: 1e-3,
            spd_only: false,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "mpir-double_word",
            config: SolverConfig::Mpir {
                inner: inner(),
                precision: ExtendedPrecision::DoubleWord,
                max_outer: 8,
                rel_tol: 1e-12,
            },
            residual_bound: 1e-10,
            forward_bound: 1e-8,
            spd_only: false,
            cond_bound: f64::INFINITY,
        },
        VerifyCase {
            name: "mpir-emulated_f64",
            config: SolverConfig::Mpir {
                inner: inner(),
                precision: ExtendedPrecision::EmulatedF64,
                max_outer: 8,
                rel_tol: 1e-12,
            },
            residual_bound: 1e-10,
            forward_bound: 1e-8,
            spd_only: false,
            cond_bound: f64::INFINITY,
        },
    ]
}

fn krylov_value(
    tag: &str,
    max_iters: u32,
    rel_tol: f32,
    precond: &Option<Box<SolverConfig>>,
) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::from(tag)),
        ("max_iters".to_string(), Json::from(max_iters)),
        ("rel_tol".to_string(), Json::from(rel_tol)),
    ];
    if let Some(p) = precond {
        pairs.push(("precond".to_string(), p.to_value()));
    }
    Json::Obj(pairs)
}

/// snake_case wire name of an [`ExtendedPrecision`].
pub fn precision_name(p: ExtendedPrecision) -> &'static str {
    match p {
        ExtendedPrecision::Working => "working",
        ExtendedPrecision::DoubleWord => "double_word",
        ExtendedPrecision::EmulatedF64 => "emulated_f64",
    }
}

fn precision_from_str(s: &str) -> Result<ExtendedPrecision, ConfigError> {
    match s {
        "working" => Ok(ExtendedPrecision::Working),
        "double_word" => Ok(ExtendedPrecision::DoubleWord),
        "emulated_f64" => Ok(ExtendedPrecision::EmulatedF64),
        other => Err(schema(format!("unknown precision '{other}'"))),
    }
}

/// Field accessor over one JSON object with its `"type"` tag extracted.
struct Fields<'a> {
    tag: &'a str,
    obj: &'a Json,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Json) -> Result<Fields<'a>, ConfigError> {
        if v.as_obj().is_none() {
            return Err(schema("solver config must be a JSON object"));
        }
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing string field 'type'"))?;
        Ok(Fields { tag, obj: v })
    }

    fn required(&self, key: &str) -> Result<&'a Json, ConfigError> {
        self.obj.get(key).ok_or_else(|| schema(format!("'{}' requires field '{key}'", self.tag)))
    }

    fn u32(&self, key: &str) -> Result<u32, ConfigError> {
        self.required(key)?
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| schema(format!("'{key}' must be a non-negative integer")))
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, ConfigError> {
        match self.obj.get(key) {
            None => Ok(default),
            Some(v) => v.as_f64().ok_or_else(|| schema(format!("'{key}' must be a number"))),
        }
    }

    fn f32_or(&self, key: &str, default: f32) -> Result<f32, ConfigError> {
        self.f64_or(key, default as f64).map(|v| v as f32)
    }

    fn bool_or(&self, key: &str, default: bool) -> Result<bool, ConfigError> {
        match self.obj.get(key) {
            None => Ok(default),
            Some(v) => v.as_bool().ok_or_else(|| schema(format!("'{key}' must be a boolean"))),
        }
    }

    fn precond(&self) -> Result<Option<Box<SolverConfig>>, ConfigError> {
        match self.obj.get("precond") {
            None | Some(Json::Null) => Ok(None),
            Some(v) => Ok(Some(Box::new(SolverConfig::from_value(v)?))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let cfg = SolverConfig::paper_default(100, 20, 1e-13);
        let json = cfg.to_json();
        let back = SolverConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(cfg.depth(), 3);
    }

    #[test]
    fn parse_handwritten_json() {
        let json = r#"{
            "type": "bi_cg_stab",
            "max_iters": 500,
            "rel_tol": 1e-6,
            "precond": { "type": "gauss_seidel", "sweeps": 2 }
        }"#;
        let cfg = SolverConfig::from_json(json).unwrap();
        match cfg {
            SolverConfig::BiCgStab { max_iters, rel_tol, precond } => {
                assert_eq!(max_iters, 500);
                assert!((rel_tol - 1e-6).abs() < 1e-12);
                assert_eq!(
                    *precond.unwrap(),
                    SolverConfig::GaussSeidel { sweeps: 2, symmetric: false, rel_tol: 0.0 }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn defaults_apply() {
        let cfg = SolverConfig::from_json(r#"{"type":"jacobi","sweeps":3}"#).unwrap();
        assert_eq!(cfg, SolverConfig::Jacobi { sweeps: 3, omega: 2.0 / 3.0 });
        let cfg = SolverConfig::from_json(r#"{"type":"bi_cg_stab","max_iters":10}"#).unwrap();
        assert_eq!(cfg, SolverConfig::BiCgStab { max_iters: 10, rel_tol: 0.0, precond: None });
    }

    #[test]
    fn precision_names() {
        let json = r#"{
            "type": "mpir", "precision": "emulated_f64", "max_outer": 5,
            "inner": {"type": "identity"}
        }"#;
        match SolverConfig::from_json(json).unwrap() {
            SolverConfig::Mpir { precision, .. } => {
                assert_eq!(precision, ExtendedPrecision::EmulatedF64)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(SolverConfig::from_json(r#"{"type":"amg"}"#).is_err());
    }

    #[test]
    fn malformed_json_has_position() {
        match SolverConfig::from_json("{\"type\": ").unwrap_err() {
            ConfigError::Json(e) => assert_eq!(e.line, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_required_field_named_in_error() {
        let err = SolverConfig::from_json(r#"{"type":"jacobi"}"#).unwrap_err();
        assert!(err.to_string().contains("sweeps"), "{err}");
    }

    #[test]
    fn null_precond_is_none() {
        let cfg = SolverConfig::from_json(r#"{"type":"cg","max_iters":5,"precond":null}"#).unwrap();
        assert_eq!(cfg, SolverConfig::Cg { max_iters: 5, rel_tol: 0.0, precond: None });
    }
}
