//! The distributed linear system on the device.
//!
//! `DistSystem` takes a host matrix and a partition and produces everything
//! the solvers need on the simulated IPU:
//!
//! * the §IV halo decomposition and the per-tile local matrices in the
//!   paper's **modified CSR** layout (dense diagonal + off-diagonal CSR,
//!   §II-C), with column indices renumbered into each tile's local vector
//!   layout `[interior | separators | halo]`;
//! * device tensors for the matrix data and a constructor for distributed
//!   vectors carrying halo slots;
//! * the blockwise **halo-exchange** step (one region copy per consumer,
//!   broadcast over the all-to-all fabric);
//! * SpMV and residual compute sets built from a CodeDSL codelet;
//! * the per-tile forward/backward **level sets** used by Gauss-Seidel and
//!   ILU.

use std::rc::Rc;

use dsl::prelude::*;
use graph::engine::Engine;
use graph::program::ElemCopy;
use sparse::formats::CsrMatrix;
use sparse::halo::HaloDecomposition;
use sparse::levelset::{LevelSets, Sweep};
use sparse::partition::Partition;

/// Matrix + partition lowered onto the device.
pub struct DistSystem {
    /// Host copy of the (global) matrix, full precision.
    pub a: Rc<CsrMatrix>,
    pub part: Partition,
    pub halo: HaloDecomposition,
    /// Chunk layout shared by every distributed vector: per tile,
    /// `owned` solution entries followed by halo slots.
    pub vec_chunks: Vec<TensorChunk>,
    /// Device matrix tensors (modified CSR, tile-local column indices).
    pub diag: TensorRef,
    pub vals: TensorRef,
    pub cols: TensorRef,
    pub rptr: TensorRef,
    /// Halo-exchange template: (src flat index, dst flat index, len)
    /// within the shared vector layout.
    halo_copies: Vec<(usize, usize, usize)>,
    /// Per-tile dependency levels of the local lower/upper triangles.
    pub fwd_levels: Vec<Vec<Vec<usize>>>,
    pub bwd_levels: Vec<Vec<Vec<usize>>>,
    /// Per-tile (diag_start, vals_start, rptr_start) offsets into the
    /// matrix tensors.
    mat_offsets: Vec<(usize, usize, usize)>,
    /// Per-tile off-diagonal nnz.
    mat_nnz: Vec<usize>,
    /// Host-side initial data for the matrix tensors.
    diag_data: Vec<f64>,
    vals_data: Vec<f64>,
    cols_data: Vec<f64>,
    rptr_data: Vec<f64>,
    /// The single SpMV / residual codelets (shared by all tiles).
    spmv_codelet: graph::codelet::CodeletId,
    residual_codelet: graph::codelet::CodeletId,
}

impl DistSystem {
    /// Decompose `a` over `part` and allocate the matrix on the device.
    pub fn build(ctx: &mut DslCtx, a: Rc<CsrMatrix>, part: Partition) -> DistSystem {
        assert!(
            part.num_parts() <= ctx.model().num_tiles(),
            "partition has more parts ({}) than the machine has tiles ({})",
            part.num_parts(),
            ctx.model().num_tiles()
        );
        let halo = HaloDecomposition::build(&a, &part);
        let locals = halo.local_matrices(&a);
        let num_tiles = part.num_parts();

        // Vector layout.
        let mut vec_chunks = Vec::with_capacity(num_tiles);
        let mut start = 0usize;
        for (t, layout) in halo.layouts.iter().enumerate() {
            let total = layout.local_len();
            vec_chunks.push(TensorChunk { tile: t, start, owned: layout.owned.len(), total });
            start += total;
        }

        // Matrix tensors: per tile, the modified-CSR arrays back to back.
        let mut diag_chunks = Vec::new();
        let mut vals_chunks = Vec::new();
        let mut cols_chunks = Vec::new();
        let mut rptr_chunks = Vec::new();
        let mut diag_data = Vec::new();
        let mut vals_data = Vec::new();
        let mut cols_data = Vec::new();
        let mut rptr_data = Vec::new();
        let (mut d0, mut v0, mut c0, mut r0) = (0usize, 0usize, 0usize, 0usize);
        let mut fwd_levels = Vec::with_capacity(num_tiles);
        let mut bwd_levels = Vec::with_capacity(num_tiles);
        let mut mat_offsets = Vec::with_capacity(num_tiles);
        let mut mat_nnz = Vec::with_capacity(num_tiles);
        for (t, lm) in locals.iter().enumerate() {
            mat_offsets.push((d0, v0, r0));
            let m = lm.a.to_modified_local();
            let rows = lm.a.nrows;
            diag_chunks.push(TensorChunk { tile: t, start: d0, owned: rows, total: rows });
            d0 += rows;
            diag_data.extend_from_slice(&m.diag);
            let nnz = m.values.len();
            mat_nnz.push(nnz);
            vals_chunks.push(TensorChunk { tile: t, start: v0, owned: nnz, total: nnz });
            v0 += nnz;
            vals_data.extend_from_slice(&m.values);
            cols_chunks.push(TensorChunk { tile: t, start: c0, owned: nnz, total: nnz });
            c0 += nnz;
            cols_data.extend(m.col_idx.iter().map(|&c| c as f64));
            rptr_chunks.push(TensorChunk { tile: t, start: r0, owned: rows + 1, total: rows + 1 });
            r0 += rows + 1;
            rptr_data.extend(m.row_ptr.iter().map(|&p| p as f64));

            // Level sets of the off-diagonal local structure. Analysis runs
            // on the local CSR (halo columns >= rows are never forward
            // dependencies; backward ignores cols >= nrows).
            let fwd = LevelSets::analyze(&lm.a, Sweep::Forward);
            let bwd = LevelSets::analyze(&lm.a, Sweep::Backward);
            fwd_levels.push(fwd.levels);
            bwd_levels.push(bwd.levels);
        }

        let diag = ctx
            .add_tensor(TensorDef { name: "A_diag".into(), dtype: DType::F32, chunks: diag_chunks })
            .expect("diag tensor");
        let vals = ctx
            .add_tensor(TensorDef { name: "A_vals".into(), dtype: DType::F32, chunks: vals_chunks })
            .expect("vals tensor");
        let cols = ctx
            .add_tensor(TensorDef { name: "A_cols".into(), dtype: DType::I32, chunks: cols_chunks })
            .expect("cols tensor");
        let rptr = ctx
            .add_tensor(TensorDef { name: "A_rptr".into(), dtype: DType::I32, chunks: rptr_chunks })
            .expect("rptr tensor");

        // Halo-exchange template in vector-layout flat indices.
        let mut halo_copies = Vec::new();
        for r in &halo.regions {
            let src = vec_chunks[r.owner].start + r.src_start;
            for (k, &t) in r.consumers.iter().enumerate() {
                let dst = vec_chunks[t].start + r.dst_starts[k];
                halo_copies.push((src, dst, r.len()));
            }
        }

        let spmv_codelet = ctx.add_codelet(build_spmv_codelet(false));
        let residual_codelet = ctx.add_codelet(build_spmv_codelet(true));

        DistSystem {
            a,
            part,
            halo,
            vec_chunks,
            diag,
            vals,
            cols,
            rptr,
            halo_copies,
            fwd_levels,
            bwd_levels,
            mat_offsets,
            mat_nnz,
            diag_data,
            vals_data,
            cols_data,
            rptr_data,
            spmv_codelet,
            residual_codelet,
        }
    }

    pub fn num_tiles(&self) -> usize {
        self.vec_chunks.len()
    }

    pub fn num_rows(&self) -> usize {
        self.a.nrows
    }

    /// Total halo elements moved per exchange.
    pub fn halo_volume(&self) -> usize {
        self.halo_copies.iter().map(|&(_, _, l)| l).sum()
    }

    /// Allocate a distributed vector with halo slots.
    pub fn new_vector(&self, ctx: &mut DslCtx, name: impl Into<String>, dtype: DType) -> TensorRef {
        ctx.add_tensor(TensorDef { name: name.into(), dtype, chunks: self.vec_chunks.clone() })
            .expect("distributed vector")
    }

    /// Emit the blockwise halo exchange for a distributed vector.
    pub fn halo_exchange(&self, ctx: &mut DslCtx, x: TensorRef) {
        if self.halo_copies.is_empty() {
            return;
        }
        let copies = self
            .halo_copies
            .iter()
            .map(|&(src, dst, len)| ElemCopy {
                src: x.id,
                src_start: src,
                dst: x.id,
                dst_start: dst,
                len,
            })
            .collect();
        ctx.exchange("halo", copies);
    }

    /// Emit the *naive* per-cell halo exchange (one copy per cell per
    /// consumer) — the ablation baseline for the §IV reordering strategy.
    pub fn halo_exchange_naive(&self, ctx: &mut DslCtx, x: TensorRef) {
        let mut copies = Vec::new();
        for &(src, dst, len) in &self.halo_copies {
            for k in 0..len {
                copies.push(ElemCopy {
                    src: x.id,
                    src_start: src + k,
                    dst: x.id,
                    dst_start: dst + k,
                    len: 1,
                });
            }
        }
        if !copies.is_empty() {
            ctx.exchange("halo_naive", copies);
        }
    }

    /// `y = A x` (working precision): halo exchange on `x`, then one SpMV
    /// vertex per tile.
    pub fn spmv(&self, ctx: &mut DslCtx, y: TensorRef, x: TensorRef) {
        self.spmv_inner(ctx, y, x, true);
    }

    /// `y = A x` without the halo exchange (scaling-study variant that
    /// isolates compute; halo values are whatever the slots hold).
    pub fn spmv_no_exchange(&self, ctx: &mut DslCtx, y: TensorRef, x: TensorRef) {
        self.spmv_inner(ctx, y, x, false);
    }

    fn spmv_inner(&self, ctx: &mut DslCtx, y: TensorRef, x: TensorRef, exchange: bool) {
        if exchange {
            self.halo_exchange(ctx, x);
        }
        let mut vertices = Vec::with_capacity(self.num_tiles());
        for (t, vc) in self.vec_chunks.iter().enumerate() {
            if vc.owned == 0 {
                continue;
            }
            let mut operands = vec![
                TensorSlice { tensor: y.id, start: vc.start, len: vc.owned },
                TensorSlice { tensor: x.id, start: vc.start, len: vc.total },
            ];
            operands.extend(self.matrix_operands_for(t));
            vertices.push(Vertex {
                tile: vc.tile,
                codelet: self.spmv_codelet,
                operands,
                kind: VertexKind::Simple,
            });
        }
        ctx.execute("spmv", vertices);
    }

    /// `r = b - A x` in the dtype of `r`/`x` — used for the initial
    /// residual and for MPIR's extended-precision residual (step 1).
    /// `x` and `r` may be F32, DoubleWord or F64Emulated; the matrix stays
    /// in working precision, products and accumulation promote to the
    /// extended type.
    pub fn residual(&self, ctx: &mut DslCtx, r: TensorRef, b: TensorRef, x: TensorRef) {
        self.halo_exchange(ctx, x);
        let mut vertices = Vec::with_capacity(self.num_tiles());
        for (t, vc) in self.vec_chunks.iter().enumerate() {
            if vc.owned == 0 {
                continue;
            }
            let mut operands = vec![
                TensorSlice { tensor: r.id, start: vc.start, len: vc.owned },
                TensorSlice { tensor: x.id, start: vc.start, len: vc.total },
                TensorSlice { tensor: b.id, start: vc.start, len: vc.owned },
            ];
            operands.extend(self.matrix_operands_for(t));
            vertices.push(Vertex {
                tile: vc.tile,
                codelet: self.residual_codelet,
                operands,
                kind: VertexKind::Simple,
            });
        }
        ctx.execute("residual", vertices);
    }

    pub(crate) fn matrix_operands_for(&self, t: usize) -> Vec<TensorSlice> {
        let rows = self.vec_chunks[t].owned;
        // Reconstruct per-tile offsets: matrix tensors have one chunk per
        // tile in tile order with cumulative starts; track via prefix sums
        // stored below.
        let (ds, vs, cs, rs) = self.matrix_offsets(t);
        let nnz = self.matrix_nnz(t);
        vec![
            TensorSlice { tensor: self.diag.id, start: ds, len: rows },
            TensorSlice { tensor: self.vals.id, start: vs, len: nnz },
            TensorSlice { tensor: self.cols.id, start: cs, len: nnz },
            TensorSlice { tensor: self.rptr.id, start: rs, len: rows + 1 },
        ]
    }

    fn matrix_offsets(&self, t: usize) -> (usize, usize, usize, usize) {
        let (d, v, r) = self.mat_offsets[t];
        (d, v, v, r)
    }

    fn matrix_nnz(&self, t: usize) -> usize {
        self.mat_nnz[t]
    }

    /// Write the matrix data into a built engine (step 4 of the pipeline).
    pub fn upload(&self, engine: &mut Engine) {
        engine.write_tensor(self.diag.id, &self.diag_data);
        engine.write_tensor(self.vals.id, &self.vals_data);
        engine.write_tensor(self.cols.id, &self.cols_data);
        engine.write_tensor(self.rptr.id, &self.rptr_data);
    }

    /// Rearrange a global host vector into the device vector layout
    /// (owned values in local order, halo slots filled with owners'
    /// values).
    pub fn to_device_order(&self, global: &[f64]) -> Vec<f64> {
        self.halo.scatter(global).into_iter().flatten().collect()
    }

    /// Gather a device-layout vector (as read from the engine) back into
    /// global ordering.
    pub fn from_device_order(&self, device: &[f64]) -> Vec<f64> {
        let mut locals = Vec::with_capacity(self.num_tiles());
        let mut off = 0;
        for vc in &self.vec_chunks {
            locals.push(device[off..off + vc.total].to_vec());
            off += vc.total;
        }
        self.halo.gather(&locals)
    }
}

/// The operand slices (diag, vals, cols, rptr) of tile `t`'s local matrix —
/// used by solvers that bind custom codelets to the matrix data.
pub fn matrix_operands(sys: &DistSystem, t: usize) -> Vec<TensorSlice> {
    sys.matrix_operands_for(t)
}

/// Build the SpMV (or residual) codelet over the modified-CSR layout.
///
/// Parameters, in order:
/// `y` (mut, rows) · `x` (local_len) · [`b` (rows) if residual] ·
/// `diag` (rows) · `vals` (nnz) · `cols` (nnz) · `rptr` (rows+1)
///
/// ```text
/// for each row r (worker-parallel):
///     acc = diag[r] * x[r]                    // dense diagonal (§II-C)
///     for k in rptr[r] .. rptr[r+1]:
///         acc += vals[k] * x[cols[k]]
///     y[r] = acc              (or  y[r] = b[r] - acc  for the residual)
/// ```
///
/// For the residual the accumulation happens in the dtype of `x` (dynamic
/// promotion): with a double-word `x` this is exactly MPIR step 1.
fn build_spmv_codelet(residual: bool) -> graph::codelet::Codelet {
    let name = if residual { "residual" } else { "spmv" };
    let mut cb = CodeDsl::new(name);
    let y = cb.param(DType::F32, true);
    let x = cb.param(DType::F32, false);
    let b = residual.then(|| cb.param(DType::F32, false));
    let diag = cb.param(DType::F32, false);
    let vals = cb.param(DType::F32, false);
    let cols = cb.param(DType::I32, false);
    let rptr = cb.param(DType::I32, false);
    cb.par_for(Val::i32(0), y.len(), |cb, r| {
        let acc = cb.var(diag.at(r.clone()) * x.at(r.clone()));
        let lo = cb.let_(rptr.at(r.clone()));
        let hi = cb.let_(rptr.at(r.clone() + 1));
        cb.for_(lo, hi, Val::i32(1), |cb, k| {
            cb.assign(acc, acc.get() + vals.at(k.clone()) * x.at(cols.at(k)));
        });
        match b {
            Some(b) => cb.store(y, r.clone(), b.at(r) - acc.get()),
            None => cb.store(y, r, acc.get()),
        }
    });
    cb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, poisson_3d_7pt, Grid3};

    fn build_spmv_engine(
        a: CsrMatrix,
        parts: usize,
    ) -> (Engine, Rc<CsrMatrix>, TensorRef, TensorRef, DistSystem) {
        let a = Rc::new(a);
        let part = Partition::balanced_by_nnz(&a, parts);
        let mut ctx = DslCtx::new(IpuModel::tiny(parts));
        let sys = DistSystem::build(&mut ctx, a.clone(), part);
        let x = sys.new_vector(&mut ctx, "x", DType::F32);
        let y = sys.new_vector(&mut ctx, "y", DType::F32);
        sys.spmv(&mut ctx, y, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        (e, a, x, y, sys)
    }

    #[test]
    fn distributed_spmv_matches_host() {
        let (mut e, a, x, y, sys) = build_spmv_engine(poisson_2d_5pt(8, 8, 1.0), 4);
        let xs: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        // Deliberately stale halo slots: exchange inside spmv must fix them.
        let mut dev = sys.to_device_order(&xs);
        for vc in &sys.vec_chunks {
            for k in vc.owned..vc.total {
                dev[vc.start + k] = -1234.0;
            }
        }
        e.write_tensor(x.id, &dev);
        e.run();
        let got = sys.from_device_order(&e.read_tensor(y.id));
        let want = a.spmv_alloc(&xs);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}"); // f32 working precision
        }
    }

    #[test]
    fn spmv_on_3d_poisson_many_tiles() {
        let (mut e, a, x, y, sys) = build_spmv_engine(poisson_3d_7pt(6, 6, 6), 8);
        let xs: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.1).sin()).collect();
        e.write_tensor(x.id, &sys.to_device_order(&xs));
        e.run();
        let got = sys.from_device_order(&e.read_tensor(y.id));
        let want = a.spmv_alloc(&xs);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn residual_in_double_word_beats_f32() {
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let part = Partition::balanced_by_nnz(&a, 2);
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let sys = DistSystem::build(&mut ctx, a.clone(), part);
        let b = sys.new_vector(&mut ctx, "b", DType::F32);
        let x32 = sys.new_vector(&mut ctx, "x32", DType::F32);
        let xdw = sys.new_vector(&mut ctx, "xdw", DType::DoubleWord);
        let r32 = sys.new_vector(&mut ctx, "r32", DType::F32);
        let rdw = sys.new_vector(&mut ctx, "rdw", DType::DoubleWord);
        sys.residual(&mut ctx, r32, b, x32);
        sys.residual(&mut ctx, rdw, b, xdw);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        // Exact solution of A x = b for x = ones ⇒ residual should be 0;
        // perturb x slightly so cancellation precision matters.
        let xs: Vec<f64> = (0..36).map(|i| 1.0 + 1e-7 * (i as f64)).collect();
        let bs = a.spmv_alloc(&xs);
        e.write_tensor(b.id, &sys.to_device_order(&bs));
        e.write_tensor(x32.id, &sys.to_device_order(&xs));
        e.write_tensor(xdw.id, &sys.to_device_order(&xs));
        e.run();
        let g32 = sys.from_device_order(&e.read_tensor(r32.id));
        let gdw = sys.from_device_order(&e.read_tensor(rdw.id));
        let err32: f64 = g32.iter().map(|v| v.abs()).sum();
        let errdw: f64 = gdw.iter().map(|v| v.abs()).sum();
        // b itself was rounded to f32 on upload, so neither is exactly 0,
        // but the double-word residual must be far more accurate.
        assert!(errdw < err32 / 4.0, "dw {errdw} vs f32 {err32}");
    }

    #[test]
    fn halo_exchange_volume_matches_decomposition() {
        let a = poisson_3d_7pt(8, 8, 8);
        let grid = Grid3 { nx: 8, ny: 8, nz: 8 };
        let part = Partition::grid_3d(grid, 2, 2, 2);
        let mut ctx = DslCtx::new(IpuModel::tiny(8));
        let sys = DistSystem::build(&mut ctx, Rc::new(a), part);
        assert_eq!(sys.halo_volume(), sys.halo.exchange_volume());
        assert!(sys.halo_volume() > 0);
    }

    #[test]
    fn device_order_roundtrip() {
        let a = poisson_2d_5pt(5, 5, 1.0);
        let part = Partition::contiguous(25, 3);
        let mut ctx = DslCtx::new(IpuModel::tiny(3));
        let sys = DistSystem::build(&mut ctx, Rc::new(a), part);
        let xs: Vec<f64> = (0..25).map(|i| i as f64).collect();
        assert_eq!(sys.from_device_order(&sys.to_device_order(&xs)), xs);
    }

    #[test]
    fn level_sets_cover_local_rows() {
        let a = poisson_2d_5pt(6, 6, 1.0);
        let part = Partition::contiguous(36, 4);
        let mut ctx = DslCtx::new(IpuModel::tiny(4));
        let sys = DistSystem::build(&mut ctx, Rc::new(a), part);
        for t in 0..4 {
            let rows = sys.vec_chunks[t].owned;
            let covered: usize = sys.fwd_levels[t].iter().map(Vec::len).sum();
            assert_eq!(covered, rows);
            let covered_b: usize = sys.bwd_levels[t].iter().map(Vec::len).sum();
            assert_eq!(covered_b, rows);
        }
    }
}

/// Extension: build a tile-local modified CSR where the diagonal refers to
/// the *local* row index (local row r ↔ local column r).
trait ToModifiedLocal {
    fn to_modified_local(&self) -> sparse::formats::ModifiedCsr;
}

impl ToModifiedLocal for CsrMatrix {
    fn to_modified_local(&self) -> sparse::formats::ModifiedCsr {
        let n = self.nrows;
        let mut diag = vec![0.0; n];
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize == i {
                    diag[i] = *v;
                } else {
                    col_idx.push(*c);
                    values.push(*v);
                }
            }
            assert!(diag[i] != 0.0, "local row {i} has a zero/missing diagonal");
            row_ptr.push(col_idx.len());
        }
        sparse::formats::ModifiedCsr { nrows: n, ncols: self.ncols, diag, row_ptr, col_idx, values }
    }
}
