//! # graphene-core — the solver framework
//!
//! The paper's primary contribution, assembled from the substrate crates:
//! a suite of nested, preconditioned sparse linear solvers expressed in
//! TensorDSL/CodeDSL and executed on the cycle-modelled IPU.
//!
//! * [`dist`] — the distributed system: modified-CSR matrix on tiles,
//!   distributed vectors with halo slots, blockwise halo exchange, SpMV
//!   and extended-precision residual kernels.
//! * [`solvers`] — PBiCGStab (§V-C), Gauss-Seidel (§V-D), ILU(0)/DILU
//!   (§V-E), Jacobi, identity, and Mixed-Precision Iterative Refinement
//!   (§V-B) with double-word or emulated-double extended precision. Any
//!   solver nests as a preconditioner of any other.
//! * [`config`] — the JSON solver-hierarchy configuration (§V).
//! * [`runner`] — the one-call host API: partition a matrix, build the
//!   program, run it, return the solution with cycle statistics and
//!   residual history.
//! * [`autotune`] — opt-in cost-model auto-tuning (`GRAPHENE_TUNE=1` or
//!   `SolveOptions::tune`): scores partition/rows-per-tile/pass-toggle
//!   candidates by a modelled-cycle SpMV probe and caches winners on disk
//!   keyed by the matrix structure fingerprint (see the `tune` crate).
//! * [`backends`] — the device registry behind `GRAPHENE_BACKEND`: the
//!   IPU simulator (all four executor variants), the native-CPU baseline
//!   and the GPU roofline model behind one `backend::Backend` trait, with
//!   typed capability-mismatch refusals.
//! * [`resilience`] — structured solve outcomes ([`SolveError`] /
//!   [`SolveStatus`]), in-flight detectors (non-finite / divergence /
//!   stagnation), checkpoint-rollback recovery and the bounded
//!   graceful-degradation ladder that keep a solve honest when
//!   `ipu_sim::fault` injects hardware faults underneath it.

pub mod autotune;
pub mod backends;
pub mod config;
pub mod dist;
pub mod resilience;
pub mod runner;
pub mod solvers;

pub use backends::{backend_for, resolve as resolve_backend, IpuSimBackend};
pub use config::SolverConfig;
pub use dist::DistSystem;
pub use resilience::{RecoveryPolicy, SolveError, SolveStatus};
pub use runner::{solve, solve_or_panic, SolveOptions, SolveResult};
pub use solvers::{solver_from_config, Solver};

/// Convenience prelude.
pub mod prelude {
    pub use crate::config::SolverConfig;
    pub use crate::dist::DistSystem;
    pub use crate::resilience::{RecoveryPolicy, SolveError, SolveStatus};
    pub use crate::runner::{solve, solve_or_panic, SolveOptions, SolveResult};
    pub use crate::solvers::{solver_from_config, Solver};
}
