//! Detection, recovery and graceful degradation for solves (the
//! counterpart of `ipu_sim::fault` on the solver side).
//!
//! The runner composes four pieces:
//!
//! * [`SolveError`] / [`SolveStatus`] — the structured outcome of a solve.
//!   `solve` no longer panics on bad inputs or silently returns garbage on
//!   a diverged run; every failure mode has a typed, printable error.
//! * [`Sentinel`] — a host-side watchdog fed by the convergence monitor's
//!   callbacks. It trips on non-finite residuals, divergence (residual
//!   grows past `divergence_factor`× the starting point) and stagnation
//!   (no improvement for `stagnation_window` monitored iterations), and
//!   **aborts the device loop mid-run**: each solver's `while` condition
//!   re-reads the predicate scalar after a host callback that forces it to
//!   false once the sentinel has tripped, so nested loops unwind at the
//!   next superstep instead of burning the full iteration budget.
//! * [`Checkpointer`] — periodic device-side snapshots of the solution
//!   vector (a labelled `checkpoint` copy, so the overhead is measurable
//!   via `CycleStats::label_cycles("checkpoint")`), mirrored to the host.
//!   Rollback restarts from the last *finite* snapshot.
//! * [`RecoveryPolicy`] + [`degrade`] — the retry state machine: restart
//!   the same configuration up to `max_restarts` times per rung, then step
//!   down a bounded degradation ladder (drop the preconditioner
//!   ILU→Jacobi→none, escalate MPIR's extended precision) before giving
//!   up with the detection's typed error.
//!
//! The entire layer is pay-for-what-you-use: with the default policy and
//! no fault plan, no sentinel or checkpoint steps are emitted and the
//! compiled program is bit-identical to one built before this module
//! existed.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use dsl::prelude::*;
use dsl::TExpr;

use crate::config::SolverConfig;
use crate::dist::DistSystem;

// ----------------------------------------------------------------------
// Outcomes
// ----------------------------------------------------------------------

/// Terminal status of a successful solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Reached the configured tolerance on the first attempt.
    Converged,
    /// Ran the full iteration budget (fixed-iteration configs, or a
    /// tolerance miss the policy chose to accept).
    MaxIters,
    /// Reached the tolerance, but only after at least one rollback
    /// restart or degradation step.
    Recovered,
}

impl SolveStatus {
    /// Wire name used in the report's `resilience.status` field.
    pub fn name(self) -> &'static str {
        match self {
            SolveStatus::Converged => "converged",
            SolveStatus::MaxIters => "max_iters",
            SolveStatus::Recovered => "recovered",
        }
    }
}

/// Why a solve failed. Every variant is a *structured* refusal: the
/// solver detected the condition and stopped, rather than returning a
/// silently wrong `x`.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Invalid inputs or solver configuration (dimension mismatches,
    /// zero iteration budgets, malformed fault specs).
    Config(String),
    /// The solver program failed to compile onto the machine (e.g. a
    /// tile's tensors exceed its SRAM).
    Compile(String),
    /// The requested host executor is unavailable.
    Executor(String),
    /// A monitored scalar went NaN/Inf and the recovery budget is spent.
    NonFinite { attempt: u32 },
    /// The residual grew past the policy's divergence factor and the
    /// recovery budget is spent.
    Diverged { attempt: u32, residual: f64 },
    /// No residual improvement for the policy's stagnation window and
    /// the recovery budget is spent.
    Stagnated { attempt: u32 },
    /// Structural breakdown (e.g. a singular 1×1 system).
    Breakdown(String),
    /// The final attempt finished finite but above the configured
    /// tolerance, and the policy demanded convergence.
    ToleranceNotReached { residual: f64, target: f64, attempts: u32 },
    /// The selected backend refused the plan or an execution option: a
    /// capability mismatch (fault injection on the GPU model, auto-tuning
    /// on a wall-clock backend, a solver hierarchy the backend does not
    /// implement) or a backend-internal failure. Always a typed refusal,
    /// never a panic.
    Backend { backend: String, reason: String },
    /// The solve's wall-clock deadline (`SolveOptions::deadline`) passed
    /// before a converged result was produced. Enforced mid-run by the
    /// [`Sentinel`]'s host-callback abort, so the device loop unwinds at
    /// the next superstep instead of burning the rest of its budget.
    /// Deadlines are terminal: the runner never retries past one.
    DeadlineExceeded { elapsed_ms: u64, budget_ms: u64 },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Config(msg) => write!(f, "invalid solve configuration: {msg}"),
            SolveError::Compile(msg) => write!(f, "solver program failed to compile: {msg}"),
            SolveError::Executor(msg) => write!(f, "executor unavailable: {msg}"),
            SolveError::NonFinite { attempt } => {
                write!(f, "non-finite values detected (attempt {attempt}, recovery exhausted)")
            }
            SolveError::Diverged { attempt, residual } => {
                write!(f, "solver diverged to residual {residual:.3e} (attempt {attempt})")
            }
            SolveError::Stagnated { attempt } => {
                write!(f, "solver stagnated (attempt {attempt}, recovery exhausted)")
            }
            SolveError::Breakdown(msg) => write!(f, "solver breakdown: {msg}"),
            SolveError::ToleranceNotReached { residual, target, attempts } => write!(
                f,
                "residual {residual:.3e} above target {target:.1e} after {attempts} attempt(s)"
            ),
            SolveError::Backend { backend, reason } => {
                write!(f, "backend `{backend}`: {reason}")
            }
            SolveError::DeadlineExceeded { elapsed_ms, budget_ms } => {
                write!(f, "deadline exceeded: {elapsed_ms} ms elapsed of a {budget_ms} ms budget")
            }
        }
    }
}

impl std::error::Error for SolveError {}

// ----------------------------------------------------------------------
// Detections
// ----------------------------------------------------------------------

/// What a detector fired on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectionKind {
    /// NaN/Inf in a monitored scalar or the returned solution.
    NonFinite,
    /// Residual grew past `divergence_factor` × its starting point.
    Divergence,
    /// No residual improvement for `stagnation_window` iterations.
    Stagnation,
    /// Finished finite but above the configured tolerance.
    ToleranceMiss,
    /// The wall-clock deadline passed mid-attempt.
    Deadline,
}

impl DetectionKind {
    /// Wire name used in the report's `resilience.detections[].kind`.
    pub fn name(self) -> &'static str {
        match self {
            DetectionKind::NonFinite => "non_finite",
            DetectionKind::Divergence => "divergence",
            DetectionKind::Stagnation => "stagnation",
            DetectionKind::ToleranceMiss => "tolerance_miss",
            DetectionKind::Deadline => "deadline",
        }
    }
}

/// One detector firing (within a single attempt; the runner stamps the
/// attempt number when it records it).
#[derive(Clone, Debug, PartialEq)]
pub struct Detection {
    pub kind: DetectionKind,
    /// Monitored iteration at detection time (0: post-run check).
    pub iteration: usize,
    /// Relative residual observed (NaN for non-finite detections).
    pub residual: f64,
    pub detail: String,
}

// ----------------------------------------------------------------------
// Sentinel — in-flight residual watchdog
// ----------------------------------------------------------------------

struct SentinelState {
    /// First residual observed this attempt (divergence baseline).
    baseline: Option<f64>,
    best: f64,
    since_best: usize,
    detection: Option<Detection>,
}

/// Host-side watchdog over the monitored residual stream. Cloned into
/// monitor callbacks and loop-condition abort callbacks; all clones share
/// state. See the module docs for the detectors.
#[derive(Clone)]
pub struct Sentinel {
    divergence_factor: f64,
    stagnation_window: usize,
    /// Absolute wall-clock cutoff; past it the Deadline detector trips.
    deadline: Option<Instant>,
    state: Rc<RefCell<SentinelState>>,
}

impl Sentinel {
    pub fn new(divergence_factor: f64, stagnation_window: usize) -> Sentinel {
        Sentinel {
            divergence_factor,
            stagnation_window,
            deadline: None,
            state: Rc::new(RefCell::new(SentinelState {
                baseline: None,
                best: f64::INFINITY,
                since_best: 0,
                detection: None,
            })),
        }
    }

    /// Arm the wall-clock deadline detector: past `at`, the sentinel
    /// trips with [`DetectionKind::Deadline`] on the next poll (every
    /// monitored sample and every loop-condition abort hook polls), so
    /// the device loop unwinds within one superstep of the cutoff.
    pub fn with_deadline(mut self, at: Instant) -> Sentinel {
        self.deadline = Some(at);
        self
    }

    /// Check the deadline detector. Returns true if the sentinel is
    /// tripped (by this poll or any earlier detector).
    pub fn poll_deadline(&self) -> bool {
        let mut st = self.state.borrow_mut();
        if st.detection.is_some() {
            return true;
        }
        match self.deadline {
            Some(at) if Instant::now() >= at => {
                st.detection = Some(Detection {
                    kind: DetectionKind::Deadline,
                    iteration: 0,
                    residual: f64::NAN,
                    detail: "wall-clock deadline passed mid-attempt".into(),
                });
                true
            }
            _ => false,
        }
    }

    /// Feed one monitored (iteration, relative residual) sample. Trips at
    /// most once per attempt; later samples are ignored once tripped.
    pub fn observe(&self, iteration: usize, residual: f64) {
        let _ = self.poll_deadline();
        let mut st = self.state.borrow_mut();
        if st.detection.is_some() {
            return;
        }
        if !residual.is_finite() {
            st.detection = Some(Detection {
                kind: DetectionKind::NonFinite,
                iteration,
                residual: f64::NAN,
                detail: format!("monitored residual is {residual} at iteration {iteration}"),
            });
            return;
        }
        let baseline = *st.baseline.get_or_insert(residual);
        // Divergence: measured against the worse of the baseline and 1.0
        // so an excellent initial guess (baseline ~1e-12) doesn't turn
        // routine iteration noise into a divergence call.
        let ceiling = self.divergence_factor * baseline.max(1.0);
        if residual > ceiling {
            st.detection = Some(Detection {
                kind: DetectionKind::Divergence,
                iteration,
                residual,
                detail: format!(
                    "residual {residual:.3e} exceeds {:.1e} x baseline {baseline:.3e}",
                    self.divergence_factor
                ),
            });
            return;
        }
        // Stagnation: no meaningful improvement over the best-so-far for
        // a full window of monitored iterations.
        if residual < st.best * 0.999 {
            st.best = residual;
            st.since_best = 0;
        } else {
            st.since_best += 1;
            if self.stagnation_window > 0 && st.since_best >= self.stagnation_window {
                st.detection = Some(Detection {
                    kind: DetectionKind::Stagnation,
                    iteration,
                    residual,
                    detail: format!(
                        "no improvement on best {best:.3e} for {n} iterations",
                        best = st.best,
                        n = st.since_best
                    ),
                });
            }
        }
    }

    /// Has any detector fired this attempt?
    pub fn tripped(&self) -> bool {
        self.state.borrow().detection.is_some()
    }

    /// The detection that tripped the sentinel, if any.
    pub fn detection(&self) -> Option<Detection> {
        self.state.borrow().detection.clone()
    }

    /// Emit the loop-abort hook: a host callback (zero device cycles)
    /// that forces the loop-continue predicate scalar to false once the
    /// sentinel has tripped. Called by solvers inside their `while`
    /// condition, after assigning `pred`; because *every* enclosing loop
    /// re-evaluates its own hooked condition, one trip unwinds the whole
    /// solver nest within one sweep of condition checks.
    pub fn emit_abort_hook(&self, ctx: &mut DslCtx, pred: TensorRef) {
        let s = self.clone();
        let pid = pred.id;
        ctx.callback(move |view| {
            if s.poll_deadline() || s.tripped() {
                view.write_f64(pid, &[0.0]);
            }
        });
    }
}

// ----------------------------------------------------------------------
// Checkpointer — periodic solution snapshots for rollback
// ----------------------------------------------------------------------

/// Device tensors backing one solver's checkpoint stream.
#[derive(Clone, Copy)]
pub struct CheckpointTensors {
    /// Device copy of the solution at the last checkpoint.
    pub chk: TensorRef,
    /// Next iteration count at which to checkpoint (f32 scalar).
    pub next: TensorRef,
    /// Scratch predicate: "a checkpoint is due this iteration".
    pub due: TensorRef,
}

/// Periodic checkpoints of the solution vector. The device copy runs
/// under a `checkpoint` label (its cycles are the measurable overhead);
/// a host callback mirrors each snapshot so rollback works even after
/// the engine that produced it is gone.
#[derive(Clone)]
pub struct Checkpointer {
    /// Checkpoint every `every` solver iterations (> 0).
    every: u32,
    /// Last snapshot whose values were all finite (device element order).
    snapshot: Rc<RefCell<Option<Vec<f64>>>>,
    /// Snapshots taken (including non-finite ones that were discarded).
    count: Rc<RefCell<u64>>,
}

impl Checkpointer {
    pub fn new(every: u32) -> Checkpointer {
        assert!(every > 0, "checkpoint interval must be positive");
        Checkpointer {
            every,
            snapshot: Rc::new(RefCell::new(None)),
            count: Rc::new(RefCell::new(0)),
        }
    }

    /// Allocate the checkpoint tensors. Call once per solve site, before
    /// the iteration loop. `dtype` must match the solution tensor that
    /// will be checkpointed.
    pub fn setup(&self, ctx: &mut DslCtx, sys: &DistSystem, dtype: DType) -> CheckpointTensors {
        let chk = sys.new_vector(ctx, "chk_x", dtype);
        let next = ctx.scalar("chk_next", DType::F32);
        let due = ctx.scalar("chk_due", DType::Bool);
        ctx.assign(next, TExpr::c_f32(self.every as f32));
        CheckpointTensors { chk, next, due }
    }

    /// Emit one loop-body checkpoint step: when the iteration counter
    /// reaches the next checkpoint mark, copy `x` into the checkpoint
    /// tensor (labelled `checkpoint`) and mirror it to the host.
    pub fn emit_step(
        &self,
        ctx: &mut DslCtx,
        st: &CheckpointTensors,
        x: TensorRef,
        iter: TensorRef,
    ) {
        ctx.assign(st.due, st.next.ex().le(iter.ex()));
        let every = self.every as f32;
        let me = self.clone();
        let chk_id = st.chk.id;
        ctx.if_(st.due, |ctx| {
            ctx.label("checkpoint", |ctx| {
                ctx.copy(x, st.chk);
                ctx.assign(st.next, st.next + every);
            });
            ctx.callback(move |view| {
                let snap = view.read_f64(chk_id);
                *me.count.borrow_mut() += 1;
                if snap.iter().all(|v| v.is_finite()) {
                    *me.snapshot.borrow_mut() = Some(snap);
                }
            });
        });
    }

    /// Last finite snapshot, in device element order.
    pub fn snapshot(&self) -> Option<Vec<f64>> {
        self.snapshot.borrow().clone()
    }

    /// Snapshots taken (finite or not).
    pub fn count(&self) -> u64 {
        *self.count.borrow()
    }
}

// ----------------------------------------------------------------------
// Backoff — seeded, jittered exponential retry delays
// ----------------------------------------------------------------------

/// The splitmix64 mixing function (same constants as
/// `ipu_sim::fault` and `sparse::fingerprint`): a stateless, uniform
/// 64-bit mix used wherever this crate needs deterministic
/// pseudo-randomness that replays bit-identically under a fixed seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Jittered exponential backoff between retry attempts, plus a total
/// wall-clock retry budget. Default-inert: `base_ms == 0` means no
/// delays and no budget, so existing solves are byte-identical.
///
/// The delay for retry `k` (0-based) is
/// `min(max_ms, base_ms * factor^k)`, scaled by a jitter factor drawn
/// uniformly from `[1 - jitter, 1 + jitter)` via splitmix64 of
/// `(seed, k)` — a pure function of the seed and the retry index, so a
/// replay under the same seed sleeps the exact same schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry, in milliseconds. 0 disables
    /// backoff entirely (no sleeps, no budget enforcement).
    pub base_ms: u64,
    /// Multiplier applied per subsequent retry (>= 1.0).
    pub factor: f64,
    /// Ceiling on any single delay, in milliseconds.
    pub max_ms: u64,
    /// Fraction of each delay randomised, in `[0, 1]`. 0: deterministic
    /// un-jittered delays (still deterministic *with* jitter — the
    /// jitter stream is seeded).
    pub jitter: f64,
    /// splitmix64 seed for the jitter stream.
    pub seed: u64,
    /// Total wall-clock budget for the whole retry loop, in
    /// milliseconds, measured from solve entry. Once elapsed time
    /// crosses it, the runner stops retrying and returns the
    /// detection's typed error. 0: unlimited.
    pub budget_ms: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff { base_ms: 0, factor: 2.0, max_ms: 10_000, jitter: 0.0, seed: 0, budget_ms: 0 }
    }
}

impl Backoff {
    /// Are delays (and the budget) active at all?
    pub fn enabled(&self) -> bool {
        self.base_ms > 0
    }

    /// Re-seed the jitter stream (builder style).
    pub fn with_seed(mut self, seed: u64) -> Backoff {
        self.seed = seed;
        self
    }

    /// The delay before 0-based retry `retry`, in milliseconds. Pure:
    /// same `(self, retry)` → same answer, always.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let raw = self.base_ms as f64 * self.factor.max(1.0).powi(retry as i32);
        let capped = raw.min(self.max_ms as f64);
        let j = self.jitter.clamp(0.0, 1.0);
        if j == 0.0 {
            return capped.round() as u64;
        }
        let bits = splitmix64(self.seed ^ splitmix64(retry as u64));
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (capped * (1.0 - j + 2.0 * j * unit)).round() as u64
    }

    /// Has the total retry budget been spent?
    pub fn budget_exhausted(&self, elapsed: Duration) -> bool {
        self.enabled() && self.budget_ms > 0 && elapsed.as_millis() as u64 >= self.budget_ms
    }
}

// ----------------------------------------------------------------------
// Recovery policy + degradation ladder
// ----------------------------------------------------------------------

/// How aggressively a solve detects trouble and tries to recover.
///
/// The default policy is inert — no detectors, no checkpoints, no
/// retries — and leaves the emitted program bit-identical to a build
/// without this module. [`RecoveryPolicy::resilient`] is the
/// fault-tolerant profile the runner auto-selects when a fault plan is
/// active.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Rollback-and-restart budget *per configuration rung*.
    pub max_restarts: u32,
    /// Total degradation steps across the whole solve.
    pub max_degradations: u32,
    /// Checkpoint the solution every this many solver iterations
    /// (0: no checkpoints; rollback restarts from the initial guess).
    pub checkpoint_every: u32,
    /// Trip the divergence detector when the monitored residual exceeds
    /// this factor × max(first residual, 1.0). `INFINITY`: disabled.
    pub divergence_factor: f64,
    /// Trip the stagnation detector after this many monitored iterations
    /// without improvement. 0: disabled.
    pub stagnation_window: usize,
    /// Treat a finite-but-above-tolerance finish as recoverable (retry /
    /// degrade) instead of returning `SolveStatus::MaxIters`.
    pub retry_on_tolerance_miss: bool,
    /// Delay schedule between retries plus the total wall-clock retry
    /// budget. Default-inert (no delays, no budget).
    pub backoff: Backoff,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_restarts: 0,
            max_degradations: 0,
            checkpoint_every: 0,
            divergence_factor: f64::INFINITY,
            stagnation_window: 0,
            retry_on_tolerance_miss: false,
            backoff: Backoff::default(),
        }
    }
}

impl RecoveryPolicy {
    /// The fault-tolerant profile: all detectors armed, periodic
    /// checkpoints, two restarts per rung, four degradation steps.
    pub fn resilient() -> RecoveryPolicy {
        RecoveryPolicy {
            max_restarts: 2,
            max_degradations: 4,
            checkpoint_every: 50,
            divergence_factor: 1e4,
            stagnation_window: 60,
            retry_on_tolerance_miss: true,
            backoff: Backoff::default(),
        }
    }

    /// Do any in-flight detectors need the sentinel wired into the
    /// solver program?
    pub fn wants_sentinel(&self) -> bool {
        self.divergence_factor.is_finite() || self.stagnation_window > 0
    }

    /// Does the policy ever retry at all? (If not, the runner skips all
    /// recovery bookkeeping.)
    pub fn wants_recovery(&self) -> bool {
        self.max_restarts > 0 || self.max_degradations > 0
    }
}

/// One step down the graceful-degradation ladder: a more robust (if
/// slower or less accurate) configuration, plus a human-readable
/// description of the step. `None` when the ladder is exhausted.
///
/// The ladder, applied innermost-first:
/// 1. strong preconditioners (ILU0/DILU/Gauss-Seidel/Chebyshev) step
///    down to damped Jacobi — factorisation-based preconditioners are
///    the most numerically fragile stage under corrupted state;
/// 2. Jacobi / Identity preconditioners are dropped entirely;
/// 3. MPIR escalates its extended precision (Working → DoubleWord →
///    EmulatedF64) once its inner chain is exhausted — more headroom
///    against rounding-driven stagnation, at higher per-op cost.
pub fn degrade(cfg: &SolverConfig) -> Option<(SolverConfig, String)> {
    use crate::solvers::ExtendedPrecision as P;
    match cfg {
        SolverConfig::Mpir { inner, precision, max_outer, rel_tol } => {
            if let Some((inner2, desc)) = degrade(inner) {
                return Some((
                    SolverConfig::Mpir {
                        inner: Box::new(inner2),
                        precision: *precision,
                        max_outer: *max_outer,
                        rel_tol: *rel_tol,
                    },
                    desc,
                ));
            }
            let next = match precision {
                P::Working => P::DoubleWord,
                P::DoubleWord => P::EmulatedF64,
                P::EmulatedF64 => return None,
            };
            Some((
                SolverConfig::Mpir {
                    inner: inner.clone(),
                    precision: next,
                    max_outer: *max_outer,
                    rel_tol: *rel_tol,
                },
                format!(
                    "mpir precision {} -> {}",
                    crate::config::precision_name(*precision),
                    crate::config::precision_name(next)
                ),
            ))
        }
        SolverConfig::BiCgStab { max_iters, rel_tol, precond } => {
            degrade_precond(precond).map(|(p, desc)| {
                (
                    SolverConfig::BiCgStab { max_iters: *max_iters, rel_tol: *rel_tol, precond: p },
                    desc,
                )
            })
        }
        SolverConfig::Cg { max_iters, rel_tol, precond } => {
            degrade_precond(precond).map(|(p, desc)| {
                (SolverConfig::Cg { max_iters: *max_iters, rel_tol: *rel_tol, precond: p }, desc)
            })
        }
        // Leaf smoothers have no more robust fallback.
        _ => None,
    }
}

fn degrade_precond(
    precond: &Option<Box<SolverConfig>>,
) -> Option<(Option<Box<SolverConfig>>, String)> {
    let p = precond.as_deref()?;
    match p {
        // Strong/factorisation preconditioners -> damped Jacobi.
        SolverConfig::Ilu0 {}
        | SolverConfig::Dilu {}
        | SolverConfig::GaussSeidel { .. }
        | SolverConfig::Chebyshev { .. }
        | SolverConfig::BiCgStab { .. }
        | SolverConfig::Cg { .. }
        | SolverConfig::Mpir { .. } => Some((
            Some(Box::new(SolverConfig::Jacobi { sweeps: 2, omega: 0.8 })),
            format!("preconditioner {} -> jacobi", config_tag(p)),
        )),
        // Weak preconditioners -> none.
        SolverConfig::Jacobi { .. } | SolverConfig::Identity => {
            Some((None, format!("preconditioner {} -> none", config_tag(p))))
        }
    }
}

/// Short wire-style tag for degradation messages.
fn config_tag(cfg: &SolverConfig) -> &'static str {
    match cfg {
        SolverConfig::Identity => "identity",
        SolverConfig::Jacobi { .. } => "jacobi",
        SolverConfig::GaussSeidel { .. } => "gauss_seidel",
        SolverConfig::Chebyshev { .. } => "chebyshev",
        SolverConfig::Ilu0 {} => "ilu0",
        SolverConfig::Dilu {} => "dilu",
        SolverConfig::Cg { .. } => "cg",
        SolverConfig::BiCgStab { .. } => "bi_cg_stab",
        SolverConfig::Mpir { .. } => "mpir",
    }
}

/// The relative-residual tolerance a configuration promises, if any.
/// Fixed-iteration configs (`rel_tol = 0`) and pure smoothers return
/// `None` — they run a fixed budget, and "ran the budget" is success.
pub fn target_tolerance(cfg: &SolverConfig) -> Option<f64> {
    match cfg {
        SolverConfig::Mpir { rel_tol, .. } if *rel_tol > 0.0 => Some(*rel_tol),
        SolverConfig::BiCgStab { rel_tol, .. } | SolverConfig::Cg { rel_tol, .. }
            if *rel_tol > 0.0 =>
        {
            Some(*rel_tol as f64)
        }
        SolverConfig::GaussSeidel { rel_tol, .. } if *rel_tol > 0.0 => Some(*rel_tol as f64),
        _ => None,
    }
}

/// Validate a configuration tree before building anything, so bad
/// configs surface as [`SolveError::Config`] instead of panics inside
/// solver constructors.
pub fn validate_config(cfg: &SolverConfig) -> Result<(), SolveError> {
    match cfg {
        SolverConfig::Jacobi { sweeps, .. } | SolverConfig::GaussSeidel { sweeps, .. } => {
            if *sweeps == 0 {
                return Err(SolveError::Config(format!("{}: sweeps must be > 0", config_tag(cfg))));
            }
        }
        SolverConfig::Chebyshev { degree, .. } => {
            if *degree == 0 {
                return Err(SolveError::Config("chebyshev: degree must be > 0".into()));
            }
        }
        SolverConfig::BiCgStab { max_iters, precond, .. }
        | SolverConfig::Cg { max_iters, precond, .. } => {
            if *max_iters == 0 {
                return Err(SolveError::Config(format!(
                    "{}: max_iters must be > 0",
                    config_tag(cfg)
                )));
            }
            if let Some(p) = precond {
                validate_config(p)?;
            }
        }
        SolverConfig::Mpir { inner, max_outer, .. } => {
            if *max_outer == 0 {
                return Err(SolveError::Config("mpir: max_outer must be > 0".into()));
            }
            validate_config(inner)?;
        }
        SolverConfig::Identity | SolverConfig::Ilu0 {} | SolverConfig::Dilu {} => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::ExtendedPrecision;

    #[test]
    fn default_policy_is_inert() {
        let p = RecoveryPolicy::default();
        assert!(!p.wants_sentinel());
        assert!(!p.wants_recovery());
        assert_eq!(p.checkpoint_every, 0);
        assert!(!p.retry_on_tolerance_miss);
        let r = RecoveryPolicy::resilient();
        assert!(r.wants_sentinel());
        assert!(r.wants_recovery());
    }

    #[test]
    fn sentinel_trips_on_non_finite() {
        let s = Sentinel::new(f64::INFINITY, 0);
        s.observe(1, 0.5);
        assert!(!s.tripped());
        s.observe(2, f64::NAN);
        let d = s.detection().unwrap();
        assert_eq!(d.kind, DetectionKind::NonFinite);
        assert_eq!(d.iteration, 2);
        // Trips once; later (even healthy) samples don't overwrite it.
        s.observe(3, 0.1);
        assert_eq!(s.detection().unwrap().kind, DetectionKind::NonFinite);
    }

    #[test]
    fn sentinel_trips_on_divergence_relative_to_baseline() {
        let s = Sentinel::new(100.0, 0);
        s.observe(1, 2.0);
        s.observe(2, 150.0); // 75x baseline: fine
        assert!(!s.tripped());
        s.observe(3, 250.0); // 125x baseline: diverged
        let d = s.detection().unwrap();
        assert_eq!(d.kind, DetectionKind::Divergence);
        assert_eq!(d.residual, 250.0);
    }

    #[test]
    fn sentinel_divergence_floor_protects_good_guesses() {
        // Baseline 1e-12: ceiling is factor * 1.0, not factor * 1e-12.
        let s = Sentinel::new(100.0, 0);
        s.observe(1, 1e-12);
        s.observe(2, 1e-6); // a million times the baseline, still tiny
        assert!(!s.tripped());
        s.observe(3, 200.0);
        assert!(s.tripped());
    }

    #[test]
    fn sentinel_trips_on_stagnation() {
        let s = Sentinel::new(f64::INFINITY, 3);
        s.observe(1, 1.0);
        s.observe(2, 0.5); // improvement resets the window
        s.observe(3, 0.5);
        s.observe(4, 0.5);
        assert!(!s.tripped());
        s.observe(5, 0.5);
        let d = s.detection().unwrap();
        assert_eq!(d.kind, DetectionKind::Stagnation);
    }

    #[test]
    fn degradation_ladder_is_bounded_and_ordered() {
        // ILU-preconditioned BiCGStab: ilu0 -> jacobi -> none -> exhausted.
        let cfg = SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let (c1, d1) = degrade(&cfg).unwrap();
        assert!(d1.contains("ilu0 -> jacobi"), "{d1}");
        let (c2, d2) = degrade(&c1).unwrap();
        assert!(d2.contains("jacobi -> none"), "{d2}");
        assert!(degrade(&c2).is_none(), "{c2:?}");
    }

    #[test]
    fn degradation_of_mpir_degrades_inner_first_then_escalates_precision() {
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: 40,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: ExtendedPrecision::DoubleWord,
            max_outer: 8,
            rel_tol: 1e-11,
        };
        let steps: Vec<String> =
            std::iter::successors(degrade(&cfg).map(|(c, d)| (c, d)), |(c, _)| degrade(c))
                .map(|(_, d)| d)
                .collect();
        assert_eq!(
            steps,
            vec![
                "preconditioner ilu0 -> jacobi".to_string(),
                "preconditioner jacobi -> none".to_string(),
                "mpir precision double_word -> emulated_f64".to_string(),
            ]
        );
    }

    #[test]
    fn target_tolerance_follows_the_outermost_config() {
        assert_eq!(
            target_tolerance(&SolverConfig::BiCgStab {
                max_iters: 10,
                rel_tol: 1e-6,
                precond: None
            }),
            Some(1e-6f32 as f64)
        );
        assert_eq!(
            target_tolerance(&SolverConfig::BiCgStab {
                max_iters: 10,
                rel_tol: 0.0,
                precond: None
            }),
            None
        );
        assert_eq!(target_tolerance(&SolverConfig::Ilu0 {}), None);
    }

    #[test]
    fn validate_rejects_zero_budgets() {
        assert!(matches!(
            validate_config(&SolverConfig::BiCgStab { max_iters: 0, rel_tol: 0.0, precond: None }),
            Err(SolveError::Config(_))
        ));
        assert!(matches!(
            validate_config(&SolverConfig::Cg {
                max_iters: 10,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Jacobi { sweeps: 0, omega: 0.5 })),
            }),
            Err(SolveError::Config(_))
        ));
        assert!(validate_config(&SolverConfig::paper_default(100, 20, 1e-13)).is_ok());
    }

    #[test]
    fn backoff_default_is_inert() {
        let b = Backoff::default();
        assert!(!b.enabled());
        assert_eq!(b.delay_ms(0), 0);
        assert_eq!(b.delay_ms(7), 0);
        assert!(!b.budget_exhausted(Duration::from_secs(3600)));
        // The default policy embeds the inert backoff.
        assert_eq!(RecoveryPolicy::default().backoff, Backoff::default());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let b = Backoff { base_ms: 10, factor: 2.0, max_ms: 55, ..Backoff::default() };
        assert_eq!(b.delay_ms(0), 10);
        assert_eq!(b.delay_ms(1), 20);
        assert_eq!(b.delay_ms(2), 40);
        assert_eq!(b.delay_ms(3), 55); // capped, not 80
        assert_eq!(b.delay_ms(9), 55);
    }

    #[test]
    fn backoff_jitter_is_seed_deterministic_and_bounded() {
        let b = Backoff { base_ms: 100, jitter: 0.5, seed: 42, ..Backoff::default() };
        for retry in 0..16 {
            let d = b.delay_ms(retry);
            assert_eq!(d, b.clone().delay_ms(retry), "replay must be bit-identical");
            let raw = (100.0 * 2f64.powi(retry as i32)).min(10_000.0);
            assert!(d as f64 >= (raw * 0.5).floor() && d as f64 <= (raw * 1.5).ceil(), "{d}");
        }
        // A different seed gives a different schedule somewhere.
        let b2 = b.clone().with_seed(43);
        assert!((0..16).any(|r| b.delay_ms(r) != b2.delay_ms(r)));
    }

    #[test]
    fn backoff_budget_tracks_elapsed_wall_clock() {
        let b = Backoff { base_ms: 5, budget_ms: 100, ..Backoff::default() };
        assert!(!b.budget_exhausted(Duration::from_millis(99)));
        assert!(b.budget_exhausted(Duration::from_millis(100)));
        // No budget configured: never exhausted.
        let b = Backoff { base_ms: 5, budget_ms: 0, ..Backoff::default() };
        assert!(!b.budget_exhausted(Duration::from_secs(10)));
    }

    #[test]
    fn sentinel_deadline_trips_once_past_the_cutoff() {
        let s = Sentinel::new(f64::INFINITY, 0)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(s.poll_deadline());
        let d = s.detection().unwrap();
        assert_eq!(d.kind, DetectionKind::Deadline);
        // A healthy sample doesn't clear it.
        s.observe(1, 0.5);
        assert_eq!(s.detection().unwrap().kind, DetectionKind::Deadline);

        let s = Sentinel::new(f64::INFINITY, 0)
            .with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!s.poll_deadline());
        s.observe(1, 0.5);
        assert!(!s.tripped());
    }

    #[test]
    fn sentinel_observe_polls_the_deadline() {
        let s = Sentinel::new(f64::INFINITY, 0)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        s.observe(3, 0.25);
        assert_eq!(s.detection().unwrap().kind, DetectionKind::Deadline);
    }

    #[test]
    fn solve_errors_display_useful_messages() {
        let e = SolveError::Diverged { attempt: 2, residual: 1e8 };
        assert!(e.to_string().contains("1.000e8") || e.to_string().contains("diverged"));
        let e = SolveError::ToleranceNotReached { residual: 1e-3, target: 1e-6, attempts: 3 };
        assert!(e.to_string().contains("3 attempt"));
    }
}
