//! The one-call host API.
//!
//! [`solve`] performs the full pipeline of the paper's Figure 2: partition
//! the matrix, build the distributed system, symbolically execute the
//! configured solver into a graph program, compile, upload, run on the
//! simulated device, and gather results and profiling data back.
//!
//! Failures are structured ([`SolveError`]), and when a
//! [`RecoveryPolicy`] (or an active fault plan, which auto-selects
//! [`RecoveryPolicy::resilient`]) arms the detectors, the runner drives
//! the detect → rollback → restart → degrade state machine of
//! [`crate::resilience`]: each *attempt* is one full device run; a
//! detection rolls back to the last finite checkpoint and retries, first
//! with the same configuration (up to `max_restarts` per rung), then down
//! the degradation ladder (up to `max_degradations` steps), before the
//! detection's typed error is returned. Everything that happened is
//! stamped into the report's `resilience` section.

use std::rc::Rc;
use std::time::Instant;

use dsl::prelude::*;
use graph::{ExecutorKind, FaultState};
use ipu_sim::clock::CycleStats;
use ipu_sim::fault::FaultPlan;
use profile::{DetectionRecord, PerfReport, Resilience, SolveReport, TraceRecorder};
use sparse::formats::CsrMatrix;
use sparse::partition::Partition;

use crate::config::SolverConfig;
use crate::dist::DistSystem;
use crate::resilience::{
    degrade, target_tolerance, validate_config, Checkpointer, Detection, DetectionKind,
    RecoveryPolicy, Sentinel, SolveError, SolveStatus,
};
use crate::solvers::{solver_from_config, BiCgStab, Cg, Monitor, Mpir};

/// Options controlling partitioning, machine size and instrumentation.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// The machine to simulate.
    pub model: IpuModel,
    /// Tiles to use (`None`: one tile per ~`rows_per_tile` rows, capped by
    /// the machine).
    pub tiles: Option<usize>,
    /// Target rows per tile when `tiles` is `None`.
    pub rows_per_tile: usize,
    /// Record the true relative residual after every solver iteration
    /// (host callbacks; free in device time, costly in wall time).
    pub record_history: bool,
    /// Optional geometric partition (for structured-grid problems);
    /// falls back to nnz-balanced contiguous blocks.
    pub partition: Option<Partition>,
    /// Initial guess (zeros if `None`).
    pub x0: Option<Vec<f64>>,
    /// Host executor for the simulated device (`None`: whatever
    /// `GRAPHENE_PAR` selects, sequential when unset). The choice affects
    /// host wall-clock only — results, `CycleStats` and traces are
    /// bit-identical across executors.
    pub executor: Option<ExecutorKind>,
    /// Run the graph compiler's optimisation passes (`None`: whatever
    /// `GRAPHENE_NO_OPT` selects, optimised when unset). Optimisation
    /// affects host dispatch overhead only — results and `CycleStats` are
    /// bit-identical either way.
    pub optimise: Option<bool>,
    /// Run the legacy tree-walking interpreter instead of the compiled
    /// plan (`None`: whatever `GRAPHENE_LEGACY_INTERP` selects).
    /// Differential testing only.
    pub legacy_interpreter: Option<bool>,
    /// Whether the native executor may dispatch fused kernels (`None`:
    /// whatever `GRAPHENE_NATIVE` selects, enabled when unset). `Some(false)`
    /// keeps [`ExecutorKind::Native`] selected but forces the interpreter
    /// fallback for every codelet — the differential-testing leg.
    pub native_fusion: Option<bool>,
    /// Deterministic hardware fault injection (`None`: whatever
    /// `GRAPHENE_FAULTS` selects, no faults when unset). See
    /// `ipu_sim::fault::FaultPlan` for the spec grammar.
    pub faults: Option<FaultPlan>,
    /// Detection/recovery policy (`None`: [`RecoveryPolicy::resilient`]
    /// when a fault plan is active, the inert default otherwise).
    pub recovery: Option<RecoveryPolicy>,
    /// Cost-model auto-tuning (`None`: whatever `GRAPHENE_TUNE` selects,
    /// off when unset). When on and no explicit `partition` is given, the
    /// tuner searches partition strategy x rows-per-tile x pass toggles by
    /// modelled probe cycles and applies the winner; decisions are cached
    /// on disk keyed by matrix structure (see [`crate::autotune`]).
    pub tune: Option<bool>,
    /// Plan-cache directory override for tuning (`None`: whatever
    /// `GRAPHENE_TUNE_CACHE` selects, `.graphene-cache/` when unset).
    pub tune_cache: Option<std::path::PathBuf>,
    /// The structured grid behind the matrix, if any: lets the tuner
    /// consider geometric `Partition::grid_3d_auto` candidates. Ignored
    /// (with a silent fallback to the algebraic families) when its cell
    /// count does not match the matrix.
    pub grid: Option<sparse::gen::Grid3>,
    /// Backend to run the solve on (`None`: whatever `GRAPHENE_BACKEND`
    /// selects, the IPU simulator when unset). `ipu-sim:<variant>` pins
    /// the host executor (conflicting with an explicit `executor` /
    /// `legacy_interpreter` pin is a [`SolveError::Config`]); `cpu`,
    /// `cpu:par` and `gpu-model` dispatch to the baseline backends via
    /// [`crate::backends`] — same report schema, their own timing domain.
    /// The env selector only applies when `executor`,
    /// `legacy_interpreter` and `native_fusion` are all left open, so
    /// explicitly pinned engine options keep their meaning unchanged.
    pub backend: Option<backend::BackendSpec>,
    /// Wall-clock budget for the whole solve, measured from `solve()`
    /// entry (`None`: unlimited — the default, byte-identical to before
    /// this option existed). Enforced mid-run via the [`Sentinel`]'s
    /// host-callback abort: past the cutoff, the device loop unwinds at
    /// the next superstep and the solve returns
    /// [`SolveError::DeadlineExceeded`]. Deadlines are terminal — the
    /// recovery loop never restarts or degrades past one.
    pub deadline: Option<std::time::Duration>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            model: IpuModel::mk2(),
            tiles: None,
            rows_per_tile: 64,
            record_history: true,
            partition: None,
            x0: None,
            executor: None,
            optimise: None,
            legacy_interpreter: None,
            native_fusion: None,
            faults: None,
            recovery: None,
            tune: None,
            tune_cache: None,
            grid: None,
            backend: None,
            deadline: None,
        }
    }
}

impl SolveOptions {
    fn pick_tiles(&self, rows: usize) -> usize {
        let by_rows = rows.div_ceil(self.rows_per_tile).max(1);
        self.tiles.unwrap_or(by_rows).min(self.model.num_tiles()).min(rows)
    }
}

/// The outcome of a solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The solution in global row order (extended precision when MPIR ran).
    pub x: Vec<f64>,
    /// True relative residual ‖b−Ax‖/‖b‖ of the returned solution (f64).
    pub residual: f64,
    /// (iteration, true relative residual) samples, if recorded.
    pub history: Vec<(usize, f64)>,
    /// Inner iterations executed (final attempt).
    pub iterations: usize,
    /// Device profile (final attempt).
    pub stats: CycleStats,
    /// Device time in seconds at the machine's clock (final attempt).
    pub seconds: f64,
    /// How the solve ended; `Recovered` means at least one rollback
    /// restart or degradation step preceded the healthy finish.
    pub status: SolveStatus,
    /// Machine-readable profile + convergence record of this solve;
    /// label totals partition `stats.device_cycles()` exactly. Carries a
    /// `resilience` section when faults or recovery were in play.
    pub report: SolveReport,
}

/// Everything one device run produced, before judgement.
struct Attempt {
    x: Vec<f64>,
    residual: f64,
    history: Vec<(usize, f64)>,
    iterations: usize,
    stats: CycleStats,
    seconds: f64,
    host_seconds: f64,
    executor: String,
    /// Whether the legacy tree-walking interpreter ran this attempt.
    legacy: bool,
    compile: profile::CompileReport,
    /// Sentinel detection that tripped mid-run, if any.
    detection: Option<Detection>,
    /// Last finite checkpoint, already mapped to global row order.
    snapshot_global: Option<Vec<f64>>,
    checkpoints: u64,
    checkpoint_cycles: u64,
    /// Per-step performance attribution (absent under the legacy
    /// interpreter, which has no plan step ids).
    perf: Option<PerfReport>,
}

/// What the post-attempt judge decided.
enum Verdict {
    /// Accept the attempt's result with this status.
    Accept(SolveStatus),
    /// A detector fired; recover if the policy's budget allows.
    Recover(Detection),
}

/// Safety factor on the configured tolerance when judging the *host-side*
/// residual: the device converges on its recursive f32 residual, whose
/// floor sits slightly above the true residual the host recomputes.
/// Public so independent judges (the serve layer's SDC check, the
/// resilience bench) apply exactly the acceptance threshold the runner
/// does.
pub const TOLERANCE_SAFETY: f64 = 100.0;

/// Solve `A x = b` with the configured solver hierarchy on the simulated
/// IPU. `opts.x0` is the initial guess (zeros if `None`).
///
/// Returns a structured [`SolveError`] instead of panicking on invalid
/// inputs, compile failures, or detected-but-unrecoverable numerical
/// trouble. A successful return is *judged*: when the configuration
/// promises a tolerance, the host-recomputed true residual met it (up to
/// a fixed safety factor) — a corrupted run cannot return `Ok` with a
/// silently wrong solution.
pub fn solve(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
    opts: &SolveOptions,
) -> Result<SolveResult, SolveError> {
    // Wall-clock origin for the deadline and the retry budget. Both are
    // measured from entry, so time spent queued before `solve()` is the
    // caller's to account for (the serve layer passes *remaining* time).
    let solve_start = Instant::now();
    let deadline_at = opts.deadline.map(|d| solve_start + d);

    // ---- Validation: typed errors instead of panics. -----------------
    if a.nrows != b.len() {
        return Err(SolveError::Config(format!(
            "matrix has {} rows but b has {} entries",
            a.nrows,
            b.len()
        )));
    }
    if a.nrows != a.ncols {
        return Err(SolveError::Config(format!("matrix is {}x{}, not square", a.nrows, a.ncols)));
    }
    validate_config(config)?;
    if let Some(p) = &opts.partition {
        if p.num_rows() != a.nrows {
            return Err(SolveError::Config(format!(
                "partition covers {} rows but matrix has {}",
                p.num_rows(),
                a.nrows
            )));
        }
    }
    if let Some(x0) = &opts.x0 {
        if x0.len() != a.nrows {
            return Err(SolveError::Config(format!(
                "x0 has {} entries but matrix has {} rows",
                x0.len(),
                a.nrows
            )));
        }
    }

    // An already-expired deadline never runs the device at all.
    if deadline_at.is_some_and(|at| Instant::now() >= at) {
        return Err(deadline_error(solve_start, opts.deadline));
    }

    // ---- Degenerate systems: answer on the host, no device run. ------
    if a.nrows == 0 {
        return Ok(trivial_result(config, &a, SolveStatus::Converged, Vec::new(), 0.0));
    }
    if a.nrows == 1 {
        // Solve in f64 against the f32-rounded value the device would see.
        let a00 = a.values.first().copied().unwrap_or(0.0) as f32 as f64;
        let b0 = b[0] as f32 as f64;
        if a00 == 0.0 {
            if b0 != 0.0 {
                return Err(SolveError::Breakdown(
                    "singular 1x1 system: A[0,0] = 0 with b != 0".into(),
                ));
            }
            return Ok(trivial_result(config, &a, SolveStatus::Converged, vec![0.0], 0.0));
        }
        let x = b0 / a00;
        let residual = if b0 != 0.0 { ((b0 - a00 * x) / b0).abs() } else { 0.0 };
        return Ok(trivial_result(config, &a, SolveStatus::Converged, vec![x], residual));
    }

    // ---- Backend dispatch (SolveOptions::backend / GRAPHENE_BACKEND). -
    let spec = match opts.backend {
        Some(s) => Some(s),
        // The env-level selector applies only when the caller left every
        // engine-level pin open: explicit `executor` /
        // `legacy_interpreter` / `native_fusion` options keep their
        // historical meaning regardless of the environment.
        None if opts.executor.is_none()
            && opts.legacy_interpreter.is_none()
            && opts.native_fusion.is_none() =>
        {
            backend::BackendSpec::from_env().map_err(SolveError::Config)?
        }
        None => None,
    };
    let pinned;
    let opts = match spec {
        Some(s @ (backend::BackendSpec::Cpu { .. } | backend::BackendSpec::GpuModel)) => {
            return crate::backends::external_solve(s, a, b, config, opts);
        }
        Some(backend::BackendSpec::IpuSim(variant)) => {
            pinned = pin_ipu_variant(opts, variant)?;
            &pinned
        }
        None => opts,
    };

    // ---- Fault plan + recovery policy. -------------------------------
    let fault_plan = match &opts.faults {
        Some(p) => Some(p.clone()),
        None => FaultPlan::from_env().map_err(SolveError::Config)?,
    };
    let policy = opts.recovery.clone().unwrap_or_else(|| {
        if fault_plan.is_some() {
            RecoveryPolicy::resilient()
        } else {
            RecoveryPolicy::default()
        }
    });
    // One FaultState for the whole solve: one-shot faults that fired in a
    // rolled-back attempt stay fired (transient faults don't replay), and
    // the event log accumulates across attempts.
    let mut fault_state =
        fault_plan.as_ref().map(|p| FaultState::new(p.clone(), opts.model.num_tiles()));

    // ---- Auto-tuning (opt-in; zero behaviour change when off). -------
    let tune_on = match opts.tune {
        Some(b) => b,
        None => crate::autotune::tune_enabled_from_env()?,
    };
    let decision = if tune_on && opts.partition.is_none() {
        Some(crate::autotune::tune(&a, config, opts)?)
    } else {
        None
    };
    let (tiles, part) = match &decision {
        Some(d) => (d.tiles, d.partition.clone()),
        None => {
            let tiles = opts.pick_tiles(a.nrows);
            let part = match &opts.partition {
                Some(p) => p.clone(),
                None => Partition::balanced_by_nnz(&a, tiles),
            };
            (tiles, part)
        }
    };
    // The tuned pass toggle applies only when the caller left it open
    // (a pinned toggle already constrained the search to its own value).
    let eff_opts = match &decision {
        Some(d) if opts.optimise.is_none() => {
            let mut o = opts.clone();
            o.optimise = Some(d.optimise);
            o
        }
        _ => opts.clone(),
    };
    let opts = &eff_opts;

    // ---- The attempt loop. -------------------------------------------
    let mut cfg = config.clone();
    let mut x0 = opts.x0.clone();
    let mut attempts: u32 = 0;
    let mut restarts_total: u32 = 0;
    let mut restarts_this_rung: u32 = 0;
    let mut degradations: Vec<String> = Vec::new();
    let mut detections: Vec<DetectionRecord> = Vec::new();
    let mut checkpoints_total: u64 = 0;
    let mut total_device_cycles: u64 = 0;

    loop {
        attempts += 1;
        if deadline_at.is_some_and(|at| Instant::now() >= at) {
            return Err(deadline_error(solve_start, opts.deadline));
        }
        let att = run_attempt(
            &a,
            b,
            &cfg,
            opts,
            &part,
            tiles,
            &policy,
            x0.as_deref(),
            deadline_at,
            &mut fault_state,
        )?;
        checkpoints_total += att.checkpoints;
        total_device_cycles += att.stats.device_cycles();

        match judge(&att, &cfg, &policy) {
            Verdict::Accept(status) => {
                let status = if attempts > 1 { SolveStatus::Recovered } else { status };
                let stamp = fault_plan.is_some()
                    || attempts > 1
                    || !detections.is_empty()
                    || checkpoints_total > 0;
                let mut report = SolveReport::new("solve").with_stats(&att.stats);
                report.solver = cfg.to_value();
                report.n = a.nrows;
                report.nnz = a.nnz();
                report.tiles = tiles;
                report.iterations = att.iterations;
                report.final_residual = att.residual;
                report.seconds = att.seconds;
                report.host_seconds = att.host_seconds;
                report.executor = att.executor.clone();
                report.history = att.history.clone();
                // Schema-v3 backend section: which device family ran this
                // solve and in which timing domain its seconds live.
                let variant = if att.legacy {
                    "legacy"
                } else {
                    match att.executor.as_str() {
                        "parallel" => "par",
                        "native" => "native",
                        _ => "seq",
                    }
                };
                report.backend = Some(profile::BackendInfo {
                    name: format!("ipu-sim:{variant}"),
                    family: "ipu-sim".to_string(),
                    timing: "cycle-model".to_string(),
                    seconds: att.seconds,
                });
                let mut compile = att.compile.clone();
                if let Some(d) = &decision {
                    compile.passes.push(d.pass_stat());
                }
                report.compile = Some(compile);
                report.perf = att.perf.clone().map(|mut p| {
                    // Host-side solve metrics live in the perf section's
                    // registry; device attribution stays deterministic
                    // (see `PerfReport::attribution_json`).
                    let m = &mut p.metrics;
                    m.counter_add("solve.attempts", attempts as u64);
                    m.counter_add("solve.restarts", restarts_total as u64);
                    m.counter_add("solve.degradations", degradations.len() as u64);
                    m.counter_add("solve.detections", detections.len() as u64);
                    m.counter_add("solve.checkpoints", checkpoints_total);
                    m.gauge_set("solve.iterations", att.iterations as f64);
                    m.gauge_set("solve.final_residual", att.residual);
                    if let Some(d) = &decision {
                        m.counter_add("tune.cache_hits", d.cache_hit as u64);
                        m.counter_add("tune.cache_misses", (!d.cache_hit) as u64);
                        m.counter_add("tune.candidates_scored", d.candidates_scored as u64);
                        m.counter_add("tune.search_micros", d.search_micros);
                        m.gauge_set("tune.modelled_cycles", d.plan.modelled_cycles as f64);
                        m.gauge_set("tune.default_cycles", d.plan.default_cycles as f64);
                    }
                    if let Some(sel) = att.compile.pass("native-kernel-selection") {
                        m.counter_add("native.codelets_total", sel.counter("codelets_total"));
                        m.counter_add("native.codelets_fused", sel.counter("codelets_fused"));
                    }
                    m.observe(
                        "solve.host_seconds",
                        &[1e-3, 1e-2, 1e-1, 1.0, 10.0],
                        att.host_seconds,
                    );
                    p
                });
                if stamp {
                    report.resilience = Some(Resilience {
                        status: status.name().to_string(),
                        attempts,
                        restarts: restarts_total,
                        degradations: degradations.clone(),
                        faults_injected: fault_state
                            .as_ref()
                            .map(|f| f.log().to_vec())
                            .unwrap_or_default(),
                        detections: detections.clone(),
                        checkpoints: checkpoints_total,
                        checkpoint_cycles: att.checkpoint_cycles,
                        total_device_cycles,
                    });
                }
                return Ok(SolveResult {
                    x: att.x,
                    residual: att.residual,
                    history: att.history,
                    iterations: att.iterations,
                    stats: att.stats,
                    seconds: att.seconds,
                    status,
                    report,
                });
            }
            Verdict::Recover(det) => {
                detections.push(DetectionRecord {
                    attempt: attempts,
                    kind: det.kind.name().to_string(),
                    iteration: det.iteration,
                    residual: det.residual,
                    detail: det.detail.clone(),
                });
                // Deadlines are terminal: the budget is wall-clock, so
                // another attempt can only finish even later.
                if det.kind == DetectionKind::Deadline {
                    return Err(deadline_error(solve_start, opts.deadline));
                }
                // The retry budget is wall-clock too (satellite: total
                // retry budget on the backoff schedule).
                let spent = policy.backoff.budget_exhausted(solve_start.elapsed());
                // Roll back to the last finite checkpoint (else the
                // caller's initial guess).
                let rollback = att.snapshot_global.clone().or_else(|| opts.x0.clone());
                if !spent && restarts_this_rung < policy.max_restarts {
                    restarts_this_rung += 1;
                    restarts_total += 1;
                    x0 = rollback;
                    backoff_sleep(&policy, attempts - 1, solve_start, deadline_at, opts)?;
                    continue;
                }
                if !spent && (degradations.len() as u32) < policy.max_degradations {
                    if let Some((next, desc)) = degrade(&cfg) {
                        cfg = next;
                        degradations.push(desc);
                        restarts_this_rung = 0;
                        x0 = rollback;
                        backoff_sleep(&policy, attempts - 1, solve_start, deadline_at, opts)?;
                        continue;
                    }
                }
                // Budget spent: surface the detection as a typed error.
                return Err(detection_error(&det, attempts, att.residual, &cfg));
            }
        }
    }
}

/// The typed error a spent recovery budget surfaces for a detection.
fn detection_error(
    det: &Detection,
    attempts: u32,
    residual: f64,
    cfg: &SolverConfig,
) -> SolveError {
    match det.kind {
        DetectionKind::NonFinite => SolveError::NonFinite { attempt: attempts },
        DetectionKind::Divergence => {
            SolveError::Diverged { attempt: attempts, residual: det.residual }
        }
        DetectionKind::Stagnation => SolveError::Stagnated { attempt: attempts },
        DetectionKind::ToleranceMiss => SolveError::ToleranceNotReached {
            residual,
            target: target_tolerance(cfg).unwrap_or(0.0),
            attempts,
        },
        // Deadline detections are returned via `deadline_error` (which
        // knows the solve's start time) before this mapping is reached.
        DetectionKind::Deadline => SolveError::DeadlineExceeded { elapsed_ms: 0, budget_ms: 0 },
    }
}

/// The [`SolveError::DeadlineExceeded`] for a solve that started at
/// `start` under the given budget.
fn deadline_error(start: Instant, budget: Option<std::time::Duration>) -> SolveError {
    SolveError::DeadlineExceeded {
        elapsed_ms: start.elapsed().as_millis() as u64,
        budget_ms: budget.map(|d| d.as_millis() as u64).unwrap_or(0),
    }
}

/// Sleep the policy's backoff delay before 0-based retry `retry`.
/// Default-inert (zero delay, zero syscalls); with a deadline armed, a
/// sleep that would cross the cutoff returns `DeadlineExceeded` instead
/// of sleeping into certain failure.
fn backoff_sleep(
    policy: &RecoveryPolicy,
    retry: u32,
    solve_start: Instant,
    deadline_at: Option<Instant>,
    opts: &SolveOptions,
) -> Result<(), SolveError> {
    let delay = policy.backoff.delay_ms(retry);
    if delay == 0 {
        return Ok(());
    }
    let delay = std::time::Duration::from_millis(delay);
    if let Some(at) = deadline_at {
        if Instant::now() + delay >= at {
            return Err(deadline_error(solve_start, opts.deadline));
        }
    }
    std::thread::sleep(delay);
    Ok(())
}

/// Pin the engine-level options an `ipu-sim:<variant>` backend selection
/// implies. An explicit *disagreeing* pin in the caller's options is a
/// configuration conflict, never a silent override.
fn pin_ipu_variant(
    opts: &SolveOptions,
    variant: backend::IpuVariant,
) -> Result<SolveOptions, SolveError> {
    use backend::IpuVariant as V;
    let name = backend::BackendSpec::IpuSim(variant).name();
    let want = match variant {
        V::Auto | V::Legacy => None,
        V::Seq => Some(ExecutorKind::Sequential),
        V::Par => Some(ExecutorKind::Parallel),
        V::Native => Some(ExecutorKind::Native),
    };
    if let (Some(w), Some(e)) = (want, opts.executor) {
        if w != e {
            return Err(SolveError::Config(format!(
                "backend `{name}` conflicts with explicit executor `{}`",
                e.name()
            )));
        }
    }
    if variant == V::Legacy && opts.legacy_interpreter == Some(false) {
        return Err(SolveError::Config(format!(
            "backend `{name}` conflicts with explicit legacy_interpreter = false"
        )));
    }
    if matches!(variant, V::Seq | V::Par | V::Native) && opts.legacy_interpreter == Some(true) {
        return Err(SolveError::Config(format!(
            "backend `{name}` conflicts with explicit legacy_interpreter = true"
        )));
    }
    let mut o = opts.clone();
    if let Some(w) = want {
        o.executor = Some(w);
    }
    if variant == V::Legacy {
        o.legacy_interpreter = Some(true);
    }
    Ok(o)
}

/// [`solve`], panicking with the error's `Display` on failure — the
/// drop-in shim for benches and examples that treat failure as fatal.
pub fn solve_or_panic(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
    opts: &SolveOptions,
) -> SolveResult {
    match solve(a, b, config, opts) {
        Ok(res) => res,
        Err(e) => panic!("solve failed: {e}"),
    }
}

/// Judge one finished attempt. Order matters:
/// 1. a non-finite solution or residual is always a detection;
/// 2. a finite result that meets the configured tolerance is accepted
///    even if a detector tripped late (the host-side residual is ground
///    truth, so this can never accept a wrong answer);
/// 3. an in-flight sentinel detection is honoured;
/// 4. otherwise the residual is weighed against the tolerance and the
///    policy's divergence factor. Configs without a tolerance run a
///    fixed budget — finishing it is success (`MaxIters`), as before.
fn judge(att: &Attempt, cfg: &SolverConfig, policy: &RecoveryPolicy) -> Verdict {
    if !att.residual.is_finite() || att.x.iter().any(|v| !v.is_finite()) {
        return Verdict::Recover(Detection {
            kind: DetectionKind::NonFinite,
            iteration: att.iterations,
            residual: f64::NAN,
            detail: "non-finite solution or residual after run".into(),
        });
    }
    let target = target_tolerance(cfg);
    if let Some(t) = target {
        if att.residual <= t * TOLERANCE_SAFETY {
            return Verdict::Accept(SolveStatus::Converged);
        }
    }
    if let Some(det) = &att.detection {
        return Verdict::Recover(det.clone());
    }
    match target {
        None => Verdict::Accept(SolveStatus::MaxIters),
        Some(t) => {
            if att.residual > policy.divergence_factor {
                Verdict::Recover(Detection {
                    kind: DetectionKind::Divergence,
                    iteration: 0,
                    residual: att.residual,
                    detail: format!(
                        "final residual {:.3e} beyond divergence factor {:.1e}",
                        att.residual, policy.divergence_factor
                    ),
                })
            } else if policy.retry_on_tolerance_miss {
                Verdict::Recover(Detection {
                    kind: DetectionKind::ToleranceMiss,
                    iteration: 0,
                    residual: att.residual,
                    detail: format!(
                        "residual {:.3e} above target {t:.1e} after full budget",
                        att.residual
                    ),
                })
            } else {
                Verdict::Accept(SolveStatus::MaxIters)
            }
        }
    }
}

/// One full device run: build, compile, execute, read back.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    a: &Rc<CsrMatrix>,
    b: &[f64],
    cfg: &SolverConfig,
    opts: &SolveOptions,
    part: &Partition,
    tiles: usize,
    policy: &RecoveryPolicy,
    x0: Option<&[f64]>,
    deadline_at: Option<Instant>,
    fault_state: &mut Option<FaultState>,
) -> Result<Attempt, SolveError> {
    let _ = tiles;
    let mut ctx = DslCtx::new(opts.model.clone());
    let sys = DistSystem::build(&mut ctx, a.clone(), part.clone());
    let bt = sys.new_vector(&mut ctx, "b", DType::F32);
    let xt = sys.new_vector(&mut ctx, "x", DType::F32);

    let b_rc = Rc::new(b.to_vec());
    let monitor = Monitor::new(&sys, b_rc.clone());
    // A deadline arms the sentinel even under an otherwise-inert policy:
    // its abort hook is what unwinds the device loop at the cutoff.
    let sentinel = (policy.wants_sentinel() || deadline_at.is_some()).then(|| {
        let s = Sentinel::new(policy.divergence_factor, policy.stagnation_window);
        match deadline_at {
            Some(at) => s.with_deadline(at),
            None => s,
        }
    });
    let checkpointer =
        (policy.checkpoint_every > 0).then(|| Checkpointer::new(policy.checkpoint_every));

    let mut solver = solver_from_config(cfg);
    // The monitor is wired when the caller wants the history *or* the
    // sentinel needs the residual stream for its detectors.
    let wire_monitor = opts.record_history || sentinel.is_some();
    if let Some(s) = solver.as_any().downcast_mut::<BiCgStab>() {
        if wire_monitor {
            s.monitor = Some(monitor.clone());
        }
        s.sentinel = sentinel.clone();
        s.checkpoint = checkpointer.clone();
    } else if let Some(s) = solver.as_any().downcast_mut::<Cg>() {
        if wire_monitor {
            s.monitor = Some(monitor.clone());
        }
        s.sentinel = sentinel.clone();
        s.checkpoint = checkpointer.clone();
    } else if let Some(s) = solver.as_any().downcast_mut::<Mpir>() {
        if wire_monitor {
            s.monitor = Some(monitor.clone());
        }
        s.sentinel = sentinel.clone();
        s.checkpoint = checkpointer.clone();
    }
    solver.setup(&mut ctx, &sys);
    solver.solve(&mut ctx, &sys, bt, xt);

    // If MPIR ran, read the extended-precision solution tensor instead of
    // the rounded f32 output.
    let x_ext = solver.as_any().downcast_mut::<Mpir>().and_then(|m| m.x_ext);

    let copts = match opts.optimise {
        None => CompileOptions::from_env(),
        Some(optimise) => CompileOptions { optimise },
    };
    let mut engine =
        ctx.build_engine_with(copts).map_err(|e| SolveError::Compile(e.to_string()))?;
    if let Some(kind) = opts.executor {
        engine.set_executor(kind).map_err(|e| {
            SolveError::Executor(format!("requested {} executor, but: {e}", kind.name()))
        })?;
    }
    if let Some(legacy) = opts.legacy_interpreter {
        engine.set_legacy_interpreter(legacy);
    }
    if let Some(fusion) = opts.native_fusion {
        engine.set_native_fusion(fusion);
    }
    // Per-step performance attribution rides along with every planned
    // run: pure host-side bookkeeping, zero device cycles. The legacy
    // tree-walker has no step ids to attribute to.
    if !engine.legacy_interpreter() {
        engine.enable_perf();
    }
    // Hand the (cross-attempt) fault state to this attempt's engine.
    engine.set_fault_state(fault_state.take());
    // Tracing is opt-in via GRAPHENE_TRACE=<path>: record a timeline
    // alongside the cycle accounting and drop a Chrome trace + a text
    // profile report next to it after the run.
    let trace_path = profile::next_trace_path();
    if trace_path.is_some() {
        engine.set_trace(TraceRecorder::new());
    }
    sys.upload(&mut engine);
    engine.write_tensor(bt.id, &sys.to_device_order(b));
    if let Some(x0) = x0 {
        engine.write_tensor(xt.id, &sys.to_device_order(x0));
    }
    // Host wall-clock around the device run — device `seconds` come from
    // the cycle model and are executor-independent; `host_seconds` is
    // what the parallel host executor improves.
    let host_start = Instant::now();
    engine.run();
    let host_seconds = host_start.elapsed().as_secs_f64();
    let perf = engine.perf_report(12);
    if let (Some(path), Some(trace)) = (&trace_path, engine.trace()) {
        let report = profile::write_trace_artifacts(path, trace, engine.stats(), perf.as_ref(), 12);
        eprint!("{report}");
    }
    // Take the fault state back (fired flags + event log) for the next
    // attempt / the final report.
    *fault_state = engine.take_fault_state();

    let raw = engine.read_tensor(x_ext.map(|t| t.id).unwrap_or(xt.id));
    let x = sys.from_device_order(&raw);
    // Residual against the system as the device sees it (f32-rounded data,
    // f64 arithmetic) — see `Monitor` for why. Recomputed on the host from
    // the returned x, so a corrupted device cannot under-report it.
    let ax = monitor.a.spmv_alloc(&x);
    let r2: f64 = monitor.b.iter().zip(&ax).map(|(b, a)| (b - a) * (b - a)).sum();
    let b2: f64 = monitor.b.iter().map(|v| v * v).sum();
    // Relative residual; for b = 0 the absolute norm ‖Ax‖ is reported
    // instead (a zero rhs has no scale to be relative to).
    let residual = if b2 > 0.0 { (r2 / b2).sqrt() } else { r2.sqrt() };

    let history = if opts.record_history { monitor.take_history() } else { Vec::new() };
    let iterations = monitor.iterations();
    let stats = engine.stats().clone();
    let seconds = engine.elapsed_seconds();
    let checkpoint_cycles = stats.label_cycles("checkpoint");
    // Map the last finite device-order snapshot to global row order.
    let snapshot_global = checkpointer.as_ref().and_then(|c| c.snapshot()).map(|snap| {
        let mut g = vec![0.0; sys.num_rows()];
        for (row, &slot) in monitor.gather.iter().enumerate() {
            g[row] = snap[slot];
        }
        g
    });

    Ok(Attempt {
        x,
        residual,
        history,
        iterations,
        seconds,
        host_seconds,
        executor: engine.executor().name().to_string(),
        legacy: engine.legacy_interpreter(),
        compile: engine.compile_report().clone(),
        detection: sentinel.as_ref().and_then(|s| s.detection()),
        snapshot_global,
        checkpoints: checkpointer.as_ref().map(|c| c.count()).unwrap_or(0),
        checkpoint_cycles,
        stats,
        perf,
    })
}

/// Result for degenerate systems answered on the host (0×0 and 1×1).
fn trivial_result(
    config: &SolverConfig,
    a: &CsrMatrix,
    status: SolveStatus,
    x: Vec<f64>,
    residual: f64,
) -> SolveResult {
    let mut report = SolveReport::new("solve");
    report.solver = config.to_value();
    report.n = a.nrows;
    report.nnz = a.nnz();
    SolveResult {
        x,
        residual,
        history: Vec::new(),
        iterations: 0,
        stats: CycleStats::new(0),
        seconds: 0.0,
        status,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, poisson_3d_7pt, rhs_for_ones, tridiagonal};

    fn opts(tiles: usize) -> SolveOptions {
        SolveOptions { model: IpuModel::tiny(tiles), tiles: Some(tiles), ..SolveOptions::default() }
    }

    #[test]
    fn bicgstab_solves_small_poisson() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 200, rel_tol: 1e-6, precond: None };
        let res = solve_or_panic(a, &b, &cfg, &opts(4));
        assert!(res.residual < 2e-6, "residual {}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-3, "x = {v}");
        }
        assert!(res.iterations > 0);
        assert!(res.stats.device_cycles() > 0);
        assert_eq!(res.status, SolveStatus::Converged);
        // A healthy, fault-free solve carries no resilience section.
        assert!(res.report.resilience.is_none());
    }

    #[test]
    fn cg_solves_spd_system() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::Cg { max_iters: 200, rel_tol: 1e-6, precond: None };
        let res = solve_or_panic(a, &b, &cfg, &opts(4));
        assert!(res.residual < 2e-6, "residual {}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-3, "x = {v}");
        }
    }

    #[test]
    fn pcg_with_ilu_converges_faster_than_plain_cg() {
        let a = Rc::new(poisson_2d_5pt(14, 14, 1.0));
        let b = rhs_for_ones(&a);
        let plain = SolverConfig::Cg { max_iters: 500, rel_tol: 1e-6, precond: None };
        let pre = SolverConfig::Cg {
            max_iters: 500,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let r1 = solve_or_panic(a.clone(), &b, &plain, &opts(2));
        let r2 = solve_or_panic(a, &b, &pre, &opts(2));
        assert!(r2.residual < 2e-6);
        assert!(r2.iterations < r1.iterations, "{} vs {}", r2.iterations, r1.iterations);
    }

    #[test]
    fn mpir_over_cg_reaches_extended_precision() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::Cg {
                max_iters: 40,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 8,
            rel_tol: 1e-11,
        };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        assert!(res.residual < 1e-10, "residual {}", res.residual);
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations() {
        let a = Rc::new(poisson_2d_5pt(12, 12, 1.0));
        let b = rhs_for_ones(&a);
        let plain = SolverConfig::BiCgStab { max_iters: 400, rel_tol: 1e-6, precond: None };
        let pre = SolverConfig::BiCgStab {
            max_iters: 400,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let r1 = solve_or_panic(a.clone(), &b, &plain, &opts(2));
        let r2 = solve_or_panic(a, &b, &pre, &opts(2));
        assert!(r2.residual < 2e-6);
        assert!(r2.iterations < r1.iterations, "ilu {} vs plain {}", r2.iterations, r1.iterations);
    }

    #[test]
    fn standalone_gauss_seidel_stops_at_tolerance() {
        // GS as a standalone solver with a residual check per sweep.
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::GaussSeidel { sweeps: 500, symmetric: false, rel_tol: 1e-4 };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        assert!(res.residual < 1.5e-4, "residual {}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-2, "x = {v}");
        }
    }

    #[test]
    fn gauss_seidel_preconditioner_works() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 200,
            rel_tol: 1e-5,
            precond: Some(Box::new(SolverConfig::GaussSeidel {
                sweeps: 2,
                symmetric: true,
                rel_tol: 0.0,
            })),
        };
        let res = solve_or_panic(a, &b, &cfg, &opts(3));
        assert!(res.residual < 1e-4, "residual {}", res.residual);
    }

    #[test]
    fn jacobi_and_dilu_preconditioners_work() {
        let a = Rc::new(poisson_3d_7pt(5, 5, 5));
        let b = rhs_for_ones(&a);
        for precond in [
            SolverConfig::Jacobi { sweeps: 2, omega: 0.8 },
            SolverConfig::Dilu {},
            SolverConfig::Identity,
        ] {
            let cfg = SolverConfig::BiCgStab {
                max_iters: 300,
                rel_tol: 1e-5,
                precond: Some(Box::new(precond.clone())),
            };
            let res = solve_or_panic(a.clone(), &b, &cfg, &opts(4));
            assert!(res.residual < 1e-4, "{precond:?}: residual {}", res.residual);
        }
    }

    #[test]
    fn mpir_double_word_beats_f32_floor() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        // Plain f32 BiCGStab stalls around 1e-6..1e-7 relative residual.
        // (rel_tol 1e-12 is unreachable in f32: this run finishes its
        // budget above tolerance, which the default policy accepts.)
        let plain = SolverConfig::BiCgStab { max_iters: 400, rel_tol: 1e-12, precond: None };
        let rp = solve_or_panic(a.clone(), &b, &plain, &opts(2));
        assert_eq!(rp.status, SolveStatus::MaxIters);
        // MPIR with double-word refinement pushes far below the f32 floor.
        let mpir = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: 40,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 10,
            rel_tol: 1e-11,
        };
        let rm = solve_or_panic(a, &b, &mpir, &opts(2));
        assert!(rm.residual < 1e-10, "mpir residual {}", rm.residual);
        assert!(rm.residual < rp.residual / 100.0, "mpir {} vs plain {}", rm.residual, rp.residual);
    }

    #[test]
    fn tridiagonal_exact_with_gs_solver_stack() {
        // Fully sequential level structure still computes correctly.
        let a = Rc::new(tridiagonal(40));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        // ILU(0) of a tridiagonal matrix is exact per block → immediate.
        assert!(res.residual < 1e-6, "residual {}", res.residual);
        assert!(res.iterations <= 10);
    }

    #[test]
    fn history_is_monotone_ish_and_recorded() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 50, rel_tol: 1e-6, precond: None };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        assert!(!res.history.is_empty());
        let first = res.history.first().unwrap().1;
        let last = res.history.last().unwrap().1;
        assert!(last < first, "no progress: {first} -> {last}");
        // Iterations numbered 1..n.
        assert_eq!(res.history[0].0, 1);
    }

    #[test]
    fn bicgstab_zero_rhs_exits_immediately() {
        // b = 0 makes b2·tol² = 0; with a pure relative test the predicate
        // is unsatisfiable once res2 > 0. With x0 = 0 the residual is
        // exactly zero, so the loop must exit without iterating.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = vec![0.0; a.nrows];
        let cfg = SolverConfig::BiCgStab { max_iters: 100, rel_tol: 1e-6, precond: None };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        assert_eq!(res.iterations, 0, "zero rhs must not iterate");
        assert!(res.x.iter().all(|&v| v == 0.0));
        assert_eq!(res.residual, 0.0);
    }

    #[test]
    fn mpir_zero_rhs_exits_immediately() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = vec![0.0; a.nrows];
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab { max_iters: 40, rel_tol: 0.0, precond: None }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 8,
            rel_tol: 1e-13,
        };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        assert_eq!(res.iterations, 0, "zero rhs must not iterate");
        assert!(res.x.iter().all(|&v| v == 0.0));
        assert_eq!(res.residual, 0.0);
    }

    #[test]
    fn bicgstab_zero_rhs_does_not_burn_max_iters() {
        // Regression for the b = 0 convergence-predicate bug: with b2 = 0
        // the pre-fix predicate `res2 > b2·tol²` reduces to `res2 > 0`,
        // which only fails once the recursive residual underflows to exact
        // zero — dozens of wasted iterations (101 on this problem) after
        // the solution is converged to working precision. The absolute
        // floor (f32::MIN_POSITIVE) exits at 76 iterations; 90 sits
        // between the two (the simulator is deterministic).
        let a = Rc::new(poisson_2d_5pt(16, 16, 1.0));
        let b = vec![0.0; a.nrows];
        let max_iters = 90;
        let cfg = SolverConfig::BiCgStab { max_iters, rel_tol: 1e-6, precond: None };
        let o = SolveOptions { x0: Some(vec![1.0; a.nrows]), ..opts(2) };
        let res = solve_or_panic(a, &b, &cfg, &o);
        assert!(
            res.iterations < max_iters as usize,
            "burned all {} iterations on a zero rhs",
            res.iterations
        );
        // b = 0 reports the absolute norm ‖Ax‖; x must have been driven
        // to (near) zero.
        assert!(res.residual < 1e-4, "residual {}", res.residual);
    }

    #[test]
    fn mpir_subnormal_threshold_does_not_burn_max_outer() {
        // Same bug at the MPIR level: b ~ 1e-8 with rel_tol = 1e-16 makes
        // b2·tol² ≈ 6e-47 underflow to 0 even in double-word, while the
        // double-word residual stalls near its ~1e-13 relative floor —
        // res2 ≈ 6e-41 stays > 0, so pre-fix every outer iteration ran.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b: Vec<f64> = rhs_for_ones(&a).iter().map(|v| v * 1e-8).collect();
        let inner_iters = 40;
        let max_outer = 8;
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: inner_iters,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer,
            rel_tol: 1e-16,
        };
        let res = solve_or_panic(a, &b, &cfg, &opts(2));
        assert!(
            res.iterations < (max_outer * inner_iters) as usize,
            "burned all outer iterations ({} inner)",
            res.iterations
        );
        assert!(res.residual < 1e-9, "residual {}", res.residual);
    }

    #[test]
    fn initial_guess_is_honoured() {
        // Starting at the exact solution must converge immediately.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 200, rel_tol: 1e-5, precond: None };
        let cold = solve_or_panic(a.clone(), &b, &cfg, &opts(2));
        let warm_opts = SolveOptions { x0: Some(vec![1.0; a.nrows]), ..opts(2) };
        let warm = solve_or_panic(a, &b, &cfg, &warm_opts);
        assert!(warm.iterations < cold.iterations, "{} vs {}", warm.iterations, cold.iterations);
    }

    #[test]
    fn parallel_executor_solve_is_bit_identical_and_reported() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 60,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let seq = solve_or_panic(
            a.clone(),
            &b,
            &cfg,
            &SolveOptions { executor: Some(ExecutorKind::Sequential), ..opts(4) },
        );
        let par = solve_or_panic(
            a,
            &b,
            &cfg,
            &SolveOptions { executor: Some(ExecutorKind::Parallel), ..opts(4) },
        );
        let sb: Vec<u64> = seq.x.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = par.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb, "solutions differ between executors");
        assert_eq!(seq.iterations, par.iterations);
        assert_eq!(seq.stats.device_cycles(), par.stats.device_cycles());
        assert_eq!(seq.seconds, par.seconds, "device time is executor-independent");
        assert_eq!(seq.report.executor, "sequential");
        assert_eq!(par.report.executor, "parallel");
        assert!(seq.report.host_seconds > 0.0);
        assert!(par.report.host_seconds > 0.0);
    }

    #[test]
    fn native_executor_solve_is_bit_identical_and_fuses_hot_codelets() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 60,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let seq = solve_or_panic(
            a.clone(),
            &b,
            &cfg,
            &SolveOptions { executor: Some(ExecutorKind::Sequential), ..opts(4) },
        );
        let nat = solve_or_panic(
            a.clone(),
            &b,
            &cfg,
            &SolveOptions { executor: Some(ExecutorKind::Native), ..opts(4) },
        );
        // Fusion force-disabled: still the native executor, every vertex
        // down the interpreter fallback.
        let off = solve_or_panic(
            a,
            &b,
            &cfg,
            &SolveOptions {
                executor: Some(ExecutorKind::Native),
                native_fusion: Some(false),
                ..opts(4)
            },
        );
        for (name, other) in [("native", &nat), ("native-nofusion", &off)] {
            let sb: Vec<u64> = seq.x.iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u64> = other.x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, ob, "{name}: solutions differ from sequential");
            assert_eq!(seq.iterations, other.iterations, "{name}");
            assert_eq!(seq.stats.device_cycles(), other.stats.device_cycles(), "{name}");
            assert_eq!(other.report.executor, "native", "{name}");
        }
        // The compile report records the selection; the fig8-class hot ops
        // (SpMV, the triangular sweeps, maps and reductions) must fuse.
        let compile = nat.report.compile.as_ref().expect("compile report present");
        let sel = compile.pass("native-kernel-selection").expect("selection stamped");
        assert!(sel.counter("codelets_total") > 0);
        assert!(
            sel.counter("codelets_fused") >= sel.counter("codelets_total") / 2,
            "expected most codelets to fuse: {:?}",
            sel.counters
        );
        assert!(sel.counter("fused.spmv") > 0, "SpMV must fuse: {:?}", sel.counters);
        assert!(sel.counter("fused.forward_subst") > 0, "{:?}", sel.counters);
        assert!(sel.counter("fused.backward_subst_div") > 0, "{:?}", sel.counters);
        assert!(sel.counter("fused.map") > 0, "{:?}", sel.counters);
        // Fusion-off leg stamps a selection with zero fused codelets.
        let off_sel = off
            .report
            .compile
            .as_ref()
            .and_then(|c| c.pass("native-kernel-selection"))
            .expect("selection stamped on the no-fusion leg");
        assert_eq!(off_sel.counter("codelets_fused"), 0);
    }

    #[test]
    fn solve_json_config_end_to_end() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::from_json(
            r#"{
                "type": "bi_cg_stab", "max_iters": 150, "rel_tol": 1e-6,
                "precond": { "type": "ilu0" }
            }"#,
        )
        .unwrap();
        let res = solve_or_panic(a, &b, &cfg, &opts(4));
        assert!(res.residual < 2e-6);
    }

    // ------------------------------------------------------------------
    // Structured errors, edge cases, fault injection & recovery
    // ------------------------------------------------------------------

    #[test]
    fn dimension_mismatches_are_config_errors_not_panics() {
        let a = Rc::new(poisson_2d_5pt(4, 4, 1.0));
        let cfg = SolverConfig::Cg { max_iters: 10, rel_tol: 1e-6, precond: None };
        // b wrong length.
        assert!(matches!(
            solve(a.clone(), &vec![1.0; 3], &cfg, &opts(2)),
            Err(SolveError::Config(_))
        ));
        // x0 wrong length.
        let bad = SolveOptions { x0: Some(vec![0.0; 5]), ..opts(2) };
        let b = rhs_for_ones(&a);
        assert!(matches!(solve(a.clone(), &b, &cfg, &bad), Err(SolveError::Config(_))));
        // Zero iteration budget.
        let zcfg = SolverConfig::Cg { max_iters: 0, rel_tol: 1e-6, precond: None };
        assert!(matches!(solve(a, &b, &zcfg, &opts(2)), Err(SolveError::Config(_))));
    }

    #[test]
    fn empty_and_single_row_systems_short_circuit() {
        let cfg = SolverConfig::BiCgStab { max_iters: 10, rel_tol: 1e-6, precond: None };
        // 0x0: trivially converged, no device run.
        let a0 = Rc::new(CsrMatrix {
            nrows: 0,
            ncols: 0,
            row_ptr: vec![0],
            col_idx: vec![],
            values: vec![],
        });
        let r0 = solve(a0, &[], &cfg, &opts(1)).unwrap();
        assert!(r0.x.is_empty());
        assert_eq!(r0.status, SolveStatus::Converged);
        assert_eq!(r0.stats.device_cycles(), 0);
        // 1x1: solved on the host.
        let a1 = Rc::new(CsrMatrix {
            nrows: 1,
            ncols: 1,
            row_ptr: vec![0, 1],
            col_idx: vec![0],
            values: vec![4.0],
        });
        let r1 = solve(a1, &[8.0], &cfg, &opts(1)).unwrap();
        assert_eq!(r1.x, vec![2.0]);
        assert_eq!(r1.iterations, 0);
        // Singular 1x1 with nonzero rhs: structured breakdown.
        let a_sing = Rc::new(CsrMatrix {
            nrows: 1,
            ncols: 1,
            row_ptr: vec![0, 1],
            col_idx: vec![0],
            values: vec![0.0],
        });
        assert!(matches!(
            solve(a_sing.clone(), &[1.0], &cfg, &opts(1)),
            Err(SolveError::Breakdown(_))
        ));
        // ... but a fully zero 1x1 system has the solution x = 0.
        let rz = solve(a_sing, &[0.0], &cfg, &opts(1)).unwrap();
        assert_eq!(rz.x, vec![0.0]);
    }

    #[test]
    fn faulted_solve_recovers_and_reports() {
        // A bit-flip in x mid-solve; the resilient policy (auto-selected
        // by the fault plan) detects the corrupted convergence and
        // restarts. The final answer must still meet tolerance.
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 200, rel_tol: 1e-6, precond: None };
        let o = SolveOptions {
            faults: Some(FaultPlan::parse("flip@s40.t1:w3.b30").unwrap()),
            ..opts(2)
        };
        let res = solve(a, &b, &cfg, &o).expect("recovery should succeed");
        assert!(res.residual < 2e-6 * TOLERANCE_SAFETY, "residual {}", res.residual);
        let r = res.report.resilience.as_ref().expect("faulted solve must stamp resilience");
        assert_eq!(r.faults_injected.len(), 1, "{:?}", r.faults_injected);
        assert_eq!(r.faults_injected[0].class, "flip");
        assert!(r.total_device_cycles >= res.stats.device_cycles());
        // Either the solve absorbed the flip and converged in one attempt
        // or it detected and recovered; both are healthy outcomes, and
        // the status must reflect which one happened.
        if r.attempts > 1 {
            assert_eq!(res.status, SolveStatus::Recovered);
            assert!(!r.detections.is_empty());
        } else {
            assert_eq!(res.status, SolveStatus::Converged);
        }
    }

    #[test]
    fn faulted_solve_is_deterministic() {
        // Same fault plan, two runs: bit-identical solutions and cycles.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 150, rel_tol: 1e-6, precond: None };
        let o = SolveOptions {
            faults: Some(FaultPlan::parse("seed=7;n=3;classes=flip+xflip").unwrap()),
            ..opts(2)
        };
        let run = || solve(a.clone(), &b, &cfg, &o);
        match (run(), run()) {
            (Ok(r1), Ok(r2)) => {
                let b1: Vec<u64> = r1.x.iter().map(|v| v.to_bits()).collect();
                let b2: Vec<u64> = r2.x.iter().map(|v| v.to_bits()).collect();
                assert_eq!(b1, b2, "faulted solve not bit-deterministic");
                assert_eq!(r1.stats.device_cycles(), r2.stats.device_cycles());
                assert_eq!(r1.report.resilience, r2.report.resilience);
            }
            (Err(e1), Err(e2)) => assert_eq!(e1, e2, "faulted solve not error-deterministic"),
            (r1, r2) => panic!(
                "outcomes diverged: {:?} vs {:?}",
                r1.map(|r| r.residual),
                r2.map(|r| r.residual)
            ),
        }
    }

    #[test]
    fn divergence_detector_aborts_instead_of_burning_budget() {
        // CG applied outside its theory: a skew-dominant nonsymmetric
        // tridiagonal (weak SPD symmetric part, ±1 skew off-diagonals).
        // The direction recurrence assumes symmetry, so the residual grows
        // geometrically. With the divergence detector armed and no
        // recovery budget, the sentinel aborts the loop mid-run and the
        // caller gets a structured error well before max_iters.
        let n = 30usize;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            if i > 0 {
                col_idx.push((i - 1) as u32);
                values.push(-1.0);
            }
            col_idx.push(i as u32);
            values.push(0.5);
            if i + 1 < n {
                col_idx.push((i + 1) as u32);
                values.push(1.0);
            }
            row_ptr.push(col_idx.len());
        }
        let a = Rc::new(CsrMatrix { nrows: n, ncols: n, row_ptr, col_idx, values });
        let b = rhs_for_ones(&a);
        let max_iters = 5000;
        let cfg = SolverConfig::Cg { max_iters, rel_tol: 1e-10, precond: None };
        let o = SolveOptions {
            recovery: Some(RecoveryPolicy { divergence_factor: 1e3, ..RecoveryPolicy::default() }),
            ..opts(2)
        };
        match solve(a, &b, &cfg, &o) {
            Err(SolveError::Diverged { residual, .. }) => {
                assert!(residual > 1e3, "residual {residual}");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn stagnation_detector_fires_on_unreachable_tolerance() {
        // Plain f32 BiCGStab cannot reach 1e-12; with the stagnation
        // detector armed and no retry budget this is a structured
        // Stagnated error instead of a burned budget + silent miss.
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let max_iters = 4000;
        let cfg = SolverConfig::BiCgStab { max_iters, rel_tol: 1e-12, precond: None };
        let o = SolveOptions {
            recovery: Some(RecoveryPolicy {
                // The stall sets in around iteration 13 and the device's
                // *recursive* f32 residual self-exits near iteration 21
                // (it keeps shrinking below the true-residual floor — the
                // exact recursive-vs-true gap of the paper's Fig 9), so
                // the window must fit inside that span.
                stagnation_window: 5,
                ..RecoveryPolicy::default()
            }),
            ..opts(2)
        };
        match solve(a, &b, &cfg, &o) {
            Err(SolveError::Stagnated { attempt }) => assert_eq!(attempt, 1),
            other => panic!("expected Stagnated, got {other:?}"),
        }
    }

    #[test]
    fn degradation_ladder_is_walked_and_recorded() {
        // Force the ladder: a policy that treats any tolerance miss as
        // recoverable, no restarts, on a config that cannot reach its
        // tolerance. Every rung is tried and recorded, then the typed
        // error surfaces.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 30,
            rel_tol: 1e-12, // unreachable in f32
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let o = SolveOptions {
            recovery: Some(RecoveryPolicy {
                max_restarts: 0,
                max_degradations: 4,
                retry_on_tolerance_miss: true,
                ..RecoveryPolicy::default()
            }),
            ..opts(2)
        };
        match solve(a, &b, &cfg, &o) {
            Err(SolveError::ToleranceNotReached { attempts, .. }) => {
                // initial + ilu0->jacobi + jacobi->none = 3 attempts.
                assert_eq!(attempts, 3);
            }
            other => panic!("expected ToleranceNotReached, got {other:?}"),
        }
    }

    #[test]
    fn checkpointing_overhead_is_labelled_and_rollback_restarts_from_snapshot() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 60, rel_tol: 1e-6, precond: None };
        let o = SolveOptions {
            recovery: Some(RecoveryPolicy { checkpoint_every: 10, ..RecoveryPolicy::default() }),
            ..opts(2)
        };
        let res = solve(a, &b, &cfg, &o).unwrap();
        let r = res.report.resilience.as_ref().expect("checkpointing stamps resilience");
        assert!(r.checkpoints > 0, "no checkpoints taken");
        assert!(r.checkpoint_cycles > 0, "checkpoint label recorded no cycles");
        assert_eq!(r.checkpoint_cycles, res.stats.label_cycles("checkpoint"));
        // The overhead must stay a small fraction of the solve.
        assert!(
            r.checkpoint_cycles * 5 < res.stats.device_cycles(),
            "checkpoint overhead {} of {}",
            r.checkpoint_cycles,
            res.stats.device_cycles()
        );
    }

    #[test]
    fn zero_overhead_when_off_cycles_match_plain_run() {
        // Default policy + no faults: the emitted program, cycle profile
        // and solution must be bit-identical to a run made with a
        // recovery-free build.
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 80, rel_tol: 1e-6, precond: None };
        let plain = solve_or_panic(a.clone(), &b, &cfg, &opts(2));
        // An explicit (default) policy is the same as None.
        let o = SolveOptions { recovery: Some(RecoveryPolicy::default()), ..opts(2) };
        let with_policy = solve_or_panic(a, &b, &cfg, &o);
        assert_eq!(plain.stats.device_cycles(), with_policy.stats.device_cycles());
        assert_eq!(plain.stats.supersteps(), with_policy.stats.supersteps());
        let xb: Vec<u64> = plain.x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = with_policy.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb);
        assert_eq!(plain.stats.label_cycles("checkpoint"), 0);
        assert!(plain.report.resilience.is_none());
        assert!(with_policy.report.resilience.is_none());
    }

    fn tmp_tune_cache(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphene-runner-tune-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tuned_solve_stamps_decision_hits_cache_and_stays_bit_identical() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let dir = tmp_tune_cache("stamp");
        let o = SolveOptions { tune: Some(true), tune_cache: Some(dir.clone()), ..opts(4) };
        let cold = solve_or_panic(a.clone(), &b, &cfg, &o);
        assert!(cold.residual < 2e-6, "residual {}", cold.residual);
        let pass = |r: &SolveResult| {
            r.report
                .compile
                .as_ref()
                .and_then(|c| c.pass("graphene-tune"))
                .expect("tuned solve must stamp the graphene-tune pass")
                .clone()
        };
        let cp = pass(&cold);
        assert_eq!(cp.counter("cache_hit"), 0, "{:?}", cp.counters);
        assert!(cp.counter("candidates_scored") > 1, "{:?}", cp.counters);
        assert!(
            cp.counter("modelled_cycles") <= cp.counter("default_cycles"),
            "tuned plan worse than the default heuristic: {:?}",
            cp.counters
        );
        assert!(cp.counter("sell_c") > 0);

        // Second solve: a cache hit, no candidates scored, and the applied
        // plan — hence the whole solve — bit-identical to the cold run.
        let warm = solve_or_panic(a.clone(), &b, &cfg, &o);
        let wp = pass(&warm);
        assert_eq!(wp.counter("cache_hit"), 1, "{:?}", wp.counters);
        assert_eq!(wp.counter("candidates_scored"), 0, "{:?}", wp.counters);
        assert_eq!(wp.counter("rows_per_tile"), cp.counter("rows_per_tile"));
        assert_eq!(wp.counter("tiles"), cp.counter("tiles"));
        let cb: Vec<u64> = cold.x.iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u64> = warm.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(cb, wb, "cache hit must reproduce the cold-tune solve bit for bit");
        assert_eq!(cold.stats.device_cycles(), warm.stats.device_cycles());

        // Tuning disabled: no stamp, and the default heuristic path runs.
        let off = solve_or_panic(a, &b, &cfg, &SolveOptions { tune: Some(false), ..opts(4) });
        assert!(off
            .report
            .compile
            .as_ref()
            .map(|c| c.pass("graphene-tune").is_none())
            .unwrap_or(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuned_solve_reports_metrics_and_honours_pinned_partition() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 100, rel_tol: 1e-6, precond: None };
        let dir = tmp_tune_cache("metrics");
        let o = SolveOptions { tune: Some(true), tune_cache: Some(dir.clone()), ..opts(4) };
        let res = solve_or_panic(a.clone(), &b, &cfg, &o);
        let m = &res.report.perf.as_ref().expect("perf report").metrics;
        assert_eq!(m.counter("tune.cache_misses"), 1);
        assert_eq!(m.counter("tune.cache_hits"), 0);
        assert!(m.counter("tune.candidates_scored") > 0);

        // An explicit partition wins over tuning: no search, no stamp.
        let part = Partition::contiguous(a.nrows, 3);
        let o2 = SolveOptions {
            tune: Some(true),
            tune_cache: Some(dir.clone()),
            partition: Some(part),
            ..opts(4)
        };
        let pinned = solve_or_panic(a, &b, &cfg, &o2);
        assert!(pinned
            .report
            .compile
            .as_ref()
            .map(|c| c.pass("graphene-tune").is_none())
            .unwrap_or(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuned_solve_with_grid_considers_geometric_candidates() {
        let a = Rc::new(poisson_3d_7pt(4, 4, 4));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 150, rel_tol: 1e-5, precond: None };
        let dir = tmp_tune_cache("grid");
        let o = SolveOptions {
            tune: Some(true),
            tune_cache: Some(dir.clone()),
            grid: Some(sparse::gen::Grid3 { nx: 4, ny: 4, nz: 4 }),
            ..opts(4)
        };
        let res = solve_or_panic(a, &b, &cfg, &o);
        assert!(res.residual < 1e-4, "residual {}", res.residual);
        let pass = res
            .report
            .compile
            .as_ref()
            .and_then(|c| c.pass("graphene-tune"))
            .expect("stamp present")
            .clone();
        // Whatever family won, it was a real search over >2 candidates
        // (the geometric family was enumerable).
        assert!(pass.counter("candidates_scored") > 2, "{:?}", pass.counters);
        assert!(pass.counters.iter().any(|(k, _)| k.starts_with("strategy.")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mpir_recovers_from_injected_fault() {
        // The paper's flagship config under a seeded fault: either the
        // refinement absorbs it or the recovery layer restarts; the final
        // result must reach MPIR-grade accuracy either way.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: 40,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 10,
            rel_tol: 1e-11,
        };
        let o = SolveOptions {
            faults: Some(FaultPlan::parse("flip@s60.t0:w1.b27").unwrap()),
            ..opts(2)
        };
        let res = solve(a, &b, &cfg, &o).expect("mpir should survive one bit flip");
        assert!(res.residual < 1e-11 * TOLERANCE_SAFETY, "residual {}", res.residual);
    }
}
