//! The one-call host API.
//!
//! [`solve`] performs the full pipeline of the paper's Figure 2: partition
//! the matrix, build the distributed system, symbolically execute the
//! configured solver into a graph program, compile, upload, run on the
//! simulated device, and gather results and profiling data back.

use std::rc::Rc;
use std::time::Instant;

use dsl::prelude::*;
use graph::ExecutorKind;
use ipu_sim::clock::CycleStats;
use profile::{SolveReport, TraceRecorder};
use sparse::formats::CsrMatrix;
use sparse::partition::Partition;

use crate::config::SolverConfig;
use crate::dist::DistSystem;
use crate::solvers::{solver_from_config, BiCgStab, Cg, Monitor, Mpir};

/// Options controlling partitioning, machine size and instrumentation.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// The machine to simulate.
    pub model: IpuModel,
    /// Tiles to use (`None`: one tile per ~`rows_per_tile` rows, capped by
    /// the machine).
    pub tiles: Option<usize>,
    /// Target rows per tile when `tiles` is `None`.
    pub rows_per_tile: usize,
    /// Record the true relative residual after every solver iteration
    /// (host callbacks; free in device time, costly in wall time).
    pub record_history: bool,
    /// Optional geometric partition (for structured-grid problems);
    /// falls back to nnz-balanced contiguous blocks.
    pub partition: Option<Partition>,
    /// Initial guess (zeros if `None`).
    pub x0: Option<Vec<f64>>,
    /// Host executor for the simulated device (`None`: whatever
    /// `GRAPHENE_PAR` selects, sequential when unset). The choice affects
    /// host wall-clock only — results, `CycleStats` and traces are
    /// bit-identical across executors.
    pub executor: Option<ExecutorKind>,
    /// Run the graph compiler's optimisation passes (`None`: whatever
    /// `GRAPHENE_NO_OPT` selects, optimised when unset). Optimisation
    /// affects host dispatch overhead only — results and `CycleStats` are
    /// bit-identical either way.
    pub optimise: Option<bool>,
    /// Run the legacy tree-walking interpreter instead of the compiled
    /// plan (`None`: whatever `GRAPHENE_LEGACY_INTERP` selects).
    /// Differential testing only.
    pub legacy_interpreter: Option<bool>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            model: IpuModel::mk2(),
            tiles: None,
            rows_per_tile: 64,
            record_history: true,
            partition: None,
            x0: None,
            executor: None,
            optimise: None,
            legacy_interpreter: None,
        }
    }
}

impl SolveOptions {
    fn pick_tiles(&self, rows: usize) -> usize {
        let by_rows = rows.div_ceil(self.rows_per_tile).max(1);
        self.tiles.unwrap_or(by_rows).min(self.model.num_tiles()).min(rows)
    }
}

/// The outcome of a solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The solution in global row order (extended precision when MPIR ran).
    pub x: Vec<f64>,
    /// True relative residual ‖b−Ax‖/‖b‖ of the returned solution (f64).
    pub residual: f64,
    /// (iteration, true relative residual) samples, if recorded.
    pub history: Vec<(usize, f64)>,
    /// Inner iterations executed.
    pub iterations: usize,
    /// Device profile.
    pub stats: CycleStats,
    /// Device time in seconds at the machine's clock.
    pub seconds: f64,
    /// Machine-readable profile + convergence record of this solve;
    /// label totals partition `stats.device_cycles()` exactly.
    pub report: SolveReport,
}

/// Solve `A x = b` with the configured solver hierarchy on the simulated
/// IPU. `opts.x0` is the initial guess (zeros if `None`).
pub fn solve(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
    opts: &SolveOptions,
) -> SolveResult {
    assert_eq!(a.nrows, b.len());
    let tiles = opts.pick_tiles(a.nrows);
    let part = match &opts.partition {
        Some(p) => {
            assert_eq!(p.num_rows(), a.nrows, "partition size mismatch");
            p.clone()
        }
        None => Partition::balanced_by_nnz(&a, tiles),
    };

    let mut ctx = DslCtx::new(opts.model.clone());
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let bt = sys.new_vector(&mut ctx, "b", DType::F32);
    let xt = sys.new_vector(&mut ctx, "x", DType::F32);

    let b_rc = Rc::new(b.to_vec());
    let monitor = Monitor::new(&sys, b_rc.clone());

    let mut solver = solver_from_config(config);
    if opts.record_history {
        if let Some(s) = solver.as_any().downcast_mut::<BiCgStab>() {
            s.monitor = Some(monitor.clone());
        } else if let Some(s) = solver.as_any().downcast_mut::<Cg>() {
            s.monitor = Some(monitor.clone());
        } else if let Some(s) = solver.as_any().downcast_mut::<Mpir>() {
            s.monitor = Some(monitor.clone());
        }
    }
    solver.setup(&mut ctx, &sys);
    solver.solve(&mut ctx, &sys, bt, xt);

    // If MPIR ran, read the extended-precision solution tensor instead of
    // the rounded f32 output.
    let x_ext = solver.as_any().downcast_mut::<Mpir>().and_then(|m| m.x_ext);

    let copts = match opts.optimise {
        None => CompileOptions::from_env(),
        Some(optimise) => CompileOptions { optimise },
    };
    let mut engine = ctx.build_engine_with(copts).expect("solver program compiles");
    if let Some(kind) = opts.executor {
        engine
            .set_executor(kind)
            .unwrap_or_else(|e| panic!("requested {} executor, but: {e}", kind.name()));
    }
    if let Some(legacy) = opts.legacy_interpreter {
        engine.set_legacy_interpreter(legacy);
    }
    // Tracing is opt-in via GRAPHENE_TRACE=<path>: record a timeline
    // alongside the cycle accounting and drop a Chrome trace + a text
    // profile report next to it after the run.
    let trace_path = profile::next_trace_path();
    if trace_path.is_some() {
        engine.set_trace(TraceRecorder::new());
    }
    sys.upload(&mut engine);
    engine.write_tensor(bt.id, &sys.to_device_order(b));
    if let Some(x0) = &opts.x0 {
        assert_eq!(x0.len(), a.nrows, "x0 size mismatch");
        engine.write_tensor(xt.id, &sys.to_device_order(x0));
    }
    // Host wall-clock around the device run — device `seconds` come from
    // the cycle model and are executor-independent; `host_seconds` is
    // what the parallel host executor improves.
    let host_start = Instant::now();
    engine.run();
    let host_seconds = host_start.elapsed().as_secs_f64();
    if let (Some(path), Some(trace)) = (&trace_path, engine.trace()) {
        let report = profile::write_trace_artifacts(path, trace, engine.stats(), 12);
        eprint!("{report}");
    }

    let raw = engine.read_tensor(x_ext.map(|t| t.id).unwrap_or(xt.id));
    let x = sys.from_device_order(&raw);
    // Residual against the system as the device sees it (f32-rounded data,
    // f64 arithmetic) — see `Monitor` for why.
    let ax = monitor.a.spmv_alloc(&x);
    let r2: f64 = monitor.b.iter().zip(&ax).map(|(b, a)| (b - a) * (b - a)).sum();
    let b2: f64 = monitor.b.iter().map(|v| v * v).sum();
    // Relative residual; for b = 0 the absolute norm ‖Ax‖ is reported
    // instead (a zero rhs has no scale to be relative to).
    let residual = if b2 > 0.0 { (r2 / b2).sqrt() } else { r2.sqrt() };

    let history = monitor.take_history();
    let iterations = monitor.iterations();
    let stats = engine.stats().clone();
    let seconds = engine.elapsed_seconds();

    let mut report = SolveReport::new("solve").with_stats(&stats);
    report.solver = config.to_value();
    report.n = a.nrows;
    report.nnz = a.nnz();
    report.tiles = tiles;
    report.iterations = iterations;
    report.final_residual = residual;
    report.seconds = seconds;
    report.host_seconds = host_seconds;
    report.executor = engine.executor().name().to_string();
    report.history = history.clone();
    report.compile = Some(engine.compile_report().clone());

    SolveResult { x, residual, history, iterations, stats, seconds, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, poisson_3d_7pt, rhs_for_ones, tridiagonal};

    fn opts(tiles: usize) -> SolveOptions {
        SolveOptions { model: IpuModel::tiny(tiles), tiles: Some(tiles), ..SolveOptions::default() }
    }

    #[test]
    fn bicgstab_solves_small_poisson() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 200, rel_tol: 1e-6, precond: None };
        let res = solve(a, &b, &cfg, &opts(4));
        assert!(res.residual < 2e-6, "residual {}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-3, "x = {v}");
        }
        assert!(res.iterations > 0);
        assert!(res.stats.device_cycles() > 0);
    }

    #[test]
    fn cg_solves_spd_system() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::Cg { max_iters: 200, rel_tol: 1e-6, precond: None };
        let res = solve(a, &b, &cfg, &opts(4));
        assert!(res.residual < 2e-6, "residual {}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-3, "x = {v}");
        }
    }

    #[test]
    fn pcg_with_ilu_converges_faster_than_plain_cg() {
        let a = Rc::new(poisson_2d_5pt(14, 14, 1.0));
        let b = rhs_for_ones(&a);
        let plain = SolverConfig::Cg { max_iters: 500, rel_tol: 1e-6, precond: None };
        let pre = SolverConfig::Cg {
            max_iters: 500,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let r1 = solve(a.clone(), &b, &plain, &opts(2));
        let r2 = solve(a, &b, &pre, &opts(2));
        assert!(r2.residual < 2e-6);
        assert!(r2.iterations < r1.iterations, "{} vs {}", r2.iterations, r1.iterations);
    }

    #[test]
    fn mpir_over_cg_reaches_extended_precision() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::Cg {
                max_iters: 40,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 8,
            rel_tol: 1e-11,
        };
        let res = solve(a, &b, &cfg, &opts(2));
        assert!(res.residual < 1e-10, "residual {}", res.residual);
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations() {
        let a = Rc::new(poisson_2d_5pt(12, 12, 1.0));
        let b = rhs_for_ones(&a);
        let plain = SolverConfig::BiCgStab { max_iters: 400, rel_tol: 1e-6, precond: None };
        let pre = SolverConfig::BiCgStab {
            max_iters: 400,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let r1 = solve(a.clone(), &b, &plain, &opts(2));
        let r2 = solve(a, &b, &pre, &opts(2));
        assert!(r2.residual < 2e-6);
        assert!(r2.iterations < r1.iterations, "ilu {} vs plain {}", r2.iterations, r1.iterations);
    }

    #[test]
    fn standalone_gauss_seidel_stops_at_tolerance() {
        // GS as a standalone solver with a residual check per sweep.
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::GaussSeidel { sweeps: 500, symmetric: false, rel_tol: 1e-4 };
        let res = solve(a, &b, &cfg, &opts(2));
        assert!(res.residual < 1.5e-4, "residual {}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-2, "x = {v}");
        }
    }

    #[test]
    fn gauss_seidel_preconditioner_works() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 200,
            rel_tol: 1e-5,
            precond: Some(Box::new(SolverConfig::GaussSeidel {
                sweeps: 2,
                symmetric: true,
                rel_tol: 0.0,
            })),
        };
        let res = solve(a, &b, &cfg, &opts(3));
        assert!(res.residual < 1e-4, "residual {}", res.residual);
    }

    #[test]
    fn jacobi_and_dilu_preconditioners_work() {
        let a = Rc::new(poisson_3d_7pt(5, 5, 5));
        let b = rhs_for_ones(&a);
        for precond in [
            SolverConfig::Jacobi { sweeps: 2, omega: 0.8 },
            SolverConfig::Dilu {},
            SolverConfig::Identity,
        ] {
            let cfg = SolverConfig::BiCgStab {
                max_iters: 300,
                rel_tol: 1e-5,
                precond: Some(Box::new(precond.clone())),
            };
            let res = solve(a.clone(), &b, &cfg, &opts(4));
            assert!(res.residual < 1e-4, "{precond:?}: residual {}", res.residual);
        }
    }

    #[test]
    fn mpir_double_word_beats_f32_floor() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        // Plain f32 BiCGStab stalls around 1e-6..1e-7 relative residual.
        let plain = SolverConfig::BiCgStab { max_iters: 400, rel_tol: 1e-12, precond: None };
        let rp = solve(a.clone(), &b, &plain, &opts(2));
        // MPIR with double-word refinement pushes far below the f32 floor.
        let mpir = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: 40,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 10,
            rel_tol: 1e-11,
        };
        let rm = solve(a, &b, &mpir, &opts(2));
        assert!(rm.residual < 1e-10, "mpir residual {}", rm.residual);
        assert!(rm.residual < rp.residual / 100.0, "mpir {} vs plain {}", rm.residual, rp.residual);
    }

    #[test]
    fn tridiagonal_exact_with_gs_solver_stack() {
        // Fully sequential level structure still computes correctly.
        let a = Rc::new(tridiagonal(40));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 100,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let res = solve(a, &b, &cfg, &opts(2));
        // ILU(0) of a tridiagonal matrix is exact per block → immediate.
        assert!(res.residual < 1e-6, "residual {}", res.residual);
        assert!(res.iterations <= 10);
    }

    #[test]
    fn history_is_monotone_ish_and_recorded() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 50, rel_tol: 1e-6, precond: None };
        let res = solve(a, &b, &cfg, &opts(2));
        assert!(!res.history.is_empty());
        let first = res.history.first().unwrap().1;
        let last = res.history.last().unwrap().1;
        assert!(last < first, "no progress: {first} -> {last}");
        // Iterations numbered 1..n.
        assert_eq!(res.history[0].0, 1);
    }

    #[test]
    fn bicgstab_zero_rhs_exits_immediately() {
        // b = 0 makes b2·tol² = 0; with a pure relative test the predicate
        // is unsatisfiable once res2 > 0. With x0 = 0 the residual is
        // exactly zero, so the loop must exit without iterating.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = vec![0.0; a.nrows];
        let cfg = SolverConfig::BiCgStab { max_iters: 100, rel_tol: 1e-6, precond: None };
        let res = solve(a, &b, &cfg, &opts(2));
        assert_eq!(res.iterations, 0, "zero rhs must not iterate");
        assert!(res.x.iter().all(|&v| v == 0.0));
        assert_eq!(res.residual, 0.0);
    }

    #[test]
    fn mpir_zero_rhs_exits_immediately() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = vec![0.0; a.nrows];
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab { max_iters: 40, rel_tol: 0.0, precond: None }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer: 8,
            rel_tol: 1e-13,
        };
        let res = solve(a, &b, &cfg, &opts(2));
        assert_eq!(res.iterations, 0, "zero rhs must not iterate");
        assert!(res.x.iter().all(|&v| v == 0.0));
        assert_eq!(res.residual, 0.0);
    }

    #[test]
    fn bicgstab_zero_rhs_does_not_burn_max_iters() {
        // Regression for the b = 0 convergence-predicate bug: with b2 = 0
        // the pre-fix predicate `res2 > b2·tol²` reduces to `res2 > 0`,
        // which only fails once the recursive residual underflows to exact
        // zero — dozens of wasted iterations (101 on this problem) after
        // the solution is converged to working precision. The absolute
        // floor (f32::MIN_POSITIVE) exits at 76 iterations; 90 sits
        // between the two (the simulator is deterministic).
        let a = Rc::new(poisson_2d_5pt(16, 16, 1.0));
        let b = vec![0.0; a.nrows];
        let max_iters = 90;
        let cfg = SolverConfig::BiCgStab { max_iters, rel_tol: 1e-6, precond: None };
        let o = SolveOptions { x0: Some(vec![1.0; a.nrows]), ..opts(2) };
        let res = solve(a, &b, &cfg, &o);
        assert!(
            res.iterations < max_iters as usize,
            "burned all {} iterations on a zero rhs",
            res.iterations
        );
        // b = 0 reports the absolute norm ‖Ax‖; x must have been driven
        // to (near) zero.
        assert!(res.residual < 1e-4, "residual {}", res.residual);
    }

    #[test]
    fn mpir_subnormal_threshold_does_not_burn_max_outer() {
        // Same bug at the MPIR level: b ~ 1e-8 with rel_tol = 1e-16 makes
        // b2·tol² ≈ 6e-47 underflow to 0 even in double-word, while the
        // double-word residual stalls near its ~1e-13 relative floor —
        // res2 ≈ 6e-41 stays > 0, so pre-fix every outer iteration ran.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b: Vec<f64> = rhs_for_ones(&a).iter().map(|v| v * 1e-8).collect();
        let inner_iters = 40;
        let max_outer = 8;
        let cfg = SolverConfig::Mpir {
            inner: Box::new(SolverConfig::BiCgStab {
                max_iters: inner_iters,
                rel_tol: 0.0,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            }),
            precision: crate::solvers::ExtendedPrecision::DoubleWord,
            max_outer,
            rel_tol: 1e-16,
        };
        let res = solve(a, &b, &cfg, &opts(2));
        assert!(
            res.iterations < (max_outer * inner_iters) as usize,
            "burned all outer iterations ({} inner)",
            res.iterations
        );
        assert!(res.residual < 1e-9, "residual {}", res.residual);
    }

    #[test]
    fn initial_guess_is_honoured() {
        // Starting at the exact solution must converge immediately.
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 200, rel_tol: 1e-5, precond: None };
        let cold = solve(a.clone(), &b, &cfg, &opts(2));
        let warm_opts = SolveOptions { x0: Some(vec![1.0; a.nrows]), ..opts(2) };
        let warm = solve(a, &b, &cfg, &warm_opts);
        assert!(warm.iterations < cold.iterations, "{} vs {}", warm.iterations, cold.iterations);
    }

    #[test]
    fn parallel_executor_solve_is_bit_identical_and_reported() {
        let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 60,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let seq = solve(
            a.clone(),
            &b,
            &cfg,
            &SolveOptions { executor: Some(ExecutorKind::Sequential), ..opts(4) },
        );
        let par =
            solve(a, &b, &cfg, &SolveOptions { executor: Some(ExecutorKind::Parallel), ..opts(4) });
        let sb: Vec<u64> = seq.x.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = par.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb, "solutions differ between executors");
        assert_eq!(seq.iterations, par.iterations);
        assert_eq!(seq.stats.device_cycles(), par.stats.device_cycles());
        assert_eq!(seq.seconds, par.seconds, "device time is executor-independent");
        assert_eq!(seq.report.executor, "sequential");
        assert_eq!(par.report.executor, "parallel");
        assert!(seq.report.host_seconds > 0.0);
        assert!(par.report.host_seconds > 0.0);
    }

    #[test]
    fn solve_json_config_end_to_end() {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::from_json(
            r#"{
                "type": "bi_cg_stab", "max_iters": 150, "rel_tol": 1e-6,
                "precond": { "type": "ilu0" }
            }"#,
        )
        .unwrap();
        let res = solve(a, &b, &cfg, &opts(4));
        assert!(res.residual < 2e-6);
    }
}
