//! Preconditioned BiCGStab (paper §V-C, Fig 4).
//!
//! Van der Vorst's stabilised bi-conjugate gradient method; any [`Solver`]
//! serves as the preconditioner `M`. The TensorDSL rendition below tracks
//! the paper's Figure 4 closely — compare:
//!
//! ```text
//! Tensor yA = preconditioner.solve(pA);
//! AyA = A * yA;                       // SpMV
//! alpha = rA0rA / (rA0 * AyA).reduce();
//! Tensor sA = rA - alpha * AyA;
//! ```
//!
//! All vector work is working-precision f32 — the paper's Figures 9/10
//! show it stalls near 1e-6 relative residual without iterative
//! refinement, which is exactly what this implementation reproduces.

use dsl::prelude::*;
use dsl::TExpr;

use crate::dist::DistSystem;
use crate::resilience::{Checkpointer, Sentinel};
use crate::solvers::{zero, Monitor, Solver};

pub struct BiCgStab {
    max_iters: u32,
    /// Relative residual target; `0.0` runs exactly `max_iters` iterations
    /// (the fixed-iteration inner mode MPIR uses).
    rel_tol: f32,
    precond: Option<Box<dyn Solver>>,
    /// Optional convergence monitor (records true residuals via host
    /// callbacks).
    pub monitor: Option<Monitor>,
    /// When this solver refines a correction on top of an extended base
    /// solution (MPIR step 2), the base tensor for true-residual records.
    pub shift: Option<TensorRef>,
    /// Device scalar holding the iteration count (readable after run).
    pub iter_count: Option<TensorRef>,
    /// Optional in-flight watchdog: fed by the monitor's residual stream,
    /// and hooked into the loop condition so a trip aborts the solve at
    /// the next iteration boundary.
    pub sentinel: Option<Sentinel>,
    /// Optional periodic checkpoints of `x` for rollback recovery.
    pub checkpoint: Option<Checkpointer>,
}

impl BiCgStab {
    pub fn new(max_iters: u32, rel_tol: f32, precond: Option<Box<dyn Solver>>) -> BiCgStab {
        assert!(max_iters > 0);
        BiCgStab {
            max_iters,
            rel_tol,
            precond,
            monitor: None,
            shift: None,
            iter_count: None,
            sentinel: None,
            checkpoint: None,
        }
    }
}

impl Solver for BiCgStab {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "bicgstab"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        if let Some(p) = self.precond.as_mut() {
            p.setup(ctx, sys);
        }
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        // Workspace (fresh per solve-site; symbolic execution runs once).
        let r = sys.new_vector(ctx, "bicg_r", DType::F32);
        let r0 = sys.new_vector(ctx, "bicg_r0", DType::F32);
        let p = sys.new_vector(ctx, "bicg_p", DType::F32);
        let v = sys.new_vector(ctx, "bicg_v", DType::F32);
        let y = sys.new_vector(ctx, "bicg_y", DType::F32);
        let s = sys.new_vector(ctx, "bicg_s", DType::F32);
        let z = sys.new_vector(ctx, "bicg_z", DType::F32);
        let t = sys.new_vector(ctx, "bicg_t", DType::F32);
        let rho = ctx.scalar("bicg_rho", DType::F32);
        let rho_old = ctx.scalar("bicg_rho_old", DType::F32);
        let alpha = ctx.scalar("bicg_alpha", DType::F32);
        let omega = ctx.scalar("bicg_omega", DType::F32);
        let res2 = ctx.scalar("bicg_res2", DType::F32);
        let b2 = ctx.scalar("bicg_b2", DType::F32);
        let iter = ctx.scalar("bicg_iter", DType::F32);
        let pred = ctx.scalar("bicg_pred", DType::Bool);
        self.iter_count = Some(iter);

        let max_iters = self.max_iters as f32;
        let tol2 = self.rel_tol * self.rel_tol;

        ctx.label("bicgstab", |ctx| {
            // r = b - A x ; r0 = r ; p = r ; rho_old = r0·r ; b2 = b·b.
            sys.residual(ctx, r, b, x);
            ctx.copy(r, r0);
            ctx.copy(r, p);
            ctx.label("reduce", |ctx| {
                ctx.reduce_into(rho_old, r0 * r);
                ctx.reduce_into(b2, b * b);
                ctx.reduce_into(res2, r * r);
            });
            ctx.assign(iter, TExpr::c_f32(0.0));
            let chk = self.checkpoint.as_ref().map(|c| (c.clone(), c.setup(ctx, sys, DType::F32)));
            let sentinel = self.sentinel.clone();
            let sentinel_body = self.sentinel.clone();

            ctx.while_(
                |ctx| {
                    // Continue while iter < max and (no tolerance, or
                    // res2 > max(tol² · b2, tiny)). NaNs compare false ⇒
                    // breakdown terminates the loop, as on the real
                    // framework's singularity early-exit. The absolute
                    // floor guards b = 0 (b2 = 0 makes a pure relative
                    // test unsatisfiable) and subnormal b where b2·tol²
                    // underflows to 0 in f32.
                    let cont = if tol2 > 0.0 {
                        let thresh = (b2.ex() * tol2).max_(f32::MIN_POSITIVE);
                        iter.ex().lt(max_iters).and(res2.ex().gt(thresh))
                    } else {
                        iter.ex().lt(max_iters)
                    };
                    ctx.assign(pred, cont);
                    // A tripped sentinel (host-side detection) overrides
                    // the predicate to false — aborts this loop and, as
                    // every enclosing loop carries the same hook, the
                    // whole solver nest.
                    if let Some(s) = &sentinel {
                        s.emit_abort_hook(ctx, pred);
                    }
                    pred
                },
                |ctx| {
                    // y = M⁻¹ p ; v = A y.
                    match self.precond.as_mut() {
                        Some(m) => {
                            zero(ctx, y);
                            ctx.label("precond", |ctx| m.solve(ctx, sys, p, y));
                        }
                        None => ctx.copy(p, y),
                    }
                    ctx.label("spmv", |ctx| sys.spmv(ctx, v, y));
                    // alpha = rho_old / (r0·v), guarded against the
                    // breakdown r0·v = 0 (e.g. after exact convergence
                    // when running fixed-iteration mode for MPIR).
                    let r0v = ctx.scalar("bicg_r0v", DType::F32);
                    ctx.label("reduce", |ctx| ctx.reduce_into(r0v, r0 * v));
                    ctx.assign(alpha, TExpr::select(r0v.ex().eq_(0.0f32), 0.0f32, rho_old / r0v));
                    // s = r - alpha v.
                    ctx.label("elementwise", |ctx| ctx.assign(s, r - v * alpha));
                    // z = M⁻¹ s ; t = A z.
                    match self.precond.as_mut() {
                        Some(m) => {
                            zero(ctx, z);
                            ctx.label("precond", |ctx| m.solve(ctx, sys, s, z));
                        }
                        None => ctx.copy(s, z),
                    }
                    ctx.label("spmv", |ctx| sys.spmv(ctx, t, z));
                    // omega = (t·s)/(t·t), guarded against t = 0 (exact
                    // convergence after the first half-step).
                    let ts = ctx.scalar("bicg_ts", DType::F32);
                    let tt = ctx.scalar("bicg_tt", DType::F32);
                    ctx.label("reduce", |ctx| {
                        ctx.reduce_into(ts, t * s);
                        ctx.reduce_into(tt, t * t);
                    });
                    ctx.assign(omega, TExpr::select(tt.ex().eq_(0.0f32), 0.0f32, ts / tt));
                    // x += alpha y + omega z ; r = s - omega t.
                    ctx.label("elementwise", |ctx| {
                        ctx.assign(x, x + y * alpha + z * omega);
                        ctx.assign(r, s - t * omega);
                    });
                    ctx.label("reduce", |ctx| {
                        ctx.reduce_into(res2, r * r);
                        ctx.reduce_into(rho, r0 * r);
                    });
                    // BiCG breakdown (r ⟂ r0, or ω = 0): restart the
                    // Krylov process from the current residual — the
                    // framework's "early exit due to singularity" path.
                    let brk = ctx.scalar("bicg_breakdown", DType::Bool);
                    ctx.assign(brk, rho.ex().abs().le(res2 * 1e-8f32).or(omega.ex().eq_(0.0f32)));
                    ctx.if_else(
                        brk,
                        |ctx| {
                            ctx.copy(r, r0);
                            ctx.copy(r, p);
                            ctx.reduce_into(rho_old, r0 * r);
                        },
                        |ctx| {
                            // beta = (rho/rho_old)(alpha/omega);
                            // p = r + beta (p - omega v).
                            let beta = ctx.scalar("bicg_beta", DType::F32);
                            ctx.assign(
                                beta,
                                TExpr::select(
                                    rho_old.ex().eq_(0.0f32),
                                    0.0f32,
                                    (rho / rho_old) * (alpha / omega),
                                ),
                            );
                            ctx.label("elementwise", |ctx| {
                                ctx.assign(p, r + (p - v * omega) * beta)
                            });
                            ctx.assign(rho_old, rho.ex());
                        },
                    );
                    ctx.assign(iter, iter + 1.0f32);
                    if let Some(mon) = &self.monitor {
                        mon.record(ctx, x, self.shift, sentinel_body.clone());
                    }
                    if let Some((ck, st)) = &chk {
                        ck.emit_step(ctx, st, x, iter);
                    }
                },
            );
        });
    }
}
