//! Preconditioned Conjugate Gradient.
//!
//! The classic Krylov method for symmetric positive-definite systems —
//! all four of the paper's benchmark matrices are SPD, making PCG the
//! natural companion to the more general PBiCGStab the paper headlines.
//! Like every solver here it is expressed in TensorDSL and accepts any
//! other solver as its preconditioner.

use dsl::prelude::*;
use dsl::TExpr;

use crate::dist::DistSystem;
use crate::resilience::{Checkpointer, Sentinel};
use crate::solvers::{zero, Monitor, Solver};

pub struct Cg {
    max_iters: u32,
    rel_tol: f32,
    precond: Option<Box<dyn Solver>>,
    pub monitor: Option<Monitor>,
    pub shift: Option<TensorRef>,
    /// Optional in-flight watchdog; see `BiCgStab::sentinel`.
    pub sentinel: Option<Sentinel>,
    /// Optional periodic checkpoints of `x` for rollback recovery.
    pub checkpoint: Option<Checkpointer>,
}

impl Cg {
    pub fn new(max_iters: u32, rel_tol: f32, precond: Option<Box<dyn Solver>>) -> Cg {
        assert!(max_iters > 0);
        Cg {
            max_iters,
            rel_tol,
            precond,
            monitor: None,
            shift: None,
            sentinel: None,
            checkpoint: None,
        }
    }
}

impl Solver for Cg {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "cg"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        if let Some(p) = self.precond.as_mut() {
            p.setup(ctx, sys);
        }
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let r = sys.new_vector(ctx, "cg_r", DType::F32);
        let z = sys.new_vector(ctx, "cg_z", DType::F32);
        let p = sys.new_vector(ctx, "cg_p", DType::F32);
        let q = sys.new_vector(ctx, "cg_q", DType::F32);
        let rz = ctx.scalar("cg_rz", DType::F32);
        let rz_old = ctx.scalar("cg_rz_old", DType::F32);
        let alpha = ctx.scalar("cg_alpha", DType::F32);
        let res2 = ctx.scalar("cg_res2", DType::F32);
        let b2 = ctx.scalar("cg_b2", DType::F32);
        let iter = ctx.scalar("cg_iter", DType::F32);
        let pred = ctx.scalar("cg_pred", DType::Bool);

        let max_iters = self.max_iters as f32;
        let tol2 = self.rel_tol * self.rel_tol;

        ctx.label("cg", |ctx| {
            sys.residual(ctx, r, b, x);
            match self.precond.as_mut() {
                Some(m) => {
                    zero(ctx, z);
                    ctx.label("precond", |ctx| m.solve(ctx, sys, r, z));
                }
                None => ctx.copy(r, z),
            }
            ctx.copy(z, p);
            ctx.label("reduce", |ctx| {
                ctx.reduce_into(rz_old, r * z);
                ctx.reduce_into(b2, b * b);
                ctx.reduce_into(res2, r * r);
            });
            ctx.assign(iter, TExpr::c_f32(0.0));
            let chk = self.checkpoint.as_ref().map(|c| (c.clone(), c.setup(ctx, sys, DType::F32)));
            let sentinel = self.sentinel.clone();
            let sentinel_body = self.sentinel.clone();

            ctx.while_(
                |ctx| {
                    // Absolute floor guards b = 0 / subnormal-b underflow
                    // of the relative threshold (see bicgstab.rs).
                    let cont = if tol2 > 0.0 {
                        let thresh = (b2.ex() * tol2).max_(f32::MIN_POSITIVE);
                        iter.ex().lt(max_iters).and(res2.ex().gt(thresh))
                    } else {
                        iter.ex().lt(max_iters)
                    };
                    ctx.assign(pred, cont);
                    // Host-side detections abort the loop at the next
                    // iteration boundary (see bicgstab.rs).
                    if let Some(s) = &sentinel {
                        s.emit_abort_hook(ctx, pred);
                    }
                    pred
                },
                |ctx| {
                    ctx.label("spmv", |ctx| sys.spmv(ctx, q, p));
                    let pq = ctx.scalar("cg_pq", DType::F32);
                    ctx.label("reduce", |ctx| ctx.reduce_into(pq, p * q));
                    ctx.assign(alpha, TExpr::select(pq.ex().eq_(0.0f32), 0.0f32, rz_old / pq));
                    ctx.label("elementwise", |ctx| {
                        ctx.assign(x, x + p * alpha);
                        ctx.assign(r, r - q * alpha);
                    });
                    match self.precond.as_mut() {
                        Some(m) => {
                            zero(ctx, z);
                            ctx.label("precond", |ctx| m.solve(ctx, sys, r, z));
                        }
                        None => ctx.copy(r, z),
                    }
                    let beta = ctx.scalar("cg_beta", DType::F32);
                    ctx.label("reduce", |ctx| ctx.reduce_into(rz, r * z));
                    ctx.assign(beta, TExpr::select(rz_old.ex().eq_(0.0f32), 0.0f32, rz / rz_old));
                    ctx.label("elementwise", |ctx| ctx.assign(p, z + p * beta));
                    ctx.assign(rz_old, rz.ex());
                    ctx.label("reduce", |ctx| ctx.reduce_into(res2, r * r));
                    ctx.assign(iter, iter + 1.0f32);
                    if let Some(mon) = &self.monitor {
                        mon.record(ctx, x, self.shift, sentinel_body.clone());
                    }
                    if let Some((ck, st)) = &chk {
                        ck.emit_step(ctx, st, x, iter);
                    }
                },
            );
        });
    }
}
