//! Chebyshev polynomial smoother/preconditioner.
//!
//! The paper cites Adams et al., "Parallel multigrid smoothing: polynomial
//! versus Gauss-Seidel" (§V-D) — polynomial smoothers are the classic
//! alternative to Gauss-Seidel precisely because they contain **no
//! triangular solve**: every step is an SpMV plus elementwise work,
//! perfectly parallel across tiles and workers, with no level-set
//! serialisation and no block-locality loss across tile boundaries. That
//! makes them an interesting fit for the IPU's 8,832-worker machine.
//!
//! Implements the standard Chebyshev iteration on the interval
//! `[λmax/ratio, λmax]`, with λmax estimated by host-side power iteration
//! at setup (a one-time cost, like the ILU factorisation). The recurrence
//! coefficients are compile-time constants baked into the schedule, so a
//! degree-k application is exactly k SpMVs + k elementwise updates.

use dsl::prelude::*;

use crate::dist::DistSystem;
use crate::solvers::{zero, Solver};

pub struct Chebyshev {
    degree: u32,
    /// λmax/λmin of the smoothing interval (30 is the common smoother
    /// choice; smaller targets more of the spectrum).
    eig_ratio: f64,
    lambda_max: f64,
    r: Option<TensorRef>,
    d: Option<TensorRef>,
    ad: Option<TensorRef>,
}

impl Chebyshev {
    pub fn new(degree: u32, eig_ratio: f64) -> Chebyshev {
        assert!(degree > 0);
        assert!(eig_ratio > 1.0);
        Chebyshev { degree, eig_ratio, lambda_max: 0.0, r: None, d: None, ad: None }
    }

    /// Host-side power iteration for λmax (with a safety margin).
    fn estimate_lambda_max(a: &sparse::formats::CsrMatrix) -> f64 {
        let n = a.nrows;
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
        let mut lambda = 1.0;
        for _ in 0..30 {
            let w = a.spmv_alloc(&v);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                break;
            }
            lambda = norm / v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
            v = w.iter().map(|x| x / norm).collect();
        }
        lambda * 1.05
    }
}

impl Solver for Chebyshev {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        self.lambda_max = Self::estimate_lambda_max(&sys.a);
        self.r = Some(sys.new_vector(ctx, "cheb_r", DType::F32));
        self.d = Some(sys.new_vector(ctx, "cheb_d", DType::F32));
        self.ad = Some(sys.new_vector(ctx, "cheb_ad", DType::F32));
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let r = self.r.expect("setup() not called");
        let d = self.d.expect("setup() not called");
        let ad = self.ad.expect("setup() not called");
        let lmax = self.lambda_max;
        let lmin = lmax / self.eig_ratio;
        let theta = 0.5 * (lmax + lmin);
        let delta = 0.5 * (lmax - lmin);
        let sigma = theta / delta;

        ctx.label("chebyshev", |ctx| {
            // r = b - A x ; d = r / theta ; x += d.
            sys.residual(ctx, r, b, x);
            ctx.assign(d, r * (1.0 / theta) as f32);
            ctx.assign(x, x + d);
            // The recurrence coefficients are host-side constants: the
            // degree is fixed, so each step bakes its own rho.
            let mut rho = 1.0 / sigma;
            for _ in 1..self.degree {
                let rho_next = 1.0 / (2.0 * sigma - rho);
                let c1 = (rho_next * rho) as f32;
                let c2 = (2.0 * rho_next / delta) as f32;
                rho = rho_next;
                // r -= A d ; d = c1 d + c2 r ; x += d.
                ctx.label("spmv", |ctx| sys.spmv(ctx, ad, d));
                ctx.assign(r, r - ad);
                ctx.assign(d, d * c1 + r * c2);
                ctx.assign(x, x + d);
            }
        });
        let _ = zero; // (preconditioner callers zero x themselves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};
    use sparse::partition::Partition;
    use std::rc::Rc;

    #[test]
    fn chebyshev_smooths_high_frequencies() {
        let a = Rc::new(poisson_2d_5pt(12, 12, 1.0));
        let bs = rhs_for_ones(&a);
        let part = Partition::balanced_by_nnz(&a, 4);
        let mut ctx = DslCtx::new(IpuModel::tiny(4));
        let sys = crate::dist::DistSystem::build(&mut ctx, a.clone(), part);
        let b = sys.new_vector(&mut ctx, "b", DType::F32);
        let x = sys.new_vector(&mut ctx, "x", DType::F32);
        let mut cheb = Chebyshev::new(6, 30.0);
        cheb.setup(&mut ctx, &sys);
        cheb.solve(&mut ctx, &sys, b, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.write_tensor(b.id, &sys.to_device_order(&bs));
        e.run();
        let got = sys.from_device_order(&e.read_tensor(x.id));
        // One degree-6 application from zero must reduce the residual
        // substantially.
        let r: f64 = a
            .spmv_alloc(&got)
            .iter()
            .zip(&bs)
            .map(|(ax, b)| (ax - b) * (ax - b))
            .sum::<f64>()
            .sqrt();
        let r0: f64 = bs.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(r < r0 * 0.5, "residual {r} vs initial {r0}");
    }

    #[test]
    fn lambda_max_estimate_brackets_gershgorin() {
        let a = poisson_2d_5pt(10, 10, 1.0);
        let est = Chebyshev::estimate_lambda_max(&a);
        // 2D 5-point Laplacian: spectrum in (0, 8); estimate must land
        // near but not above a small margin over 8.
        assert!(est > 6.0 && est < 8.5, "lambda_max {est}");
    }
}
