//! Gauss-Seidel, level-set scheduled (paper §V-D).
//!
//! The sweep updates components in place,
//!
//! ```text
//! x_i ← ( b_i − Σ_{j≠i} a_ij x_j ) / a_ii
//! ```
//!
//! using already-updated values for local rows in earlier levels — the
//! inherently sequential dependency the paper breaks with Level-Set
//! Scheduling (§V-A): rows of one level run concurrently on the tile's six
//! workers, separated by the lightweight IPUTHREADING barriers. Across
//! tiles the sweep is block-Jacobi: halo values are refreshed once per
//! sweep by the blockwise §IV exchange and held fixed within it.

use dsl::prelude::*;
use graph::codelet::CodeletId;

use crate::dist::DistSystem;
use crate::solvers::Solver;

pub struct GaussSeidel {
    sweeps: u32,
    /// Follow each forward sweep with a backward sweep (SSOR-like
    /// symmetric smoothing).
    symmetric: bool,
    /// Standalone-solver mode: stop early once ‖b − A x‖ ≤ rel_tol·‖b‖
    /// (checked on the device after every sweep). `0.0` = fixed sweeps,
    /// the smoother/preconditioner mode.
    rel_tol: f32,
    fwd: Option<CodeletId>,
    bwd: Option<CodeletId>,
}

impl GaussSeidel {
    pub fn new(sweeps: u32, symmetric: bool) -> GaussSeidel {
        assert!(sweeps > 0, "gauss-seidel needs at least one sweep");
        GaussSeidel { sweeps, symmetric, rel_tol: 0.0, fwd: None, bwd: None }
    }

    /// The standalone-solver variant (paper §V-D: GS is "valuable as a
    /// standalone solver in finite volume methods"): sweep until the
    /// relative residual drops below `rel_tol` or `max_sweeps` is reached.
    pub fn with_tolerance(max_sweeps: u32, rel_tol: f32, symmetric: bool) -> GaussSeidel {
        assert!(max_sweeps > 0 && rel_tol > 0.0);
        GaussSeidel { sweeps: max_sweeps, symmetric, rel_tol, fwd: None, bwd: None }
    }

    /// Emit exactly `sweeps` forward sweeps (smoother building block used
    /// by the two-grid cycle). Requires `setup()`.
    pub fn solve_sweeps(
        &self,
        ctx: &mut DslCtx,
        sys: &DistSystem,
        b: TensorRef,
        x: TensorRef,
        sweeps: u32,
    ) {
        let fwd = self.fwd.expect("setup() not called");
        ctx.label("gauss_seidel", |ctx| {
            ctx.repeat(sweeps, |ctx| {
                self.sweep(ctx, sys, fwd, &sys.fwd_levels, b, x);
            });
        });
    }

    fn sweep(
        &self,
        ctx: &mut DslCtx,
        sys: &DistSystem,
        codelet: CodeletId,
        levels: &[Vec<Vec<usize>>],
        b: TensorRef,
        x: TensorRef,
    ) {
        sys.halo_exchange(ctx, x);
        let mut vertices = Vec::with_capacity(sys.num_tiles());
        for (t, vc) in sys.vec_chunks.iter().enumerate() {
            if vc.owned == 0 {
                continue;
            }
            let mut operands = vec![
                TensorSlice { tensor: x.id, start: vc.start, len: vc.total },
                TensorSlice { tensor: b.id, start: vc.start, len: vc.owned },
            ];
            operands.extend(crate::dist::matrix_operands(sys, t));
            vertices.push(Vertex {
                tile: vc.tile,
                codelet,
                operands,
                kind: VertexKind::LevelSet { levels: levels[t].clone() },
            });
        }
        ctx.execute("gauss_seidel", vertices);
    }
}

impl Solver for GaussSeidel {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "gauss_seidel"
    }

    fn setup(&mut self, ctx: &mut DslCtx, _sys: &DistSystem) {
        self.fwd = Some(ctx.add_codelet(gs_codelet("gs_forward")));
        if self.symmetric {
            self.bwd = Some(ctx.add_codelet(gs_codelet("gs_backward")));
        }
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let fwd = self.fwd.expect("setup() not called");
        if self.rel_tol == 0.0 {
            // Smoother/preconditioner mode: a fixed number of sweeps, no
            // residual work.
            ctx.label("gauss_seidel", |ctx| {
                ctx.repeat(self.sweeps, |ctx| {
                    self.sweep(ctx, sys, fwd, &sys.fwd_levels, b, x);
                    if let Some(bwd) = self.bwd {
                        self.sweep(ctx, sys, bwd, &sys.bwd_levels, b, x);
                    }
                });
            });
            return;
        }
        // Standalone-solver mode: TensorDSL computes the residual and its
        // norm (the split the paper's §III example describes — "the
        // Gauss-Seidel solver uses TensorDSL to calculate the residual and
        // its vector norm, and CodeDSL to perform the smoothing step").
        let r = sys.new_vector(ctx, "gs_r", DType::F32);
        let res2 = ctx.scalar("gs_res2", DType::F32);
        let b2 = ctx.scalar("gs_b2", DType::F32);
        let iter = ctx.scalar("gs_iter", DType::F32);
        let pred = ctx.scalar("gs_pred", DType::Bool);
        let max_sweeps = self.sweeps as f32;
        let tol2 = self.rel_tol * self.rel_tol;
        ctx.label("gauss_seidel", |ctx| {
            ctx.reduce_into(b2, b * b);
            ctx.assign(iter, dsl::TExpr::c_f32(0.0));
            ctx.while_(
                |ctx| {
                    sys.residual(ctx, r, b, x);
                    ctx.reduce_into(res2, r * r);
                    ctx.assign(pred, iter.ex().lt(max_sweeps).and(res2.ex().gt(b2 * tol2)));
                    pred
                },
                |ctx| {
                    self.sweep(ctx, sys, fwd, &sys.fwd_levels, b, x);
                    if let Some(bwd) = self.bwd {
                        self.sweep(ctx, sys, bwd, &sys.bwd_levels, b, x);
                    }
                    ctx.assign(iter, iter + 1.0f32);
                },
            );
        });
    }
}

/// Per-row Gauss-Seidel update codelet (level-set scheduled; local 0 is the
/// row index). The direction of the sweep is entirely in the *level order*
/// the vertex carries — the row update itself is identical.
///
/// Params: `x` (mut, local_len) · `b` (rows) · `diag` · `vals` · `cols` ·
/// `rptr`.
fn gs_codelet(name: &str) -> graph::codelet::Codelet {
    let (mut cb, row) = CodeDsl::new_level_set(name);
    let x = cb.param(DType::F32, true);
    let b = cb.param(DType::F32, false);
    let diag = cb.param(DType::F32, false);
    let vals = cb.param(DType::F32, false);
    let cols = cb.param(DType::I32, false);
    let rptr = cb.param(DType::I32, false);
    let r = row.get();
    let acc = cb.var(b.at(r.clone()));
    let lo = cb.let_(rptr.at(r.clone()));
    let hi = cb.let_(rptr.at(r.clone() + 1));
    cb.for_(lo, hi, Val::i32(1), |cb, k| {
        cb.assign(acc, acc.get() - vals.at(k.clone()) * x.at(cols.at(k)));
    });
    cb.store(x, r.clone(), acc.get() / diag.at(r));
    cb.build()
}
