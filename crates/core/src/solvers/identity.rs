//! The identity "preconditioner": `M = I`, i.e. `z = r`.
//!
//! Turns PBiCGStab into plain BiCGStab; the baseline of every
//! preconditioning comparison.

use dsl::prelude::*;

use crate::dist::DistSystem;
use crate::solvers::Solver;

#[derive(Default)]
pub struct Identity;

impl Identity {
    pub fn new() -> Identity {
        Identity
    }
}

impl Solver for Identity {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn setup(&mut self, _ctx: &mut DslCtx, _sys: &DistSystem) {}

    fn solve(&mut self, ctx: &mut DslCtx, _sys: &DistSystem, b: TensorRef, x: TensorRef) {
        ctx.copy(b, x);
    }
}
