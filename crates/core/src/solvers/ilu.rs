//! Incomplete LU factorisation preconditioners (paper §V-E).
//!
//! **ILU(0)** computes approximate factors `A ≈ L U` on the original
//! sparsity pattern (no fill-in); **DILU** computes only the diagonal of
//! `U`, with `M = (D + L) D⁻¹ (D + U)` sharing `A`'s off-diagonals. Both
//! phases — factorisation and the forward/backward substitutions — run on
//! the device, level-set scheduled across each tile's six workers (§V-A).
//!
//! Tile locality: the factorisation and substitutions operate on each
//! tile's *local block* (halo columns are disregarded), i.e. the
//! preconditioner is block-Jacobi-ILU across tiles — exactly the
//! behaviour the paper observes and discusses in §VI-D ("decomposing the
//! domain across such a large number of small subdomains has a substantial
//! negative impact on the effectiveness of the ILU preconditioner, as it
//! completely disregards halo values").

use dsl::prelude::*;
use graph::codelet::CodeletId;

use crate::dist::{matrix_operands, DistSystem};
use crate::solvers::Solver;

/// ILU(0): full incomplete factors on the original pattern.
pub struct Ilu0 {
    lu_vals: Option<TensorRef>,
    lu_diag: Option<TensorRef>,
    factorize: Option<CodeletId>,
    fwd: Option<CodeletId>,
    bwd: Option<CodeletId>,
}

impl Ilu0 {
    pub fn new() -> Ilu0 {
        Ilu0 { lu_vals: None, lu_diag: None, factorize: None, fwd: None, bwd: None }
    }
}

impl Default for Ilu0 {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver for Ilu0 {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "ilu0"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        // Working copies of the matrix data: the factorisation overwrites
        // them, the original matrix stays intact for SpMVs.
        let lu_vals = ctx.alloc_like(sys.vals, DType::F32);
        let lu_diag = ctx.alloc_like(sys.diag, DType::F32);
        ctx.copy(sys.vals, lu_vals);
        ctx.copy(sys.diag, lu_diag);
        self.lu_vals = Some(lu_vals);
        self.lu_diag = Some(lu_diag);
        self.factorize = Some(ctx.add_codelet(ilu0_factorize_codelet()));
        self.fwd = Some(ctx.add_codelet(forward_subst_codelet(false)));
        self.bwd = Some(ctx.add_codelet(backward_subst_codelet(true)));

        // The factorisation itself: one level-set vertex per tile, driven
        // by the forward dependency levels.
        let mut vertices = Vec::with_capacity(sys.num_tiles());
        for (t, vc) in sys.vec_chunks.iter().enumerate() {
            if vc.owned == 0 {
                continue;
            }
            let mo = matrix_operands(sys, t);
            let operands = vec![
                // lu_vals / lu_diag share chunk layout with vals / diag.
                TensorSlice { tensor: lu_vals.id, start: mo[1].start, len: mo[1].len },
                TensorSlice { tensor: lu_diag.id, start: mo[0].start, len: mo[0].len },
                mo[2], // cols
                mo[3], // rptr
            ];
            vertices.push(Vertex {
                tile: vc.tile,
                codelet: self.factorize.unwrap(),
                operands,
                kind: VertexKind::LevelSet { levels: sys.fwd_levels[t].clone() },
            });
        }
        ctx.label("ilu_factorize", |ctx| ctx.execute("ilu0_factorize", vertices));
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let lu_vals = self.lu_vals.expect("setup() not called");
        let lu_diag = self.lu_diag.expect("setup() not called");
        ctx.label("ilu_solve", |ctx| {
            substitution(ctx, sys, self.fwd.unwrap(), &sys.fwd_levels, lu_vals, lu_diag, b, x);
            substitution(ctx, sys, self.bwd.unwrap(), &sys.bwd_levels, lu_vals, lu_diag, x, x);
        });
    }
}

/// DILU: diagonal-only incomplete factorisation.
pub struct Dilu {
    d: Option<TensorRef>,
    factorize: Option<CodeletId>,
    fwd: Option<CodeletId>,
    bwd: Option<CodeletId>,
}

impl Dilu {
    pub fn new() -> Dilu {
        Dilu { d: None, factorize: None, fwd: None, bwd: None }
    }
}

impl Default for Dilu {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver for Dilu {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "dilu"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        let d = ctx.alloc_like(sys.diag, DType::F32);
        ctx.copy(sys.diag, d);
        self.d = Some(d);
        self.factorize = Some(ctx.add_codelet(dilu_factorize_codelet()));
        self.fwd = Some(ctx.add_codelet(forward_subst_codelet(true)));
        self.bwd = Some(ctx.add_codelet(backward_subst_codelet(false)));

        let mut vertices = Vec::with_capacity(sys.num_tiles());
        for (t, vc) in sys.vec_chunks.iter().enumerate() {
            if vc.owned == 0 {
                continue;
            }
            let mo = matrix_operands(sys, t);
            let operands = vec![
                TensorSlice { tensor: d.id, start: mo[0].start, len: mo[0].len },
                mo[1], // vals (read-only for DILU)
                mo[2], // cols
                mo[3], // rptr
            ];
            vertices.push(Vertex {
                tile: vc.tile,
                codelet: self.factorize.unwrap(),
                operands,
                kind: VertexKind::LevelSet { levels: sys.fwd_levels[t].clone() },
            });
        }
        ctx.label("dilu_factorize", |ctx| ctx.execute("dilu_factorize", vertices));
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let d = self.d.expect("setup() not called");
        ctx.label("dilu_solve", |ctx| {
            // Forward: (D + L) w = b, dividing by d_i.
            substitution(ctx, sys, self.fwd.unwrap(), &sys.fwd_levels, sys.vals, d, b, x);
            // Backward: z_i = w_i − d_i⁻¹ Σ_{j>i} a_ij z_j.
            substitution(ctx, sys, self.bwd.unwrap(), &sys.bwd_levels, sys.vals, d, x, x);
        });
    }
}

/// Emit one substitution pass. When `rhs == out` the codelet updates
/// in place (the backward pass).
#[allow(clippy::too_many_arguments)]
fn substitution(
    ctx: &mut DslCtx,
    sys: &DistSystem,
    codelet: CodeletId,
    levels: &[Vec<Vec<usize>>],
    lu_vals: TensorRef,
    lu_diag: TensorRef,
    rhs: TensorRef,
    out: TensorRef,
) {
    let in_place = rhs.id == out.id;
    let mut vertices = Vec::with_capacity(sys.num_tiles());
    for (t, vc) in sys.vec_chunks.iter().enumerate() {
        if vc.owned == 0 {
            continue;
        }
        let mo = matrix_operands(sys, t);
        let mut operands = vec![TensorSlice { tensor: out.id, start: vc.start, len: vc.owned }];
        if !in_place {
            operands.push(TensorSlice { tensor: rhs.id, start: vc.start, len: vc.owned });
        }
        operands.push(TensorSlice { tensor: lu_vals.id, start: mo[1].start, len: mo[1].len });
        operands.push(TensorSlice { tensor: lu_diag.id, start: mo[0].start, len: mo[0].len });
        operands.push(mo[2]);
        operands.push(mo[3]);
        vertices.push(Vertex {
            tile: vc.tile,
            codelet,
            operands,
            kind: VertexKind::LevelSet { levels: levels[t].clone() },
        });
    }
    ctx.execute("substitution", vertices);
}

/// ILU(0) factorisation, per-row (level-set; local 0 = row `i`).
///
/// IKJ Gaussian elimination restricted to the local pattern:
/// ```text
/// for k in pattern(i), k < i (ascending):
///     l_ik = a_ik / u_kk            (stored in place of a_ik)
///     a_ii -= l_ik * a_ki            (diagonal update, if a_ki exists)
///     for j in pattern(i), j > k, j local:
///         a_ij -= l_ik * a_kj        (if a_kj exists)
/// ```
/// Params: `lu_vals` (mut) · `lu_diag` (mut) · `cols` · `rptr`.
fn ilu0_factorize_codelet() -> graph::codelet::Codelet {
    let (mut cb, row) = CodeDsl::new_level_set("ilu0_factorize");
    let lvals = cb.param(DType::F32, true);
    let ldiag = cb.param(DType::F32, true);
    let cols = cb.param(DType::I32, false);
    let rptr = cb.param(DType::I32, false);
    let i = row.get();
    let nrows = cb.let_(ldiag.len());
    let lo = cb.let_(rptr.at(i.clone()));
    let hi = cb.let_(rptr.at(i.clone() + 1));
    cb.for_(lo.clone(), hi.clone(), Val::i32(1), |cb, kk| {
        let k = cb.let_(cols.at(kk.clone()));
        // Lower-triangular, local entry (k < i implies k < nrows).
        cb.if_(k.clone().lt(i.clone()), |cb| {
            let lik = cb.let_(lvals.at(kk.clone()) / ldiag.at(k.clone()));
            cb.store(lvals, kk.clone(), lik.clone());
            let klo = cb.let_(rptr.at(k.clone()));
            let khi = cb.let_(rptr.at(k.clone() + 1));
            // Diagonal update: a_ii -= l_ik * a_ki.
            cb.for_(klo.clone(), khi.clone(), Val::i32(1), |cb, mm| {
                cb.if_(cols.at(mm.clone()).eq_(i.clone()), |cb| {
                    cb.store(ldiag, i.clone(), ldiag.at(i.clone()) - lik.clone() * lvals.at(mm));
                });
            });
            // Row updates: a_ij -= l_ik * a_kj for j > k in the pattern.
            cb.for_(lo.clone(), hi.clone(), Val::i32(1), |cb, jj| {
                let j = cb.let_(cols.at(jj.clone()));
                cb.if_(j.clone().gt(k.clone()).and(j.clone().lt(nrows.clone())), |cb| {
                    cb.for_(klo.clone(), khi.clone(), Val::i32(1), |cb, mm| {
                        cb.if_(cols.at(mm.clone()).eq_(j.clone()), |cb| {
                            cb.store(
                                lvals,
                                jj.clone(),
                                lvals.at(jj.clone()) - lik.clone() * lvals.at(mm),
                            );
                        });
                    });
                });
            });
        });
    });
    cb.build()
}

/// DILU factorisation, per-row: `d_i = a_ii − Σ_{k<i} a_ik a_ki / d_k`.
/// Params: `d` (mut) · `vals` · `cols` · `rptr`.
fn dilu_factorize_codelet() -> graph::codelet::Codelet {
    let (mut cb, row) = CodeDsl::new_level_set("dilu_factorize");
    let d = cb.param(DType::F32, true);
    let vals = cb.param(DType::F32, false);
    let cols = cb.param(DType::I32, false);
    let rptr = cb.param(DType::I32, false);
    let i = row.get();
    let lo = cb.let_(rptr.at(i.clone()));
    let hi = cb.let_(rptr.at(i.clone() + 1));
    cb.for_(lo, hi, Val::i32(1), |cb, kk| {
        let k = cb.let_(cols.at(kk.clone()));
        cb.if_(k.clone().lt(i.clone()), |cb| {
            let klo = cb.let_(rptr.at(k.clone()));
            let khi = cb.let_(rptr.at(k.clone() + 1));
            cb.for_(klo, khi, Val::i32(1), |cb, mm| {
                cb.if_(cols.at(mm.clone()).eq_(i.clone()), |cb| {
                    cb.store(
                        d,
                        i.clone(),
                        d.at(i.clone()) - vals.at(kk.clone()) * vals.at(mm) / d.at(k.clone()),
                    );
                });
            });
        });
    });
    cb.build()
}

/// Forward substitution, per-row.
///
/// ILU(0) (`divide = false`): `w_i = b_i − Σ_{j<i} l_ij w_j` (L unit).
/// DILU   (`divide = true`) : `w_i = (b_i − Σ_{j<i} a_ij w_j) / d_i`.
/// Params: `w` (mut, rows) · `b` (rows) · `lu_vals` · `lu_diag` · `cols` ·
/// `rptr`.
fn forward_subst_codelet(divide: bool) -> graph::codelet::Codelet {
    let name = if divide { "dilu_forward" } else { "ilu_forward" };
    let (mut cb, row) = CodeDsl::new_level_set(name);
    let w = cb.param(DType::F32, true);
    let b = cb.param(DType::F32, false);
    let lvals = cb.param(DType::F32, false);
    let ldiag = cb.param(DType::F32, false);
    let cols = cb.param(DType::I32, false);
    let rptr = cb.param(DType::I32, false);
    let i = row.get();
    let acc = cb.var(b.at(i.clone()));
    let lo = cb.let_(rptr.at(i.clone()));
    let hi = cb.let_(rptr.at(i.clone() + 1));
    cb.for_(lo, hi, Val::i32(1), |cb, kk| {
        let j = cb.let_(cols.at(kk.clone()));
        cb.if_(j.clone().lt(i.clone()), |cb| {
            cb.assign(acc, acc.get() - lvals.at(kk) * w.at(j));
        });
    });
    if divide {
        cb.store(w, i.clone(), acc.get() / ldiag.at(i));
    } else {
        let _ = &ldiag; // unit lower-triangular: diagonal unused
        cb.store(w, i, acc.get());
    }
    cb.build()
}

/// Backward substitution, per-row, in place on `z` (which holds `w`).
///
/// ILU(0) (`divide = true`) : `z_i = (w_i − Σ_{j>i, local} u_ij z_j)/u_ii`.
/// DILU   (`divide = false`): `z_i = w_i − d_i⁻¹ Σ_{j>i, local} a_ij z_j`.
/// Params: `z` (mut, rows) · `lu_vals` · `lu_diag` · `cols` · `rptr`.
fn backward_subst_codelet(divide: bool) -> graph::codelet::Codelet {
    let name = if divide { "ilu_backward" } else { "dilu_backward" };
    let (mut cb, row) = CodeDsl::new_level_set(name);
    let z = cb.param(DType::F32, true);
    let lvals = cb.param(DType::F32, false);
    let ldiag = cb.param(DType::F32, false);
    let cols = cb.param(DType::I32, false);
    let rptr = cb.param(DType::I32, false);
    let i = row.get();
    let nrows = cb.let_(z.len());
    let acc = cb.var(Val::f32(0.0));
    let lo = cb.let_(rptr.at(i.clone()));
    let hi = cb.let_(rptr.at(i.clone() + 1));
    cb.for_(lo, hi, Val::i32(1), |cb, kk| {
        let j = cb.let_(cols.at(kk.clone()));
        cb.if_(j.clone().gt(i.clone()).and(j.clone().lt(nrows.clone())), |cb| {
            cb.assign(acc, acc.get() + lvals.at(kk) * z.at(j));
        });
    });
    if divide {
        cb.store(z, i.clone(), (z.at(i.clone()) - acc.get()) / ldiag.at(i));
    } else {
        cb.store(z, i.clone(), z.at(i.clone()) - acc.get() / ldiag.at(i));
    }
    cb.build()
}
