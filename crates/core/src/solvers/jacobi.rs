//! Damped Jacobi iteration.
//!
//! `x ← x + ω D⁻¹ (b − A x)`. Trivially parallel (the natural fit for the
//! six worker threads), slow as a standalone solver, useful as a smoother
//! and as the cheapest nontrivial preconditioner. The dense diagonal of the
//! modified CSR format (§II-C) makes `D⁻¹` a plain elementwise divide.

use dsl::prelude::*;

use crate::dist::DistSystem;
use crate::solvers::Solver;

pub struct Jacobi {
    sweeps: u32,
    omega: f32,
    r: Option<TensorRef>,
}

impl Jacobi {
    pub fn new(sweeps: u32, omega: f32) -> Jacobi {
        assert!(sweeps > 0, "jacobi needs at least one sweep");
        assert!(omega > 0.0 && omega <= 1.0, "damping factor in (0, 1]");
        Jacobi { sweeps, omega, r: None }
    }
}

impl Solver for Jacobi {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        self.r = Some(sys.new_vector(ctx, "jacobi_r", DType::F32));
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let r = self.r.expect("setup() not called");
        let omega = self.omega;
        let diag = sys.diag;
        ctx.label("jacobi", |ctx| {
            ctx.repeat(self.sweeps, |ctx| {
                sys.residual(ctx, r, b, x);
                ctx.assign(x, x + (r / diag) * omega);
            });
        });
    }
}
