//! The solver and preconditioner suite (paper §V).
//!
//! Every solver implements [`Solver`], emitting TensorDSL/CodeDSL program
//! steps during symbolic execution. The key property of the paper's design
//! is preserved: **any solver can serve as the preconditioner of any
//! other**, so a configuration is a tree —
//! e.g. `MPIR { BiCGStab { ILU(0) } }`.

use std::cell::RefCell;
use std::rc::Rc;

use dsl::prelude::*;
use sparse::formats::CsrMatrix;

use crate::dist::DistSystem;

pub mod bicgstab;
pub mod cg;
pub mod chebyshev;
pub mod gauss_seidel;
pub mod identity;
pub mod ilu;
pub mod jacobi;
pub mod mpir;
pub mod multigrid;

pub use bicgstab::BiCgStab;
pub use cg::Cg;
pub use chebyshev::Chebyshev;
pub use gauss_seidel::GaussSeidel;
pub use identity::Identity;
pub use ilu::{Dilu, Ilu0};
pub use jacobi::Jacobi;
pub use mpir::{ExtendedPrecision, Mpir};
pub use multigrid::TwoGrid;

/// A solver/preconditioner that contributes program steps.
///
/// Contract: `setup` is invoked exactly once (before the parent's loop —
/// factorisations and other reusable work go here); `solve` emits the steps
/// that improve `x` toward `A x = b`. When used as a preconditioner the
/// caller zeroes `x` first, so `solve` computes `x ≈ A⁻¹ b` from scratch;
/// as an outer solver `x` carries the initial guess.
pub trait Solver: std::any::Any {
    fn name(&self) -> &'static str;

    /// Runtime-typed access (used by MPIR to wire convergence monitors
    /// into a nested BiCGStab).
    fn as_any(&mut self) -> &mut dyn std::any::Any;

    /// One-time setup: workspace allocation, ILU factorisation, nested
    /// preconditioner setup.
    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem);

    /// Emit the solve program. `b` and `x` are distributed vectors in the
    /// system's halo layout.
    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef);
}

/// Records the *true* relative residual ‖b − A·x‖₂ / ‖b‖₂ in f64 on the
/// host — the quantity plotted in the paper's Figures 9 and 10. Device
/// solvers invoke it through host callbacks (§III-A: "we use CPU callbacks
/// to inform the user about the solver's progress").
///
/// The residual is evaluated against the system **as the device sees it**:
/// matrix values and right-hand side rounded to f32 (the device's working
/// precision), with the arithmetic itself in f64. This matches the paper's
/// setting — its solvers consume single-precision device data, and only
/// the *solution* carries extended precision — and is what lets MPIR
/// curves reach 1e-13..1e-15 instead of flooring at the f32 data-rounding
/// level.
#[derive(Clone)]
pub struct Monitor {
    pub a: Rc<CsrMatrix>,
    pub b: Rc<Vec<f64>>,
    /// device flat index of each global row's owned slot.
    pub gather: Rc<Vec<usize>>,
    /// (cumulative inner iteration, relative true residual).
    pub history: Rc<RefCell<Vec<(usize, f64)>>>,
    pub b_norm: f64,
    counter: Rc<RefCell<usize>>,
}

impl Monitor {
    pub fn new(sys: &DistSystem, b: Rc<Vec<f64>>) -> Monitor {
        let mut gather = vec![0usize; sys.num_rows()];
        for (t, layout) in sys.halo.layouts.iter().enumerate() {
            let base = sys.vec_chunks[t].start;
            for (local, &row) in layout.owned.iter().enumerate() {
                gather[row] = base + local;
            }
        }
        // The device system: values rounded to working precision.
        let mut a32 = (*sys.a).clone();
        for v in &mut a32.values {
            *v = *v as f32 as f64;
        }
        let b32: Vec<f64> = b.iter().map(|&v| v as f32 as f64).collect();
        let b_norm = b32.iter().map(|v| v * v).sum::<f64>().sqrt().max(f64::MIN_POSITIVE);
        Monitor {
            a: Rc::new(a32),
            b: Rc::new(b32),
            gather: Rc::new(gather),
            history: Rc::new(RefCell::new(Vec::new())),
            b_norm,
            counter: Rc::new(RefCell::new(0)),
        }
    }

    /// Emit a callback recording the true residual of `x` (plus `shift`,
    /// when `x` is a correction on top of an extended-precision base).
    /// When a [`Sentinel`](crate::resilience::Sentinel) is given, every
    /// recorded sample also feeds its non-finite / divergence /
    /// stagnation detectors.
    pub fn record(
        &self,
        ctx: &mut DslCtx,
        x: TensorRef,
        shift: Option<TensorRef>,
        sentinel: Option<crate::resilience::Sentinel>,
    ) {
        let m = self.clone();
        let xid = x.id;
        let sid = shift.map(|s| s.id);
        ctx.callback(move |view| {
            let dev = view.read_f64(xid);
            let base = sid.map(|s| view.read_f64(s));
            let n = m.gather.len();
            let mut xg = vec![0.0; n];
            for (row, &slot) in m.gather.iter().enumerate() {
                xg[row] = dev[slot] + base.as_ref().map_or(0.0, |b| b[slot]);
            }
            let ax = m.a.spmv_alloc(&xg);
            let r2: f64 = m.b.iter().zip(&ax).map(|(b, a)| (b - a) * (b - a)).sum();
            let mut c = m.counter.borrow_mut();
            *c += 1;
            let rel = r2.sqrt() / m.b_norm;
            m.history.borrow_mut().push((*c, rel));
            if let Some(s) = &sentinel {
                s.observe(*c, rel);
            }
        });
    }

    /// The recorded history: (iteration, relative residual).
    pub fn take_history(&self) -> Vec<(usize, f64)> {
        self.history.borrow().clone()
    }

    /// Final relative residual, if any was recorded.
    pub fn final_residual(&self) -> Option<f64> {
        self.history.borrow().last().map(|&(_, r)| r)
    }

    /// Total recorded iterations.
    pub fn iterations(&self) -> usize {
        *self.counter.borrow()
    }
}

/// Zero a distributed vector (owned elements).
pub fn zero(ctx: &mut DslCtx, x: TensorRef) {
    ctx.assign(x, dsl::TExpr::c_f32(0.0));
}

/// Build a solver tree from a configuration.
pub fn solver_from_config(cfg: &crate::config::SolverConfig) -> Box<dyn Solver> {
    use crate::config::SolverConfig as C;
    match cfg {
        C::Identity => Box::new(Identity::new()),
        C::Jacobi { sweeps, omega } => Box::new(Jacobi::new(*sweeps, *omega)),
        C::GaussSeidel { sweeps, symmetric, rel_tol } => Box::new(if *rel_tol > 0.0 {
            GaussSeidel::with_tolerance(*sweeps, *rel_tol, *symmetric)
        } else {
            GaussSeidel::new(*sweeps, *symmetric)
        }),
        C::Chebyshev { degree, eig_ratio } => Box::new(Chebyshev::new(*degree, *eig_ratio)),
        C::Ilu0 {} => Box::new(Ilu0::new()),
        C::Dilu {} => Box::new(Dilu::new()),
        C::BiCgStab { max_iters, rel_tol, precond } => {
            let p = precond.as_ref().map(|c| solver_from_config(c));
            Box::new(BiCgStab::new(*max_iters, *rel_tol, p))
        }
        C::Cg { max_iters, rel_tol, precond } => {
            let p = precond.as_ref().map(|c| solver_from_config(c));
            Box::new(Cg::new(*max_iters, *rel_tol, p))
        }
        C::Mpir { inner, precision, max_outer, rel_tol } => {
            Box::new(Mpir::new(solver_from_config(inner), *precision, *max_outer, *rel_tol))
        }
    }
}
