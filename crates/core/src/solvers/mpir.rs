//! Mixed-Precision Iterative Refinement (paper §V-B).
//!
//! Moler's iterative refinement, revisited for hardware without native
//! double precision. Each outer iteration performs:
//!
//! 1. `r = b − A·x` in **extended precision** — double-word arithmetic
//!    (the paper's novel combination) or software-emulated f64;
//! 2. solve `A·c = r` in **working precision** (any inner solver, run for
//!    a fixed number of iterations — the paper uses PBiCGStab+ILU(0) with
//!    100 iterations per refinement step);
//! 3. `x ← x + c` in extended precision.
//!
//! With `ExtendedPrecision::Working` the residual is computed in f32 —
//! plain IR, the paper's control configuration that does *not* improve the
//! convergence floor (Figs 9/10).

use dsl::prelude::*;
use dsl::TExpr;

use crate::dist::DistSystem;
use crate::resilience::{Checkpointer, Sentinel};
use crate::solvers::{zero, Monitor, Solver};

/// Which arithmetic carries MPIR steps 1 and 3.
///
/// Wire names (used by the JSON solver config, see
/// `config::precision_name`): `"working"`, `"double_word"`,
/// `"emulated_f64"`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtendedPrecision {
    /// f32 — plain iterative refinement, no precision gain (control).
    Working,
    /// Double-word (f32 pair, Joldes et al.): ~13–14 decimal digits at
    /// ~5% of the emulated-double cost (Table I).
    DoubleWord,
    /// Software-emulated IEEE f64: ~16 digits, ~180x per-op cost.
    EmulatedF64,
}

impl ExtendedPrecision {
    pub fn dtype(self) -> DType {
        match self {
            ExtendedPrecision::Working => DType::F32,
            ExtendedPrecision::DoubleWord => DType::DoubleWord,
            ExtendedPrecision::EmulatedF64 => DType::F64Emulated,
        }
    }
}

pub struct Mpir {
    inner: Box<dyn Solver>,
    precision: ExtendedPrecision,
    max_outer: u32,
    rel_tol: f64,
    pub monitor: Option<Monitor>,
    /// Extended-precision solution tensor (readable after run for the
    /// full-precision result).
    pub x_ext: Option<TensorRef>,
    /// Optional in-flight watchdog; propagated to the inner solver so a
    /// trip unwinds both loop levels (see `BiCgStab::sentinel`).
    pub sentinel: Option<Sentinel>,
    /// Optional periodic checkpoints of the extended solution `x_ext`
    /// (taken once per outer refinement step).
    pub checkpoint: Option<Checkpointer>,
}

impl Mpir {
    pub fn new(
        inner: Box<dyn Solver>,
        precision: ExtendedPrecision,
        max_outer: u32,
        rel_tol: f64,
    ) -> Mpir {
        assert!(max_outer > 0);
        Mpir {
            inner,
            precision,
            max_outer,
            rel_tol,
            monitor: None,
            x_ext: None,
            sentinel: None,
            checkpoint: None,
        }
    }
}

impl Solver for Mpir {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "mpir"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        self.inner.setup(ctx, sys);
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        let ext = self.precision.dtype();
        let x_ext = sys.new_vector(ctx, "mpir_x", ext);
        let r_ext = sys.new_vector(ctx, "mpir_r", ext);
        let r_work = sys.new_vector(ctx, "mpir_rw", DType::F32);
        let c = sys.new_vector(ctx, "mpir_c", DType::F32);
        let res2 = ctx.scalar("mpir_res2", ext);
        let b2 = ctx.scalar("mpir_b2", ext);
        let outer = ctx.scalar("mpir_outer", DType::F32);
        let pred = ctx.scalar("mpir_pred", DType::Bool);
        self.x_ext = Some(x_ext);

        let max_outer = self.max_outer as f32;
        let tol2 = (self.rel_tol * self.rel_tol) as f32;

        // Wire the inner solver's monitor to record true residuals on top
        // of the extended base, if it supports one; the sentinel rides
        // along so detections abort the inner loop too.
        if let Some(mon) = &self.monitor {
            if let Some(bicg) = self.inner.as_any().downcast_mut::<super::BiCgStab>() {
                bicg.monitor = Some(mon.clone());
                bicg.shift = Some(x_ext);
            } else if let Some(cg) = self.inner.as_any().downcast_mut::<super::Cg>() {
                cg.monitor = Some(mon.clone());
                cg.shift = Some(x_ext);
            }
        }
        if let Some(sen) = &self.sentinel {
            if let Some(bicg) = self.inner.as_any().downcast_mut::<super::BiCgStab>() {
                bicg.sentinel = Some(sen.clone());
            } else if let Some(cg) = self.inner.as_any().downcast_mut::<super::Cg>() {
                cg.sentinel = Some(sen.clone());
            }
        }
        let sentinel = self.sentinel.clone();

        ctx.label("mpir", |ctx| {
            // x_ext = x (promoted); ‖b‖² in extended precision.
            ctx.assign(x_ext, x.to(ext));
            ctx.reduce_into(b2, b.to(ext) * b.to(ext));
            ctx.assign(outer, TExpr::c_f32(0.0));
            let chk = self.checkpoint.as_ref().map(|c| (c.clone(), c.setup(ctx, sys, ext)));

            ctx.while_(
                |ctx| {
                    // Step 1: extended-precision residual + norm.
                    ctx.label("extended", |ctx| {
                        sys.residual(ctx, r_ext, b, x_ext);
                        ctx.reduce_into(res2, r_ext * r_ext);
                    });
                    // Guard the relative test with an absolute floor: for
                    // b = 0 (b2 = 0) a pure relative predicate can never
                    // pass, and for subnormal b the product b2·tol²
                    // underflows to 0 — either way the loop would burn all
                    // max_outer iterations on an (exactly) converged
                    // solution.
                    let cont = if self.rel_tol > 0.0 {
                        let thresh = (b2.ex() * tol2).max_(f32::MIN_POSITIVE);
                        outer.ex().lt(max_outer).and(res2.ex().gt(thresh))
                    } else {
                        outer.ex().lt(max_outer)
                    };
                    ctx.assign(pred, cont);
                    // Host-side detections abort the refinement loop at
                    // the next outer-iteration boundary (see bicgstab.rs).
                    if let Some(s) = &sentinel {
                        s.emit_abort_hook(ctx, pred);
                    }
                    pred
                },
                |ctx| {
                    // Step 2: round the residual to working precision and
                    // solve A c = r for the correction.
                    ctx.label("extended", |ctx| ctx.assign(r_work, r_ext.to(DType::F32)));
                    zero(ctx, c);
                    self.inner.solve(ctx, sys, r_work, c);
                    // Step 3: extended-precision update.
                    ctx.label("extended", |ctx| ctx.assign(x_ext, x_ext + c.to(ext)));
                    ctx.assign(outer, outer + 1.0f32);
                    if let Some((ck, st)) = &chk {
                        ck.emit_step(ctx, st, x_ext, outer);
                    }
                },
            );
            // Round the refined solution back to the working-precision
            // output tensor.
            ctx.assign(x, x_ext.to(DType::F32));
        });
    }
}
