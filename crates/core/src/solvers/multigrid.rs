//! A geometric two-grid preconditioner for structured Poisson problems.
//!
//! The paper positions Gauss-Seidel "as a smoother in multigrid
//! algorithms" (§V-D) but stops short of building one; this module takes
//! the step for the structured-grid case the scaling study uses. The
//! coarse grid halves each dimension; both levels live on the *same* tiles
//! with box-aligned partitions, so restriction (scaled injection) and
//! prolongation (piecewise-constant) are purely tile-local codelets — no
//! extra communication beyond each level's own halo exchanges.
//!
//! The cycle is the classic pre-smooth → coarse-grid-correction →
//! post-smooth V(ν,ν) on two levels, with any [`Solver`] as the coarse
//! solver. Like everything else it is symbolically executed once and runs
//! entirely on the device.

use std::rc::Rc;

use dsl::prelude::*;

use crate::dist::DistSystem;
use crate::solvers::{zero, GaussSeidel, Solver};
use sparse::gen::{poisson_3d_7pt, Grid3};
use sparse::partition::Partition;

/// Two-grid V-cycle preconditioner over a structured 3D grid.
pub struct TwoGrid {
    fine_grid: Grid3,
    factors: (usize, usize, usize),
    pre_sweeps: u32,
    post_sweeps: u32,
    coarse_solver: Box<dyn Solver>,
    built: Option<Built>,
}

struct Built {
    smoother: GaussSeidel,
    coarse: DistSystem,
    r_fine: TensorRef,
    rc: TensorRef,
    xc: TensorRef,
    restrict_map: TensorRef,
    prolong_map: TensorRef,
    restrict_codelet: graph::codelet::CodeletId,
    prolong_codelet: graph::codelet::CodeletId,
    restrict_data: Vec<f64>,
    prolong_data: Vec<f64>,
}

impl TwoGrid {
    /// `fine_grid` must have even dimensions divisible by the partition
    /// `factors` (px, py, pz); the fine system handed to `setup` must be
    /// the 7-point Poisson problem on that grid partitioned with
    /// `Partition::grid_3d(fine_grid, px, py, pz)`.
    pub fn new(
        fine_grid: Grid3,
        factors: (usize, usize, usize),
        pre_sweeps: u32,
        post_sweeps: u32,
        coarse_solver: Box<dyn Solver>,
    ) -> TwoGrid {
        assert!(
            fine_grid.nx % 2 == 0 && fine_grid.ny % 2 == 0 && fine_grid.nz % 2 == 0,
            "two-grid coarsening needs even grid dimensions"
        );
        let (px, py, pz) = factors;
        assert!(
            (fine_grid.nx / 2) % px == 0
                && (fine_grid.ny / 2) % py == 0
                && (fine_grid.nz / 2) % pz == 0,
            "coarse grid must divide evenly into the partition boxes"
        );
        TwoGrid { fine_grid, factors, pre_sweeps, post_sweeps, coarse_solver, built: None }
    }
}

impl Solver for TwoGrid {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "two_grid"
    }

    fn setup(&mut self, ctx: &mut DslCtx, sys: &DistSystem) {
        let fg = self.fine_grid;
        assert_eq!(sys.num_rows(), fg.num_cells(), "fine system does not match the grid");
        let (px, py, pz) = self.factors;
        let cg = Grid3 { nx: fg.nx / 2, ny: fg.ny / 2, nz: fg.nz / 2 };

        // The coarse operator: the same discretisation on the halved grid
        // (for the unscaled 7-point stencil the residual restriction
        // carries the (h_c/h_f)² = 4 scaling).
        let a_c = Rc::new(poisson_3d_7pt(cg.nx, cg.ny, cg.nz));
        let part_c = Partition::grid_3d(cg, px, py, pz);
        let coarse = DistSystem::build(ctx, a_c, part_c);
        assert_eq!(
            coarse.num_tiles(),
            sys.num_tiles(),
            "fine and coarse partitions must use the same tiles"
        );

        let r_fine = sys.new_vector(ctx, "mg_r", DType::F32);
        let rc = coarse.new_vector(ctx, "mg_rc", DType::F32);
        let xc = coarse.new_vector(ctx, "mg_xc", DType::F32);

        // Host-side transfer maps, in each tile's local orderings.
        // restrict_map[coarse local i] = fine local index of (2X, 2Y, 2Z);
        // prolong_map[fine local j]    = coarse local index of (X/2, ...).
        let mut restrict_data = vec![0.0f64; coarse.vec_chunks.iter().map(|c| c.owned).sum()];
        let mut prolong_data = vec![0.0f64; sys.vec_chunks.iter().map(|c| c.owned).sum()];
        let mut roff = 0usize;
        let mut poff = 0usize;
        let mut restrict_chunks = Vec::new();
        let mut prolong_chunks = Vec::new();
        for t in 0..sys.num_tiles() {
            let c_layout = &coarse.halo.layouts[t];
            let f_layout = &sys.halo.layouts[t];
            restrict_chunks.push(TensorChunk {
                tile: t,
                start: roff,
                owned: c_layout.owned.len(),
                total: c_layout.owned.len(),
            });
            prolong_chunks.push(TensorChunk {
                tile: t,
                start: poff,
                owned: f_layout.owned.len(),
                total: f_layout.owned.len(),
            });
            for (i, &crow) in c_layout.owned.iter().enumerate() {
                let (cx, cy, cz) = cg.coords(crow);
                let frow = fg.index(2 * cx, 2 * cy, 2 * cz);
                let (ft, fl) = sys.halo.owner_slot[frow];
                assert_eq!(ft as usize, t, "aligned boxes keep injection tile-local");
                restrict_data[roff + i] = fl as f64;
            }
            for (j, &frow) in f_layout.owned.iter().enumerate() {
                let (fx, fy, fz) = fg.coords(frow);
                let crow = cg.index(fx / 2, fy / 2, fz / 2);
                let (ct, cl) = coarse.halo.owner_slot[crow];
                assert_eq!(ct as usize, t, "aligned boxes keep the parent tile-local");
                prolong_data[poff + j] = cl as f64;
            }
            roff += c_layout.owned.len();
            poff += f_layout.owned.len();
        }
        let restrict_map = ctx
            .add_tensor(TensorDef {
                name: "mg_rmap".into(),
                dtype: DType::I32,
                chunks: restrict_chunks,
            })
            .expect("restriction map");
        let prolong_map = ctx
            .add_tensor(TensorDef {
                name: "mg_pmap".into(),
                dtype: DType::I32,
                chunks: prolong_chunks,
            })
            .expect("prolongation map");

        // Transfer codelets.
        let restrict_codelet = {
            let mut cb = CodeDsl::new("mg_restrict");
            let out = cb.param(DType::F32, true); // coarse residual (rows_c)
            let fine = cb.param(DType::F32, false); // fine residual (rows_f)
            let map = cb.param(DType::I32, false);
            cb.par_for(Val::i32(0), out.len(), |cb, i| {
                cb.store(out, i.clone(), fine.at(map.at(i)) * 4.0f32);
            });
            ctx.add_codelet(cb.build())
        };
        let prolong_codelet = {
            let mut cb = CodeDsl::new("mg_prolong");
            let x = cb.param(DType::F32, true); // fine solution (rows_f)
            let e = cb.param(DType::F32, false); // coarse correction (rows_c)
            let map = cb.param(DType::I32, false);
            cb.par_for(Val::i32(0), x.len(), |cb, j| {
                cb.store(x, j.clone(), x.at(j.clone()) + e.at(map.at(j)));
            });
            ctx.add_codelet(cb.build())
        };

        let mut smoother = GaussSeidel::new(self.pre_sweeps.max(self.post_sweeps), false);
        smoother.setup(ctx, sys);
        self.coarse_solver.setup(ctx, &coarse);

        self.built = Some(Built {
            smoother,
            coarse,
            r_fine,
            rc,
            xc,
            restrict_map,
            prolong_map,
            restrict_codelet,
            prolong_codelet,
            restrict_data,
            prolong_data,
        });
    }

    fn solve(&mut self, ctx: &mut DslCtx, sys: &DistSystem, b: TensorRef, x: TensorRef) {
        // Split the borrow: the coarse solver is driven separately from the
        // built state, and the sweep counts are copied out so the closure
        // does not capture `self`.
        let (pre, post) = (self.pre_sweeps, self.post_sweeps);
        let built = self.built.as_mut().expect("setup() not called");
        let coarse_solver = &mut self.coarse_solver;
        ctx.label("two_grid", |ctx| {
            // Pre-smooth.
            built.smoother.solve_sweeps(ctx, sys, b, x, pre);
            // Fine residual and its restriction.
            sys.residual(ctx, built.r_fine, b, x);
            let mut restrict = Vec::new();
            let mut prolong = Vec::new();
            for t in 0..sys.num_tiles() {
                let fc = sys.vec_chunks[t];
                let cc = built.coarse.vec_chunks[t];
                let rm = &ctx.graph().tensors[built.restrict_map.id].chunks[t];
                let pm = &ctx.graph().tensors[built.prolong_map.id].chunks[t];
                restrict.push(Vertex {
                    tile: t,
                    codelet: built.restrict_codelet,
                    operands: vec![
                        TensorSlice { tensor: built.rc.id, start: cc.start, len: cc.owned },
                        TensorSlice { tensor: built.r_fine.id, start: fc.start, len: fc.owned },
                        TensorSlice {
                            tensor: built.restrict_map.id,
                            start: rm.start,
                            len: rm.owned,
                        },
                    ],
                    kind: VertexKind::Simple,
                });
                prolong.push(Vertex {
                    tile: t,
                    codelet: built.prolong_codelet,
                    operands: vec![
                        TensorSlice { tensor: x.id, start: fc.start, len: fc.owned },
                        TensorSlice { tensor: built.xc.id, start: cc.start, len: cc.owned },
                        TensorSlice {
                            tensor: built.prolong_map.id,
                            start: pm.start,
                            len: pm.owned,
                        },
                    ],
                    kind: VertexKind::Simple,
                });
            }
            ctx.execute("mg_restrict", restrict);
            // Coarse-grid correction.
            zero(ctx, built.xc);
            coarse_solver.solve(ctx, &built.coarse, built.rc, built.xc);
            ctx.execute("mg_prolong", prolong);
            // Post-smooth.
            built.smoother.solve_sweeps(ctx, sys, b, x, post);
        });
    }
}

/// Upload the transfer maps once the engine exists (called by users after
/// `build_engine`, mirroring `DistSystem::upload`).
impl TwoGrid {
    pub fn upload(&self, engine: &mut graph::engine::Engine) {
        let built = self.built.as_ref().expect("setup() not called");
        built.coarse.upload(engine);
        engine.write_tensor(built.restrict_map.id, &built.restrict_data);
        engine.write_tensor(built.prolong_map.id, &built.prolong_data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::BiCgStab;
    use sparse::gen::rhs_for_ones;

    fn run_cycles(use_coarse_grid: bool, cycles: u32) -> f64 {
        let fg = Grid3 { nx: 16, ny: 16, nz: 16 };
        let a = Rc::new(poisson_3d_7pt(fg.nx, fg.ny, fg.nz));
        let bs = rhs_for_ones(&a);
        let part = Partition::grid_3d(fg, 2, 2, 2);
        let mut ctx = DslCtx::new(IpuModel::tiny(8));
        let sys = DistSystem::build(&mut ctx, a.clone(), part);
        let b = sys.new_vector(&mut ctx, "b", DType::F32);
        let x = sys.new_vector(&mut ctx, "x", DType::F32);

        let mut tg: Option<TwoGrid> = None;
        let mut gs: Option<GaussSeidel> = None;
        if use_coarse_grid {
            // V(2,2) with a well-converged coarse solve: the
            // piecewise-constant/injection transfer pair needs a couple of
            // smoothing steps per side to reach the classic multigrid
            // contraction (~0.3/cycle measured).
            let coarse = Box::new(BiCgStab::new(60, 1e-7, None));
            let mut t = TwoGrid::new(fg, (2, 2, 2), 2, 2, coarse);
            t.setup(&mut ctx, &sys);
            ctx.repeat(cycles, |ctx| t.solve(ctx, &sys, b, x));
            tg = Some(t);
        } else {
            // The same smoothing effort without the coarse correction.
            let mut g = GaussSeidel::new(4, false);
            g.setup(&mut ctx, &sys);
            ctx.repeat(cycles, |ctx| g.solve(ctx, &sys, b, x));
            gs = Some(g);
        }
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        if let Some(t) = &tg {
            t.upload(&mut e);
        }
        let _ = gs;
        e.write_tensor(b.id, &sys.to_device_order(&bs));
        e.run();
        let got = sys.from_device_order(&e.read_tensor(x.id));
        let r2: f64 = a.spmv_alloc(&got).iter().zip(&bs).map(|(ax, b)| (ax - b) * (ax - b)).sum();
        let b2: f64 = bs.iter().map(|v| v * v).sum();
        (r2 / b2).sqrt()
    }

    #[test]
    fn coarse_grid_correction_beats_smoothing_alone() {
        let two_grid = run_cycles(true, 6);
        let smoother_only = run_cycles(false, 6);
        assert!(
            two_grid < smoother_only / 10.0,
            "two-grid {two_grid:.3e} vs smoother-only {smoother_only:.3e}"
        );
        // And actually converges usefully in 6 cycles (~0.3 contraction
        // per cycle measured).
        assert!(two_grid < 5e-3, "two-grid residual {two_grid:.3e}");
    }

    #[test]
    #[should_panic(expected = "even grid dimensions")]
    fn odd_grids_rejected() {
        TwoGrid::new(
            Grid3 { nx: 15, ny: 16, nz: 16 },
            (2, 2, 2),
            1,
            1,
            Box::new(crate::solvers::Identity::new()),
        );
    }
}
