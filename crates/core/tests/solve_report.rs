//! Integration tests of the profiling pipeline on *real* solves: the
//! SolveReport returned by `runner::solve` must partition the device
//! cycles exactly (the invariant the Chrome trace, text report and JSON
//! reports all rely on).

use std::rc::Rc;

use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use ipu_sim::clock::Phase;
use ipu_sim::model::IpuModel;
use profile::SolveReport;
use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

fn run_pbicgstab(tiles: usize) -> SolveResult {
    let a = Rc::new(poisson_2d_5pt(12, 12, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab {
        max_iters: 40,
        rel_tol: 1e-8,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    };
    let opts = SolveOptions {
        model: IpuModel::tiny(tiles),
        tiles: Some(tiles),
        ..SolveOptions::default()
    };
    solve_or_panic(a, &b, &cfg, &opts)
}

#[test]
fn label_totals_partition_device_cycles_on_real_solve() {
    let res = run_pbicgstab(4);
    assert!(res.stats.device_cycles() > 0);
    // The acceptance invariant: per-label cycle totals (including the
    // explicit unlabelled bucket) sum exactly to device_cycles.
    assert_eq!(res.report.labels_total(), res.stats.device_cycles());
    assert_eq!(res.report.cycles.device, res.stats.device_cycles());
    // Phase splits agree with the raw stats.
    assert_eq!(res.report.cycles.compute, res.stats.phase_cycles(Phase::Compute));
    assert_eq!(res.report.cycles.exchange, res.stats.phase_cycles(Phase::Exchange));
    assert_eq!(res.report.cycles.sync, res.stats.phase_cycles(Phase::Sync));
    assert_eq!(
        res.report.cycles.device,
        res.report.cycles.compute + res.report.cycles.exchange + res.report.cycles.sync
    );
    // Each label's own phase split is internally consistent too.
    for l in &res.report.labels {
        assert_eq!(l.total, l.compute + l.exchange + l.sync, "label {}", l.name);
    }
    // A preconditioned solve attributes real work to solver labels.
    assert!(
        res.report.labels.iter().any(|l| l.name != profile::UNLABELLED && l.total > 0),
        "expected at least one labelled bucket"
    );
}

#[test]
fn solve_report_round_trips_through_json() {
    let res = run_pbicgstab(4);
    let text = res.report.to_json();
    let back = SolveReport::from_json(&text).expect("report parses");
    assert_eq!(back, res.report);
    assert_eq!(back.labels_total(), res.stats.device_cycles());
    // Convergence history survives the round trip.
    assert_eq!(back.history, res.history);
    assert_eq!(back.iterations, res.iterations);
}

#[test]
fn report_matrix_and_machine_metadata_are_filled() {
    let res = run_pbicgstab(4);
    assert_eq!(res.report.n, 144);
    assert!(res.report.nnz > 0);
    assert_eq!(res.report.tiles, 4);
    assert!(res.report.final_residual < 1e-6);
    assert!(res.report.seconds > 0.0);
    assert_eq!(
        res.report.solver.get("type").and_then(|t| t.as_str()),
        Some("bi_cg_stab"),
        "solver config embedded"
    );
}
