//! End-to-end test of `GRAPHENE_TRACE` gating: a real solve with the env
//! var set must leave behind (a) a Chrome trace-event JSON that Perfetto
//! can load and (b) the PopVision-style text report next to it.
//!
//! This lives in its own integration-test binary so the env-var mutation
//! cannot race other tests (each file under `tests/` is its own process,
//! and this file holds exactly one test).

use std::rc::Rc;

use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use ipu_sim::model::IpuModel;
use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

#[test]
fn graphene_trace_emits_chrome_trace_and_text_report() {
    let dir = std::env::temp_dir().join(format!("graphene-trace-test-{}", std::process::id()));
    let trace_path = dir.join("solve.trace.json");
    std::env::set_var("GRAPHENE_TRACE", &trace_path);

    let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::Cg {
        max_iters: 30,
        rel_tol: 1e-6,
        precond: Some(Box::new(SolverConfig::Jacobi { sweeps: 2, omega: 2.0 / 3.0 })),
    };
    let opts = SolveOptions { model: IpuModel::tiny(4), tiles: Some(4), ..SolveOptions::default() };
    let res = solve_or_panic(a, &b, &cfg, &opts);
    std::env::remove_var("GRAPHENE_TRACE");

    // (a) Chrome trace: valid JSON, non-empty, monotone timestamps, and
    // its device_cycles matches the run.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = json::Json::parse(&text).expect("trace is valid JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    let mut last_ts = 0.0f64;
    let mut saw_slice = false;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        if ph == "X" {
            let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("slice has ts");
            assert!(ts >= last_ts, "ts must be monotonically non-decreasing");
            last_ts = ts;
            saw_slice = true;
            assert!(ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(-1.0) >= 0.0);
        }
    }
    assert!(saw_slice, "trace contains complete (ph=X) slices");
    let dev = doc
        .get("otherData")
        .and_then(|o| o.get("device_cycles"))
        .and_then(|d| d.as_u64())
        .expect("otherData.device_cycles");
    assert_eq!(dev, res.stats.device_cycles());

    // (b) Text report beside the trace.
    let report_path = trace_path.with_extension("report.txt");
    let report = std::fs::read_to_string(&report_path).expect("text report written");
    assert!(report.contains("graphene profile"), "report header present");
    assert!(report.contains("phase breakdown"), "phase table present");
    assert!(report.contains("tile utilisation"), "tile histogram present");

    let _ = std::fs::remove_dir_all(&dir);
}
