//! CodeDSL — the tile-centric codelet description language (paper §III).
//!
//! CodeDSL programs are written from a single tile's perspective: they see
//! only the tensor slices handed to the codelet's parameters. The builder
//! below is the Rust embedding — closures give the same "control flow as
//! lambdas" syntax the paper's C++ embedding uses:
//!
//! ```
//! use dsl::code::{CodeDsl, Val};
//! use ipu_sim::DType;
//!
//! // y[i] = a * x[i] + y[i]
//! let mut cb = CodeDsl::new("axpy");
//! let a = cb.param(DType::F32, false);
//! let x = cb.param(DType::F32, false);
//! let y = cb.param(DType::F32, true);
//! cb.par_for(Val::i32(0), x.len(), |cb, i| {
//!     cb.store(y, i.clone(), a.at(Val::i32(0)) * x.at(i.clone()) + y.at(i));
//! });
//! let codelet = cb.build();
//! assert_eq!(codelet.params.len(), 3);
//! ```
//!
//! Where the paper's CodeDSL emits C control-flow statements into generated
//! C++ codelets, this builder emits [`graph::Stmt`] nodes into the codelet
//! IR — the same compilation strategy, one IR earlier.

use graph::codelet::{BinOp, Codelet, Expr, LocalId, ParamDecl, ParamId, Stmt, UnOp, Value};
use ipu_sim::cost::DType;
use twofloat::TwoFloat;

/// A dynamically typed CodeDSL value: an expression tree fragment.
#[derive(Clone, Debug)]
pub struct Val(pub(crate) Expr);

impl Val {
    pub fn i32(v: i32) -> Val {
        Val(Expr::Const(Value::I32(v)))
    }

    pub fn f32(v: f32) -> Val {
        Val(Expr::Const(Value::F32(v)))
    }

    /// A double-word constant, split from an f64 at build time (the
    /// "constants calculated during compilation" of the TWOFLOAT library).
    pub fn dw(v: f64) -> Val {
        Val(Expr::Const(Value::Dw(TwoFloat::from_f64(v))))
    }

    /// A software-double constant.
    pub fn f64c(v: f64) -> Val {
        Val(Expr::Const(Value::F64(v)))
    }

    pub fn bool_(v: bool) -> Val {
        Val(Expr::Const(Value::Bool(v)))
    }

    fn bin(op: BinOp, a: Val, b: Val) -> Val {
        Val(Expr::bin(op, a.0, b.0))
    }

    pub fn lt(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Lt, self, rhs.into())
    }
    pub fn le(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Le, self, rhs.into())
    }
    pub fn gt(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Gt, self, rhs.into())
    }
    pub fn ge(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Ge, self, rhs.into())
    }
    pub fn eq_(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Eq, self, rhs.into())
    }
    pub fn ne_(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Ne, self, rhs.into())
    }
    pub fn and(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::And, self, rhs.into())
    }
    pub fn or(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Or, self, rhs.into())
    }
    pub fn min_(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Min, self, rhs.into())
    }
    pub fn max_(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Max, self, rhs.into())
    }
    #[allow(clippy::should_implement_trait)] // DSL method, not std::ops
    pub fn rem(self, rhs: impl Into<Val>) -> Val {
        Val::bin(BinOp::Rem, self, rhs.into())
    }
    pub fn abs(self) -> Val {
        Val(Expr::un(UnOp::Abs, self.0))
    }
    pub fn sqrt(self) -> Val {
        Val(Expr::un(UnOp::Sqrt, self.0))
    }
    #[allow(clippy::should_implement_trait)] // DSL method, not std::ops
    pub fn not(self) -> Val {
        Val(Expr::un(UnOp::Not, self.0))
    }
    /// Explicit conversion to a device type.
    pub fn to(self, dtype: DType) -> Val {
        Val(Expr::Convert { to: dtype, arg: Box::new(self.0) })
    }
    /// Branch-free select: `cond ? self : other`.
    pub fn select(cond: Val, then: Val, otherwise: Val) -> Val {
        Val(Expr::Select {
            cond: Box::new(cond.0),
            then: Box::new(then.0),
            otherwise: Box::new(otherwise.0),
        })
    }
}

macro_rules! val_from {
    ($t:ty, $ctor:expr) => {
        impl From<$t> for Val {
            fn from(v: $t) -> Val {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(v)
            }
        }
    };
}
val_from!(i32, Val::i32);
val_from!(f32, Val::f32);
val_from!(bool, Val::bool_);
val_from!(usize, |v: usize| Val::i32(v as i32));

macro_rules! val_op {
    ($trait:ident, $m:ident, $op:expr) => {
        impl<R: Into<Val>> std::ops::$trait<R> for Val {
            type Output = Val;
            fn $m(self, rhs: R) -> Val {
                Val::bin($op, self, rhs.into())
            }
        }
    };
}
val_op!(Add, add, BinOp::Add);
val_op!(Sub, sub, BinOp::Sub);
val_op!(Mul, mul, BinOp::Mul);
val_op!(Div, div, BinOp::Div);

impl std::ops::Neg for Val {
    type Output = Val;
    fn neg(self) -> Val {
        Val(Expr::un(UnOp::Neg, self.0))
    }
}

/// Handle to a codelet parameter (a tensor slice on the executing tile).
#[derive(Clone, Copy, Debug)]
pub struct Param(pub(crate) ParamId);

impl Param {
    /// Load `self[index]`.
    pub fn at(self, index: impl Into<Val>) -> Val {
        Val(Expr::index(self.0, index.into().0))
    }

    /// The slice length.
    pub fn len(self) -> Val {
        Val(Expr::ParamLen(self.0))
    }

    pub fn id(self) -> ParamId {
        self.0
    }
}

/// Handle to a mutable local variable.
#[derive(Clone, Copy, Debug)]
pub struct Var(pub(crate) LocalId);

impl Var {
    pub fn get(self) -> Val {
        Val(Expr::Local(self.0))
    }
}

/// The CodeDSL builder: accumulates statements for one codelet.
pub struct CodeDsl {
    name: String,
    params: Vec<ParamDecl>,
    num_locals: usize,
    frames: Vec<Vec<Stmt>>,
    is_levelset: bool,
}

impl CodeDsl {
    pub fn new(name: impl Into<String>) -> Self {
        CodeDsl {
            name: name.into(),
            params: Vec::new(),
            num_locals: 0,
            frames: vec![Vec::new()],
            is_levelset: false,
        }
    }

    /// A codelet for level-set scheduled execution: the engine sets local 0
    /// to the current row index before each per-row invocation.
    pub fn new_level_set(name: impl Into<String>) -> (Self, Var) {
        let mut cb = Self::new(name);
        cb.is_levelset = true;
        let row = Var(cb.alloc_local());
        (cb, row)
    }

    fn alloc_local(&mut self) -> LocalId {
        let id = self.num_locals;
        self.num_locals += 1;
        id
    }

    fn push(&mut self, s: Stmt) {
        self.frames.last_mut().expect("frame stack never empty").push(s);
    }

    /// Declare the next parameter.
    pub fn param(&mut self, dtype: DType, mutable: bool) -> Param {
        self.params.push(ParamDecl { dtype, mutable });
        Param(self.params.len() - 1)
    }

    /// Declare a mutable local variable with an initial value.
    pub fn var(&mut self, init: impl Into<Val>) -> Var {
        let id = self.alloc_local();
        self.push(Stmt::SetLocal(id, init.into().0));
        Var(id)
    }

    /// Bind an expression to a local (evaluate once, reuse).
    pub fn let_(&mut self, value: impl Into<Val>) -> Val {
        let id = self.alloc_local();
        self.push(Stmt::SetLocal(id, value.into().0));
        Val(Expr::Local(id))
    }

    /// `var = value`.
    pub fn assign(&mut self, var: Var, value: impl Into<Val>) {
        self.push(Stmt::SetLocal(var.0, value.into().0));
    }

    /// `param[index] = value`.
    pub fn store(&mut self, param: Param, index: impl Into<Val>, value: impl Into<Val>) {
        self.push(Stmt::Store { param: param.0, index: index.into().0, value: value.into().0 });
    }

    fn scoped(&mut self, f: impl FnOnce(&mut Self)) -> Vec<Stmt> {
        self.frames.push(Vec::new());
        f(self);
        self.frames.pop().expect("scoped frame present")
    }

    /// `if (cond) { f }`.
    pub fn if_(&mut self, cond: impl Into<Val>, f: impl FnOnce(&mut Self)) {
        let then = self.scoped(f);
        self.push(Stmt::If { cond: cond.into().0, then, otherwise: Vec::new() });
    }

    /// `if (cond) { t } else { e }`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Val>,
        t: impl FnOnce(&mut Self),
        e: impl FnOnce(&mut Self),
    ) {
        let then = self.scoped(t);
        let otherwise = self.scoped(e);
        self.push(Stmt::If { cond: cond.into().0, then, otherwise });
    }

    /// `while (cond) { f }` — `cond` re-evaluated each iteration.
    pub fn while_(&mut self, cond: impl Into<Val>, f: impl FnOnce(&mut Self)) {
        let body = self.scoped(f);
        self.push(Stmt::While { cond: cond.into().0, body });
    }

    /// `for (i = start; i < end; i += step) { f(i) }` — the paper's
    /// `For(0, x.size(), 1, [&](Value i){...})`.
    pub fn for_(
        &mut self,
        start: impl Into<Val>,
        end: impl Into<Val>,
        step: impl Into<Val>,
        f: impl FnOnce(&mut Self, Val),
    ) {
        let local = self.alloc_local();
        let body = self.scoped(|cb| f(cb, Val(Expr::Local(local))));
        self.push(Stmt::For {
            local,
            start: start.into().0,
            end: end.into().0,
            step: step.into().0,
            body,
        });
    }

    /// A worker-parallel loop: iterations must be independent; costed as the
    /// six-worker makespan.
    pub fn par_for(
        &mut self,
        start: impl Into<Val>,
        end: impl Into<Val>,
        f: impl FnOnce(&mut Self, Val),
    ) {
        let local = self.alloc_local();
        let body = self.scoped(|cb| f(cb, Val(Expr::Local(local))));
        self.push(Stmt::ParFor { local, start: start.into().0, end: end.into().0, body });
    }

    /// Finish and produce the codelet.
    pub fn build(mut self) -> Codelet {
        assert_eq!(self.frames.len(), 1, "unbalanced control-flow frames");
        let body = self.frames.pop().unwrap();
        Codelet {
            name: self.name,
            params: self.params,
            num_locals: self.num_locals.max(if self.is_levelset { 1 } else { 0 }),
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::codelet::{Interp, ParamData};
    use ipu_sim::cost::CostModel;

    fn run(c: &Codelet, params: &mut [ParamData]) -> u64 {
        c.validate().unwrap();
        let cm = CostModel::default();
        let mut i = Interp::new(&cm, params, c.num_locals, 6);
        i.run(&c.body)
    }

    #[test]
    fn leibniz_sequence_from_the_paper() {
        // Figure 1: x[i] = ((i % 2 == 0) ? 1 : -1) / (2*i + 1)
        let mut cb = CodeDsl::new("leibniz");
        let x = cb.param(DType::F32, true);
        cb.for_(Val::i32(0), x.len(), Val::i32(1), |cb, i| {
            let sign = Val::select(
                i.clone().rem(Val::i32(2)).eq_(Val::i32(0)),
                Val::f32(1.0),
                Val::f32(-1.0),
            );
            cb.store(x, i.clone(), sign / (i * 2 + Val::i32(1)).to(DType::F32));
        });
        let c = cb.build();
        let mut data = vec![0.0f32; 10000];
        run(&c, &mut [ParamData::F32(&mut data)]);
        let pi: f32 = data.iter().sum::<f32>() * 4.0;
        assert!((pi - std::f32::consts::PI).abs() < 1e-3, "pi = {pi}");
    }

    #[test]
    fn var_accumulator() {
        let mut cb = CodeDsl::new("sum");
        let x = cb.param(DType::F32, false);
        let out = cb.param(DType::F32, true);
        let acc = cb.var(Val::f32(0.0));
        cb.for_(Val::i32(0), x.len(), Val::i32(1), |cb, i| {
            cb.assign(acc, acc.get() + x.at(i));
        });
        cb.store(out, Val::i32(0), acc.get());
        let c = cb.build();
        let mut x = vec![1.5f32, 2.5, -1.0];
        let mut o = vec![0.0f32];
        run(&c, &mut [ParamData::F32(&mut x), ParamData::F32(&mut o)]);
        assert_eq!(o[0], 3.0);
    }

    #[test]
    fn nested_control_flow() {
        // out[0] = number of odd values below 5 in x.
        let mut cb = CodeDsl::new("count");
        let x = cb.param(DType::I32, false);
        let out = cb.param(DType::I32, true);
        let n = cb.var(Val::i32(0));
        cb.for_(Val::i32(0), x.len(), Val::i32(1), |cb, i| {
            let v = cb.let_(x.at(i));
            cb.if_(v.clone().rem(2).eq_(Val::i32(1)), |cb| {
                cb.if_(v.clone().lt(Val::i32(5)), |cb| {
                    cb.assign(n, n.get() + 1);
                });
            });
        });
        cb.store(out, Val::i32(0), n.get());
        let c = cb.build();
        let mut x = vec![1i32, 2, 3, 7, 9, 4, 3];
        let mut o = vec![0i32];
        run(&c, &mut [ParamData::I32(&mut x), ParamData::I32(&mut o)]);
        assert_eq!(o[0], 3); // 1, 3, 3
    }

    #[test]
    fn while_loop_newton_sqrt() {
        // Newton iteration for sqrt(2) in f32.
        let mut cb = CodeDsl::new("newton");
        let out = cb.param(DType::F32, true);
        let g = cb.var(Val::f32(1.0));
        let k = cb.var(Val::i32(0));
        cb.while_(k.get().lt(Val::i32(20)), |cb| {
            cb.assign(g, (g.get() + Val::f32(2.0) / g.get()) / 2.0f32);
            cb.assign(k, k.get() + 1);
        });
        cb.store(out, Val::i32(0), g.get());
        let c = cb.build();
        let mut o = vec![0.0f32];
        run(&c, &mut [ParamData::F32(&mut o)]);
        assert!((o[0] - std::f32::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn double_word_constants_survive() {
        let mut cb = CodeDsl::new("dwc");
        let out = cb.param(DType::DoubleWord, true);
        cb.store(out, Val::i32(0), Val::dw(1.0 + 1e-9) + Val::dw(1e-10));
        let c = cb.build();
        let mut o = vec![twofloat::TwoF32::ZERO];
        run(&c, &mut [ParamData::Dw(&mut o)]);
        assert!((o[0].to_f64() - (1.0 + 1.1e-9)).abs() < 1e-15);
    }

    #[test]
    fn level_set_builder_reserves_row_local() {
        let (mut cb, row) = CodeDsl::new_level_set("ls");
        let x = cb.param(DType::F32, true);
        cb.store(x, row.get(), Val::f32(1.0));
        let c = cb.build();
        assert!(c.num_locals >= 1);
        assert_eq!(row.0, 0);
        c.validate().unwrap();
    }
}
