//! The TensorDSL context: symbolic execution of tensor programs.
//!
//! `DslCtx` is the embedding of TensorDSL (paper §III). Running Rust code
//! against it is the *symbolic execution* step of the paper's pipeline: the
//! code does not compute values, it extends a dataflow graph and an
//! execution schedule —
//!
//! * [`DslCtx::assign`] / [`DslCtx::materialize`] lower an expression tree
//!   into **one fused codelet per tile** scheduled in the current program
//!   step (lazy materialisation, §III-C);
//! * [`DslCtx::reduce`] emits the two-stage (per-tile partials → tile 0)
//!   reduction;
//! * [`DslCtx::if_`] / [`DslCtx::while_`] / [`DslCtx::repeat`] manage the
//!   **control-flow stack** (§III-B): each branch pushes a program step,
//!   symbolically executes its lambda, then pops;
//! * scalars broadcast against vectors by NumPy's rule, inside the
//!   generated codelets (no expansion in memory).
//!
//! [`DslCtx::build_engine`] hands the result to the graph compiler and
//! engine.

use std::collections::HashMap;

use graph::codelet::{Codelet, Expr, ParamDecl, Stmt, Value};
use graph::compute::{ComputeSet, TensorSlice, Vertex, VertexKind};
use graph::engine::{Engine, HostCallback, HostView};
use graph::graph::{CompileError, Graph};
use graph::passes::CompileOptions;
use graph::program::{ElemCopy, ExchangeStep, Prog};
use graph::tensor::{TensorChunk, TensorDef, TensorId};
use ipu_sim::cost::DType;
use ipu_sim::model::IpuModel;

use crate::texpr::{TExpr, TensorRef};

/// The TensorDSL context.
pub struct DslCtx {
    graph: Graph,
    /// The control-flow stack: the top frame is the program step currently
    /// being populated by symbolic execution.
    frames: Vec<Vec<Prog>>,
    fresh: usize,
    callbacks: Vec<(usize, HostCallback)>,
}

impl DslCtx {
    pub fn new(model: IpuModel) -> Self {
        DslCtx {
            graph: Graph::new(model),
            frames: vec![Vec::new()],
            fresh: 0,
            callbacks: Vec::new(),
        }
    }

    pub fn model(&self) -> &IpuModel {
        &self.graph.model
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}_{}", self.fresh)
    }

    /// Append a step to the current program frame.
    pub fn emit(&mut self, p: Prog) {
        self.frames.last_mut().expect("frame stack never empty").push(p);
    }

    // ---------------------------------------------------------------
    // Tensor creation
    // ---------------------------------------------------------------

    /// Add a tensor with an explicit mapping.
    pub fn add_tensor(&mut self, def: TensorDef) -> Result<TensorRef, CompileError> {
        let dtype = def.dtype;
        let scalar = def.len() == 1;
        let id = self.graph.add_tensor(def)?;
        Ok(TensorRef { id, dtype, scalar })
    }

    /// A scalar (length-1, tile-0) tensor.
    pub fn scalar(&mut self, name: impl Into<String>, dtype: DType) -> TensorRef {
        self.add_tensor(TensorDef::on_tile(name, dtype, 1, 0)).expect("scalar allocation")
    }

    /// A vector distributed linearly over the first `tiles` tiles.
    pub fn vector(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        len: usize,
        tiles: usize,
    ) -> TensorRef {
        self.add_tensor(TensorDef::linear(name, dtype, len, tiles)).expect("vector allocation")
    }

    /// A tensor with the same mapping as `like` (possibly another dtype).
    pub fn alloc_like(&mut self, like: TensorRef, dtype: DType) -> TensorRef {
        let name = self.fresh_name("t");
        let chunks = self.graph.tensors[like.id].chunks.clone();
        self.add_tensor(TensorDef { name, dtype, chunks }).expect("alloc_like")
    }

    pub fn chunks_of(&self, t: TensorRef) -> &[TensorChunk] {
        &self.graph.tensors[t.id].chunks
    }

    pub fn owned_len(&self, t: TensorRef) -> usize {
        self.graph.tensors[t.id].owned_len()
    }

    // ---------------------------------------------------------------
    // Materialisation
    // ---------------------------------------------------------------

    /// Materialise `expr` into a fresh tensor (mapping taken from the first
    /// vector leaf, or a scalar if all leaves are scalar).
    pub fn materialize(&mut self, expr: impl Into<TExpr>) -> TensorRef {
        let expr = expr.into();
        let dtype = expr.dtype();
        let dst = if let Some(v) = expr.leaves().iter().find(|l| !l.scalar) {
            self.alloc_like(*v, dtype)
        } else {
            let name = self.fresh_name("s");
            self.scalar(name, dtype)
        };
        self.assign(dst, expr);
        dst
    }

    /// Materialise `expr` into `dst`: one fused codelet per tile chunk,
    /// elementwise over the *owned* elements, scalars broadcast.
    pub fn assign(&mut self, dst: TensorRef, expr: impl Into<TExpr>) {
        let expr = expr.into();
        let leaves = expr.leaves();
        // Every vector leaf must share dst's owned layout.
        let dst_chunks = self.graph.tensors[dst.id].chunks.clone();
        for l in leaves.iter().filter(|l| !l.scalar && l.id != dst.id) {
            let lc = &self.graph.tensors[l.id].chunks;
            assert_eq!(
                lc.len(),
                dst_chunks.len(),
                "vector leaf '{}' not aligned with destination '{}'",
                self.graph.tensors[l.id].name,
                self.graph.tensors[dst.id].name
            );
            for (a, b) in lc.iter().zip(&dst_chunks) {
                assert!(
                    a.tile == b.tile && a.owned == b.owned,
                    "vector leaf mapping mismatch: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }

        // Build the fused codelet: params = [dst] ++ leaves (dedup, skipping
        // dst if it is also a leaf — read via the mutable param).
        let mut param_of: HashMap<TensorId, usize> = HashMap::new();
        let mut params = vec![ParamDecl { dtype: dst.dtype, mutable: true }];
        param_of.insert(dst.id, 0);
        let mut param_leaves: Vec<TensorRef> = Vec::new();
        for l in &leaves {
            if !param_of.contains_key(&l.id) {
                param_of.insert(l.id, params.len());
                params.push(ParamDecl { dtype: l.dtype, mutable: false });
                param_leaves.push(*l);
            }
        }
        let body_expr = lower(&expr, &param_of, &leaves);
        let codelet = Codelet {
            name: self.fresh_name("fused"),
            params,
            num_locals: 1,
            body: vec![Stmt::ParFor {
                local: 0,
                start: Expr::Const(Value::I32(0)),
                end: Expr::ParamLen(0),
                body: vec![Stmt::Store { param: 0, index: Expr::Local(0), value: body_expr }],
            }],
        };
        let codelet = self.graph.add_codelet(codelet).expect("fused codelet");

        // One vertex per destination chunk.
        let mut cs = ComputeSet::new(self.fresh_name("materialize"));
        for (ci, chunk) in dst_chunks.iter().enumerate() {
            if chunk.owned == 0 {
                continue;
            }
            let mut operands =
                vec![TensorSlice { tensor: dst.id, start: chunk.start, len: chunk.owned }];
            for l in &param_leaves {
                if l.scalar {
                    operands.push(TensorSlice { tensor: l.id, start: 0, len: 1 });
                } else {
                    let lc = self.graph.tensors[l.id].chunks[ci];
                    operands.push(TensorSlice { tensor: l.id, start: lc.start, len: lc.owned });
                }
            }
            cs.add(Vertex { tile: chunk.tile, codelet, operands, kind: VertexKind::Simple });
        }
        let cs = self.graph.add_compute_set(cs).expect("materialize compute set");
        self.emit(Prog::Execute(cs));
    }

    /// Sum-reduce `expr` over its owned elements into a fresh scalar.
    /// The reduction is fused: the expression is evaluated inside the
    /// per-tile accumulation loop (stage 1), partials are gathered to tile
    /// 0 and summed (stage 2).
    pub fn reduce(&mut self, expr: impl Into<TExpr>) -> TensorRef {
        let expr = expr.into();
        let dtype = expr.dtype();
        let name = self.fresh_name("red");
        let out = self.scalar(name, dtype);
        self.reduce_into(out, expr);
        out
    }

    /// Sum-reduce `expr` into an existing scalar tensor.
    pub fn reduce_into(&mut self, out: TensorRef, expr: impl Into<TExpr>) {
        let expr = expr.into();
        assert!(out.scalar, "reduce target must be a scalar");
        let dtype = expr.dtype();
        let leaves = expr.leaves();
        let vec_leaf = leaves
            .iter()
            .find(|l| !l.scalar)
            .copied()
            .unwrap_or_else(|| panic!("reduce of all-scalar expression; use assign"));
        let chunks = self.graph.tensors[vec_leaf.id].chunks.clone();
        let active: Vec<&TensorChunk> = chunks.iter().filter(|c| c.owned > 0).collect();

        // Partials: one element per active chunk, resident on its tile.
        let mut pstart = 0usize;
        let pchunks: Vec<TensorChunk> = active
            .iter()
            .map(|c| {
                let ch = TensorChunk { tile: c.tile, start: pstart, owned: 1, total: 1 };
                pstart += 1;
                ch
            })
            .collect();
        let pname = self.fresh_name("partials");
        let partials = self
            .add_tensor(TensorDef { name: pname, dtype, chunks: pchunks })
            .expect("partials tensor");

        // Stage 1 codelet: partial[0] = sum over owned of expr(i).
        let mut param_of: HashMap<TensorId, usize> = HashMap::new();
        let mut params = vec![ParamDecl { dtype, mutable: true }]; // partial
        let mut param_leaves: Vec<TensorRef> = Vec::new();
        for l in &leaves {
            if !param_of.contains_key(&l.id) {
                param_of.insert(l.id, params.len());
                params.push(ParamDecl { dtype: l.dtype, mutable: false });
                param_leaves.push(*l);
            }
        }
        let body_expr = lower(&expr, &param_of, &leaves);
        let zero = zero_const(dtype);
        let lead = param_leaves
            .iter()
            .position(|l| l.id == vec_leaf.id)
            .expect("vector leaf is a parameter")
            + 1;
        let stage1 = Codelet {
            name: self.fresh_name("reduce1"),
            params,
            num_locals: 2, // 0 = loop index, 1 = accumulator
            body: vec![
                Stmt::SetLocal(1, Expr::Const(zero)),
                Stmt::ParFor {
                    local: 0,
                    start: Expr::Const(Value::I32(0)),
                    end: Expr::ParamLen(lead),
                    body: vec![Stmt::SetLocal(
                        1,
                        Expr::bin(graph::codelet::BinOp::Add, Expr::Local(1), body_expr),
                    )],
                },
                Stmt::Store { param: 0, index: Expr::Const(Value::I32(0)), value: Expr::Local(1) },
            ],
        };
        let stage1 = self.graph.add_codelet(stage1).expect("reduce stage 1");
        let mut cs1 = ComputeSet::new(self.fresh_name("reduce_partials"));
        for (k, chunk) in active.iter().enumerate() {
            let mut operands = vec![TensorSlice { tensor: partials.id, start: k, len: 1 }];
            for l in &param_leaves {
                if l.scalar {
                    operands.push(TensorSlice { tensor: l.id, start: 0, len: 1 });
                } else {
                    let lc = self.graph.tensors[l.id]
                        .chunks
                        .iter()
                        .find(|c| c.tile == chunk.tile)
                        .copied()
                        .expect("aligned leaf chunk");
                    operands.push(TensorSlice { tensor: l.id, start: lc.start, len: lc.owned });
                }
            }
            cs1.add(Vertex {
                tile: chunk.tile,
                codelet: stage1,
                operands,
                kind: VertexKind::Simple,
            });
        }
        let cs1 = self.graph.add_compute_set(cs1).expect("reduce cs1");
        self.emit(Prog::Execute(cs1));

        // Stage 2: reduce the partials down to the output tile. For large
        // tile counts this is hierarchical (√T groups reduced on group
        // leaders, then the leaders on the output tile) — a flat gather of
        // thousands of 4-byte values onto one tile would serialise on its
        // receive port, which is not how Poplar's reduction library works.
        let mut partials = partials;
        let mut active_count = active.len();
        while active_count > 64 {
            let group = (active_count as f64).sqrt().ceil() as usize;
            let num_groups = active_count.div_ceil(group);
            // Leader partials: one element per group, on the group's first
            // tile.
            let pdef = &self.graph.tensors[partials.id];
            let leader_chunks: Vec<TensorChunk> = (0..num_groups)
                .map(|gi| TensorChunk {
                    tile: pdef.chunks[gi * group].tile,
                    start: gi,
                    owned: 1,
                    total: 1,
                })
                .collect();
            let lname = self.fresh_name("partials");
            let leaders = self
                .add_tensor(TensorDef { name: lname, dtype, chunks: leader_chunks })
                .expect("leader partials");
            let sum_codelet = self.sum_codelet(dtype, out.dtype);
            let mut cs = ComputeSet::new(self.fresh_name("reduce_tree"));
            for gi in 0..num_groups {
                let lo = gi * group;
                let hi = (lo + group).min(active_count);
                cs.add(Vertex {
                    tile: self.graph.tensors[leaders.id].chunks[gi].tile,
                    codelet: sum_codelet,
                    operands: vec![
                        TensorSlice { tensor: leaders.id, start: gi, len: 1 },
                        TensorSlice { tensor: partials.id, start: lo, len: hi - lo },
                    ],
                    kind: VertexKind::Simple,
                });
            }
            let cs = self.graph.add_compute_set(cs).expect("reduce tree cs");
            self.emit(Prog::Execute(cs));
            partials = leaders;
            active_count = num_groups;
        }

        let stage2 = self.sum_codelet(dtype, out.dtype);
        let out_tile = self.graph.tensors[out.id].chunks[0].tile;
        let mut cs2 = ComputeSet::new(self.fresh_name("reduce_final"));
        cs2.add(Vertex {
            tile: out_tile,
            codelet: stage2,
            operands: vec![
                TensorSlice { tensor: out.id, start: 0, len: 1 },
                TensorSlice { tensor: partials.id, start: 0, len: active_count },
            ],
            kind: VertexKind::Simple,
        });
        let cs2 = self.graph.add_compute_set(cs2).expect("reduce cs2");
        self.emit(Prog::Execute(cs2));
    }

    /// A codelet summing its second parameter into element 0 of its first.
    fn sum_codelet(&mut self, in_dtype: DType, out_dtype: DType) -> graph::codelet::CodeletId {
        let zero = zero_const(in_dtype);
        let c = Codelet {
            name: self.fresh_name("sum"),
            params: vec![
                ParamDecl { dtype: out_dtype, mutable: true },
                ParamDecl { dtype: in_dtype, mutable: false },
            ],
            num_locals: 2,
            body: vec![
                Stmt::SetLocal(1, Expr::Const(zero)),
                Stmt::For {
                    local: 0,
                    start: Expr::Const(Value::I32(0)),
                    end: Expr::ParamLen(1),
                    step: Expr::Const(Value::I32(1)),
                    body: vec![Stmt::SetLocal(
                        1,
                        Expr::bin(
                            graph::codelet::BinOp::Add,
                            Expr::Local(1),
                            Expr::index(1, Expr::Local(0)),
                        ),
                    )],
                },
                Stmt::Store { param: 0, index: Expr::Const(Value::I32(0)), value: Expr::Local(1) },
            ],
        };
        self.graph.add_codelet(c).expect("sum codelet")
    }

    // ---------------------------------------------------------------
    // Data movement
    // ---------------------------------------------------------------

    /// Whole-tensor copy between identically mapped tensors.
    pub fn copy(&mut self, src: TensorRef, dst: TensorRef) {
        self.emit(Prog::Copy { src: src.id, dst: dst.id });
    }

    /// Emit an exchange phase (e.g. the §IV halo exchange).
    pub fn exchange(&mut self, name: impl Into<String>, copies: Vec<ElemCopy>) {
        self.emit(Prog::Exchange(ExchangeStep { name: name.into(), copies }));
    }

    // ---------------------------------------------------------------
    // Custom codelets (CodeDSL integration)
    // ---------------------------------------------------------------

    /// Register a CodeDSL-built codelet.
    pub fn add_codelet(&mut self, c: Codelet) -> graph::codelet::CodeletId {
        self.graph.add_codelet(c).expect("codelet")
    }

    /// Execute a set of custom vertices as one compute set.
    pub fn execute(&mut self, name: impl Into<String>, vertices: Vec<Vertex>) {
        let mut cs = ComputeSet::new(name);
        for v in vertices {
            cs.add(v);
        }
        let cs = self.graph.add_compute_set(cs).expect("custom compute set");
        self.emit(Prog::Execute(cs));
    }

    // ---------------------------------------------------------------
    // Control flow (the control-flow stack, §III-B)
    // ---------------------------------------------------------------

    fn scoped(&mut self, f: impl FnOnce(&mut Self)) -> Prog {
        self.frames.push(Vec::new());
        f(self);
        let steps = self.frames.pop().expect("scoped frame present");
        match steps.len() {
            0 => Prog::Nop,
            1 => steps.into_iter().next().unwrap(),
            _ => Prog::Seq(steps),
        }
    }

    /// `if (pred) { then }`.
    pub fn if_(&mut self, pred: TensorRef, then: impl FnOnce(&mut Self)) {
        let t = self.scoped(then);
        self.emit(Prog::If { pred: pred.id, then: Box::new(t), otherwise: Box::new(Prog::Nop) });
    }

    /// `if (pred) { then } else { otherwise }`.
    pub fn if_else(
        &mut self,
        pred: TensorRef,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let t = self.scoped(then);
        let e = self.scoped(otherwise);
        self.emit(Prog::If { pred: pred.id, then: Box::new(t), otherwise: Box::new(e) });
    }

    /// `while (cond()) { body }`: `cond` is symbolically executed into a
    /// condition program that must leave its verdict in the returned scalar.
    pub fn while_(
        &mut self,
        cond: impl FnOnce(&mut Self) -> TensorRef,
        body: impl FnOnce(&mut Self),
    ) {
        let mut pred = None;
        let c = self.scoped(|ctx| {
            pred = Some(cond(ctx));
        });
        let b = self.scoped(body);
        self.emit(Prog::While {
            cond: Box::new(c),
            pred: pred.expect("condition returns a scalar").id,
            body: Box::new(b),
        });
    }

    /// Fixed-trip-count loop.
    pub fn repeat(&mut self, n: u32, body: impl FnOnce(&mut Self)) {
        let b = self.scoped(body);
        self.emit(Prog::Repeat(n, Box::new(b)));
    }

    /// Attribute device time of `body` to a named profiler scope.
    pub fn label(&mut self, name: impl Into<String>, body: impl FnOnce(&mut Self)) {
        let b = self.scoped(body);
        self.emit(Prog::Label(name.into(), Box::new(b)));
    }

    /// Schedule a host callback (progress reporting, host-side checks).
    pub fn callback(&mut self, f: impl FnMut(&mut HostView<'_>) + 'static) {
        let id = self.callbacks.len();
        self.callbacks.push((id, Box::new(f)));
        self.emit(Prog::Callback(id));
    }

    // ---------------------------------------------------------------
    // Finishing
    // ---------------------------------------------------------------

    /// Compile the graph + program and construct the engine (registering
    /// all callbacks) — steps 3 and 4 of the paper's pipeline. Compile
    /// options come from the environment (`GRAPHENE_NO_OPT`); use
    /// [`DslCtx::build_engine_with`] to pin them explicitly.
    pub fn build_engine(self) -> Result<Engine, CompileError> {
        self.build_engine_with(CompileOptions::from_env())
    }

    /// Like [`DslCtx::build_engine`] with explicit compile options — the
    /// graph compiler lowers the program to an [`graph::ExecPlan`] and
    /// (optionally) runs the optimisation pass pipeline over it.
    pub fn build_engine_with(mut self, options: CompileOptions) -> Result<Engine, CompileError> {
        assert_eq!(self.frames.len(), 1, "unbalanced control-flow stack");
        let steps = self.frames.pop().unwrap();
        let program =
            if steps.len() == 1 { steps.into_iter().next().unwrap() } else { Prog::Seq(steps) };
        let exec = self.graph.compile_with(program, options)?;
        let mut engine = Engine::new(exec);
        for (id, cb) in self.callbacks {
            engine.register_callback(id, cb);
        }
        Ok(engine)
    }
}

/// Translate a TensorDSL expression into a CodeDSL expression where leaf
/// `k` reads `param_of[leaf]` at the loop index (vectors) or 0 (scalars).
fn lower(e: &TExpr, param_of: &HashMap<TensorId, usize>, leaves: &[TensorRef]) -> Expr {
    match e {
        TExpr::Tensor(t) => {
            let p = param_of[&t.id];
            let scalar = leaves.iter().find(|l| l.id == t.id).map(|l| l.scalar).unwrap_or(false);
            if scalar {
                Expr::index(p, Expr::Const(Value::I32(0)))
            } else {
                Expr::index(p, Expr::Local(0))
            }
        }
        TExpr::Const(v) => Expr::Const(*v),
        TExpr::Bin(op, a, b) => {
            Expr::bin(*op, lower(a, param_of, leaves), lower(b, param_of, leaves))
        }
        TExpr::Un(op, a) => Expr::un(*op, lower(a, param_of, leaves)),
        TExpr::Convert(d, a) => Expr::Convert { to: *d, arg: Box::new(lower(a, param_of, leaves)) },
        TExpr::Select(c, t, o) => Expr::Select {
            cond: Box::new(lower(c, param_of, leaves)),
            then: Box::new(lower(t, param_of, leaves)),
            otherwise: Box::new(lower(o, param_of, leaves)),
        },
    }
}

fn zero_const(dtype: DType) -> Value {
    match dtype {
        DType::F32 => Value::F32(0.0),
        DType::I32 => Value::I32(0),
        DType::Bool => Value::Bool(false),
        DType::DoubleWord => Value::Dw(twofloat::TwoF32::ZERO),
        DType::F64Emulated => Value::F64(0.0),
    }
}
