//! # dsl — CodeDSL and TensorDSL
//!
//! The paper's central usability contribution (§III): two embedded,
//! dynamically typed DSLs that let algebraic algorithms be written close to
//! their mathematical notation, then *symbolically executed* to produce the
//! dataflow graph, execution schedule and codelets of the Poplar-style
//! programming model.
//!
//! * [`code::CodeDsl`] — **CodeDSL**: tile-centric codelet description.
//!   Control flow (`for_`, `while_`, `if_`) is emitted *into* the generated
//!   codelet.
//! * [`ctx::DslCtx`] + [`texpr::TExpr`] — **TensorDSL**: global operations
//!   on distributed tensors. Expressions are lazy objects; materialisation
//!   generates one fused codelet per tile; control flow manipulates the
//!   *control-flow stack* that assembles the execution schedule.
//!
//! The two languages combine freely: TensorDSL's materialiser generates
//! CodeDSL-level IR internally, and custom CodeDSL codelets (SpMV,
//! level-set Gauss-Seidel/ILU sweeps) are scheduled through
//! [`ctx::DslCtx::execute`].
//!
//! The π example from the paper's Figure 1:
//!
//! ```
//! use dsl::prelude::*;
//!
//! let mut ctx = DslCtx::new(IpuModel::tiny(4));
//! // A tensor distributed over 4 tiles.
//! let x = ctx.vector("x", DType::F32, 10_000, 4);
//!
//! // Fill it with the Leibniz sequence using CodeDSL.
//! let mut cb = CodeDsl::new("leibniz");
//! let xs = cb.param(DType::F32, true);
//! let off = cb.param(DType::I32, false); // global offset of this slice
//! cb.par_for(Val::i32(0), xs.len(), |cb, i| {
//!     let g = cb.let_(i.clone() + off.at(Val::i32(0)));
//!     let sign = Val::select(g.clone().rem(2).eq_(Val::i32(0)), Val::f32(1.0), Val::f32(-1.0));
//!     cb.store(xs, i, sign / (g * 2 + Val::i32(1)).to(DType::F32));
//! });
//! let leibniz = ctx.add_codelet(cb.build());
//! let offsets = ctx.vector("offsets", DType::I32, 4, 4);
//! let chunks = ctx.chunks_of(x).to_vec();
//! let vertices = chunks.iter().enumerate().map(|(k, c)| Vertex {
//!     tile: c.tile,
//!     codelet: leibniz,
//!     operands: vec![
//!         TensorSlice { tensor: x.id, start: c.start, len: c.owned },
//!         TensorSlice { tensor: offsets.id, start: k, len: 1 },
//!     ],
//!     kind: VertexKind::Simple,
//! }).collect();
//! ctx.execute("fill", vertices);
//!
//! // Calculate pi from the sequence using TensorDSL.
//! let pi = ctx.reduce(x * 4.0f32);
//!
//! let mut engine = ctx.build_engine().unwrap();
//! engine.write_tensor(offsets.id, &[0.0, 2500.0, 5000.0, 7500.0]);
//! engine.run();
//! let got = engine.read_scalar(pi.id);
//! assert!((got - std::f64::consts::PI).abs() < 1e-3, "pi = {got}");
//! ```

pub mod code;
pub mod ctx;
pub mod texpr;

pub use code::{CodeDsl, Param, Val, Var};
pub use ctx::DslCtx;
pub use texpr::{TExpr, TensorRef};

/// Everything needed to write DSL programs.
pub mod prelude {
    pub use crate::code::{CodeDsl, Param, Val, Var};
    pub use crate::ctx::DslCtx;
    pub use crate::texpr::{TExpr, TensorRef};
    pub use graph::compute::{TensorSlice, Vertex, VertexKind};
    pub use graph::passes::CompileOptions;
    pub use graph::tensor::{TensorChunk, TensorDef};
    pub use ipu_sim::cost::DType;
    pub use ipu_sim::model::IpuModel;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use graph::codelet::Value;
    use ipu_sim::clock::Phase;

    #[test]
    fn materialize_elementwise_over_tiles() {
        let mut ctx = DslCtx::new(IpuModel::tiny(3));
        let x = ctx.vector("x", DType::F32, 9, 3);
        let y = ctx.vector("y", DType::F32, 9, 3);
        let z = ctx.materialize(x * 2.0f32 + y);
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &(0..9).map(|i| i as f64).collect::<Vec<_>>());
        e.write_tensor(y.id, &[1.0; 9]);
        e.run();
        let got = e.read_tensor(z.id);
        let want: Vec<f64> = (0..9).map(|i| 2.0 * i as f64 + 1.0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scalar_broadcasts_into_vector_ops() {
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let x = ctx.vector("x", DType::F32, 6, 2);
        let alpha = ctx.scalar("alpha", DType::F32);
        let z = ctx.materialize(x * alpha);
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        e.write_scalar(alpha.id, 10.0);
        e.run();
        assert_eq!(e.read_tensor(z.id), vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        // Broadcasting the scalar to tile 1 costs exchange cycles.
        assert!(e.stats().phase_cycles(Phase::Exchange) > 0);
    }

    #[test]
    fn fused_expression_is_one_compute_set() {
        // (x*2 + y) / (x + 1) — five ops, one materialisation.
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let x = ctx.vector("x", DType::F32, 4, 2);
        let y = ctx.vector("y", DType::F32, 4, 2);
        let before = ctx.graph().compute_sets.len();
        let _z = ctx.materialize((x * 2.0f32 + y) / (x + 1.0f32));
        assert_eq!(ctx.graph().compute_sets.len(), before + 1);
    }

    #[test]
    fn reduce_sums_across_tiles() {
        let mut ctx = DslCtx::new(IpuModel::tiny(4));
        let x = ctx.vector("x", DType::F32, 100, 4);
        let dot = ctx.reduce(x * x);
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &vec![2.0; 100]);
        e.run();
        assert_eq!(e.read_scalar(dot.id), 400.0);
    }

    #[test]
    fn reduce_uses_tree_above_64_tiles() {
        // 150 tiles forces the hierarchical (√T-ary) reduction path.
        let tiles = 150;
        let n = 600;
        let mut ctx = DslCtx::new(IpuModel::tiny(tiles));
        let x = ctx.vector("x", DType::F32, n, tiles);
        let s = ctx.reduce(x.ex());
        // Two levels of tree + stage 1 ⇒ strictly more compute sets than a
        // flat reduction's two.
        assert!(ctx.graph().compute_sets.len() >= 3);
        let mut e = ctx.build_engine().unwrap();
        let vals: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        e.write_tensor(x.id, &vals);
        e.run();
        let want: f64 = vals.iter().sum();
        assert!((e.read_scalar(s.id) - want).abs() < 1e-3, "{} vs {want}", e.read_scalar(s.id));
    }

    #[test]
    fn tree_reduce_matches_flat_for_dw() {
        let tiles = 80;
        let mut ctx = DslCtx::new(IpuModel::tiny(tiles));
        let x = ctx.vector("x", DType::DoubleWord, 160, tiles);
        let s = ctx.reduce(x.ex());
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &vec![1.0 + 1e-9; 160]);
        e.run();
        let want = 160.0 * (1.0 + 1e-9);
        assert!((e.read_scalar(s.id) - want).abs() < 1e-9);
    }

    #[test]
    fn select_texpr_guards_division() {
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let num = ctx.scalar("num", DType::F32);
        let den = ctx.scalar("den", DType::F32);
        let out = ctx.scalar("out", DType::F32);
        ctx.assign(out, TExpr::select(den.ex().eq_(0.0f32), 0.0f32, num / den));
        let mut e = ctx.build_engine().unwrap();
        e.write_scalar(num.id, 6.0);
        e.write_scalar(den.id, 0.0);
        e.run();
        assert_eq!(e.read_scalar(out.id), 0.0);
        // And the non-degenerate case divides.
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let num = ctx.scalar("num", DType::F32);
        let den = ctx.scalar("den", DType::F32);
        let out = ctx.scalar("out", DType::F32);
        ctx.assign(out, TExpr::select(den.ex().eq_(0.0f32), 0.0f32, num / den));
        let mut e = ctx.build_engine().unwrap();
        e.write_scalar(num.id, 6.0);
        e.write_scalar(den.id, 2.0);
        e.run();
        assert_eq!(e.read_scalar(out.id), 3.0);
    }

    #[test]
    fn while_loop_counts_down() {
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let n = ctx.scalar("n", DType::F32);
        let iters = ctx.scalar("iters", DType::F32);
        ctx.while_(
            |c| c.materialize(n.ex().gt(0.0f32)),
            |c| {
                c.assign(n, n - 1.0f32);
                c.assign(iters, iters + 1.0f32);
            },
        );
        let mut e = ctx.build_engine().unwrap();
        e.write_scalar(n.id, 5.0);
        e.run();
        assert_eq!(e.read_scalar(n.id), 0.0);
        assert_eq!(e.read_scalar(iters.id), 5.0);
    }

    #[test]
    fn if_else_picks_branch() {
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let x = ctx.scalar("x", DType::F32);
        let out = ctx.scalar("out", DType::F32);
        let pred = ctx.scalar("pred", DType::Bool);
        ctx.assign(pred, x.ex().lt(3.0f32));
        ctx.if_else(
            pred,
            |c| c.assign(out, TExpr::c_f32(1.0)),
            |c| c.assign(out, TExpr::c_f32(2.0)),
        );
        let mut e = ctx.build_engine().unwrap();
        e.write_scalar(x.id, 5.0);
        e.run();
        assert_eq!(e.read_scalar(out.id), 2.0);
    }

    #[test]
    fn repeat_accumulates() {
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let x = ctx.vector("x", DType::F32, 4, 2);
        ctx.repeat(5, |c| c.assign(x, x + 1.0f32));
        let mut e = ctx.build_engine().unwrap();
        e.run();
        assert_eq!(e.read_tensor(x.id), vec![5.0; 4]);
    }

    #[test]
    fn double_word_tensor_keeps_precision() {
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let x = ctx.vector("x", DType::DoubleWord, 4, 2);
        let y = ctx.materialize(x + TExpr::c_dw(1e-9));
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &[1.0; 4]);
        e.run();
        let got = e.read_tensor(y.id);
        for v in got {
            assert!((v - (1.0 + 1e-9)).abs() < 1e-15, "{v}");
        }
    }

    #[test]
    fn conversion_f32_to_dw_and_back() {
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let x = ctx.vector("x", DType::F32, 2, 1);
        let xd = ctx.alloc_like(x, DType::DoubleWord);
        ctx.assign(xd, x.to(DType::DoubleWord));
        let back = ctx.alloc_like(x, DType::F32);
        ctx.assign(back, xd.to(DType::F32));
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &[1.5, -2.25]);
        e.run();
        assert_eq!(e.read_tensor(back.id), vec![1.5, -2.25]);
    }

    #[test]
    fn callback_observes_progress() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let k = ctx.scalar("k", DType::F32);
        let seen2 = seen.clone();
        let kid = k.id;
        ctx.repeat(3, move |c| {
            c.assign(k, k + 1.0f32);
            let seen3 = seen2.clone();
            c.callback(move |view| {
                seen3.borrow_mut().push(view.read_scalar(kid));
            });
        });
        let mut e = ctx.build_engine().unwrap();
        e.run();
        assert_eq!(*seen.borrow(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn owned_prefix_only_touched_when_halo_present() {
        // A vector with halo slots: elementwise op must not clobber them.
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let def = TensorDef {
            name: "x".into(),
            dtype: DType::F32,
            chunks: vec![
                TensorChunk { tile: 0, start: 0, owned: 2, total: 3 },
                TensorChunk { tile: 1, start: 3, owned: 2, total: 3 },
            ],
        };
        let x = ctx.add_tensor(def).unwrap();
        ctx.assign(x, x + 1.0f32);
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &[1.0, 2.0, 99.0, 3.0, 4.0, 88.0]);
        e.run();
        assert_eq!(e.read_tensor(x.id), vec![2.0, 3.0, 99.0, 4.0, 5.0, 88.0]);
    }

    #[test]
    fn reduce_respects_owned_prefix() {
        let mut ctx = DslCtx::new(IpuModel::tiny(2));
        let def = TensorDef {
            name: "x".into(),
            dtype: DType::F32,
            chunks: vec![
                TensorChunk { tile: 0, start: 0, owned: 2, total: 3 },
                TensorChunk { tile: 1, start: 3, owned: 2, total: 3 },
            ],
        };
        let x = ctx.add_tensor(def).unwrap();
        let s = ctx.reduce(x.ex());
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &[1.0, 2.0, 1000.0, 3.0, 4.0, 1000.0]);
        e.run();
        assert_eq!(e.read_scalar(s.id), 10.0);
    }

    #[test]
    fn figure1_abs_check() {
        // The paper's Figure 1 tail: If (Abs(pi - 3.141f) < 0.001f) ...
        let mut ctx = DslCtx::new(IpuModel::tiny(1));
        let pi = ctx.scalar("pi", DType::F32);
        let found = ctx.scalar("found", DType::Bool);
        #[allow(clippy::approx_constant)] // the paper's literal
        let close = (pi - 3.141f32).abs().lt(0.001f32);
        ctx.assign(found, close);
        let mut e = ctx.build_engine().unwrap();
        e.write_scalar(pi.id, std::f64::consts::PI);
        e.run();
        assert_eq!(e.read_scalar(found.id), 1.0);
    }

    #[test]
    fn const_value_dtype() {
        assert_eq!(Value::F32(1.0).dtype(), DType::F32);
        assert_eq!(TExpr::c_dw(1.0).dtype(), DType::DoubleWord);
        assert_eq!(TExpr::c_f64(1.0).dtype(), DType::F64Emulated);
    }
}
