//! TensorDSL expression objects (paper §III-C).
//!
//! Evaluating `x * 4` in TensorDSL does not touch the dataflow graph:
//! it returns an *expression object*. Expression objects compose; only
//! when a value is needed is the expression **materialised** — one fused
//! codelet per tile covering the whole tree, which both lets the codelet
//! compiler optimise across operations and keeps the dataflow graph and
//! schedule small (the paper's compile-time argument). Materialisation
//! lives in [`crate::ctx`]; this module is the pure expression algebra.

use graph::codelet::{BinOp, UnOp, Value};
use graph::tensor::TensorId;
use ipu_sim::cost::DType;
use twofloat::TwoFloat;

/// A lightweight handle to a tensor in the DSL context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorRef {
    pub id: TensorId,
    pub dtype: DType,
    /// Length-1 tensors broadcast against vectors (NumPy rule).
    pub scalar: bool,
}

/// A TensorDSL expression tree.
#[derive(Clone, Debug)]
pub enum TExpr {
    Tensor(TensorRef),
    Const(Value),
    Bin(BinOp, Box<TExpr>, Box<TExpr>),
    Un(UnOp, Box<TExpr>),
    Convert(DType, Box<TExpr>),
    /// Branch-free `cond ? then : otherwise` (both sides evaluated).
    Select(Box<TExpr>, Box<TExpr>, Box<TExpr>),
}

impl TExpr {
    pub fn c_f32(v: f32) -> TExpr {
        TExpr::Const(Value::F32(v))
    }

    pub fn c_i32(v: i32) -> TExpr {
        TExpr::Const(Value::I32(v))
    }

    /// Double-word constant (split at symbolic-execution time).
    pub fn c_dw(v: f64) -> TExpr {
        TExpr::Const(Value::Dw(TwoFloat::from_f64(v)))
    }

    pub fn c_f64(v: f64) -> TExpr {
        TExpr::Const(Value::F64(v))
    }

    pub fn abs(self) -> TExpr {
        TExpr::Un(UnOp::Abs, Box::new(self))
    }

    pub fn sqrt(self) -> TExpr {
        TExpr::Un(UnOp::Sqrt, Box::new(self))
    }

    pub fn to(self, dtype: DType) -> TExpr {
        TExpr::Convert(dtype, Box::new(self))
    }

    pub fn lt(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs.into()))
    }

    pub fn le(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Le, Box::new(self), Box::new(rhs.into()))
    }

    pub fn gt(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Gt, Box::new(self), Box::new(rhs.into()))
    }

    pub fn ge(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Ge, Box::new(self), Box::new(rhs.into()))
    }

    pub fn eq_(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs.into()))
    }

    pub fn and(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::And, Box::new(self), Box::new(rhs.into()))
    }

    pub fn or(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Or, Box::new(self), Box::new(rhs.into()))
    }

    pub fn min_(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Min, Box::new(self), Box::new(rhs.into()))
    }

    pub fn max_(self, rhs: impl Into<TExpr>) -> TExpr {
        TExpr::Bin(BinOp::Max, Box::new(self), Box::new(rhs.into()))
    }

    /// `cond ? then : otherwise` — used e.g. to guard Krylov breakdown
    /// divisions (`ω = t·t > 0 ? (t·s)/(t·t) : 0`).
    pub fn select(cond: TExpr, then: impl Into<TExpr>, otherwise: impl Into<TExpr>) -> TExpr {
        TExpr::Select(Box::new(cond), Box::new(then.into()), Box::new(otherwise.into()))
    }

    /// The result dtype under the dynamic promotion lattice.
    pub fn dtype(&self) -> DType {
        fn rank(d: DType) -> u8 {
            match d {
                DType::Bool => 0,
                DType::I32 => 1,
                DType::F32 => 2,
                DType::DoubleWord => 3,
                DType::F64Emulated => 4,
            }
        }
        match self {
            TExpr::Tensor(t) => t.dtype,
            TExpr::Const(v) => v.dtype(),
            TExpr::Bin(op, a, b) => {
                if matches!(
                    op,
                    BinOp::Eq
                        | BinOp::Ne
                        | BinOp::Lt
                        | BinOp::Le
                        | BinOp::Gt
                        | BinOp::Ge
                        | BinOp::And
                        | BinOp::Or
                ) {
                    DType::Bool
                } else {
                    let (da, db) = (a.dtype(), b.dtype());
                    if rank(da) >= rank(db) {
                        da
                    } else {
                        db
                    }
                }
            }
            TExpr::Un(UnOp::Not, _) => DType::Bool,
            TExpr::Un(_, a) => a.dtype(),
            TExpr::Convert(d, _) => *d,
            TExpr::Select(_, t, o) => {
                let (dt, do_) = (t.dtype(), o.dtype());
                if rank(dt) >= rank(do_) {
                    dt
                } else {
                    do_
                }
            }
        }
    }

    /// Distinct tensor leaves in first-occurrence order.
    pub fn leaves(&self) -> Vec<TensorRef> {
        let mut out: Vec<TensorRef> = Vec::new();
        self.visit_leaves(&mut |t| {
            if !out.iter().any(|o| o.id == t.id) {
                out.push(t);
            }
        });
        out
    }

    fn visit_leaves(&self, f: &mut impl FnMut(TensorRef)) {
        match self {
            TExpr::Tensor(t) => f(*t),
            TExpr::Const(_) => {}
            TExpr::Bin(_, a, b) => {
                a.visit_leaves(f);
                b.visit_leaves(f);
            }
            TExpr::Un(_, a) | TExpr::Convert(_, a) => a.visit_leaves(f),
            TExpr::Select(c, t, o) => {
                c.visit_leaves(f);
                t.visit_leaves(f);
                o.visit_leaves(f);
            }
        }
    }

    /// Whether every leaf is a scalar (the result is a scalar).
    pub fn all_scalar(&self) -> bool {
        self.leaves().iter().all(|t| t.scalar)
    }
}

impl From<TensorRef> for TExpr {
    fn from(t: TensorRef) -> TExpr {
        TExpr::Tensor(t)
    }
}

impl From<f32> for TExpr {
    fn from(v: f32) -> TExpr {
        TExpr::c_f32(v)
    }
}

impl From<i32> for TExpr {
    fn from(v: i32) -> TExpr {
        TExpr::c_i32(v)
    }
}

macro_rules! texpr_bin {
    ($trait:ident, $m:ident, $op:expr) => {
        impl<R: Into<TExpr>> std::ops::$trait<R> for TExpr {
            type Output = TExpr;
            fn $m(self, rhs: R) -> TExpr {
                TExpr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
        impl<R: Into<TExpr>> std::ops::$trait<R> for TensorRef {
            type Output = TExpr;
            fn $m(self, rhs: R) -> TExpr {
                TExpr::Bin($op, Box::new(TExpr::Tensor(self)), Box::new(rhs.into()))
            }
        }
    };
}
texpr_bin!(Add, add, BinOp::Add);
texpr_bin!(Sub, sub, BinOp::Sub);
texpr_bin!(Mul, mul, BinOp::Mul);
texpr_bin!(Div, div, BinOp::Div);

impl std::ops::Neg for TExpr {
    type Output = TExpr;
    fn neg(self) -> TExpr {
        TExpr::Un(UnOp::Neg, Box::new(self))
    }
}

impl std::ops::Neg for TensorRef {
    type Output = TExpr;
    fn neg(self) -> TExpr {
        TExpr::Un(UnOp::Neg, Box::new(TExpr::Tensor(self)))
    }
}

impl TensorRef {
    pub fn ex(self) -> TExpr {
        TExpr::Tensor(self)
    }

    pub fn abs(self) -> TExpr {
        self.ex().abs()
    }

    pub fn sqrt(self) -> TExpr {
        self.ex().sqrt()
    }

    pub fn to(self, dtype: DType) -> TExpr {
        self.ex().to(dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: usize, dtype: DType, scalar: bool) -> TensorRef {
        TensorRef { id, dtype, scalar }
    }

    #[test]
    fn expression_objects_compose_without_materialising() {
        let x = t(0, DType::F32, false);
        let y = t(1, DType::F32, false);
        let e = (x * 4.0f32 + y) / 2.0f32;
        assert_eq!(e.dtype(), DType::F32);
        assert_eq!(e.leaves().len(), 2);
    }

    #[test]
    fn leaves_deduplicate() {
        let x = t(0, DType::F32, false);
        let e = x * x + x;
        assert_eq!(e.leaves().len(), 1);
    }

    #[test]
    fn promotion_to_double_word() {
        let x = t(0, DType::F32, false);
        let r = t(1, DType::DoubleWord, false);
        assert_eq!((x + r).dtype(), DType::DoubleWord);
        assert_eq!((x.ex() + 1.0f32).dtype(), DType::F32);
        assert_eq!(x.to(DType::F64Emulated).dtype(), DType::F64Emulated);
    }

    #[test]
    fn comparisons_are_bool() {
        let x = t(0, DType::F32, true);
        let e = x.ex().abs().lt(1e-3f32);
        assert_eq!(e.dtype(), DType::Bool);
    }

    #[test]
    fn scalar_detection() {
        let a = t(0, DType::F32, true);
        let b = t(1, DType::F32, true);
        let v = t(2, DType::F32, false);
        assert!((a * b).all_scalar());
        assert!(!(a * v).all_scalar());
        assert!(TExpr::c_f32(1.0).all_scalar());
    }
}
