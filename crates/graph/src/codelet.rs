//! The codelet IR and its cycle-accounting interpreter.
//!
//! A codelet is the unit of computation bound to a tile — Poplar's
//! C++-compiled vertex code. Here it is a small structured IR (expressions
//! and statements over *dynamically typed* values, matching the paper's
//! dynamically typed DSLs) executed by a tree-walking interpreter that
//! charges the [`ipu_sim::CostModel`] for every operation it performs.
//!
//! Codelets access data exclusively through their declared **parameters**
//! (tensor slices handed to the vertex), mirroring the tile-local
//! perspective of CodeDSL: "algorithms … can only access parts of tensors
//! that are mapped to the executing tile".

use ipu_sim::cost::{CostModel, DType, Op};
use twofloat::{SoftDouble, TwoF32, TwoFloat};

/// Index of a codelet within a graph.
pub type CodeletId = usize;
/// Index of a local variable slot within a codelet.
pub type LocalId = usize;
/// Index of a parameter within a codelet.
pub type ParamId = usize;

/// A dynamically typed scalar value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    F32(f32),
    I32(i32),
    Bool(bool),
    /// Double-word (f32 pair, Joldes arithmetic).
    Dw(TwoF32),
    /// Software-emulated binary64.
    F64(f64),
}

impl Value {
    pub fn dtype(self) -> DType {
        match self {
            Value::F32(_) => DType::F32,
            Value::I32(_) => DType::I32,
            Value::Bool(_) => DType::Bool,
            Value::Dw(_) => DType::DoubleWord,
            Value::F64(_) => DType::F64Emulated,
        }
    }

    /// Numeric value as f64 (bools become 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F32(v) => v as f64,
            Value::I32(v) => v as f64,
            Value::Bool(v) => v as u8 as f64,
            Value::Dw(v) => v.to_f64(),
            Value::F64(v) => v,
        }
    }

    pub fn as_i64(self) -> i64 {
        match self {
            Value::I32(v) => v as i64,
            Value::Bool(v) => v as i64,
            Value::F32(v) => v as i64,
            Value::Dw(v) => v.to_f64() as i64,
            Value::F64(v) => v as i64,
        }
    }

    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            Value::I32(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::Dw(v) => v.to_f64() != 0.0,
            Value::F64(v) => v != 0.0,
        }
    }

    /// Convert to another device type (with the rounding that implies).
    pub fn convert(self, to: DType) -> Value {
        match to {
            DType::F32 => Value::F32(self.as_f64() as f32),
            DType::I32 => Value::I32(self.as_i64() as i32),
            DType::Bool => Value::Bool(self.as_bool()),
            DType::DoubleWord => match self {
                Value::Dw(v) => Value::Dw(v),
                // From f32: exact. From f64: split into hi+lo.
                Value::F32(v) => Value::Dw(TwoFloat::from_f(v)),
                other => Value::Dw(TwoFloat::from_f64(other.as_f64())),
            },
            DType::F64Emulated => Value::F64(self.as_f64()),
        }
    }
}

/// Binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// Integer remainder.
    Rem,
}

impl BinOp {
    pub(crate) fn cost_op(self) -> Op {
        match self {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div | BinOp::Rem => Op::Div,
            BinOp::Min => Op::Min,
            BinOp::Max => Op::Max,
            _ => Op::Cmp,
        }
    }
}

/// Unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Abs,
    Sqrt,
    Not,
}

/// The numeric promotion lattice of the dynamically typed DSLs:
/// Bool < I32 < F32 < DoubleWord < F64Emulated.
pub(crate) fn promote(a: DType, b: DType) -> DType {
    fn rank(d: DType) -> u8 {
        match d {
            DType::Bool => 0,
            DType::I32 => 1,
            DType::F32 => 2,
            DType::DoubleWord => 3,
            DType::F64Emulated => 4,
        }
    }
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

/// Apply a binary operation with dynamic promotion. Returns the result and
/// the dtype whose cost applies.
pub fn apply_bin(op: BinOp, a: Value, b: Value) -> (Value, DType) {
    use BinOp::*;
    let dt = promote(a.dtype(), b.dtype());
    // Comparisons / logic produce Bool but cost at the operand type.
    let val = match dt {
        DType::I32 | DType::Bool => {
            let (x, y) = (a.as_i64(), b.as_i64());
            match op {
                Add => Value::I32((x + y) as i32),
                Sub => Value::I32((x - y) as i32),
                Mul => Value::I32((x * y) as i32),
                Div => Value::I32((x / y) as i32),
                Rem => Value::I32((x % y) as i32),
                Min => Value::I32(x.min(y) as i32),
                Max => Value::I32(x.max(y) as i32),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                And => Value::Bool(x != 0 && y != 0),
                Or => Value::Bool(x != 0 || y != 0),
            }
        }
        DType::F32 => {
            let (x, y) = (a.as_f64() as f32, b.as_f64() as f32);
            match op {
                Add => Value::F32(x + y),
                Sub => Value::F32(x - y),
                Mul => Value::F32(x * y),
                Div => Value::F32(x / y),
                Rem => Value::F32(x % y),
                Min => Value::F32(x.min(y)),
                Max => Value::F32(x.max(y)),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                And => Value::Bool(x != 0.0 && y != 0.0),
                Or => Value::Bool(x != 0.0 || y != 0.0),
            }
        }
        DType::DoubleWord => {
            let x = as_dw(a);
            let y = as_dw(b);
            match op {
                Add => Value::Dw(x + y),
                Sub => Value::Dw(x - y),
                Mul => Value::Dw(x * y),
                Div => Value::Dw(x / y),
                Rem => Value::Dw(TwoFloat::from_f64(x.to_f64() % y.to_f64())),
                Min => Value::Dw(if x < y { x } else { y }),
                Max => Value::Dw(if x > y { x } else { y }),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y || x == y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y || x == y),
                And => Value::Bool(x.to_f64() != 0.0 && y.to_f64() != 0.0),
                Or => Value::Bool(x.to_f64() != 0.0 || y.to_f64() != 0.0),
            }
        }
        DType::F64Emulated => {
            let (x, y) = (a.as_f64(), b.as_f64());
            match op {
                Add => Value::F64(x + y),
                Sub => Value::F64(x - y),
                Mul => Value::F64(x * y),
                Div => Value::F64(x / y),
                Rem => Value::F64(x % y),
                Min => Value::F64(x.min(y)),
                Max => Value::F64(x.max(y)),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                And => Value::Bool(x != 0.0 && y != 0.0),
                Or => Value::Bool(x != 0.0 || y != 0.0),
            }
        }
    };
    (val, dt)
}

pub(crate) fn as_dw(v: Value) -> TwoF32 {
    match v {
        Value::Dw(x) => x,
        Value::F32(x) => TwoFloat::from_f(x),
        other => TwoFloat::from_f64(other.as_f64()),
    }
}

/// Apply a unary operation.
pub fn apply_un(op: UnOp, a: Value) -> (Value, DType) {
    let dt = a.dtype();
    let val = match (op, a) {
        (UnOp::Neg, Value::F32(v)) => Value::F32(-v),
        (UnOp::Neg, Value::I32(v)) => Value::I32(-v),
        (UnOp::Neg, Value::Dw(v)) => Value::Dw(-v),
        (UnOp::Neg, Value::F64(v)) => Value::F64(-v),
        (UnOp::Neg, Value::Bool(v)) => Value::Bool(!v),
        (UnOp::Abs, Value::F32(v)) => Value::F32(v.abs()),
        (UnOp::Abs, Value::I32(v)) => Value::I32(v.abs()),
        (UnOp::Abs, Value::Dw(v)) => Value::Dw(v.abs()),
        (UnOp::Abs, Value::F64(v)) => Value::F64(v.abs()),
        (UnOp::Abs, Value::Bool(v)) => Value::Bool(v),
        (UnOp::Sqrt, Value::F32(v)) => Value::F32(v.sqrt()),
        (UnOp::Sqrt, Value::I32(v)) => Value::F32((v as f32).sqrt()),
        (UnOp::Sqrt, Value::Dw(v)) => Value::Dw(v.sqrt()),
        (UnOp::Sqrt, Value::F64(v)) => Value::F64(v.sqrt()),
        (UnOp::Sqrt, Value::Bool(_)) => panic!("sqrt of bool"),
        (UnOp::Not, v) => Value::Bool(!v.as_bool()),
    };
    (val, dt)
}

/// An expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Const(Value),
    /// Read a local variable.
    Local(LocalId),
    /// Number of elements of a parameter slice (known per vertex).
    ParamLen(ParamId),
    /// Load `param[index]`.
    Index {
        param: ParamId,
        index: Box<Expr>,
    },
    Unary {
        op: UnOp,
        arg: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Explicit type conversion.
    Convert {
        to: DType,
        arg: Box<Expr>,
    },
    /// `cond ? then : otherwise` (both sides evaluated on the IPU's
    /// branch-free select).
    Select {
        cond: Box<Expr>,
        then: Box<Expr>,
        otherwise: Box<Expr>,
    },
}

impl Expr {
    pub fn c(v: Value) -> Expr {
        Expr::Const(v)
    }

    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    pub fn un(op: UnOp, arg: Expr) -> Expr {
        Expr::Unary { op, arg: Box::new(arg) }
    }

    pub fn index(param: ParamId, index: Expr) -> Expr {
        Expr::Index { param, index: Box::new(index) }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `locals[id] = expr`.
    SetLocal(LocalId, Expr),
    /// `param[index] = value`.
    Store {
        param: ParamId,
        index: Expr,
        value: Expr,
    },
    If {
        cond: Expr,
        then: Vec<Stmt>,
        otherwise: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// `for local = start; local < end; local += step`.
    For {
        local: LocalId,
        start: Expr,
        end: Expr,
        step: Expr,
        body: Vec<Stmt>,
    },
    /// Like `For`, but iterations are independent and spread across the
    /// tile's worker threads: executed sequentially (deterministic), costed
    /// as `spawn + ceil(body cycles / workers)`.
    ParFor {
        local: LocalId,
        start: Expr,
        end: Expr,
        body: Vec<Stmt>,
    },
}

/// Declared parameter of a codelet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamDecl {
    pub dtype: DType,
    /// Whether the codelet writes this parameter.
    pub mutable: bool,
}

/// A codelet: the computational kernel bound to vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct Codelet {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub num_locals: usize,
    pub body: Vec<Stmt>,
}

impl Codelet {
    /// Static validation: parameter and local references in range, stores
    /// only to mutable parameters.
    pub fn validate(&self) -> Result<(), String> {
        fn check_expr(c: &Codelet, e: &Expr) -> Result<(), String> {
            match e {
                Expr::Const(_) => Ok(()),
                Expr::Local(l) => {
                    (*l < c.num_locals).then_some(()).ok_or(format!("local {l} out of range"))
                }
                Expr::ParamLen(p) => {
                    (*p < c.params.len()).then_some(()).ok_or(format!("param {p} out of range"))
                }
                Expr::Index { param, index } => {
                    if *param >= c.params.len() {
                        return Err(format!("param {param} out of range"));
                    }
                    check_expr(c, index)
                }
                Expr::Unary { arg, .. } | Expr::Convert { arg, .. } => check_expr(c, arg),
                Expr::Binary { lhs, rhs, .. } => {
                    check_expr(c, lhs)?;
                    check_expr(c, rhs)
                }
                Expr::Select { cond, then, otherwise } => {
                    check_expr(c, cond)?;
                    check_expr(c, then)?;
                    check_expr(c, otherwise)
                }
            }
        }
        fn check_stmts(c: &Codelet, stmts: &[Stmt]) -> Result<(), String> {
            for s in stmts {
                match s {
                    Stmt::SetLocal(l, e) => {
                        if *l >= c.num_locals {
                            return Err(format!("local {l} out of range"));
                        }
                        check_expr(c, e)?;
                    }
                    Stmt::Store { param, index, value } => {
                        let decl =
                            c.params.get(*param).ok_or(format!("param {param} out of range"))?;
                        if !decl.mutable {
                            return Err(format!("store to immutable param {param} in {}", c.name));
                        }
                        check_expr(c, index)?;
                        check_expr(c, value)?;
                    }
                    Stmt::If { cond, then, otherwise } => {
                        check_expr(c, cond)?;
                        check_stmts(c, then)?;
                        check_stmts(c, otherwise)?;
                    }
                    Stmt::While { cond, body } => {
                        check_expr(c, cond)?;
                        check_stmts(c, body)?;
                    }
                    Stmt::For { local, start, end, step, body } => {
                        if *local >= c.num_locals {
                            return Err(format!("loop local {local} out of range"));
                        }
                        check_expr(c, start)?;
                        check_expr(c, end)?;
                        check_expr(c, step)?;
                        check_stmts(c, body)?;
                    }
                    Stmt::ParFor { local, start, end, body } => {
                        if *local >= c.num_locals {
                            return Err(format!("loop local {local} out of range"));
                        }
                        check_expr(c, start)?;
                        check_expr(c, end)?;
                        check_stmts(c, body)?;
                    }
                }
            }
            Ok(())
        }
        check_stmts(self, &self.body)
    }
}

/// One typed storage slice handed to a codelet parameter.
///
/// Immutable parameters are carried as shared (`*Ro`) slices so the engine
/// never materialises an aliasing `&mut` for data a vertex only reads —
/// the property the host-parallel executor relies on when several workers
/// read the same broadcast operand concurrently. [`Codelet::validate`]
/// statically rejects stores to immutable parameters, so `set` on a
/// read-only variant is unreachable.
pub enum ParamData<'a> {
    F32(&'a mut [f32]),
    I32(&'a mut [i32]),
    Bool(&'a mut [bool]),
    Dw(&'a mut [TwoF32]),
    F64(&'a mut [SoftDouble]),
    F32Ro(&'a [f32]),
    I32Ro(&'a [i32]),
    BoolRo(&'a [bool]),
    DwRo(&'a [TwoF32]),
    F64Ro(&'a [SoftDouble]),
}

impl ParamData<'_> {
    pub fn len(&self) -> usize {
        match self {
            ParamData::F32(s) => s.len(),
            ParamData::I32(s) => s.len(),
            ParamData::Bool(s) => s.len(),
            ParamData::Dw(s) => s.len(),
            ParamData::F64(s) => s.len(),
            ParamData::F32Ro(s) => s.len(),
            ParamData::I32Ro(s) => s.len(),
            ParamData::BoolRo(s) => s.len(),
            ParamData::DwRo(s) => s.len(),
            ParamData::F64Ro(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn get(&self, i: usize) -> Value {
        match self {
            ParamData::F32(s) => Value::F32(s[i]),
            ParamData::I32(s) => Value::I32(s[i]),
            ParamData::Bool(s) => Value::Bool(s[i]),
            ParamData::Dw(s) => Value::Dw(s[i]),
            ParamData::F64(s) => Value::F64(s[i].0),
            ParamData::F32Ro(s) => Value::F32(s[i]),
            ParamData::I32Ro(s) => Value::I32(s[i]),
            ParamData::BoolRo(s) => Value::Bool(s[i]),
            ParamData::DwRo(s) => Value::Dw(s[i]),
            ParamData::F64Ro(s) => Value::F64(s[i].0),
        }
    }

    pub(crate) fn set(&mut self, i: usize, v: Value) {
        match self {
            ParamData::F32(s) => s[i] = v.as_f64() as f32,
            ParamData::I32(s) => s[i] = v.as_i64() as i32,
            ParamData::Bool(s) => s[i] = v.as_bool(),
            ParamData::Dw(s) => s[i] = as_dw(v),
            ParamData::F64(s) => s[i] = SoftDouble(v.as_f64()),
            ParamData::F32Ro(_)
            | ParamData::I32Ro(_)
            | ParamData::BoolRo(_)
            | ParamData::DwRo(_)
            | ParamData::F64Ro(_) => {
                unreachable!("store to immutable param rejected by Codelet::validate")
            }
        }
    }
}

/// The interpreter state for one codelet invocation.
pub struct Interp<'a, 'b> {
    pub cost: &'a CostModel,
    pub params: &'a mut [ParamData<'b>],
    pub locals: Vec<Value>,
    pub cycles: u64,
    /// Useful floating-point operations performed (logical flops — a
    /// double-word add counts one). Work counters, not time: `ParFor`
    /// shrinks `cycles` but leaves these untouched.
    pub flops: u64,
    /// Bytes moved to/from tile SRAM by element loads and stores.
    pub mem_bytes: u64,
    /// Worker threads available to `ParFor` (6 on the Mk2).
    pub workers: u64,
}

impl<'a, 'b> Interp<'a, 'b> {
    pub fn new(
        cost: &'a CostModel,
        params: &'a mut [ParamData<'b>],
        num_locals: usize,
        workers: u64,
    ) -> Self {
        Interp {
            cost,
            params,
            locals: vec![Value::I32(0); num_locals],
            cycles: 0,
            flops: 0,
            mem_bytes: 0,
            workers,
        }
    }

    fn eval(&mut self, e: &Expr) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::Local(l) => self.locals[*l],
            Expr::ParamLen(p) => Value::I32(self.params[*p].len() as i32),
            Expr::Index { param, index } => {
                let i = self.eval(index).as_i64() as usize;
                let v = self.params[*param].get(i);
                self.cycles += self.cost.op_cycles(Op::Load, v.dtype());
                self.mem_bytes += v.dtype().size_bytes() as u64;
                v
            }
            Expr::Unary { op, arg } => {
                let a = self.eval(arg);
                let (v, dt) = apply_un(*op, a);
                let cost_op = match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Abs => Op::Abs,
                    UnOp::Sqrt => Op::Sqrt,
                    UnOp::Not => Op::Cmp,
                };
                self.cycles += self.cost.op_cycles(cost_op, dt);
                self.flops += self.cost.op_flops(cost_op, dt);
                v
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                let (da, db) = (a.dtype(), b.dtype());
                let (v, dt) = apply_bin(*op, a, b);
                // Mixed double-word ⊗ single-word ops use the cheaper
                // Joldes DW⊗FP algorithms (cost only; the value is computed
                // at full pair precision either way).
                let mixed = dt == DType::DoubleWord && (da == DType::F32 || db == DType::F32);
                self.cycles += if mixed {
                    self.cost.op_cycles_mixed_dw(op.cost_op())
                } else {
                    self.cost.op_cycles(op.cost_op(), dt)
                };
                self.flops += self.cost.op_flops(op.cost_op(), dt);
                v
            }
            Expr::Convert { to, arg } => {
                let a = self.eval(arg);
                self.cycles += self.cost.op_cycles(Op::Convert, *to);
                a.convert(*to)
            }
            Expr::Select { cond, then, otherwise } => {
                let c = self.eval(cond).as_bool();
                let t = self.eval(then);
                let o = self.eval(otherwise);
                self.cycles += self.cost.op_cycles(Op::Branch, DType::Bool);
                if c {
                    t
                } else {
                    o
                }
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.exec(s);
        }
    }

    fn exec(&mut self, s: &Stmt) {
        match s {
            Stmt::SetLocal(l, e) => {
                let v = self.eval(e);
                self.locals[*l] = v;
            }
            Stmt::Store { param, index, value } => {
                let i = self.eval(index).as_i64() as usize;
                let v = self.eval(value);
                let dt = self.params[*param].get(i).dtype();
                self.params[*param].set(i, v.convert(dt));
                self.cycles += self.cost.op_cycles(Op::Store, dt);
                self.mem_bytes += dt.size_bytes() as u64;
            }
            Stmt::If { cond, then, otherwise } => {
                let c = self.eval(cond).as_bool();
                self.cycles += self.cost.op_cycles(Op::Branch, DType::Bool);
                if c {
                    self.exec_block(then);
                } else {
                    self.exec_block(otherwise);
                }
            }
            Stmt::While { cond, body } => loop {
                let c = self.eval(cond).as_bool();
                self.cycles += self.cost.op_cycles(Op::Branch, DType::Bool);
                if !c {
                    break;
                }
                self.exec_block(body);
            },
            Stmt::For { local, start, end, step, body } => {
                let mut i = self.eval(start).as_i64();
                let e = self.eval(end).as_i64();
                let st = self.eval(step).as_i64().max(1);
                while i < e {
                    self.locals[*local] = Value::I32(i as i32);
                    self.cycles += self.cost.op_cycles(Op::LoopStep, DType::I32);
                    self.exec_block(body);
                    i += st;
                }
            }
            Stmt::ParFor { local, start, end, body } => {
                let s0 = self.eval(start).as_i64();
                let e0 = self.eval(end).as_i64();
                let before = self.cycles;
                for i in s0..e0 {
                    self.locals[*local] = Value::I32(i as i32);
                    self.cycles += self.cost.op_cycles(Op::LoopStep, DType::I32);
                    self.exec_block(body);
                }
                // Independent iterations spread over the workers: replace
                // the serial cost with the parallel makespan.
                let serial = self.cycles - before;
                let parallel = self.cost.worker_spawn_cycles + serial.div_ceil(self.workers);
                self.cycles = before + parallel.min(serial.max(1));
            }
        }
    }

    /// Run a codelet body to completion; returns the cycles consumed.
    pub fn run(&mut self, body: &[Stmt]) -> u64 {
        self.exec_block(body);
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BinOp::*;

    fn cm() -> CostModel {
        CostModel::default()
    }

    fn run_codelet(c: &Codelet, params: &mut [ParamData]) -> u64 {
        c.validate().unwrap();
        let cost = cm();
        let mut interp = Interp::new(&cost, params, c.num_locals, 6);
        interp.run(&c.body)
    }

    /// y[i] = a*x[i] + y[i] over the slice (an axpy codelet).
    fn axpy_codelet() -> Codelet {
        Codelet {
            name: "axpy".into(),
            params: vec![
                ParamDecl { dtype: DType::F32, mutable: false }, // x
                ParamDecl { dtype: DType::F32, mutable: true },  // y
                ParamDecl { dtype: DType::F32, mutable: false }, // a (scalar)
            ],
            num_locals: 1,
            body: vec![Stmt::ParFor {
                local: 0,
                start: Expr::c(Value::I32(0)),
                end: Expr::ParamLen(0),
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::Local(0),
                    value: Expr::bin(
                        Add,
                        Expr::bin(
                            Mul,
                            Expr::index(2, Expr::c(Value::I32(0))),
                            Expr::index(0, Expr::Local(0)),
                        ),
                        Expr::index(1, Expr::Local(0)),
                    ),
                }],
            }],
        }
    }

    #[test]
    fn axpy_computes_and_costs() {
        let c = axpy_codelet();
        let mut x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        let mut a = [2.0f32];
        let cycles = run_codelet(
            &c,
            &mut [ParamData::F32(&mut x), ParamData::F32(&mut y), ParamData::F32(&mut a)],
        );
        assert_eq!(y, [12.0, 24.0, 36.0]);
        assert!(cycles > 0);
    }

    /// Flop/byte counters measure *work*, so `ParFor` must leave them
    /// untouched even though it shrinks the cycle makespan.
    #[test]
    fn flop_and_byte_counters_are_work_not_time() {
        let c = axpy_codelet();
        c.validate().unwrap();
        let cost = cm();
        let mut x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        let mut a = [2.0f32];
        let mut params = [ParamData::F32(&mut x), ParamData::F32(&mut y), ParamData::F32(&mut a)];
        let mut interp = Interp::new(&cost, &mut params, c.num_locals, 6);
        interp.run(&c.body);
        // 3 iterations × (mul + add) = 6 flops; 3 × (3 loads + 1 store) × 4 B.
        assert_eq!(interp.flops, 6);
        assert_eq!(interp.mem_bytes, 48);

        // Same codelet with one worker: more cycles, identical work.
        let mut x1 = [1.0f32, 2.0, 3.0];
        let mut y1 = [10.0f32, 20.0, 30.0];
        let mut a1 = [2.0f32];
        let mut params1 =
            [ParamData::F32(&mut x1), ParamData::F32(&mut y1), ParamData::F32(&mut a1)];
        let mut serial = Interp::new(&cost, &mut params1, c.num_locals, 1);
        serial.run(&c.body);
        assert!(serial.cycles >= interp.cycles);
        assert_eq!(serial.flops, interp.flops);
        assert_eq!(serial.mem_bytes, interp.mem_bytes);
    }

    #[test]
    fn parfor_cheaper_than_serial_for() {
        let c = axpy_codelet();
        // Same codelet but with a serial For.
        let mut serial = c.clone();
        if let Stmt::ParFor { local, start, end, body } = serial.body.remove(0) {
            serial.body.push(Stmt::For { local, start, end, step: Expr::c(Value::I32(1)), body });
        }
        let run = |c: &Codelet| {
            let mut x = vec![1.0f32; 600];
            let mut y = vec![0.0f32; 600];
            let mut a = [3.0f32];
            run_codelet(
                c,
                &mut [ParamData::F32(&mut x), ParamData::F32(&mut y), ParamData::F32(&mut a)],
            )
        };
        let par = run(&c);
        let ser = run(&serial);
        let ratio = ser as f64 / par as f64;
        assert!(ratio > 4.0 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn dynamic_promotion_f32_dw() {
        let (v, dt) = apply_bin(Add, Value::F32(1.0), Value::Dw(TwoFloat::from_f64(1e-9)));
        assert_eq!(dt, DType::DoubleWord);
        match v {
            Value::Dw(d) => assert!((d.to_f64() - (1.0 + 1e-9)).abs() < 1e-15),
            other => panic!("expected Dw, got {other:?}"),
        }
    }

    #[test]
    fn f32_arithmetic_actually_rounds() {
        // The crucial property for MPIR experiments: F32 values really are
        // f32.
        let (v, _) = apply_bin(Add, Value::F32(1.0), Value::F32(1e-8));
        assert_eq!(v, Value::F32(1.0));
        // While DW keeps the tiny addend.
        let (v, _) = apply_bin(Add, Value::Dw(TwoFloat::from_f(1.0)), Value::F32(1e-8));
        assert_ne!(v.as_f64(), 1.0);
    }

    #[test]
    fn dw_ops_cost_table1() {
        let cost = cm();
        let c = Codelet {
            name: "dw_add".into(),
            params: vec![ParamDecl { dtype: DType::DoubleWord, mutable: true }],
            num_locals: 0,
            body: vec![Stmt::Store {
                param: 0,
                index: Expr::c(Value::I32(0)),
                value: Expr::bin(
                    Add,
                    Expr::index(0, Expr::c(Value::I32(0))),
                    Expr::index(0, Expr::c(Value::I32(1))),
                ),
            }],
        };
        let mut data = [TwoFloat::from_f(1.0f32), TwoFloat::from_f(2.0f32)];
        let mut params = [ParamData::Dw(&mut data)];
        let mut interp = Interp::new(&cost, &mut params, 0, 6);
        let cycles = interp.run(&c.body);
        // 2 loads + 1 add + 1 store, all double-word.
        let expect = 2 * cost.op_cycles(Op::Load, DType::DoubleWord)
            + cost.op_cycles(Op::Add, DType::DoubleWord)
            + cost.op_cycles(Op::Store, DType::DoubleWord);
        assert_eq!(cycles, expect);
        assert_eq!(data[0].to_f64(), 3.0);
    }

    #[test]
    fn while_and_if_control_flow() {
        // Sum integers 1..=10 with a while loop, then clamp via if.
        let c = Codelet {
            name: "sum".into(),
            params: vec![ParamDecl { dtype: DType::I32, mutable: true }],
            num_locals: 2,
            body: vec![
                Stmt::SetLocal(0, Expr::c(Value::I32(1))),
                Stmt::SetLocal(1, Expr::c(Value::I32(0))),
                Stmt::While {
                    cond: Expr::bin(Le, Expr::Local(0), Expr::c(Value::I32(10))),
                    body: vec![
                        Stmt::SetLocal(1, Expr::bin(Add, Expr::Local(1), Expr::Local(0))),
                        Stmt::SetLocal(0, Expr::bin(Add, Expr::Local(0), Expr::c(Value::I32(1)))),
                    ],
                },
                Stmt::If {
                    cond: Expr::bin(Gt, Expr::Local(1), Expr::c(Value::I32(50))),
                    then: vec![Stmt::Store {
                        param: 0,
                        index: Expr::c(Value::I32(0)),
                        value: Expr::Local(1),
                    }],
                    otherwise: vec![Stmt::Store {
                        param: 0,
                        index: Expr::c(Value::I32(0)),
                        value: Expr::c(Value::I32(-1)),
                    }],
                },
            ],
        };
        let mut out = [0i32];
        run_codelet(&c, &mut [ParamData::I32(&mut out)]);
        assert_eq!(out[0], 55);
    }

    #[test]
    fn validation_catches_bad_references() {
        let c = Codelet {
            name: "bad".into(),
            params: vec![ParamDecl { dtype: DType::F32, mutable: false }],
            num_locals: 0,
            body: vec![Stmt::Store {
                param: 0,
                index: Expr::c(Value::I32(0)),
                value: Expr::c(Value::F32(1.0)),
            }],
        };
        assert!(c.validate().unwrap_err().contains("immutable"));
        let c2 = Codelet {
            name: "bad2".into(),
            params: vec![],
            num_locals: 1,
            body: vec![Stmt::SetLocal(3, Expr::c(Value::I32(0)))],
        };
        assert!(c2.validate().is_err());
    }

    #[test]
    fn conversions_round_correctly() {
        let v = Value::F64(1.0 + 1e-9);
        assert_eq!(v.convert(DType::F32), Value::F32(1.0));
        let dw = v.convert(DType::DoubleWord);
        assert!((dw.as_f64() - (1.0 + 1e-9)).abs() < 1e-16);
        assert_eq!(Value::F32(2.9).convert(DType::I32), Value::I32(2));
        assert_eq!(Value::I32(0).convert(DType::Bool), Value::Bool(false));
    }

    #[test]
    fn select_evaluates_branchlessly() {
        let cost = cm();
        let mut params: [ParamData; 0] = [];
        let mut interp = Interp::new(&cost, &mut params, 0, 6);
        let e = Expr::Select {
            cond: Box::new(Expr::bin(Lt, Expr::c(Value::I32(3)), Expr::c(Value::I32(5)))),
            then: Box::new(Expr::c(Value::F32(1.0))),
            otherwise: Box::new(Expr::c(Value::F32(-1.0))),
        };
        assert_eq!(interp.eval(&e), Value::F32(1.0));
    }
}
