//! Compute sets and vertices.
//!
//! A *vertex* is one codelet instance bound to tensor slices and placed on
//! a tile; a *compute set* groups vertices that execute in parallel within
//! one BSP superstep (Poplar inserts a synchronisation before each compute
//! set). Vertices come in two kinds: plain codelets, and the level-set
//! scheduled kind used by Gauss-Seidel/ILU, where the codelet body runs
//! once per matrix row with intra-tile worker barriers between levels
//! (the IPUTHREADING execution scheme, §V-A).

use crate::codelet::CodeletId;
use crate::tensor::TensorId;
use ipu_sim::model::TileId;

/// Index of a compute set within a graph.
pub type ComputeSetId = usize;

/// A contiguous slice of a tensor's flat index space bound to a codelet
/// parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorSlice {
    pub tensor: TensorId,
    pub start: usize,
    pub len: usize,
}

impl TensorSlice {
    pub fn whole(tensor: TensorId, len: usize) -> Self {
        TensorSlice { tensor, start: 0, len }
    }
}

/// How a vertex executes its codelet.
#[derive(Clone, Debug, PartialEq)]
pub enum VertexKind {
    /// The codelet body runs once.
    Simple,
    /// The codelet body runs once per item, items grouped into dependency
    /// levels. Local 0 receives the item index. Cycles are costed as the
    /// six-worker LPT makespan per level plus one worker barrier per level
    /// (the IPUTHREADING scheme).
    LevelSet { levels: Vec<Vec<usize>> },
}

/// One codelet instance on one tile.
#[derive(Clone, Debug, PartialEq)]
pub struct Vertex {
    pub tile: TileId,
    pub codelet: CodeletId,
    /// One slice per codelet parameter, in declaration order.
    pub operands: Vec<TensorSlice>,
    pub kind: VertexKind,
}

/// A set of parallel-executable vertices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ComputeSet {
    pub name: String,
    pub vertices: Vec<Vertex>,
}

impl ComputeSet {
    pub fn new(name: impl Into<String>) -> Self {
        ComputeSet { name: name.into(), vertices: Vec::new() }
    }

    pub fn add(&mut self, v: Vertex) {
        self.vertices.push(v);
    }

    /// Tiles this compute set touches.
    pub fn tiles(&self) -> Vec<TileId> {
        let mut t: Vec<TileId> = self.vertices.iter().map(|v| v.tile).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_set_tiles_deduplicated() {
        let mut cs = ComputeSet::new("t");
        for tile in [3, 1, 3, 2] {
            cs.add(Vertex { tile, codelet: 0, operands: vec![], kind: VertexKind::Simple });
        }
        assert_eq!(cs.tiles(), vec![1, 2, 3]);
    }
}
