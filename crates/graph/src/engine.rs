//! The execution engine — concrete execution of a compiled graph program.
//!
//! Walks the program schedule, runs codelets through the cycle-accounting
//! interpreter, applies exchanges, evaluates control flow against scalar
//! predicate tensors, and accumulates a [`CycleStats`] profile — the
//! simulator counterpart of loading a Poplar executable onto the device and
//! reading the profiler afterwards.
//!
//! Cost semantics per step:
//!
//! * `Execute` — one BSP superstep: a sync barrier, an automatic exchange
//!   for operands read from remote tiles (Poplar's compiler-inserted
//!   pre-compute-set exchange; scalars broadcast this way), then the
//!   per-tile maximum of codelet cycles.
//! * `Exchange` — a sync plus the fabric cost of the blockwise copies
//!   ([`ipu_sim::ExchangeProgram`]): broadcast-aware, all-to-all,
//!   IPU-Link latency when chips are crossed.
//! * `Copy` — an on-tile memcpy parallelised over the worker threads.
//! * `If`/`While` — control-flow decisions synchronise all tiles.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use ipu_sim::clock::CycleStats;
use ipu_sim::cost::{DType, Op};
use ipu_sim::exchange::{BlockCopy, ExchangeProgram};
use ipu_sim::model::TileId;
use profile::TraceRecorder;
use twofloat::{SoftDouble, TwoF32, TwoFloat};

use crate::codelet::{Interp, ParamData, Value};
use crate::compute::{TensorSlice, VertexKind};
use crate::graph::{Executable, Graph};
use crate::program::{ElemCopy, ExchangeStep, Prog};
use crate::tensor::TensorId;

/// Typed backing storage of one tensor.
#[derive(Clone, Debug)]
pub enum Storage {
    F32(Vec<f32>),
    I32(Vec<i32>),
    Bool(Vec<bool>),
    Dw(Vec<TwoF32>),
    F64(Vec<SoftDouble>),
}

impl Storage {
    fn zeros(dtype: DType, len: usize) -> Storage {
        match dtype {
            DType::F32 => Storage::F32(vec![0.0; len]),
            DType::I32 => Storage::I32(vec![0; len]),
            DType::Bool => Storage::Bool(vec![false; len]),
            DType::DoubleWord => Storage::Dw(vec![TwoFloat::ZERO; len]),
            DType::F64Emulated => Storage::F64(vec![SoftDouble::ZERO; len]),
        }
    }

    fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::I32(v) => v.len(),
            Storage::Bool(v) => v.len(),
            Storage::Dw(v) => v.len(),
            Storage::F64(v) => v.len(),
        }
    }

    fn get_f64(&self, i: usize) -> f64 {
        match self {
            Storage::F32(v) => v[i] as f64,
            Storage::I32(v) => v[i] as f64,
            Storage::Bool(v) => v[i] as u8 as f64,
            Storage::Dw(v) => v[i].to_f64(),
            Storage::F64(v) => v[i].0,
        }
    }

    fn set_f64(&mut self, i: usize, x: f64) {
        match self {
            Storage::F32(v) => v[i] = x as f32,
            Storage::I32(v) => v[i] = x as i32,
            Storage::Bool(v) => v[i] = x != 0.0,
            Storage::Dw(v) => v[i] = TwoFloat::from_f64(x),
            Storage::F64(v) => v[i] = SoftDouble(x),
        }
    }
}

/// Host-side view of tensor storage handed to callbacks.
pub struct HostView<'a> {
    pub graph: &'a Graph,
    storage: &'a mut [Storage],
}

impl HostView<'_> {
    /// Read a tensor's values as f64 (double-word pairs are summed —
    /// lossless; f32 widened).
    pub fn read_f64(&self, t: TensorId) -> Vec<f64> {
        let s = &self.storage[t];
        (0..s.len()).map(|i| s.get_f64(i)).collect()
    }

    /// Write f64 values into a tensor with the conversion its dtype
    /// implies.
    pub fn write_f64(&mut self, t: TensorId, values: &[f64]) {
        let s = &mut self.storage[t];
        assert_eq!(values.len(), s.len(), "length mismatch writing tensor {t}");
        for (i, &v) in values.iter().enumerate() {
            s.set_f64(i, v);
        }
    }

    /// Read element 0 of a tensor as f64.
    pub fn read_scalar(&self, t: TensorId) -> f64 {
        self.storage[t].get_f64(0)
    }
}

/// A registered host callback.
pub type HostCallback = Box<dyn FnMut(&mut HostView<'_>)>;

/// The execution engine for one compiled program.
pub struct Engine {
    graph: Graph,
    program: Prog,
    storage: Vec<Storage>,
    stats: CycleStats,
    callbacks: HashMap<usize, HostCallback>,
    /// Optional timeline recorder, driven in lock-step with `stats`.
    trace: Option<TraceRecorder>,
}

impl Engine {
    pub fn new(exec: Executable) -> Self {
        let storage = exec.graph.tensors.iter().map(|t| Storage::zeros(t.dtype, t.len())).collect();
        let stats = CycleStats::new(exec.graph.model.num_tiles());
        Engine {
            graph: exec.graph,
            program: exec.program,
            storage,
            stats,
            callbacks: HashMap::new(),
            trace: None,
        }
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Register the host callback invoked by `Prog::Callback(id)`.
    pub fn register_callback(&mut self, id: usize, f: HostCallback) {
        self.callbacks.insert(id, f);
    }

    /// Accumulated cycle statistics across all `run()` calls since the last
    /// reset.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Attach a trace recorder; subsequent `run()` calls record one
    /// timeline event per program step alongside the cycle accounting.
    pub fn set_trace(&mut self, trace: TraceRecorder) {
        self.trace = Some(trace);
    }

    /// Detach and return the trace recorder, if any.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// The attached trace recorder, if any.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Device seconds corresponding to the accumulated cycles.
    pub fn elapsed_seconds(&self) -> f64 {
        self.graph.model.cycles_to_seconds(self.stats.device_cycles())
    }

    pub fn read_tensor(&self, t: TensorId) -> Vec<f64> {
        let s = &self.storage[t];
        (0..s.len()).map(|i| s.get_f64(i)).collect()
    }

    pub fn write_tensor(&mut self, t: TensorId, values: &[f64]) {
        let s = &mut self.storage[t];
        assert_eq!(values.len(), s.len(), "length mismatch writing tensor {t}");
        for (i, &v) in values.iter().enumerate() {
            s.set_f64(i, v);
        }
    }

    pub fn read_scalar(&self, t: TensorId) -> f64 {
        self.storage[t].get_f64(0)
    }

    pub fn write_scalar(&mut self, t: TensorId, v: f64) {
        self.storage[t].set_f64(0, v);
    }

    /// Execute the program once.
    pub fn run(&mut self) {
        let mut ctx = ExecCtx {
            graph: &self.graph,
            storage: &mut self.storage,
            stats: &mut self.stats,
            callbacks: &mut self.callbacks,
            trace: &mut self.trace,
        };
        let program = self.program.clone();
        ctx.exec(&program);
        debug_assert_eq!(
            self.stats.label_depth(),
            0,
            "label stack unbalanced after program execution"
        );
        debug_assert_eq!(
            self.stats.label_underflows(),
            0,
            "pop_label underflowed during program execution"
        );
    }
}

struct ExecCtx<'a> {
    graph: &'a Graph,
    storage: &'a mut Vec<Storage>,
    stats: &'a mut CycleStats,
    callbacks: &'a mut HashMap<usize, HostCallback>,
    trace: &'a mut Option<TraceRecorder>,
}

impl ExecCtx<'_> {
    fn exec(&mut self, p: &Prog) {
        match p {
            Prog::Nop => {}
            Prog::Seq(steps) => steps.iter().for_each(|s| self.exec(s)),
            Prog::Execute(cs) => self.execute_compute_set(*cs),
            Prog::Exchange(ex) => self.exchange(ex),
            Prog::Copy { src, dst } => self.copy(*src, *dst),
            Prog::Repeat(n, body) => {
                for _ in 0..*n {
                    self.exec(body);
                }
            }
            Prog::If { pred, then, otherwise } => {
                // A control-flow decision synchronises all tiles; both
                // branches must leave the label stack balanced.
                let depth = self.stats.label_depth();
                self.record_sync(self.graph.cost.sync_on_chip_cycles);
                if self.read_pred(*pred) {
                    self.exec(then);
                } else {
                    self.exec(otherwise);
                }
                debug_assert_eq!(
                    self.stats.label_depth(),
                    depth,
                    "If branch left label stack unbalanced"
                );
            }
            Prog::While { cond, pred, body } => {
                let depth = self.stats.label_depth();
                loop {
                    self.exec(cond);
                    self.record_sync(self.graph.cost.sync_on_chip_cycles);
                    if !self.read_pred(*pred) {
                        break;
                    }
                    self.exec(body);
                    debug_assert_eq!(
                        self.stats.label_depth(),
                        depth,
                        "While body left label stack unbalanced"
                    );
                }
            }
            Prog::Label(name, body) => {
                let depth = self.stats.label_depth();
                self.stats.push_label(name.clone());
                if let Some(t) = self.trace.as_mut() {
                    t.begin_label(name);
                }
                self.exec(body);
                if let Some(t) = self.trace.as_mut() {
                    t.end_label();
                }
                self.stats.pop_label();
                debug_assert_eq!(
                    self.stats.label_depth(),
                    depth,
                    "Label body left label stack unbalanced"
                );
            }
            Prog::Callback(id) => {
                if let Some(mut cb) = self.callbacks.remove(id) {
                    let mut view = HostView { graph: self.graph, storage: self.storage };
                    cb(&mut view);
                    self.callbacks.insert(*id, cb);
                }
            }
        }
    }

    fn read_pred(&self, t: TensorId) -> bool {
        self.storage[t].get_f64(0) != 0.0
    }

    /// Record a sync barrier into the stats and the trace, keeping both
    /// clocks in lock-step.
    fn record_sync(&mut self, cycles: u64) {
        self.stats.record_sync(cycles);
        if let Some(t) = self.trace.as_mut() {
            t.sync(cycles);
        }
    }

    /// Record an exchange phase (time + volume) into the stats and trace.
    fn record_exchange(&mut self, name: &str, program: &ExchangeProgram, cycles: u64) {
        self.stats.record_exchange(cycles);
        self.stats.record_exchange_bytes(program.total_bytes() as u64);
        if let Some(t) = self.trace.as_mut() {
            t.exchange(name, cycles, program.total_bytes() as u64, program.num_regions());
        }
    }

    /// Record a compute superstep into the stats and trace.
    fn record_compute(&mut self, name: &str, per_tile: Vec<(TileId, u64)>) {
        if let Some(t) = self.trace.as_mut() {
            t.compute(name, &per_tile);
        }
        self.stats.record_compute(per_tile);
    }

    fn execute_compute_set(&mut self, id: usize) {
        let cs = &self.graph.compute_sets[id];
        let model = &self.graph.model;
        let cost = &self.graph.cost;

        // Compiler-inserted exchange for operands resident on other tiles
        // (scalar broadcasts and the like).
        let mut bcast: Vec<BlockCopy> = Vec::new();
        for v in &cs.vertices {
            for op in &v.operands {
                let t = &self.graph.tensors[op.tensor];
                let end = op.start + op.len;
                let mut i = op.start;
                while i < end {
                    let chunk = t.chunk_of(i).expect("slice validated at compile time");
                    let stop = chunk.end().min(end);
                    if chunk.tile != v.tile {
                        bcast.push(BlockCopy {
                            src_tile: chunk.tile,
                            dst_tile: v.tile,
                            bytes: (stop - i) * t.dtype.size_bytes(),
                            src_key: key_of(op.tensor, chunk.start, 0),
                        });
                    }
                    i = stop;
                }
            }
        }
        if !bcast.is_empty() {
            let ep = ExchangeProgram::new(bcast);
            let cycles = ep.cycles(model, cost);
            self.record_exchange(&format!("bcast:{}", cs.name), &ep, cycles);
        }

        // BSP sync before the compute set.
        let tiles = cs.tiles();
        let multi_chip =
            tiles.first().map(|&f| tiles.iter().any(|&t| !model.same_chip(f, t))).unwrap_or(false);
        self.record_sync(if multi_chip {
            cost.sync_inter_ipu_cycles
        } else {
            cost.sync_on_chip_cycles
        });

        // Run the vertices, accumulating per-tile cycles.
        let mut per_tile: HashMap<TileId, u64> = HashMap::new();
        for v in &cs.vertices {
            let cycles = self.run_vertex(v);
            *per_tile.entry(v.tile).or_insert(0) += cycles;
        }
        self.record_compute(&cs.name.clone(), per_tile.into_iter().collect());
    }

    fn run_vertex(&mut self, v: &crate::compute::Vertex) -> u64 {
        let codelet = &self.graph.codelets[v.codelet];
        let cost = &self.graph.cost;
        let workers = self.graph.model.workers_per_tile as u64;
        let mut params = build_params(self.storage, &v.operands);
        match &v.kind {
            VertexKind::Simple => {
                let mut interp = Interp::new(cost, &mut params, codelet.num_locals, workers);
                interp.run(&codelet.body)
            }
            VertexKind::LevelSet { levels } => {
                let mut interp = Interp::new(cost, &mut params, codelet.num_locals, workers);
                let mut row_cost: HashMap<usize, u64> = HashMap::new();
                for level in levels {
                    for &row in level {
                        interp.locals[0] = Value::I32(row as i32);
                        let before = interp.cycles;
                        interp.run(&codelet.body);
                        row_cost.insert(row, interp.cycles - before);
                    }
                }
                let schedule =
                    ipu_sim::threading::LevelSchedule::build(levels, workers as usize, |i| {
                        row_cost[&i]
                    });
                schedule.cycles(|i| row_cost[&i], cost)
            }
        }
    }

    fn exchange(&mut self, ex: &ExchangeStep) {
        let model = &self.graph.model;
        let cost = &self.graph.cost;
        // Cost first (reads tensor defs only).
        let copies: Vec<BlockCopy> = ex
            .copies
            .iter()
            .map(|c| {
                let s = &self.graph.tensors[c.src];
                let d = &self.graph.tensors[c.dst];
                BlockCopy {
                    src_tile: s.tile_of(c.src_start).expect("validated"),
                    dst_tile: d.tile_of(c.dst_start).expect("validated"),
                    bytes: c.len * s.dtype.size_bytes(),
                    src_key: key_of(c.src, c.src_start, c.len),
                }
            })
            .collect();
        self.record_sync(cost.sync_on_chip_cycles);
        let ep = ExchangeProgram::new(copies);
        let cycles = ep.cycles(model, cost);
        self.record_exchange(&ex.name, &ep, cycles);
        // Then the data movement.
        for c in &ex.copies {
            apply_copy(self.storage, c);
        }
    }

    fn copy(&mut self, src: TensorId, dst: TensorId) {
        let def = &self.graph.tensors[src];
        let cost = &self.graph.cost;
        let workers = self.graph.model.workers_per_tile as u64;
        let move_cost = cost.op_cycles(Op::Load, def.dtype) + cost.op_cycles(Op::Store, def.dtype);
        let per_tile: Vec<(TileId, u64)> = def
            .chunks
            .iter()
            .map(|c| {
                (c.tile, cost.worker_spawn_cycles + (c.total as u64 * move_cost).div_ceil(workers))
            })
            .collect();
        self.record_compute(&format!("copy:{}", def.name), per_tile);
        if src != dst {
            let (a, b) = index_two(self.storage, src, dst);
            copy_all(a, b);
        }
    }
}

fn key_of(tensor: TensorId, start: usize, len: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (tensor, start, len).hash(&mut h);
    h.finish()
}

/// Hand out one (mutable) slice per operand.
///
/// Soundness: graph compilation rejects any pair of overlapping operands
/// within a vertex, so the produced slices are pairwise disjoint; the raw
/// base pointer of each tensor's storage is taken once.
fn build_params<'a>(storage: &'a mut [Storage], operands: &[TensorSlice]) -> Vec<ParamData<'a>> {
    enum Base {
        F32(*mut f32),
        I32(*mut i32),
        Bool(*mut bool),
        Dw(*mut TwoF32),
        F64(*mut SoftDouble),
    }
    let mut bases: HashMap<TensorId, Base> = HashMap::new();
    for op in operands {
        bases.entry(op.tensor).or_insert_with(|| match &mut storage[op.tensor] {
            Storage::F32(v) => Base::F32(v.as_mut_ptr()),
            Storage::I32(v) => Base::I32(v.as_mut_ptr()),
            Storage::Bool(v) => Base::Bool(v.as_mut_ptr()),
            Storage::Dw(v) => Base::Dw(v.as_mut_ptr()),
            Storage::F64(v) => Base::F64(v.as_mut_ptr()),
        });
    }
    operands
        .iter()
        .map(|op| {
            // SAFETY: slices validated in-bounds at compile time; operands
            // pairwise disjoint; base pointers taken once per tensor above.
            unsafe {
                match bases[&op.tensor] {
                    Base::F32(p) => {
                        ParamData::F32(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                    }
                    Base::I32(p) => {
                        ParamData::I32(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                    }
                    Base::Bool(p) => {
                        ParamData::Bool(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                    }
                    Base::Dw(p) => {
                        ParamData::Dw(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                    }
                    Base::F64(p) => {
                        ParamData::F64(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                    }
                }
            }
        })
        .collect()
}

fn index_two(storage: &mut [Storage], a: usize, b: usize) -> (&mut Storage, &mut Storage) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = storage.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = storage.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

fn copy_all(src: &Storage, dst: &mut Storage) {
    match (src, dst) {
        (Storage::F32(s), Storage::F32(d)) => d.copy_from_slice(s),
        (Storage::I32(s), Storage::I32(d)) => d.copy_from_slice(s),
        (Storage::Bool(s), Storage::Bool(d)) => d.copy_from_slice(s),
        (Storage::Dw(s), Storage::Dw(d)) => d.copy_from_slice(s),
        (Storage::F64(s), Storage::F64(d)) => d.copy_from_slice(s),
        _ => unreachable!("copy dtypes validated at compile time"),
    }
}

fn apply_copy(storage: &mut [Storage], c: &ElemCopy) {
    if c.src == c.dst {
        match &mut storage[c.src] {
            Storage::F32(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::I32(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::Bool(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::Dw(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::F64(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
        }
        return;
    }
    let (s, d) = index_two(storage, c.src, c.dst);
    match (s, d) {
        (Storage::F32(s), Storage::F32(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::I32(s), Storage::I32(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::Bool(s), Storage::Bool(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::Dw(s), Storage::Dw(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::F64(s), Storage::F64(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        _ => unreachable!("exchange dtypes validated at compile time"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::{BinOp, Codelet, Expr, ParamDecl, Stmt};
    use crate::compute::{ComputeSet, Vertex};
    use crate::tensor::TensorDef;
    use ipu_sim::clock::Phase;
    use ipu_sim::model::IpuModel;

    /// Build a two-tile graph that doubles a distributed tensor in place.
    fn double_in_place() -> (Executable, TensorId) {
        let mut g = Graph::new(IpuModel::tiny(2));
        let x = g.add_tensor(TensorDef::linear("x", DType::F32, 8, 2)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "double".into(),
                params: vec![ParamDecl { dtype: DType::F32, mutable: true }],
                num_locals: 1,
                body: vec![Stmt::ParFor {
                    local: 0,
                    start: Expr::c(Value::I32(0)),
                    end: Expr::ParamLen(0),
                    body: vec![Stmt::Store {
                        param: 0,
                        index: Expr::Local(0),
                        value: Expr::bin(
                            BinOp::Mul,
                            Expr::index(0, Expr::Local(0)),
                            Expr::c(Value::F32(2.0)),
                        ),
                    }],
                }],
            })
            .unwrap();
        let mut cs = ComputeSet::new("double");
        for tile in 0..2 {
            cs.add(Vertex {
                tile,
                codelet: c,
                operands: vec![TensorSlice { tensor: x, start: tile * 4, len: 4 }],
                kind: VertexKind::Simple,
            });
        }
        let cs = g.add_compute_set(cs).unwrap();
        (g.compile(Prog::Execute(cs)).unwrap(), x)
    }

    #[test]
    fn execute_runs_and_costs() {
        let (exec, x) = double_in_place();
        let mut e = Engine::new(exec);
        e.write_tensor(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        assert!(e.stats().device_cycles() > 0);
        assert!(e.stats().phase_cycles(Phase::Compute) > 0);
        assert!(e.stats().phase_cycles(Phase::Sync) > 0);
        // Balanced tiles: BSP max equals each tile's busy time.
        assert_eq!(e.stats().tile_busy(0), e.stats().tile_busy(1));
    }

    #[test]
    fn repeat_multiplies_work() {
        let (exec, x) = double_in_place();
        let prog = Prog::Repeat(3, Box::new(exec.program.clone()));
        let exec3 = Executable { graph: exec.graph.clone(), program: prog };
        let mut e = Engine::new(exec3);
        e.write_tensor(x, &[1.0; 8]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![8.0; 8]);
    }

    #[test]
    fn remote_scalar_operand_costs_exchange() {
        // A vertex on tile 1 reading a scalar on tile 0 must pay for the
        // broadcast.
        let mut g = Graph::new(IpuModel::tiny(2));
        let s = g.add_scalar("alpha", DType::F32).unwrap();
        let y = g.add_tensor(TensorDef::on_tile("y", DType::F32, 4, 1)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "fill".into(),
                params: vec![
                    ParamDecl { dtype: DType::F32, mutable: false },
                    ParamDecl { dtype: DType::F32, mutable: true },
                ],
                num_locals: 1,
                body: vec![Stmt::For {
                    local: 0,
                    start: Expr::c(Value::I32(0)),
                    end: Expr::ParamLen(1),
                    step: Expr::c(Value::I32(1)),
                    body: vec![Stmt::Store {
                        param: 1,
                        index: Expr::Local(0),
                        value: Expr::index(0, Expr::c(Value::I32(0))),
                    }],
                }],
            })
            .unwrap();
        let mut cs = ComputeSet::new("fill");
        cs.add(Vertex {
            tile: 1,
            codelet: c,
            operands: vec![TensorSlice::whole(s, 1), TensorSlice::whole(y, 4)],
            kind: VertexKind::Simple,
        });
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.write_scalar(s, 7.5);
        e.run();
        assert_eq!(e.read_tensor(y), vec![7.5; 4]);
        assert!(e.stats().phase_cycles(Phase::Exchange) > 0, "broadcast not costed");
    }

    #[test]
    fn exchange_moves_data_between_tiles() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let ex = ExchangeStep {
            name: "halo".into(),
            copies: vec![ElemCopy { src: a, src_start: 1, dst: b, dst_start: 0, len: 3 }],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0]);
        e.run();
        assert_eq!(e.read_tensor(b), vec![2.0, 3.0, 4.0, 0.0]);
        assert!(e.stats().phase_cycles(Phase::Exchange) > 0);
    }

    #[test]
    fn exchange_within_one_tensor() {
        // The §IV layout: separator values copied into halo slots of the
        // same distributed tensor.
        let mut g = Graph::new(IpuModel::tiny(2));
        let x = g
            .add_tensor(TensorDef {
                name: "x".into(),
                dtype: DType::F32,
                chunks: vec![
                    crate::tensor::TensorChunk { tile: 0, start: 0, owned: 3, total: 4 },
                    crate::tensor::TensorChunk { tile: 1, start: 4, owned: 3, total: 4 },
                ],
            })
            .unwrap();
        // Tile 0's last owned element -> tile 1's halo slot, and vice versa.
        let ex = ExchangeStep {
            name: "halo".into(),
            copies: vec![
                ElemCopy { src: x, src_start: 2, dst: x, dst_start: 7, len: 1 },
                ElemCopy { src: x, src_start: 4, dst: x, dst_start: 3, len: 1 },
            ],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.write_tensor(x, &[10.0, 11.0, 12.0, 0.0, 20.0, 21.0, 22.0, 0.0]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![10.0, 11.0, 12.0, 20.0, 20.0, 21.0, 22.0, 12.0]);
    }

    #[test]
    fn while_loop_terminates_on_predicate() {
        // Counter decrements from 3; predicate codelet sets pred = counter > 0.
        let mut g = Graph::new(IpuModel::tiny(1));
        let counter = g.add_scalar("counter", DType::I32).unwrap();
        let pred = g.add_scalar("pred", DType::Bool).unwrap();
        let dec = g
            .add_codelet(Codelet {
                name: "dec".into(),
                params: vec![ParamDecl { dtype: DType::I32, mutable: true }],
                num_locals: 0,
                body: vec![Stmt::Store {
                    param: 0,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::bin(
                        BinOp::Sub,
                        Expr::index(0, Expr::c(Value::I32(0))),
                        Expr::c(Value::I32(1)),
                    ),
                }],
            })
            .unwrap();
        let test = g
            .add_codelet(Codelet {
                name: "test".into(),
                params: vec![
                    ParamDecl { dtype: DType::I32, mutable: false },
                    ParamDecl { dtype: DType::Bool, mutable: true },
                ],
                num_locals: 0,
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::bin(
                        BinOp::Gt,
                        Expr::index(0, Expr::c(Value::I32(0))),
                        Expr::c(Value::I32(0)),
                    ),
                }],
            })
            .unwrap();
        let mut cs_dec = ComputeSet::new("dec");
        cs_dec.add(Vertex {
            tile: 0,
            codelet: dec,
            operands: vec![TensorSlice::whole(counter, 1)],
            kind: VertexKind::Simple,
        });
        let cs_dec = g.add_compute_set(cs_dec).unwrap();
        let mut cs_test = ComputeSet::new("test");
        cs_test.add(Vertex {
            tile: 0,
            codelet: test,
            operands: vec![TensorSlice::whole(counter, 1), TensorSlice::whole(pred, 1)],
            kind: VertexKind::Simple,
        });
        let cs_test = g.add_compute_set(cs_test).unwrap();
        let prog = Prog::While {
            cond: Box::new(Prog::Execute(cs_test)),
            pred,
            body: Box::new(Prog::Execute(cs_dec)),
        };
        let mut e = Engine::new(g.compile(prog).unwrap());
        e.write_scalar(counter, 3.0);
        e.run();
        assert_eq!(e.read_scalar(counter), 0.0);
    }

    #[test]
    fn labels_attribute_cycles() {
        let (exec, _) = double_in_place();
        let prog = Prog::Label("phase_a".into(), Box::new(exec.program.clone()));
        let mut e = Engine::new(Executable { graph: exec.graph.clone(), program: prog });
        e.run();
        assert_eq!(e.stats().label_cycles("phase_a"), e.stats().device_cycles());
    }

    #[test]
    fn callback_reads_and_writes() {
        let mut g = Graph::new(IpuModel::tiny(1));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 2, 0)).unwrap();
        let mut e = Engine::new(g.compile(Prog::Callback(9)).unwrap());
        e.register_callback(
            9,
            Box::new(move |view| {
                let v = view.read_f64(0);
                view.write_f64(0, &[v[0] + 1.0, v[1] * 2.0]);
            }),
        );
        e.write_tensor(x, &[10.0, 10.0]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![11.0, 20.0]);
    }

    #[test]
    fn copy_between_identically_mapped_tensors() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::linear("a", DType::F32, 6, 2)).unwrap();
        let b = g.add_tensor(TensorDef::linear("b", DType::F32, 6, 2)).unwrap();
        let mut e = Engine::new(g.compile(Prog::Copy { src: a, dst: b }).unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        e.run();
        assert_eq!(e.read_tensor(b), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(e.stats().phase_cycles(Phase::Compute) > 0);
    }

    #[test]
    fn nested_control_flow_repeat_in_while() {
        // while (n > 0) { repeat(2) { n -= 1; sum += 1 } } with n = 5:
        // the body overshoots to n = -1, sum = 6.
        let mut g = Graph::new(IpuModel::tiny(1));
        let n = g.add_scalar("n", DType::I32).unwrap();
        let sum = g.add_scalar("sum", DType::I32).unwrap();
        let pred = g.add_scalar("pred", DType::Bool).unwrap();
        let step = g
            .add_codelet(Codelet {
                name: "step".into(),
                params: vec![
                    ParamDecl { dtype: DType::I32, mutable: true },
                    ParamDecl { dtype: DType::I32, mutable: true },
                ],
                num_locals: 0,
                body: vec![
                    Stmt::Store {
                        param: 0,
                        index: Expr::c(Value::I32(0)),
                        value: Expr::bin(
                            BinOp::Sub,
                            Expr::index(0, Expr::c(Value::I32(0))),
                            Expr::c(Value::I32(1)),
                        ),
                    },
                    Stmt::Store {
                        param: 1,
                        index: Expr::c(Value::I32(0)),
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::index(1, Expr::c(Value::I32(0))),
                            Expr::c(Value::I32(1)),
                        ),
                    },
                ],
            })
            .unwrap();
        let test = g
            .add_codelet(Codelet {
                name: "test".into(),
                params: vec![
                    ParamDecl { dtype: DType::I32, mutable: false },
                    ParamDecl { dtype: DType::Bool, mutable: true },
                ],
                num_locals: 0,
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::bin(
                        BinOp::Gt,
                        Expr::index(0, Expr::c(Value::I32(0))),
                        Expr::c(Value::I32(0)),
                    ),
                }],
            })
            .unwrap();
        let mut cs_step = ComputeSet::new("step");
        cs_step.add(Vertex {
            tile: 0,
            codelet: step,
            operands: vec![TensorSlice::whole(n, 1), TensorSlice::whole(sum, 1)],
            kind: VertexKind::Simple,
        });
        let cs_step = g.add_compute_set(cs_step).unwrap();
        let mut cs_test = ComputeSet::new("test");
        cs_test.add(Vertex {
            tile: 0,
            codelet: test,
            operands: vec![TensorSlice::whole(n, 1), TensorSlice::whole(pred, 1)],
            kind: VertexKind::Simple,
        });
        let cs_test = g.add_compute_set(cs_test).unwrap();
        let prog = Prog::While {
            cond: Box::new(Prog::Execute(cs_test)),
            pred,
            body: Box::new(Prog::Repeat(2, Box::new(Prog::Execute(cs_step)))),
        };
        let mut e = Engine::new(g.compile(prog).unwrap());
        e.write_scalar(n, 5.0);
        e.run();
        assert_eq!(e.read_scalar(n), -1.0);
        assert_eq!(e.read_scalar(sum), 6.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_tensor_length_checked() {
        let mut g = Graph::new(IpuModel::tiny(1));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 4, 0)).unwrap();
        let mut e = Engine::new(g.compile(Prog::Nop).unwrap());
        e.write_tensor(x, &[1.0, 2.0]);
    }

    #[test]
    fn exchange_of_double_word_preserves_pairs() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::on_tile("a", DType::DoubleWord, 2, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::DoubleWord, 2, 1)).unwrap();
        let ex = ExchangeStep {
            name: "dw".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 2 }],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.write_tensor(a, &[1.0 + 1e-9, -2.5]);
        e.run();
        let got = e.read_tensor(b);
        assert!((got[0] - (1.0 + 1e-9)).abs() < 1e-15, "{}", got[0]);
        assert_eq!(got[1], -2.5);
    }

    #[test]
    fn stats_accumulate_across_runs_and_reset() {
        let (exec, _) = double_in_place();
        let mut e = Engine::new(exec);
        e.run();
        let one = e.stats().device_cycles();
        e.run();
        assert_eq!(e.stats().device_cycles(), 2 * one);
        e.reset_stats();
        assert_eq!(e.stats().device_cycles(), 0);
        e.run();
        assert_eq!(e.stats().device_cycles(), one);
    }

    #[test]
    fn elapsed_seconds_matches_clock() {
        let (exec, _) = double_in_place();
        let hz = exec.graph.model.clock_hz;
        let mut e = Engine::new(exec);
        e.run();
        let want = e.stats().device_cycles() as f64 / hz;
        assert!((e.elapsed_seconds() - want).abs() < 1e-15);
    }

    #[test]
    fn level_set_vertex_runs_rows_in_level_order() {
        // x[row] = (row == 0) ? 1 : x[row-1] + 1 — a chain; levels must
        // serialise it correctly.
        let mut g = Graph::new(IpuModel::tiny(1));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 5, 0)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "chain".into(),
                params: vec![ParamDecl { dtype: DType::F32, mutable: true }],
                num_locals: 1,
                body: vec![Stmt::If {
                    cond: Expr::bin(BinOp::Eq, Expr::Local(0), Expr::c(Value::I32(0))),
                    then: vec![Stmt::Store {
                        param: 0,
                        index: Expr::Local(0),
                        value: Expr::c(Value::F32(1.0)),
                    }],
                    otherwise: vec![Stmt::Store {
                        param: 0,
                        index: Expr::Local(0),
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::index(
                                0,
                                Expr::bin(BinOp::Sub, Expr::Local(0), Expr::c(Value::I32(1))),
                            ),
                            Expr::c(Value::F32(1.0)),
                        ),
                    }],
                }],
            })
            .unwrap();
        let mut cs = ComputeSet::new("chain");
        cs.add(Vertex {
            tile: 0,
            codelet: c,
            operands: vec![TensorSlice::whole(x, 5)],
            kind: VertexKind::LevelSet { levels: (0..5).map(|i| vec![i]).collect() },
        });
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.run();
        assert_eq!(e.read_tensor(x), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
