//! The execution engine — replay of a compiled [`ExecPlan`].
//!
//! The engine walks the flat plan the graph compiler produced at
//! `Graph::compile` time: every `Execute` step already carries its
//! broadcast [`ipu_sim::ExchangeProgram`], sync cost and tile-grouped
//! vertex spans; every `Exchange`/`Copy` its resolved block copies and
//! cycles. Nothing is derived on the hot path — the simulator counterpart
//! of loading a Poplar executable onto the device (where the statically
//! compiled exchange is the whole point) and reading the profiler
//! afterwards.
//!
//! Cost semantics per step:
//!
//! * `Execute` — one BSP superstep: a sync barrier, the precomputed
//!   broadcast exchange for operands read from remote tiles, then the
//!   per-tile maximum of codelet cycles.
//! * `Exchange` — per phase: a sync plus the fabric cost of the resolved
//!   blockwise copies (broadcast-aware, all-to-all, IPU-Link latency when
//!   chips are crossed).
//! * `Copy` — an on-tile memcpy parallelised over the worker threads.
//! * `If`/`While` — control-flow decisions synchronise all tiles.
//!
//! A legacy tree-walking interpreter is retained behind
//! `GRAPHENE_LEGACY_INTERP=1` (or [`Engine::set_legacy_interpreter`]) for
//! differential testing: it re-plans every step through
//! [`crate::passes`]'s planners on each execution — the per-iteration host
//! overhead the compiled plan eliminates — and must produce bit-identical
//! results and cycle profiles.
//!
//! # Host executors
//!
//! The simulated *device* semantics are fixed, but the *host* may run the
//! vertices of a compute set either on one thread ([`ExecutorKind::Sequential`])
//! or partitioned by tile across scoped worker threads
//! ([`ExecutorKind::Parallel`]). Tile-mapped writes are disjoint by
//! construction (mutable operands must be resident on the vertex's tile and
//! tensor chunks never overlap across tiles), so parallel execution is safe
//! whenever no vertex *reads* a region another tile *writes* within the same
//! compute set — checked by [`parallel_hazards`] at engine-build time. Both
//! executors merge per-tile cycle counts in tile-id order, so `CycleStats`
//! and traces are bit-identical between them. Select with
//! `GRAPHENE_PAR=1` (or `Engine::set_executor`).

use std::collections::{BTreeMap, HashMap};

use ipu_sim::clock::CycleStats;
use ipu_sim::cost::DType;
use ipu_sim::exchange::ExchangeProgram;
use ipu_sim::fault::{Fault, FaultEvent, FaultKind, FaultPlan};
use ipu_sim::model::TileId;
use profile::perf::{PerfRecorder, PerfReport};
use profile::{CompileReport, PassStat, TraceRecorder};
use twofloat::{SoftDouble, TwoF32, TwoFloat};

use crate::codelet::{Codelet, Interp, ParamData, Value};
use crate::compute::{TensorSlice, Vertex, VertexKind};
use crate::graph::{Executable, Graph};
use crate::kernels::KernelTable;
use crate::passes;
use crate::plan::{CopyStep, ExchangePhase, ExecPlan, ExecuteStep, PlanStep, StepId};
use crate::program::{ElemCopy, Prog};
use crate::tensor::TensorId;

/// Which host executor runs the vertices of each compute set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// One host thread walks the vertices in program order.
    Sequential,
    /// Vertices are partitioned by tile and run on scoped host worker
    /// threads; per-tile results are merged in tile-id order, so stats
    /// and traces are bit-identical to sequential execution.
    Parallel,
    /// One host thread walks the vertices in program order, but codelets
    /// matched against the fused-kernel library ([`crate::kernels`]) run
    /// as monomorphised Rust instead of the tree-walking interpreter.
    /// Results, cycle stats and traces are bit-identical to sequential
    /// execution; only host wall-clock time changes.
    Native,
}

impl ExecutorKind {
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::Parallel => "parallel",
            ExecutorKind::Native => "native",
        }
    }
}

/// Host-execution options for an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineOptions {
    pub executor: ExecutorKind,
    /// Worker-thread cap for the parallel executor; `0` means one per
    /// available core.
    pub threads: usize,
    /// Run the legacy tree-walking interpreter instead of the compiled
    /// plan (re-plans every step on every execution). Differential
    /// testing only; `GRAPHENE_LEGACY_INTERP=1`.
    pub legacy_interpreter: bool,
    /// Whether the native executor may actually fuse matched codelets.
    /// `false` forces every codelet down the interpreter fallback even
    /// under [`ExecutorKind::Native`] — the differential-testing leg of
    /// the bit-identity contract (`GRAPHENE_NATIVE=0`).
    pub native_fusion: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            executor: ExecutorKind::Sequential,
            threads: 0,
            legacy_interpreter: false,
            native_fusion: true,
        }
    }
}

impl EngineOptions {
    /// Parse the `GRAPHENE_PAR` environment variable: unset, empty, `0`,
    /// `false`, `off` or `no` select the sequential executor; `1`,
    /// `true`, `on` or `yes` select the parallel executor with one
    /// worker per core; an integer `N >= 2` caps the workers at `N`.
    /// `GRAPHENE_LEGACY_INTERP=1` additionally selects the legacy
    /// tree-walking interpreter. `GRAPHENE_NATIVE=1` selects the native
    /// fused-kernel executor (overriding `GRAPHENE_PAR`, since it is
    /// parsed after it); `GRAPHENE_NATIVE=0` leaves the executor choice
    /// alone but force-disables kernel fusion, so a native engine falls
    /// back to the interpreter for every codelet.
    ///
    /// Any other value **panics** with the offending string: a typo'd
    /// knob silently running the wrong executor is far worse than a loud
    /// failure (an empty value counts as unset, as CI matrix templating
    /// produces empty strings for absent legs).
    ///
    /// The three per-knob variables are **deprecated aliases** of the
    /// consolidated `GRAPHENE_BACKEND` selector
    /// (`ipu-sim[:seq|par|native|legacy] | cpu[:par] | gpu-model`, see
    /// [`EngineOptions::resolve_env`]): with `GRAPHENE_BACKEND` unset they
    /// keep their historical meaning byte-for-byte; with it set, the
    /// backend name is authoritative and a *disagreeing* enabling alias is
    /// a loud conflict error, never a silent override.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        match Self::resolve_env(
            get("GRAPHENE_BACKEND").as_deref(),
            get("GRAPHENE_PAR").as_deref(),
            get("GRAPHENE_NATIVE").as_deref(),
            get("GRAPHENE_LEGACY_INTERP").as_deref(),
        ) {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        }
    }

    /// The pure resolution behind [`from_env`](Self::from_env): combine a
    /// `GRAPHENE_BACKEND` selection with the deprecated alias knobs.
    ///
    /// Rules (the consolidation contract, mirrored by
    /// `backend::BackendSpec::resolve_env` for the runner-level registry):
    ///
    /// * aliases parse strictly first — a typo'd knob errors no matter
    ///   which variable ends up deciding;
    /// * backend unset/empty (or the unpinned `ipu-sim`) → the historical
    ///   alias composition: `GRAPHENE_PAR` picks the executor and thread
    ///   cap, `GRAPHENE_LEGACY_INTERP` the interpreter,
    ///   `GRAPHENE_NATIVE=1` overrides the executor to native and
    ///   `GRAPHENE_NATIVE=0` force-disables fusion;
    /// * a pinned `ipu-sim:<variant>` accepts only *agreeing* enabling
    ///   aliases (`GRAPHENE_PAR=8` with `ipu-sim:par` still sets the
    ///   thread cap; disabling values are inert) and rejects disagreeing
    ///   ones with a conflict error naming both sides;
    /// * `cpu`, `cpu:par` and `gpu-model` resolve to default engine
    ///   options after the same conflict checks — the runner never routes
    ///   those solves through this engine;
    /// * unknown names error listing the known registry.
    pub fn resolve_env(
        backend: Option<&str>,
        par: Option<&str>,
        native: Option<&str>,
        legacy: Option<&str>,
    ) -> Result<EngineOptions, String> {
        let par_base = match par {
            None => None,
            Some(v) => Some(Self::try_parse_par(v)?),
        };
        let native_on = match native {
            None => None,
            Some(v) => try_parse_env_bool("GRAPHENE_NATIVE", v)?,
        };
        let legacy_on = match legacy {
            None => None,
            Some(v) => try_parse_env_bool("GRAPHENE_LEGACY_INTERP", v)?,
        };

        // The historical (pre-consolidation) composition of the aliases.
        let compose = || {
            let mut o = par_base.unwrap_or_default();
            if let Some(b) = legacy_on {
                o.legacy_interpreter = b;
            }
            match native_on {
                Some(true) => o.executor = ExecutorKind::Native,
                Some(false) => o.native_fusion = false,
                None => {}
            }
            o
        };

        let name = match backend.map(str::trim).filter(|s| !s.is_empty()) {
            None => return Ok(compose()),
            Some(s) => s.to_ascii_lowercase(),
        };

        let par_enabled = par_base.is_some_and(|o| o.executor == ExecutorKind::Parallel);
        let conflict = |var: &str, val: Option<&str>, hint: &str| {
            format!(
                "GRAPHENE_BACKEND={name} conflicts with deprecated alias {var}={}; \
                 unset {var} or select GRAPHENE_BACKEND={hint}",
                val.unwrap_or("")
            )
        };
        let check = |allow_par: bool, allow_native: bool, allow_legacy: bool| {
            if par_enabled && !allow_par {
                return Err(conflict("GRAPHENE_PAR", par, "ipu-sim:par"));
            }
            if native_on == Some(true) && !allow_native {
                return Err(conflict("GRAPHENE_NATIVE", native, "ipu-sim:native"));
            }
            if legacy_on == Some(true) && !allow_legacy {
                return Err(conflict("GRAPHENE_LEGACY_INTERP", legacy, "ipu-sim:legacy"));
            }
            Ok(())
        };

        let mut o = EngineOptions::default();
        match name.as_str() {
            // Unpinned: delegate the whole choice to the aliases.
            "ipu-sim" => return Ok(compose()),
            "ipu-sim:seq" => check(false, false, false)?,
            "ipu-sim:par" => {
                check(true, false, false)?;
                o.executor = ExecutorKind::Parallel;
                if let Some(p) = par_base {
                    if p.executor == ExecutorKind::Parallel {
                        o.threads = p.threads;
                    }
                }
            }
            "ipu-sim:native" => {
                check(false, true, false)?;
                o.executor = ExecutorKind::Native;
            }
            "ipu-sim:legacy" => {
                check(false, false, true)?;
                o.legacy_interpreter = true;
            }
            // Non-engine backends: the runner dispatches these solves
            // elsewhere; the engine itself stays on its defaults.
            "cpu" | "cpu:par" | "gpu-model" => check(false, false, false)?,
            other => {
                return Err(format!(
                    "GRAPHENE_BACKEND: unknown backend `{other}` (known: ipu-sim, \
                     ipu-sim:seq, ipu-sim:par, ipu-sim:native, ipu-sim:legacy, cpu, \
                     cpu:par, gpu-model)"
                ))
            }
        }
        if native_on == Some(false) {
            o.native_fusion = false;
        }
        Ok(o)
    }

    /// Panicking wrapper over [`try_parse_par`](Self::try_parse_par),
    /// kept for the env-grammar tests (the panic message is the contract
    /// `from_env` surfaces on a malformed knob).
    #[cfg(test)]
    fn parse_par(v: &str) -> Self {
        match Self::try_parse_par(v) {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`parse_par`](Self::parse_par) — same grammar,
    /// `Err` instead of panicking.
    fn try_parse_par(v: &str) -> Result<Self, String> {
        match v.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "false" | "off" | "no" => Ok(EngineOptions::default()),
            "1" | "true" | "on" | "yes" => {
                Ok(EngineOptions { executor: ExecutorKind::Parallel, ..EngineOptions::default() })
            }
            other => match other.parse::<usize>() {
                Ok(0) => Ok(EngineOptions::default()),
                Ok(1) => Ok(EngineOptions {
                    executor: ExecutorKind::Parallel,
                    ..EngineOptions::default()
                }),
                Ok(n) => Ok(EngineOptions {
                    executor: ExecutorKind::Parallel,
                    threads: n,
                    ..EngineOptions::default()
                }),
                Err(_) => Err(format!(
                    "GRAPHENE_PAR: unrecognised value `{v}` \
                     (expected 0/1/true/false/on/off/yes/no or a worker count)"
                )),
            },
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }
}

/// Strict tri-state parse of a boolean env knob: `None` for an empty
/// value (treated as unset — CI matrix templating produces empty strings
/// for absent legs), `Some(bool)` for the recognised spellings, and a
/// panic naming the variable and the offending string for anything else.
#[cfg(test)]
fn parse_env_bool(var: &str, v: &str) -> Option<bool> {
    match try_parse_env_bool(var, v) {
        Ok(o) => o,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`parse_env_bool`] — same grammar, `Err` instead of
/// panicking.
fn try_parse_env_bool(var: &str, v: &str) -> Result<Option<bool>, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "" => Ok(None),
        "1" | "true" | "on" | "yes" => Ok(Some(true)),
        "0" | "false" | "off" | "no" => Ok(Some(false)),
        other => Err(format!(
            "{var}: unrecognised value `{other}` (expected 0/1/true/false/on/off/yes/no)"
        )),
    }
}

/// Runtime state of a [`FaultPlan`] inside one engine.
///
/// The plan itself is pure description; this carries what has actually
/// happened — which faults have fired (each fault is one-shot: a transient
/// upset, not a stuck-at), the log of fired events, and the per-run
/// superstep counter. The runner moves this state between engines across
/// recovery attempts ([`Engine::take_fault_state`] /
/// [`Engine::set_fault_state`]) so a fault that fired before a rollback
/// does not re-fire after it.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    resolved: Vec<Fault>,
    fired: Vec<bool>,
    log: Vec<FaultEvent>,
    /// Compute supersteps completed in the current `run()` (resets to 0 at
    /// the start of each run; exchange phases carry the superstep of the
    /// compute step that follows them).
    superstep: u64,
}

impl FaultState {
    /// Resolve `plan` against a concrete tile count. Resolution is a pure
    /// function of (plan, `num_tiles`), so the same plan replays
    /// bit-identically on both host executors and across runs.
    pub fn new(plan: FaultPlan, num_tiles: usize) -> FaultState {
        let resolved = plan.resolve(num_tiles);
        let fired = vec![false; resolved.len()];
        FaultState { plan, resolved, fired, log: Vec::new(), superstep: 0 }
    }

    /// The plan this state was resolved from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The concrete faults the plan resolved to.
    pub fn resolved(&self) -> &[Fault] {
        &self.resolved
    }

    /// Every fault that has fired so far, in firing order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Whether every resolved fault has fired.
    pub fn all_fired(&self) -> bool {
        self.fired.iter().all(|&f| f)
    }
}

/// Typed backing storage of one tensor.
#[derive(Clone, Debug)]
pub enum Storage {
    F32(Vec<f32>),
    I32(Vec<i32>),
    Bool(Vec<bool>),
    Dw(Vec<TwoF32>),
    F64(Vec<SoftDouble>),
}

impl Storage {
    fn zeros(dtype: DType, len: usize) -> Storage {
        match dtype {
            DType::F32 => Storage::F32(vec![0.0; len]),
            DType::I32 => Storage::I32(vec![0; len]),
            DType::Bool => Storage::Bool(vec![false; len]),
            DType::DoubleWord => Storage::Dw(vec![TwoFloat::ZERO; len]),
            DType::F64Emulated => Storage::F64(vec![SoftDouble::ZERO; len]),
        }
    }

    fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::I32(v) => v.len(),
            Storage::Bool(v) => v.len(),
            Storage::Dw(v) => v.len(),
            Storage::F64(v) => v.len(),
        }
    }

    fn get_f64(&self, i: usize) -> f64 {
        match self {
            Storage::F32(v) => v[i] as f64,
            Storage::I32(v) => v[i] as f64,
            Storage::Bool(v) => v[i] as u8 as f64,
            Storage::Dw(v) => v[i].to_f64(),
            Storage::F64(v) => v[i].0,
        }
    }

    fn set_f64(&mut self, i: usize, x: f64) {
        match self {
            Storage::F32(v) => v[i] = x as f32,
            Storage::I32(v) => v[i] = x as i32,
            Storage::Bool(v) => v[i] = x != 0.0,
            Storage::Dw(v) => v[i] = TwoFloat::from_f64(x),
            Storage::F64(v) => v[i] = SoftDouble(x),
        }
    }
}

/// Host-side view of tensor storage handed to callbacks.
pub struct HostView<'a> {
    pub graph: &'a Graph,
    storage: &'a mut [Storage],
}

impl HostView<'_> {
    /// Read a tensor's values as f64 (double-word pairs are summed —
    /// lossless; f32 widened).
    pub fn read_f64(&self, t: TensorId) -> Vec<f64> {
        let s = &self.storage[t];
        (0..s.len()).map(|i| s.get_f64(i)).collect()
    }

    /// Write f64 values into a tensor with the conversion its dtype
    /// implies.
    pub fn write_f64(&mut self, t: TensorId, values: &[f64]) {
        let s = &mut self.storage[t];
        assert_eq!(values.len(), s.len(), "length mismatch writing tensor {t}");
        for (i, &v) in values.iter().enumerate() {
            s.set_f64(i, v);
        }
    }

    /// Read element 0 of a tensor as f64.
    pub fn read_scalar(&self, t: TensorId) -> f64 {
        self.storage[t].get_f64(0)
    }
}

/// A registered host callback.
pub type HostCallback = Box<dyn FnMut(&mut HostView<'_>)>;

/// The execution engine for one compiled program.
pub struct Engine {
    graph: Graph,
    /// Source program tree — only consulted by the legacy interpreter.
    program: Prog,
    /// The compiled plan the engine replays.
    plan: ExecPlan,
    /// What the compiler's pass pipeline did to produce `plan`.
    report: CompileReport,
    storage: Vec<Storage>,
    stats: CycleStats,
    callbacks: HashMap<usize, HostCallback>,
    /// Optional timeline recorder, driven in lock-step with `stats`.
    trace: Option<TraceRecorder>,
    options: EngineOptions,
    /// Optional fault-injection state. `None` (the default) keeps the hot
    /// path untouched: execution, stats and traces are bit-identical to an
    /// engine built before this field existed.
    faults: Option<FaultState>,
    /// Optional per-plan-step performance recorder, driven in lock-step
    /// with `stats`. Purely observational: it never reads or advances the
    /// clock, so device cycle totals are identical with or without it.
    perf: Option<PerfRecorder>,
    /// Per-codelet fused-kernel selection, built iff the native executor
    /// is selected (`None` otherwise). Rebuilt by [`Engine::set_executor`]
    /// and [`Engine::set_native_fusion`]; the selection is stamped into
    /// the compile report as the `"native-kernel-selection"` pass.
    kernels: Option<KernelTable>,
}

impl Engine {
    /// Build an engine with the executor selected by `GRAPHENE_PAR`
    /// (sequential when unset). Panics with the hazard diagnostic if the
    /// environment requests the parallel executor for a program that is
    /// not parallel-safe — use [`Engine::with_options`] to handle the
    /// error instead.
    pub fn new(exec: Executable) -> Self {
        let options = EngineOptions::from_env();
        Self::with_options(exec, options)
            .unwrap_or_else(|e| panic!("GRAPHENE_PAR requested the parallel executor, but: {e}"))
    }

    /// Build an engine with explicit host-execution options. Selecting
    /// [`ExecutorKind::Parallel`] validates the program with
    /// [`parallel_hazards`] and returns its diagnostic on failure.
    pub fn with_options(exec: Executable, options: EngineOptions) -> Result<Self, String> {
        if options.executor == ExecutorKind::Parallel {
            parallel_hazards(&exec.graph)?;
        }
        let storage = exec.graph.tensors.iter().map(|t| Storage::zeros(t.dtype, t.len())).collect();
        let stats = CycleStats::new(exec.graph.model.num_tiles());
        let mut engine = Engine {
            graph: exec.graph,
            program: exec.program,
            plan: exec.plan,
            report: exec.report,
            storage,
            stats,
            callbacks: HashMap::new(),
            trace: None,
            options,
            faults: None,
            perf: None,
            kernels: None,
        };
        engine.rebuild_kernels();
        Ok(engine)
    }

    /// (Re)build the fused-kernel table for the current options and stamp
    /// the selection into the compile report. Codelet matching is pure
    /// structure (bytecode + operand declarations), so the table only
    /// depends on the graph and the `native_fusion` flag.
    fn rebuild_kernels(&mut self) {
        if self.options.executor != ExecutorKind::Native {
            self.kernels = None;
            return;
        }
        let table = if self.options.native_fusion {
            KernelTable::build(&self.graph)
        } else {
            KernelTable::disabled(&self.graph)
        };
        // Idempotent: replace any stamp left by a previous executor switch.
        self.report.passes.retain(|p| p.name != "native-kernel-selection");
        let mut stat = PassStat::new("native-kernel-selection", self.report.plan_steps);
        stat.count("codelets_total", table.total() as u64);
        stat.count("codelets_fused", table.fused_count() as u64);
        for (codelet, kernel) in table.selection(&self.graph) {
            match kernel {
                Some(k) => stat.count(&format!("fused.{k}"), 1),
                None => stat.count(&format!("fallback.{codelet}"), 1),
            }
        }
        self.report.passes.push(stat);
        self.kernels = Some(table);
    }

    /// Attach a fresh per-step performance recorder sized to this engine's
    /// plan and machine; subsequent `run()` calls attribute every cycle
    /// charge to its `StepId`. No effect on device cycles. The legacy
    /// interpreter has no plan steps and records nothing.
    pub fn enable_perf(&mut self) {
        self.perf = Some(PerfRecorder::new(self.plan.steps.len(), self.graph.model.num_tiles()));
    }

    /// Detach and return the perf recorder, if any.
    pub fn take_perf(&mut self) -> Option<PerfRecorder> {
        self.perf.take()
    }

    /// The attached perf recorder, if any.
    pub fn perf(&self) -> Option<&PerfRecorder> {
        self.perf.as_ref()
    }

    /// Assemble the perf section from the attached recorder plus the
    /// plan's static step metadata. `None` when no recorder is attached.
    pub fn perf_report(&self, top_k: usize) -> Option<PerfReport> {
        let rec = self.perf.as_ref()?;
        let metas = crate::perf::build_step_metas(&self.plan);
        let peak = self.graph.cost.peak_flops_per_cycle(self.graph.model.workers_per_tile as u64);
        Some(PerfReport::build(&metas, rec, peak, top_k))
    }

    /// Arm a fault plan: resolve it against this engine's tile count and
    /// start with a fresh (nothing-fired) state.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        let tiles = self.graph.model.num_tiles();
        self.faults = Some(FaultState::new(plan, tiles));
    }

    /// Transplant previously taken fault state (e.g. across the engine
    /// rebuild of a recovery attempt, so already-fired transient faults do
    /// not re-fire).
    pub fn set_fault_state(&mut self, state: Option<FaultState>) {
        self.faults = state;
    }

    /// Detach and return the fault state, if any.
    pub fn take_fault_state(&mut self) -> Option<FaultState> {
        self.faults.take()
    }

    /// Faults that have fired so far (empty when no plan is armed).
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map(|f| f.log.as_slice()).unwrap_or(&[])
    }

    /// Switch host executor between runs. Switching to
    /// [`ExecutorKind::Parallel`] re-validates the program and reports
    /// the aliasing hazard (if any) without changing the executor.
    pub fn set_executor(&mut self, executor: ExecutorKind) -> Result<(), String> {
        if executor == ExecutorKind::Parallel {
            parallel_hazards(&self.graph)?;
        }
        self.options.executor = executor;
        self.rebuild_kernels();
        Ok(())
    }

    /// The host executor currently selected.
    pub fn executor(&self) -> ExecutorKind {
        self.options.executor
    }

    /// Enable or force-disable fused-kernel dispatch under the native
    /// executor (no effect on the other executors). Disabling keeps
    /// [`ExecutorKind::Native`] selected but routes every codelet through
    /// the interpreter fallback — the differential-testing leg.
    pub fn set_native_fusion(&mut self, enabled: bool) {
        self.options.native_fusion = enabled;
        self.rebuild_kernels();
    }

    /// Whether fused-kernel dispatch is enabled for the native executor.
    pub fn native_fusion(&self) -> bool {
        self.options.native_fusion
    }

    /// The fused-kernel selection, one entry per codelet: `(codelet name,
    /// Some(kernel name) | None)`. Empty unless the native executor is
    /// selected.
    pub fn kernel_selection(&self) -> Vec<(&str, Option<&'static str>)> {
        self.kernels.as_ref().map(|t| t.selection(&self.graph)).unwrap_or_default()
    }

    /// Switch between the compiled-plan walker (default) and the legacy
    /// tree-walking interpreter that re-plans every step per execution.
    /// Differential testing only.
    pub fn set_legacy_interpreter(&mut self, legacy: bool) {
        self.options.legacy_interpreter = legacy;
    }

    /// Whether the legacy interpreter is selected.
    pub fn legacy_interpreter(&self) -> bool {
        self.options.legacy_interpreter
    }

    /// What the compiler's pass pipeline did to produce the plan this
    /// engine replays.
    pub fn compile_report(&self) -> &CompileReport {
        &self.report
    }

    /// The compiled plan this engine replays.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Register the host callback invoked by `Prog::Callback(id)`.
    pub fn register_callback(&mut self, id: usize, f: HostCallback) {
        self.callbacks.insert(id, f);
    }

    /// Accumulated cycle statistics across all `run()` calls since the last
    /// reset.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Attach a trace recorder; subsequent `run()` calls record one
    /// timeline event per program step alongside the cycle accounting.
    pub fn set_trace(&mut self, trace: TraceRecorder) {
        self.trace = Some(trace);
    }

    /// Detach and return the trace recorder, if any.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// The attached trace recorder, if any.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Device seconds corresponding to the accumulated cycles.
    pub fn elapsed_seconds(&self) -> f64 {
        self.graph.model.cycles_to_seconds(self.stats.device_cycles())
    }

    pub fn read_tensor(&self, t: TensorId) -> Vec<f64> {
        let s = &self.storage[t];
        (0..s.len()).map(|i| s.get_f64(i)).collect()
    }

    pub fn write_tensor(&mut self, t: TensorId, values: &[f64]) {
        let s = &mut self.storage[t];
        assert_eq!(values.len(), s.len(), "length mismatch writing tensor {t}");
        for (i, &v) in values.iter().enumerate() {
            s.set_f64(i, v);
        }
    }

    pub fn read_scalar(&self, t: TensorId) -> f64 {
        self.storage[t].get_f64(0)
    }

    pub fn write_scalar(&mut self, t: TensorId, v: f64) {
        self.storage[t].set_f64(0, v);
    }

    /// Execute the program once.
    ///
    /// Panics if the program mentions a `Prog::Callback` id with no
    /// registered callback — silently skipping a host callback (progress
    /// reporting, data transfer) would corrupt solver state invisibly.
    pub fn run(&mut self) {
        for id in &self.plan.callback_ids {
            assert!(
                self.callbacks.contains_key(id),
                "program invokes host callback {id}, but no callback with that id was \
                 registered (Engine::register_callback) before Engine::run"
            );
        }
        let opts = EngineOptions { threads: self.options.effective_threads(), ..self.options };
        if let Some(f) = self.faults.as_mut() {
            // Superstep coordinates are per-run; fired flags persist.
            f.superstep = 0;
        }
        let mut ctx = ExecCtx {
            graph: &self.graph,
            storage: &mut self.storage,
            stats: &mut self.stats,
            callbacks: &mut self.callbacks,
            trace: &mut self.trace,
            opts,
            faults: &mut self.faults,
            perf: &mut self.perf,
            kernels: &self.kernels,
        };
        if opts.legacy_interpreter {
            let program = self.program.clone();
            ctx.exec(&program);
        } else {
            ctx.exec_step(&self.plan, self.plan.root);
        }
        debug_assert_eq!(
            self.stats.label_depth(),
            0,
            "label stack unbalanced after program execution"
        );
        debug_assert_eq!(
            self.stats.label_underflows(),
            0,
            "pop_label underflowed during program execution"
        );
    }
}

struct ExecCtx<'a> {
    graph: &'a Graph,
    storage: &'a mut Vec<Storage>,
    stats: &'a mut CycleStats,
    callbacks: &'a mut HashMap<usize, HostCallback>,
    trace: &'a mut Option<TraceRecorder>,
    opts: EngineOptions,
    faults: &'a mut Option<FaultState>,
    perf: &'a mut Option<PerfRecorder>,
    kernels: &'a Option<KernelTable>,
}

impl ExecCtx<'_> {
    /// Walk the compiled plan — the hot path. Every step is replayed from
    /// its precomputed data; nothing is derived here.
    fn exec_step(&mut self, plan: &ExecPlan, id: StepId) {
        match plan.step(id) {
            PlanStep::Nop => {}
            PlanStep::Seq(children) => {
                children.iter().for_each(|&c| self.exec_step(plan, c));
            }
            PlanStep::Execute(es) => self.execute_planned(Some(id), es),
            PlanStep::Exchange(phases) => {
                phases.iter().for_each(|ph| self.exchange_planned(Some(id), ph));
            }
            PlanStep::Copy(cp) => self.copy_planned(Some(id), cp),
            PlanStep::Repeat(n, body) => {
                for _ in 0..*n {
                    self.exec_step(plan, *body);
                }
            }
            PlanStep::If { pred, then, otherwise, sync_cycles } => {
                // A control-flow decision synchronises all tiles; both
                // branches must leave the label stack balanced.
                let depth = self.stats.label_depth();
                self.record_sync(Some(id), *sync_cycles);
                if self.read_pred(*pred) {
                    self.exec_step(plan, *then);
                } else {
                    self.exec_step(plan, *otherwise);
                }
                debug_assert_eq!(
                    self.stats.label_depth(),
                    depth,
                    "If branch left label stack unbalanced"
                );
            }
            PlanStep::While { cond, pred, body, sync_cycles } => {
                let depth = self.stats.label_depth();
                loop {
                    self.exec_step(plan, *cond);
                    self.record_sync(Some(id), *sync_cycles);
                    if !self.read_pred(*pred) {
                        break;
                    }
                    self.exec_step(plan, *body);
                    debug_assert_eq!(
                        self.stats.label_depth(),
                        depth,
                        "While body left label stack unbalanced"
                    );
                }
            }
            PlanStep::Label(name, body) => {
                let depth = self.stats.label_depth();
                self.stats.push_label(name.clone());
                if let Some(t) = self.trace.as_mut() {
                    t.begin_label(name);
                }
                self.exec_step(plan, *body);
                if let Some(t) = self.trace.as_mut() {
                    t.end_label();
                }
                self.stats.pop_label();
                debug_assert_eq!(
                    self.stats.label_depth(),
                    depth,
                    "Label body left label stack unbalanced"
                );
            }
            PlanStep::Callback(id) => self.invoke_callback(*id),
        }
    }

    /// Walk the source tree — the legacy interpreter, retained behind
    /// `GRAPHENE_LEGACY_INTERP` for differential testing. Each `Execute`
    /// / `Exchange` / `Copy` is re-planned through `crate::passes` on
    /// *every* execution (inside solver loops: every iteration), which is
    /// exactly the host overhead the compiled plan removes.
    fn exec(&mut self, p: &Prog) {
        match p {
            Prog::Nop => {}
            Prog::Seq(steps) => steps.iter().for_each(|s| self.exec(s)),
            Prog::Execute(cs) => {
                let es = passes::plan_execute(self.graph, *cs);
                self.execute_planned(None, &es);
            }
            Prog::Exchange(ex) => {
                let ph = passes::plan_exchange(self.graph, ex);
                self.exchange_planned(None, &ph);
            }
            Prog::Copy { src, dst } => {
                let cp = passes::plan_copy(self.graph, *src, *dst);
                self.copy_planned(None, &cp);
            }
            Prog::Repeat(n, body) => {
                for _ in 0..*n {
                    self.exec(body);
                }
            }
            Prog::If { pred, then, otherwise } => {
                // A control-flow decision synchronises all tiles; both
                // branches must leave the label stack balanced.
                let depth = self.stats.label_depth();
                self.record_sync(None, self.graph.cost.sync_on_chip_cycles);
                if self.read_pred(*pred) {
                    self.exec(then);
                } else {
                    self.exec(otherwise);
                }
                debug_assert_eq!(
                    self.stats.label_depth(),
                    depth,
                    "If branch left label stack unbalanced"
                );
            }
            Prog::While { cond, pred, body } => {
                let depth = self.stats.label_depth();
                loop {
                    self.exec(cond);
                    self.record_sync(None, self.graph.cost.sync_on_chip_cycles);
                    if !self.read_pred(*pred) {
                        break;
                    }
                    self.exec(body);
                    debug_assert_eq!(
                        self.stats.label_depth(),
                        depth,
                        "While body left label stack unbalanced"
                    );
                }
            }
            Prog::Label(name, body) => {
                let depth = self.stats.label_depth();
                self.stats.push_label(name.clone());
                if let Some(t) = self.trace.as_mut() {
                    t.begin_label(name);
                }
                self.exec(body);
                if let Some(t) = self.trace.as_mut() {
                    t.end_label();
                }
                self.stats.pop_label();
                debug_assert_eq!(
                    self.stats.label_depth(),
                    depth,
                    "Label body left label stack unbalanced"
                );
            }
            Prog::Callback(id) => self.invoke_callback(*id),
        }
    }

    fn invoke_callback(&mut self, id: usize) {
        if let Some(mut cb) = self.callbacks.remove(&id) {
            let mut view = HostView { graph: self.graph, storage: self.storage };
            cb(&mut view);
            self.callbacks.insert(id, cb);
        }
    }

    fn read_pred(&self, t: TensorId) -> bool {
        self.storage[t].get_f64(0) != 0.0
    }

    /// Record a sync barrier into the stats and the trace, keeping both
    /// clocks in lock-step. `step` attributes the charge to a plan step
    /// for the perf recorder; the legacy interpreter has no step ids and
    /// passes `None`.
    fn record_sync(&mut self, step: Option<StepId>, cycles: u64) {
        self.stats.record_sync(cycles);
        if let Some(t) = self.trace.as_mut() {
            t.sync(cycles);
        }
        if let (Some(p), Some(id)) = (self.perf.as_mut(), step) {
            p.record_sync(id, cycles);
        }
    }

    /// Record an exchange phase (time + volume) into the stats and trace.
    fn record_exchange(
        &mut self,
        step: Option<StepId>,
        name: &str,
        program: &ExchangeProgram,
        cycles: u64,
    ) {
        self.stats.record_exchange(cycles);
        self.stats.record_exchange_bytes(program.total_bytes() as u64);
        if let Some(t) = self.trace.as_mut() {
            t.exchange(name, cycles, program.total_bytes() as u64, program.num_regions());
        }
        if let (Some(p), Some(id)) = (self.perf.as_mut(), step) {
            let (on_chip, link) = crate::perf::split_bytes_by_link(program, &self.graph.model);
            p.record_exchange(id, cycles, on_chip, link);
        }
    }

    /// Record a compute superstep into the stats and trace.
    fn record_compute(&mut self, step: Option<StepId>, name: &str, per_tile: Vec<(TileId, u64)>) {
        if let Some(t) = self.trace.as_mut() {
            t.compute(name, &per_tile);
        }
        if let (Some(p), Some(id)) = (self.perf.as_mut(), step) {
            p.record_compute(id, &per_tile);
        }
        self.stats.record_compute(per_tile);
    }

    /// Replay one precomputed `Execute` step: the compiler-inserted
    /// broadcast (if any), the BSP barrier, then the vertices — on one
    /// host thread in program order, or partitioned by tile across scoped
    /// workers. Both executors emit the per-tile cycle list sorted by
    /// tile id, so the recorded stats and trace events are identical
    /// whichever executor ran and whatever the host's thread or
    /// hash-iteration order was.
    fn execute_planned(&mut self, step: Option<StepId>, es: &ExecuteStep) {
        let cs = &self.graph.compute_sets[es.cs];
        if !es.bcast.is_empty() {
            self.record_exchange(step, &es.bcast_name, &es.bcast, es.bcast_cycles);
        }
        self.record_sync(step, es.sync_cycles);
        if self.faults.is_some() {
            // Fault hooks run on the engine thread before the vertex
            // executors fan out, so the perturbed state (and hence every
            // downstream bit) is identical under both executors.
            self.apply_sram_faults(es);
        }

        let bases = TensorBases::new(self.storage);
        // Per-tile cycles plus the superstep's total work counters
        // (flops/bytes are tile-order independent sums, so both executors
        // produce the same integers).
        let (per_tile, flops, mem_bytes): (Vec<(TileId, u64)>, u64, u64) = match self.opts.executor
        {
            ExecutorKind::Sequential => {
                // Program order, not tile order: hazardous programs
                // accepted sequentially are order-dependent.
                let mut acc: BTreeMap<TileId, u64> = BTreeMap::new();
                let (mut flops, mut mem) = (0u64, 0u64);
                for v in &cs.vertices {
                    let run = run_vertex(self.graph, &bases, v);
                    *acc.entry(v.tile).or_insert(0) += run.cycles;
                    flops += run.flops;
                    mem += run.mem_bytes;
                }
                (acc.into_iter().collect(), flops, mem)
            }
            ExecutorKind::Native => {
                // Same program-order walk as Sequential (so hazardous
                // programs stay order-identical); the only difference is
                // per-vertex dispatch into the fused-kernel library.
                let table = self.kernels.as_ref();
                let mut acc: BTreeMap<TileId, u64> = BTreeMap::new();
                let (mut flops, mut mem) = (0u64, 0u64);
                for v in &cs.vertices {
                    let run = run_vertex_native(self.graph, &bases, v, table);
                    *acc.entry(v.tile).or_insert(0) += run.cycles;
                    flops += run.flops;
                    mem += run.mem_bytes;
                }
                (acc.into_iter().collect(), flops, mem)
            }
            ExecutorKind::Parallel => {
                // The plan's tile groups preserve each tile's vertex order
                // (a tile's vertices may have read-after-write dependencies
                // among themselves; cross-tile dependencies were rejected
                // by `parallel_hazards`). `par_chunks_map` hands each
                // worker an owned, contiguous span of tile groups and
                // reassembles results positionally, so the merge order is
                // tile-ascending by construction.
                let graph = self.graph;
                let bases = &bases;
                let work: Vec<(TileId, &[usize])> =
                    es.tile_groups.iter().map(|(t, ids)| (*t, ids.as_slice())).collect();
                let runs = rayon::par_chunks_map(work, self.opts.threads, move |(tile, ids)| {
                    let (mut cycles, mut flops, mut mem) = (0u64, 0u64, 0u64);
                    for &i in ids {
                        let run = run_vertex(graph, bases, &cs.vertices[i]);
                        cycles += run.cycles;
                        flops += run.flops;
                        mem += run.mem_bytes;
                    }
                    (tile, cycles, flops, mem)
                });
                let (mut flops, mut mem) = (0u64, 0u64);
                let per_tile = runs
                    .into_iter()
                    .map(|(t, c, f, m)| {
                        flops += f;
                        mem += m;
                        (t, c)
                    })
                    .collect();
                (per_tile, flops, mem)
            }
        };
        let per_tile = if self.faults.is_some() {
            self.apply_stall_faults(&es.name, per_tile)
        } else {
            per_tile
        };
        if let (Some(p), Some(id)) = (self.perf.as_mut(), step) {
            p.record_flops(id, flops, mem_bytes);
        }
        self.record_compute(step, &es.name, per_tile);
        if let Some(f) = self.faults.as_mut() {
            f.superstep += 1;
        }
    }

    /// Replay one precomputed exchange phase: barrier, fabric cost, then
    /// the element copies against host storage.
    fn exchange_planned(&mut self, step: Option<StepId>, ph: &ExchangePhase) {
        self.record_sync(step, ph.sync_cycles);
        self.record_exchange(step, &ph.name, &ph.program, ph.cycles);
        if self.faults.is_some() {
            self.exchange_with_faults(ph);
            return;
        }
        for c in &ph.copies {
            apply_copy(self.storage, c);
        }
    }

    /// Replay one precomputed whole-tensor copy: worker-parallel memcpy
    /// cycles per tile, then the data movement (self-copies cost the same
    /// but move nothing).
    fn copy_planned(&mut self, step: Option<StepId>, cp: &CopyStep) {
        let per_tile = if self.faults.is_some() {
            self.apply_stall_faults(&cp.name, cp.per_tile.clone())
        } else {
            cp.per_tile.clone()
        };
        if let (Some(p), Some(id)) = (self.perf.as_mut(), step) {
            p.record_flops(id, 0, crate::perf::copy_mem_bytes(self.graph, cp.src, cp.dst));
        }
        self.record_compute(step, &cp.name, per_tile);
        if cp.src != cp.dst {
            let (a, b) = index_two(self.storage, cp.src, cp.dst);
            copy_all(a, b);
        }
        if let Some(f) = self.faults.as_mut() {
            f.superstep += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (no-ops unless a FaultPlan is armed)
    // ------------------------------------------------------------------

    /// Fire pending `SramBitFlip` faults aimed at this compute superstep:
    /// the `word`-th float element (counting the float operands of the
    /// tile's vertices in program order) gets one bit flipped just before
    /// the vertices run.
    fn apply_sram_faults(&mut self, es: &ExecuteStep) {
        let Some(fs) = self.faults.as_mut() else { return };
        let ss = fs.superstep;
        let cs = &self.graph.compute_sets[es.cs];
        for fi in 0..fs.resolved.len() {
            let f = fs.resolved[fi];
            let FaultKind::SramBitFlip { word, bit } = f.kind else { continue };
            if fs.fired[fi] || f.superstep != ss {
                continue;
            }
            // Enumerate the float words the target tile touches in this
            // superstep, in program order.
            let mut targets: Vec<(TensorId, usize, usize)> = Vec::new(); // (tensor, start, len)
            let mut total = 0usize;
            for v in &cs.vertices {
                if v.tile != f.tile {
                    continue;
                }
                for op in &v.operands {
                    let dtype = self.graph.tensors[op.tensor].dtype;
                    if matches!(dtype, DType::F32 | DType::DoubleWord | DType::F64Emulated) {
                        targets.push((op.tensor, op.start, op.len));
                        total += op.len;
                    }
                }
            }
            if total == 0 {
                // The tile touches no float data here; the upset lands in
                // unused SRAM and is harmless. Fired so it does not haunt
                // later supersteps (the coordinate has passed).
                fs.fired[fi] = true;
                fs.log.push(FaultEvent {
                    superstep: ss,
                    tile: f.tile,
                    class: "flip".into(),
                    detail: format!("no float words on tile {} in '{}'", f.tile, es.name),
                });
                continue;
            }
            let mut idx = word as usize % total;
            let (tensor, elem) = targets
                .iter()
                .find_map(|&(t, start, len)| {
                    if idx < len {
                        Some((t, start + idx))
                    } else {
                        idx -= len;
                        None
                    }
                })
                .expect("index within concatenated operand length");
            let (old, new) = flip_bit(self.storage, tensor, elem, bit);
            fs.fired[fi] = true;
            let detail = format!(
                "'{}'[{}] bit {}: {:e} -> {:e} (before '{}')",
                self.graph.tensors[tensor].name, elem, bit, old, new, es.name
            );
            fs.log.push(FaultEvent { superstep: ss, tile: f.tile, class: "flip".into(), detail });
            if let Some(t) = self.trace.as_mut() {
                t.instant("fault:flip", &fs.log.last().unwrap().detail);
            }
        }
    }

    /// Add pending `Stall` cycles aimed at this compute superstep to the
    /// per-tile cycle list (under BSP every other tile waits at the next
    /// sync, so the makespan — and only the makespan — grows).
    fn apply_stall_faults(
        &mut self,
        name: &str,
        mut per_tile: Vec<(TileId, u64)>,
    ) -> Vec<(TileId, u64)> {
        let Some(fs) = self.faults.as_mut() else { return per_tile };
        let ss = fs.superstep;
        for fi in 0..fs.resolved.len() {
            let f = fs.resolved[fi];
            let FaultKind::Stall { cycles } = f.kind else { continue };
            if fs.fired[fi] || f.superstep != ss {
                continue;
            }
            match per_tile.binary_search_by_key(&f.tile, |&(t, _)| t) {
                Ok(i) => per_tile[i].1 += cycles,
                Err(i) => per_tile.insert(i, (f.tile, cycles)),
            }
            fs.fired[fi] = true;
            let detail = format!("tile {} +{} cycles in '{}'", f.tile, cycles, name);
            fs.log.push(FaultEvent { superstep: ss, tile: f.tile, class: "stall".into(), detail });
            if let Some(t) = self.trace.as_mut() {
                t.instant("fault:stall", &fs.log.last().unwrap().detail);
            }
        }
        per_tile
    }

    /// Apply an exchange phase's copies with pending `ExchangeDrop` /
    /// `ExchangeBitFlip` faults. An exchange phase carries the superstep
    /// coordinate of the compute step that follows it, so `xdrop@s4`
    /// perturbs the exchange feeding compute superstep 4.
    fn exchange_with_faults(&mut self, ph: &ExchangePhase) {
        let mut skip = vec![false; ph.copies.len()];
        let mut flips: Vec<(usize, usize, u8)> = Vec::new(); // (copy idx, fault idx, bit)
        let graph = self.graph;
        if let Some(fs) = self.faults.as_mut() {
            let ss = fs.superstep;
            for fi in 0..fs.resolved.len() {
                let f = fs.resolved[fi];
                if fs.fired[fi] || f.superstep != ss {
                    continue;
                }
                match f.kind {
                    FaultKind::ExchangeDrop { word } => {
                        let landing = copies_landing_on(graph, &ph.copies, f.tile);
                        if landing.is_empty() {
                            continue; // nothing lands here; try a later phase
                        }
                        let i = landing[word as usize % landing.len()];
                        skip[i] = true;
                        fs.fired[fi] = true;
                        let c = &ph.copies[i];
                        let detail = format!(
                            "dropped '{}'[{}..{}] -> '{}'[{}..{}] in '{}'",
                            self.graph.tensors[c.src].name,
                            c.src_start,
                            c.src_start + c.len,
                            self.graph.tensors[c.dst].name,
                            c.dst_start,
                            c.dst_start + c.len,
                            ph.name,
                        );
                        fs.log.push(FaultEvent {
                            superstep: ss,
                            tile: f.tile,
                            class: "xdrop".into(),
                            detail,
                        });
                        if let Some(t) = self.trace.as_mut() {
                            t.instant("fault:xdrop", &fs.log.last().unwrap().detail);
                        }
                    }
                    FaultKind::ExchangeBitFlip { word: _, bit } => {
                        let landing = copies_landing_on(graph, &ph.copies, f.tile);
                        let Some(&i) = landing.first() else { continue };
                        flips.push((i, fi, bit));
                    }
                    _ => {}
                }
            }
        }
        for (i, c) in ph.copies.iter().enumerate() {
            if !skip[i] {
                apply_copy(self.storage, c);
            }
        }
        for (i, fi, bit) in flips {
            let c = &ph.copies[i];
            let word = match self.faults.as_ref().unwrap().resolved[fi].kind {
                FaultKind::ExchangeBitFlip { word, .. } => word,
                _ => unreachable!(),
            };
            let elem = c.dst_start + word as usize % c.len;
            let (old, new) = flip_bit(self.storage, c.dst, elem, bit);
            let fs = self.faults.as_mut().unwrap();
            let ss = fs.superstep;
            let tile = fs.resolved[fi].tile;
            fs.fired[fi] = true;
            let detail = format!(
                "'{}'[{}] bit {}: {:e} -> {:e} (delivery in '{}')",
                self.graph.tensors[c.dst].name, elem, bit, old, new, ph.name,
            );
            fs.log.push(FaultEvent { superstep: ss, tile, class: "xflip".into(), detail });
            if let Some(t) = self.trace.as_mut() {
                t.instant("fault:xflip", &fs.log.last().unwrap().detail);
            }
        }
    }
}

/// Check that every compute set in `graph` is safe to execute with the
/// tile-parallel host executor.
///
/// Graph compilation already guarantees that *writes* are disjoint across
/// tiles (mutable operands must be resident on the vertex's tile, and a
/// tensor's tile chunks never overlap), so the only remaining hazard is a
/// vertex on one tile **reading** a region that a vertex on *another* tile
/// **writes** within the same compute set: sequential execution would give
/// an order-dependent answer and parallel execution a data race. Reads and
/// writes on the *same* tile are fine — the parallel executor preserves
/// each tile's vertex order.
///
/// Returns a diagnostic naming the compute set, tensor, tiles and element
/// ranges of the first aliasing pair found.
pub fn parallel_hazards(graph: &Graph) -> Result<(), String> {
    for cs in &graph.compute_sets {
        // Written regions per tensor: (start, end, writer tile), sorted.
        let mut writes: HashMap<TensorId, Vec<(usize, usize, TileId)>> = HashMap::new();
        for v in &cs.vertices {
            let codelet = &graph.codelets[v.codelet];
            for (op, decl) in v.operands.iter().zip(&codelet.params) {
                if decl.mutable {
                    writes.entry(op.tensor).or_default().push((
                        op.start,
                        op.start + op.len,
                        v.tile,
                    ));
                }
            }
        }
        for w in writes.values_mut() {
            w.sort_unstable();
        }
        for v in &cs.vertices {
            let codelet = &graph.codelets[v.codelet];
            for (op, decl) in v.operands.iter().zip(&codelet.params) {
                if decl.mutable {
                    continue;
                }
                let Some(ws) = writes.get(&op.tensor) else { continue };
                let (rs, re) = (op.start, op.start + op.len);
                for &(s, e, t) in ws {
                    if s >= re {
                        break;
                    }
                    if e > rs && t != v.tile {
                        return Err(format!(
                            "compute set '{}' is not parallel-safe: a vertex on tile {} \
                             reads '{}'[{}..{}] while a vertex on tile {} writes \
                             '{}'[{}..{}] in the same compute set",
                            cs.name,
                            v.tile,
                            graph.tensors[op.tensor].name,
                            rs,
                            re,
                            t,
                            graph.tensors[op.tensor].name,
                            s,
                            e,
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Raw per-tensor base pointers into the engine's storage.
///
/// Built once per compute set on the engine thread from the unique
/// `&mut [Storage]`, then shared read-only across the host workers of the
/// parallel executor (or used in place by the sequential one).
struct TensorBases {
    bases: Vec<RawBase>,
}

#[derive(Clone, Copy)]
enum RawBase {
    F32(*mut f32),
    I32(*mut i32),
    Bool(*mut bool),
    Dw(*mut TwoF32),
    F64(*mut SoftDouble),
}

// SAFETY: the pointers are only dereferenced through `params_from_bases`,
// which materialises `&mut` slices solely for *mutable* operands. Graph
// compilation guarantees mutable operands are resident on the vertex's
// tile, tensor tile chunks are disjoint, and operands within a vertex
// never alias; `parallel_hazards` additionally rejects any cross-tile
// read/write overlap within a compute set. The parallel executor assigns
// each tile's vertices to exactly one worker, so no two threads ever hold
// overlapping ranges with at least one `&mut`.
unsafe impl Send for TensorBases {}
unsafe impl Sync for TensorBases {}

impl TensorBases {
    fn new(storage: &mut [Storage]) -> TensorBases {
        let bases = storage
            .iter_mut()
            .map(|s| match s {
                Storage::F32(v) => RawBase::F32(v.as_mut_ptr()),
                Storage::I32(v) => RawBase::I32(v.as_mut_ptr()),
                Storage::Bool(v) => RawBase::Bool(v.as_mut_ptr()),
                Storage::Dw(v) => RawBase::Dw(v.as_mut_ptr()),
                Storage::F64(v) => RawBase::F64(v.as_mut_ptr()),
            })
            .collect();
        TensorBases { bases }
    }
}

/// Hand out one slice per operand: `&mut` for mutable parameters, shared
/// for immutable ones (so concurrent readers of a broadcast operand never
/// manufacture aliasing `&mut` references).
fn params_from_bases<'a>(
    bases: &'a TensorBases,
    codelet: &Codelet,
    operands: &[TensorSlice],
) -> Vec<ParamData<'a>> {
    operands
        .iter()
        .zip(&codelet.params)
        .map(|(op, decl)| {
            // SAFETY: slices validated in-bounds at compile time; see the
            // disjointness argument on `TensorBases`.
            unsafe {
                match bases.bases[op.tensor] {
                    RawBase::F32(p) => {
                        if decl.mutable {
                            ParamData::F32(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                        } else {
                            ParamData::F32Ro(std::slice::from_raw_parts(p.add(op.start), op.len))
                        }
                    }
                    RawBase::I32(p) => {
                        if decl.mutable {
                            ParamData::I32(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                        } else {
                            ParamData::I32Ro(std::slice::from_raw_parts(p.add(op.start), op.len))
                        }
                    }
                    RawBase::Bool(p) => {
                        if decl.mutable {
                            ParamData::Bool(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                        } else {
                            ParamData::BoolRo(std::slice::from_raw_parts(p.add(op.start), op.len))
                        }
                    }
                    RawBase::Dw(p) => {
                        if decl.mutable {
                            ParamData::Dw(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                        } else {
                            ParamData::DwRo(std::slice::from_raw_parts(p.add(op.start), op.len))
                        }
                    }
                    RawBase::F64(p) => {
                        if decl.mutable {
                            ParamData::F64(std::slice::from_raw_parts_mut(p.add(op.start), op.len))
                        } else {
                            ParamData::F64Ro(std::slice::from_raw_parts(p.add(op.start), op.len))
                        }
                    }
                }
            }
        })
        .collect()
}

/// One vertex's dynamic footprint: BSP time plus the *work* counters
/// (logical flops, SRAM traffic) the roofline analysis needs. Cycles are
/// time (worker-parallel constructs shrink them); flops/bytes are work
/// (parallelism leaves them unchanged).
struct VertexRun {
    cycles: u64,
    flops: u64,
    mem_bytes: u64,
}

/// Interpret one vertex and return its cycle count. Free of engine state
/// so both executors share it verbatim — a vertex's result depends only
/// on the graph, the storage it reads and its own operands.
fn run_vertex(graph: &Graph, bases: &TensorBases, v: &Vertex) -> VertexRun {
    let codelet = &graph.codelets[v.codelet];
    let cost = &graph.cost;
    let workers = graph.model.workers_per_tile as u64;
    let mut params = params_from_bases(bases, codelet, &v.operands);
    match &v.kind {
        VertexKind::Simple => {
            let mut interp = Interp::new(cost, &mut params, codelet.num_locals, workers);
            let cycles = interp.run(&codelet.body);
            VertexRun { cycles, flops: interp.flops, mem_bytes: interp.mem_bytes }
        }
        VertexKind::LevelSet { levels } => {
            let mut interp = Interp::new(cost, &mut params, codelet.num_locals, workers);
            let mut row_cost: HashMap<usize, u64> = HashMap::new();
            for level in levels {
                for &row in level {
                    interp.locals[0] = Value::I32(row as i32);
                    let before = interp.cycles;
                    interp.run(&codelet.body);
                    row_cost.insert(row, interp.cycles - before);
                }
            }
            let schedule =
                ipu_sim::threading::LevelSchedule::build(levels, workers as usize, |i| {
                    row_cost[&i]
                });
            let cycles = schedule.cycles(|i| row_cost[&i], cost);
            VertexRun { cycles, flops: interp.flops, mem_bytes: interp.mem_bytes }
        }
    }
}

/// Native-executor dispatch for one vertex: try the fused kernel matched
/// to its codelet, fall back to the interpreter when no kernel matched at
/// build time or the runtime operand layout declines (`run` returns
/// `None`, e.g. a storage dtype the monomorphised code was not built
/// for). The fallback is `run_vertex` itself, so a declined vertex is
/// bit- and cycle-identical to sequential execution by construction.
fn run_vertex_native(
    graph: &Graph,
    bases: &TensorBases,
    v: &Vertex,
    table: Option<&KernelTable>,
) -> VertexRun {
    if let Some(kernel) = table.and_then(|t| t.get(v.codelet)) {
        let codelet = &graph.codelets[v.codelet];
        let workers = graph.model.workers_per_tile as u64;
        let mut params = params_from_bases(bases, codelet, &v.operands);
        if let Some(run) = kernel.run(&v.kind, &mut params, &graph.cost, workers) {
            return VertexRun { cycles: run.cycles, flops: run.flops, mem_bytes: run.mem_bytes };
        }
    }
    run_vertex(graph, bases, v)
}

fn index_two(storage: &mut [Storage], a: usize, b: usize) -> (&mut Storage, &mut Storage) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = storage.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = storage.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

fn copy_all(src: &Storage, dst: &mut Storage) {
    match (src, dst) {
        (Storage::F32(s), Storage::F32(d)) => d.copy_from_slice(s),
        (Storage::I32(s), Storage::I32(d)) => d.copy_from_slice(s),
        (Storage::Bool(s), Storage::Bool(d)) => d.copy_from_slice(s),
        (Storage::Dw(s), Storage::Dw(d)) => d.copy_from_slice(s),
        (Storage::F64(s), Storage::F64(d)) => d.copy_from_slice(s),
        _ => unreachable!("copy dtypes validated at compile time"),
    }
}

/// Indices of the copies in `copies` whose destination element lands on
/// `tile` (by the destination tensor's tile map at the copy's start).
fn copies_landing_on(graph: &Graph, copies: &[ElemCopy], tile: TileId) -> Vec<usize> {
    copies
        .iter()
        .enumerate()
        .filter(|(_, c)| graph.tensors[c.dst].tile_of(c.dst_start) == Some(tile))
        .map(|(i, _)| i)
        .collect()
}

/// Flip one bit of element `i` of tensor `t` (fault injection). For f32 the
/// bit indexes the IEEE-754 word; for double-word pairs it hits the high
/// word; for emulated f64 the low 32 bits of the binary64 word; for i32 the
/// integer bits; for bool any bit toggles the value. Returns the element's
/// (old, new) value as f64 for the fault log.
fn flip_bit(storage: &mut [Storage], t: TensorId, i: usize, bit: u8) -> (f64, f64) {
    let old = storage[t].get_f64(i);
    match &mut storage[t] {
        Storage::F32(v) => v[i] = f32::from_bits(v[i].to_bits() ^ (1u32 << bit)),
        Storage::I32(v) => v[i] ^= 1i32 << bit,
        Storage::Bool(v) => v[i] = !v[i],
        Storage::Dw(v) => {
            let hi = f32::from_bits(v[i].hi().to_bits() ^ (1u32 << bit));
            v[i] = TwoFloat::from_parts(hi, v[i].lo());
        }
        Storage::F64(v) => v[i] = SoftDouble(f64::from_bits(v[i].0.to_bits() ^ (1u64 << bit))),
    }
    let new = storage[t].get_f64(i);
    (old, new)
}

fn apply_copy(storage: &mut [Storage], c: &ElemCopy) {
    if c.src == c.dst {
        match &mut storage[c.src] {
            Storage::F32(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::I32(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::Bool(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::Dw(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
            Storage::F64(v) => v.copy_within(c.src_start..c.src_start + c.len, c.dst_start),
        }
        return;
    }
    let (s, d) = index_two(storage, c.src, c.dst);
    match (s, d) {
        (Storage::F32(s), Storage::F32(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::I32(s), Storage::I32(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::Bool(s), Storage::Bool(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::Dw(s), Storage::Dw(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        (Storage::F64(s), Storage::F64(d)) => d[c.dst_start..c.dst_start + c.len]
            .copy_from_slice(&s[c.src_start..c.src_start + c.len]),
        _ => unreachable!("exchange dtypes validated at compile time"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::{BinOp, Codelet, Expr, ParamDecl, Stmt};
    use crate::compute::{ComputeSet, Vertex};
    use crate::program::ExchangeStep;
    use crate::tensor::TensorDef;
    use ipu_sim::clock::Phase;
    use ipu_sim::model::IpuModel;

    /// Build a two-tile graph that doubles a distributed tensor in place.
    fn double_in_place() -> (Executable, TensorId) {
        let mut g = Graph::new(IpuModel::tiny(2));
        let x = g.add_tensor(TensorDef::linear("x", DType::F32, 8, 2)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "double".into(),
                params: vec![ParamDecl { dtype: DType::F32, mutable: true }],
                num_locals: 1,
                body: vec![Stmt::ParFor {
                    local: 0,
                    start: Expr::c(Value::I32(0)),
                    end: Expr::ParamLen(0),
                    body: vec![Stmt::Store {
                        param: 0,
                        index: Expr::Local(0),
                        value: Expr::bin(
                            BinOp::Mul,
                            Expr::index(0, Expr::Local(0)),
                            Expr::c(Value::F32(2.0)),
                        ),
                    }],
                }],
            })
            .unwrap();
        let mut cs = ComputeSet::new("double");
        for tile in 0..2 {
            cs.add(Vertex {
                tile,
                codelet: c,
                operands: vec![TensorSlice { tensor: x, start: tile * 4, len: 4 }],
                kind: VertexKind::Simple,
            });
        }
        let cs = g.add_compute_set(cs).unwrap();
        (g.compile(Prog::Execute(cs)).unwrap(), x)
    }

    #[test]
    fn execute_runs_and_costs() {
        let (exec, x) = double_in_place();
        let mut e = Engine::new(exec);
        e.write_tensor(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        assert!(e.stats().device_cycles() > 0);
        assert!(e.stats().phase_cycles(Phase::Compute) > 0);
        assert!(e.stats().phase_cycles(Phase::Sync) > 0);
        // Balanced tiles: BSP max equals each tile's busy time.
        assert_eq!(e.stats().tile_busy(0), e.stats().tile_busy(1));
    }

    #[test]
    fn repeat_multiplies_work() {
        let (exec, x) = double_in_place();
        let prog = Prog::Repeat(3, Box::new(exec.program.clone()));
        let exec3 = exec.graph.clone().compile(prog).unwrap();
        let mut e = Engine::new(exec3);
        e.write_tensor(x, &[1.0; 8]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![8.0; 8]);
    }

    #[test]
    fn remote_scalar_operand_costs_exchange() {
        // A vertex on tile 1 reading a scalar on tile 0 must pay for the
        // broadcast.
        let mut g = Graph::new(IpuModel::tiny(2));
        let s = g.add_scalar("alpha", DType::F32).unwrap();
        let y = g.add_tensor(TensorDef::on_tile("y", DType::F32, 4, 1)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "fill".into(),
                params: vec![
                    ParamDecl { dtype: DType::F32, mutable: false },
                    ParamDecl { dtype: DType::F32, mutable: true },
                ],
                num_locals: 1,
                body: vec![Stmt::For {
                    local: 0,
                    start: Expr::c(Value::I32(0)),
                    end: Expr::ParamLen(1),
                    step: Expr::c(Value::I32(1)),
                    body: vec![Stmt::Store {
                        param: 1,
                        index: Expr::Local(0),
                        value: Expr::index(0, Expr::c(Value::I32(0))),
                    }],
                }],
            })
            .unwrap();
        let mut cs = ComputeSet::new("fill");
        cs.add(Vertex {
            tile: 1,
            codelet: c,
            operands: vec![TensorSlice::whole(s, 1), TensorSlice::whole(y, 4)],
            kind: VertexKind::Simple,
        });
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.write_scalar(s, 7.5);
        e.run();
        assert_eq!(e.read_tensor(y), vec![7.5; 4]);
        assert!(e.stats().phase_cycles(Phase::Exchange) > 0, "broadcast not costed");
    }

    #[test]
    fn exchange_moves_data_between_tiles() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let ex = ExchangeStep {
            name: "halo".into(),
            copies: vec![ElemCopy { src: a, src_start: 1, dst: b, dst_start: 0, len: 3 }],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0]);
        e.run();
        assert_eq!(e.read_tensor(b), vec![2.0, 3.0, 4.0, 0.0]);
        assert!(e.stats().phase_cycles(Phase::Exchange) > 0);
    }

    #[test]
    fn exchange_within_one_tensor() {
        // The §IV layout: separator values copied into halo slots of the
        // same distributed tensor.
        let mut g = Graph::new(IpuModel::tiny(2));
        let x = g
            .add_tensor(TensorDef {
                name: "x".into(),
                dtype: DType::F32,
                chunks: vec![
                    crate::tensor::TensorChunk { tile: 0, start: 0, owned: 3, total: 4 },
                    crate::tensor::TensorChunk { tile: 1, start: 4, owned: 3, total: 4 },
                ],
            })
            .unwrap();
        // Tile 0's last owned element -> tile 1's halo slot, and vice versa.
        let ex = ExchangeStep {
            name: "halo".into(),
            copies: vec![
                ElemCopy { src: x, src_start: 2, dst: x, dst_start: 7, len: 1 },
                ElemCopy { src: x, src_start: 4, dst: x, dst_start: 3, len: 1 },
            ],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.write_tensor(x, &[10.0, 11.0, 12.0, 0.0, 20.0, 21.0, 22.0, 0.0]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![10.0, 11.0, 12.0, 20.0, 20.0, 21.0, 22.0, 12.0]);
    }

    #[test]
    fn while_loop_terminates_on_predicate() {
        // Counter decrements from 3; predicate codelet sets pred = counter > 0.
        let mut g = Graph::new(IpuModel::tiny(1));
        let counter = g.add_scalar("counter", DType::I32).unwrap();
        let pred = g.add_scalar("pred", DType::Bool).unwrap();
        let dec = g
            .add_codelet(Codelet {
                name: "dec".into(),
                params: vec![ParamDecl { dtype: DType::I32, mutable: true }],
                num_locals: 0,
                body: vec![Stmt::Store {
                    param: 0,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::bin(
                        BinOp::Sub,
                        Expr::index(0, Expr::c(Value::I32(0))),
                        Expr::c(Value::I32(1)),
                    ),
                }],
            })
            .unwrap();
        let test = g
            .add_codelet(Codelet {
                name: "test".into(),
                params: vec![
                    ParamDecl { dtype: DType::I32, mutable: false },
                    ParamDecl { dtype: DType::Bool, mutable: true },
                ],
                num_locals: 0,
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::bin(
                        BinOp::Gt,
                        Expr::index(0, Expr::c(Value::I32(0))),
                        Expr::c(Value::I32(0)),
                    ),
                }],
            })
            .unwrap();
        let mut cs_dec = ComputeSet::new("dec");
        cs_dec.add(Vertex {
            tile: 0,
            codelet: dec,
            operands: vec![TensorSlice::whole(counter, 1)],
            kind: VertexKind::Simple,
        });
        let cs_dec = g.add_compute_set(cs_dec).unwrap();
        let mut cs_test = ComputeSet::new("test");
        cs_test.add(Vertex {
            tile: 0,
            codelet: test,
            operands: vec![TensorSlice::whole(counter, 1), TensorSlice::whole(pred, 1)],
            kind: VertexKind::Simple,
        });
        let cs_test = g.add_compute_set(cs_test).unwrap();
        let prog = Prog::While {
            cond: Box::new(Prog::Execute(cs_test)),
            pred,
            body: Box::new(Prog::Execute(cs_dec)),
        };
        let mut e = Engine::new(g.compile(prog).unwrap());
        e.write_scalar(counter, 3.0);
        e.run();
        assert_eq!(e.read_scalar(counter), 0.0);
    }

    #[test]
    fn labels_attribute_cycles() {
        let (exec, _) = double_in_place();
        let prog = Prog::Label("phase_a".into(), Box::new(exec.program.clone()));
        let mut e = Engine::new(exec.graph.clone().compile(prog).unwrap());
        e.run();
        assert_eq!(e.stats().label_cycles("phase_a"), e.stats().device_cycles());
    }

    #[test]
    fn callback_reads_and_writes() {
        let mut g = Graph::new(IpuModel::tiny(1));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 2, 0)).unwrap();
        let mut e = Engine::new(g.compile(Prog::Callback(9)).unwrap());
        e.register_callback(
            9,
            Box::new(move |view| {
                let v = view.read_f64(0);
                view.write_f64(0, &[v[0] + 1.0, v[1] * 2.0]);
            }),
        );
        e.write_tensor(x, &[10.0, 10.0]);
        e.run();
        assert_eq!(e.read_tensor(x), vec![11.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "no callback with that id was registered")]
    fn unregistered_callback_rejected_at_run_entry() {
        let g = Graph::new(IpuModel::tiny(1));
        let mut e = Engine::new(g.compile(Prog::Callback(7)).unwrap());
        e.run();
    }

    #[test]
    #[should_panic(expected = "no callback with that id was registered")]
    fn callback_in_unreachable_branch_still_requires_registration() {
        // Even a callback the traversal can never reach (Repeat(0)) must
        // be registered — the check covers the whole source tree, so a
        // missing registration fails loudly instead of surfacing only on
        // the execution path that happens to hit it.
        let g = Graph::new(IpuModel::tiny(1));
        let prog = Prog::Repeat(0, Box::new(Prog::Callback(3)));
        let mut e = Engine::new(g.compile(prog).unwrap());
        e.run();
    }

    #[test]
    fn legacy_interpreter_matches_compiled_plan() {
        let (exec, x) = double_in_place();
        let mut plan_e = Engine::new(exec.graph.clone().compile(exec.program.clone()).unwrap());
        let mut legacy_e = Engine::new(exec);
        legacy_e.set_legacy_interpreter(true);
        assert!(legacy_e.legacy_interpreter());
        let input = [1.0, -2.0, 3.5, 4.0, 0.25, -6.0, 7.0, 8.0];
        plan_e.write_tensor(x, &input);
        legacy_e.write_tensor(x, &input);
        plan_e.run();
        legacy_e.run();
        let bits = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<_>>();
        assert_eq!(bits(plan_e.read_tensor(x)), bits(legacy_e.read_tensor(x)));
        assert_eq!(plan_e.stats().device_cycles(), legacy_e.stats().device_cycles());
        assert_eq!(plan_e.stats().supersteps(), legacy_e.stats().supersteps());
        assert_eq!(plan_e.stats().sync_count(), legacy_e.stats().sync_count());
        assert_eq!(plan_e.stats().exchange_bytes(), legacy_e.stats().exchange_bytes());
    }

    #[test]
    fn copy_between_identically_mapped_tensors() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::linear("a", DType::F32, 6, 2)).unwrap();
        let b = g.add_tensor(TensorDef::linear("b", DType::F32, 6, 2)).unwrap();
        let mut e = Engine::new(g.compile(Prog::Copy { src: a, dst: b }).unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        e.run();
        assert_eq!(e.read_tensor(b), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(e.stats().phase_cycles(Phase::Compute) > 0);
    }

    #[test]
    fn nested_control_flow_repeat_in_while() {
        // while (n > 0) { repeat(2) { n -= 1; sum += 1 } } with n = 5:
        // the body overshoots to n = -1, sum = 6.
        let mut g = Graph::new(IpuModel::tiny(1));
        let n = g.add_scalar("n", DType::I32).unwrap();
        let sum = g.add_scalar("sum", DType::I32).unwrap();
        let pred = g.add_scalar("pred", DType::Bool).unwrap();
        let step = g
            .add_codelet(Codelet {
                name: "step".into(),
                params: vec![
                    ParamDecl { dtype: DType::I32, mutable: true },
                    ParamDecl { dtype: DType::I32, mutable: true },
                ],
                num_locals: 0,
                body: vec![
                    Stmt::Store {
                        param: 0,
                        index: Expr::c(Value::I32(0)),
                        value: Expr::bin(
                            BinOp::Sub,
                            Expr::index(0, Expr::c(Value::I32(0))),
                            Expr::c(Value::I32(1)),
                        ),
                    },
                    Stmt::Store {
                        param: 1,
                        index: Expr::c(Value::I32(0)),
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::index(1, Expr::c(Value::I32(0))),
                            Expr::c(Value::I32(1)),
                        ),
                    },
                ],
            })
            .unwrap();
        let test = g
            .add_codelet(Codelet {
                name: "test".into(),
                params: vec![
                    ParamDecl { dtype: DType::I32, mutable: false },
                    ParamDecl { dtype: DType::Bool, mutable: true },
                ],
                num_locals: 0,
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::bin(
                        BinOp::Gt,
                        Expr::index(0, Expr::c(Value::I32(0))),
                        Expr::c(Value::I32(0)),
                    ),
                }],
            })
            .unwrap();
        let mut cs_step = ComputeSet::new("step");
        cs_step.add(Vertex {
            tile: 0,
            codelet: step,
            operands: vec![TensorSlice::whole(n, 1), TensorSlice::whole(sum, 1)],
            kind: VertexKind::Simple,
        });
        let cs_step = g.add_compute_set(cs_step).unwrap();
        let mut cs_test = ComputeSet::new("test");
        cs_test.add(Vertex {
            tile: 0,
            codelet: test,
            operands: vec![TensorSlice::whole(n, 1), TensorSlice::whole(pred, 1)],
            kind: VertexKind::Simple,
        });
        let cs_test = g.add_compute_set(cs_test).unwrap();
        let prog = Prog::While {
            cond: Box::new(Prog::Execute(cs_test)),
            pred,
            body: Box::new(Prog::Repeat(2, Box::new(Prog::Execute(cs_step)))),
        };
        let mut e = Engine::new(g.compile(prog).unwrap());
        e.write_scalar(n, 5.0);
        e.run();
        assert_eq!(e.read_scalar(n), -1.0);
        assert_eq!(e.read_scalar(sum), 6.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_tensor_length_checked() {
        let mut g = Graph::new(IpuModel::tiny(1));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 4, 0)).unwrap();
        let mut e = Engine::new(g.compile(Prog::Nop).unwrap());
        e.write_tensor(x, &[1.0, 2.0]);
    }

    #[test]
    fn exchange_of_double_word_preserves_pairs() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::on_tile("a", DType::DoubleWord, 2, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::DoubleWord, 2, 1)).unwrap();
        let ex = ExchangeStep {
            name: "dw".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 2 }],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.write_tensor(a, &[1.0 + 1e-9, -2.5]);
        e.run();
        let got = e.read_tensor(b);
        assert!((got[0] - (1.0 + 1e-9)).abs() < 1e-15, "{}", got[0]);
        assert_eq!(got[1], -2.5);
    }

    #[test]
    fn stats_accumulate_across_runs_and_reset() {
        let (exec, _) = double_in_place();
        let mut e = Engine::new(exec);
        e.run();
        let one = e.stats().device_cycles();
        e.run();
        assert_eq!(e.stats().device_cycles(), 2 * one);
        e.reset_stats();
        assert_eq!(e.stats().device_cycles(), 0);
        e.run();
        assert_eq!(e.stats().device_cycles(), one);
    }

    #[test]
    fn elapsed_seconds_matches_clock() {
        let (exec, _) = double_in_place();
        let hz = exec.graph.model.clock_hz;
        let mut e = Engine::new(exec);
        e.run();
        let want = e.stats().device_cycles() as f64 / hz;
        assert!((e.elapsed_seconds() - want).abs() < 1e-15);
    }

    /// A 2-chip × 2-tile system: tiles {0,1} on chip 0, {2,3} on chip 1.
    fn two_chips() -> IpuModel {
        IpuModel { num_ipus: 2, tiles_per_ipu: 2, ..IpuModel::mk2() }
    }

    /// Codelet filling a mutable vector with a read-only scalar.
    fn fill_codelet(g: &mut Graph) -> usize {
        g.add_codelet(Codelet {
            name: "fill".into(),
            params: vec![
                ParamDecl { dtype: DType::F32, mutable: false },
                ParamDecl { dtype: DType::F32, mutable: true },
            ],
            num_locals: 1,
            body: vec![Stmt::For {
                local: 0,
                start: Expr::c(Value::I32(0)),
                end: Expr::ParamLen(1),
                step: Expr::c(Value::I32(1)),
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::Local(0),
                    value: Expr::index(0, Expr::c(Value::I32(0))),
                }],
            }],
        })
        .unwrap()
    }

    /// Codelet doubling its single mutable vector parameter.
    fn double_codelet(g: &mut Graph) -> usize {
        g.add_codelet(Codelet {
            name: "double".into(),
            params: vec![ParamDecl { dtype: DType::F32, mutable: true }],
            num_locals: 1,
            body: vec![Stmt::ParFor {
                local: 0,
                start: Expr::c(Value::I32(0)),
                end: Expr::ParamLen(0),
                body: vec![Stmt::Store {
                    param: 0,
                    index: Expr::Local(0),
                    value: Expr::bin(
                        BinOp::Mul,
                        Expr::index(0, Expr::Local(0)),
                        Expr::c(Value::F32(2.0)),
                    ),
                }],
            }],
        })
        .unwrap()
    }

    // ---- satellite regression: exchange() must charge the inter-IPU
    // sync when a copy crosses chips, exactly as execute_compute_set
    // does for a compute set spanning the same tiles. ------------------

    #[test]
    fn inter_chip_exchange_charges_inter_ipu_sync() {
        // Copy from tile 0 (chip 0) to tile 2 (chip 1).
        let mut g = Graph::new(two_chips());
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 2)).unwrap();
        let want = g.cost.sync_inter_ipu_cycles;
        let ex = ExchangeStep {
            name: "cross".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 4 }],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.run();
        assert_eq!(
            e.stats().phase_cycles(Phase::Sync),
            want,
            "an exchange whose copies cross chips must pay the inter-IPU sync"
        );

        // The same tiles participating in a compute set pay the same sync:
        // the two paths must agree.
        let mut g2 = Graph::new(two_chips());
        let x0 = g2.add_tensor(TensorDef::on_tile("x0", DType::F32, 4, 0)).unwrap();
        let x2 = g2.add_tensor(TensorDef::on_tile("x2", DType::F32, 4, 2)).unwrap();
        let c = double_codelet(&mut g2);
        let mut cs = ComputeSet::new("span");
        for (tile, t) in [(0usize, x0), (2usize, x2)] {
            cs.add(Vertex {
                tile,
                codelet: c,
                operands: vec![TensorSlice::whole(t, 4)],
                kind: VertexKind::Simple,
            });
        }
        let cs = g2.add_compute_set(cs).unwrap();
        let mut e2 = Engine::new(g2.compile(Prog::Execute(cs)).unwrap());
        e2.run();
        assert_eq!(
            e2.stats().phase_cycles(Phase::Sync),
            e.stats().phase_cycles(Phase::Sync),
            "exchange and compute-set sync costs disagree for the same tile span"
        );
    }

    #[test]
    fn on_chip_exchange_still_charges_on_chip_sync() {
        let mut g = Graph::new(two_chips());
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let want = g.cost.sync_on_chip_cycles;
        let ex = ExchangeStep {
            name: "local".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 4 }],
        };
        let mut e = Engine::new(g.compile(Prog::Exchange(ex)).unwrap());
        e.run();
        assert_eq!(e.stats().phase_cycles(Phase::Sync), want);
    }

    // ---- satellite regression: the compiler-inserted broadcast must
    // move each (source region, destination tile) pair exactly once,
    // however many vertices on that tile read it. ----------------------

    /// Exchange cost/volume of a compute set with `n` vertices on tile 1
    /// all reading the same remote scalar on tile 0.
    fn bcast_fanin(n: usize) -> (u64, u64) {
        let mut g = Graph::new(IpuModel::tiny(2));
        let s = g.add_scalar("alpha", DType::F32).unwrap();
        let c = fill_codelet(&mut g);
        let mut cs = ComputeSet::new("fanin");
        for i in 0..n {
            let y = g.add_tensor(TensorDef::on_tile(&format!("y{i}"), DType::F32, 4, 1)).unwrap();
            cs.add(Vertex {
                tile: 1,
                codelet: c,
                operands: vec![TensorSlice::whole(s, 1), TensorSlice::whole(y, 4)],
                kind: VertexKind::Simple,
            });
        }
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.run();
        (e.stats().phase_cycles(Phase::Exchange), e.stats().exchange_bytes())
    }

    #[test]
    fn broadcast_to_same_tile_is_deduplicated() {
        let (one_cycles, one_bytes) = bcast_fanin(1);
        let (three_cycles, three_bytes) = bcast_fanin(3);
        assert!(one_bytes > 0);
        assert_eq!(
            three_bytes, one_bytes,
            "three vertices on one tile reading the same remote scalar must cost one copy"
        );
        assert_eq!(three_cycles, one_cycles, "deduplicated broadcast must cost one transfer");
    }

    #[test]
    fn broadcast_to_distinct_tiles_still_fans_out() {
        // The dedupe key includes the destination tile: readers on
        // *different* tiles each receive their own copy.
        let mut g = Graph::new(IpuModel::tiny(3));
        let s = g.add_scalar("alpha", DType::F32).unwrap();
        let c = fill_codelet(&mut g);
        let mut cs = ComputeSet::new("fanout");
        for tile in 1..3 {
            let y =
                g.add_tensor(TensorDef::on_tile(&format!("y{tile}"), DType::F32, 4, tile)).unwrap();
            cs.add(Vertex {
                tile,
                codelet: c,
                operands: vec![TensorSlice::whole(s, 1), TensorSlice::whole(y, 4)],
                kind: VertexKind::Simple,
            });
        }
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.run();
        let (_, one_bytes) = bcast_fanin(1);
        assert_eq!(e.stats().exchange_bytes(), 2 * one_bytes, "one copy per destination tile");
    }

    // ---- satellite regression: a broadcast whose *source* lives on
    // another chip forces the inter-IPU sync even when the compute
    // set's vertices all sit on one chip. ------------------------------

    #[test]
    fn remote_chip_broadcast_source_forces_inter_ipu_sync() {
        let mut g = Graph::new(two_chips());
        let s = g.add_scalar("alpha", DType::F32).unwrap(); // tile 0, chip 0
        let y = g.add_tensor(TensorDef::on_tile("y", DType::F32, 4, 2)).unwrap(); // chip 1
        let want = g.cost.sync_inter_ipu_cycles;
        let c = fill_codelet(&mut g);
        let mut cs = ComputeSet::new("fill");
        cs.add(Vertex {
            tile: 2,
            codelet: c,
            operands: vec![TensorSlice::whole(s, 1), TensorSlice::whole(y, 4)],
            kind: VertexKind::Simple,
        });
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.write_scalar(s, 3.0);
        e.run();
        assert_eq!(e.read_tensor(y), vec![3.0; 4]);
        assert_eq!(
            e.stats().phase_cycles(Phase::Sync),
            want,
            "a broadcast sourced from another chip must pay the inter-IPU sync"
        );
    }

    // ---- the parallel host executor ----------------------------------

    fn fingerprint(e: &Engine) -> (u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
        (
            e.stats().device_cycles(),
            e.stats().exchange_bytes(),
            e.stats().supersteps(),
            e.stats().sync_count(),
            e.stats().labels_by_phase_sorted(),
        )
    }

    #[test]
    fn parallel_executor_matches_sequential_bitwise() {
        for threads in [0usize, 2, 3, 16] {
            let (exec, x) = double_in_place();
            let mut seq = Engine::with_options(
                exec.graph.clone().compile(exec.program.clone()).unwrap(),
                EngineOptions::default(),
            )
            .unwrap();
            let mut par = Engine::with_options(
                exec,
                EngineOptions { executor: ExecutorKind::Parallel, threads, ..Default::default() },
            )
            .unwrap();
            let input = [1.5, -2.0, 3.25, 4.0, 5.5, -6.0, 7.75, 8.0];
            seq.write_tensor(x, &input);
            par.write_tensor(x, &input);
            seq.run();
            par.run();
            let sx: Vec<u64> = seq.read_tensor(x).iter().map(|v| v.to_bits()).collect();
            let px: Vec<u64> = par.read_tensor(x).iter().map(|v| v.to_bits()).collect();
            assert_eq!(sx, px, "threads={threads}: tensor bits differ");
            assert_eq!(fingerprint(&seq), fingerprint(&par), "threads={threads}: stats differ");
            for t in 0..2 {
                assert_eq!(seq.stats().tile_busy(t), par.stats().tile_busy(t));
            }
        }
    }

    #[test]
    fn parallel_executor_rejects_cross_tile_read_write_hazard() {
        // Tile 0 writes x[0..4] while tile 1 reads it in the same
        // compute set: sequential execution is order-dependent, parallel
        // execution a race — the engine must refuse with a clear error.
        let mut g = Graph::new(IpuModel::tiny(2));
        let x = g.add_tensor(TensorDef::linear("x", DType::F32, 8, 2)).unwrap();
        let y = g.add_tensor(TensorDef::on_tile("y", DType::F32, 4, 1)).unwrap();
        let dbl = double_codelet(&mut g);
        let fill = fill_codelet(&mut g);
        let mut cs = ComputeSet::new("hazard");
        cs.add(Vertex {
            tile: 0,
            codelet: dbl,
            operands: vec![TensorSlice { tensor: x, start: 0, len: 4 }],
            kind: VertexKind::Simple,
        });
        cs.add(Vertex {
            tile: 1,
            codelet: fill,
            operands: vec![TensorSlice { tensor: x, start: 0, len: 1 }, TensorSlice::whole(y, 4)],
            kind: VertexKind::Simple,
        });
        let cs = g.add_compute_set(cs).unwrap();
        let exec = g.compile(Prog::Execute(cs)).unwrap();
        assert!(parallel_hazards(&exec.graph).is_err());
        let err = Engine::with_options(
            exec.graph.clone().compile(exec.program.clone()).unwrap(),
            EngineOptions { executor: ExecutorKind::Parallel, threads: 0, ..Default::default() },
        )
        .err()
        .expect("hazardous program must be rejected");
        assert!(err.contains("not parallel-safe"), "{err}");
        assert!(err.contains("reads") && err.contains("writes"), "{err}");

        // The sequential engine still accepts it, and switching later
        // reports the same diagnostic without changing the executor.
        let mut e = Engine::with_options(exec, EngineOptions::default()).unwrap();
        assert!(e.set_executor(ExecutorKind::Parallel).is_err());
        assert_eq!(e.executor(), ExecutorKind::Sequential);
    }

    #[test]
    fn same_tile_read_after_write_is_parallel_safe() {
        // A read overlapping a write from a vertex on the *same* tile is
        // ordered by the per-tile worker, exactly as in program order.
        let mut g = Graph::new(IpuModel::tiny(2));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 4, 0)).unwrap();
        let y = g.add_tensor(TensorDef::on_tile("y", DType::F32, 4, 0)).unwrap();
        let dbl = double_codelet(&mut g);
        let fill = fill_codelet(&mut g);
        let mut cs = ComputeSet::new("chain");
        cs.add(Vertex {
            tile: 0,
            codelet: dbl,
            operands: vec![TensorSlice::whole(x, 4)],
            kind: VertexKind::Simple,
        });
        cs.add(Vertex {
            tile: 0,
            codelet: fill,
            operands: vec![TensorSlice { tensor: x, start: 0, len: 1 }, TensorSlice::whole(y, 4)],
            kind: VertexKind::Simple,
        });
        let cs = g.add_compute_set(cs).unwrap();
        let exec = g.compile(Prog::Execute(cs)).unwrap();
        assert!(parallel_hazards(&exec.graph).is_ok());
        let mut e = Engine::with_options(
            exec,
            EngineOptions { executor: ExecutorKind::Parallel, threads: 4, ..Default::default() },
        )
        .unwrap();
        e.write_tensor(x, &[2.0, 0.0, 0.0, 0.0]);
        e.run();
        assert_eq!(e.read_tensor(y), vec![4.0; 4], "same-tile RAW order must be preserved");
    }

    #[test]
    fn graphene_par_values_parse() {
        use ExecutorKind::*;
        for (v, kind, threads) in [
            ("0", Sequential, 0),
            ("false", Sequential, 0),
            ("off", Sequential, 0),
            ("", Sequential, 0),
            ("1", Parallel, 0),
            ("true", Parallel, 0),
            ("ON", Parallel, 0),
            ("2", Parallel, 2),
            ("8", Parallel, 8),
            ("01", Parallel, 0),
        ] {
            let o = EngineOptions::parse_par(v);
            assert_eq!((o.executor, o.threads), (kind, threads), "GRAPHENE_PAR={v}");
        }
    }

    #[test]
    #[should_panic(expected = "GRAPHENE_PAR: unrecognised value `garbage`")]
    fn graphene_par_garbage_fails_loudly() {
        EngineOptions::parse_par("garbage");
    }

    #[test]
    #[should_panic(expected = "GRAPHENE_PAR: unrecognised value `-3`")]
    fn graphene_par_negative_fails_loudly() {
        EngineOptions::parse_par("-3");
    }

    #[test]
    fn env_bool_knobs_parse() {
        for (v, want) in [
            ("", None),
            ("  ", None),
            ("1", Some(true)),
            ("TRUE", Some(true)),
            ("on", Some(true)),
            ("yes", Some(true)),
            ("0", Some(false)),
            ("false", Some(false)),
            ("Off", Some(false)),
            ("no", Some(false)),
        ] {
            assert_eq!(parse_env_bool("GRAPHENE_NATIVE", v), want, "value `{v}`");
        }
    }

    #[test]
    #[should_panic(expected = "GRAPHENE_NATIVE: unrecognised value `maybe`")]
    fn graphene_native_garbage_fails_loudly() {
        parse_env_bool("GRAPHENE_NATIVE", "maybe");
    }

    #[test]
    #[should_panic(expected = "GRAPHENE_LEGACY_INTERP: unrecognised value `2`")]
    fn graphene_legacy_interp_garbage_fails_loudly() {
        // `2` is a worker count for GRAPHENE_PAR but meaningless for a
        // pure on/off knob — it must not silently read as "off".
        parse_env_bool("GRAPHENE_LEGACY_INTERP", "2");
    }

    // ---- GRAPHENE_BACKEND consolidation (resolve_env) ----

    fn renv(
        backend: Option<&str>,
        par: Option<&str>,
        native: Option<&str>,
        legacy: Option<&str>,
    ) -> Result<EngineOptions, String> {
        EngineOptions::resolve_env(backend, par, native, legacy)
    }

    #[test]
    fn backend_unset_reproduces_historical_alias_composition() {
        use ExecutorKind::*;
        // Every alias combination must compose exactly as the old
        // from_env did: PAR picks executor+threads, LEGACY the
        // interpreter, NATIVE=1 overrides the executor, NATIVE=0 only
        // disables fusion.
        for backend in [None, Some(""), Some("ipu-sim")] {
            let cases: &[(
                (Option<&str>, Option<&str>, Option<&str>),
                (ExecutorKind, usize, bool, bool),
            )] = &[
                ((None, None, None), (Sequential, 0, false, true)),
                ((Some("0"), None, None), (Sequential, 0, false, true)),
                ((Some("1"), None, None), (Parallel, 0, false, true)),
                ((Some("8"), None, None), (Parallel, 8, false, true)),
                ((Some("8"), Some("1"), None), (Native, 8, false, true)),
                ((Some("8"), Some("0"), None), (Parallel, 8, false, false)),
                ((None, Some("1"), Some("1")), (Native, 0, true, true)),
                ((None, Some("0"), Some("1")), (Sequential, 0, true, false)),
                ((None, None, Some("1")), (Sequential, 0, true, true)),
                ((None, Some(""), Some("")), (Sequential, 0, false, true)),
            ];
            for ((par, native, legacy), (exec, threads, leg, fusion)) in cases {
                let o = renv(backend, *par, *native, *legacy).unwrap();
                assert_eq!(
                    (o.executor, o.threads, o.legacy_interpreter, o.native_fusion),
                    (*exec, *threads, *leg, *fusion),
                    "backend={backend:?} PAR={par:?} NATIVE={native:?} LEGACY={legacy:?}"
                );
            }
        }
    }

    #[test]
    fn pinned_backend_variants_select_their_executor() {
        use ExecutorKind::*;
        let o = renv(Some("ipu-sim:seq"), None, None, None).unwrap();
        assert_eq!((o.executor, o.legacy_interpreter), (Sequential, false));
        let o = renv(Some("ipu-sim:par"), None, None, None).unwrap();
        assert_eq!((o.executor, o.threads), (Parallel, 0));
        let o = renv(Some("ipu-sim:native"), None, None, None).unwrap();
        assert_eq!((o.executor, o.native_fusion), (Native, true));
        let o = renv(Some("ipu-sim:legacy"), None, None, None).unwrap();
        assert_eq!((o.executor, o.legacy_interpreter), (Sequential, true));
        // Case/whitespace-insensitive, like every other knob.
        let o = renv(Some("  IPU-Sim:Par "), None, None, None).unwrap();
        assert_eq!(o.executor, Parallel);
    }

    #[test]
    fn agreeing_aliases_refine_a_pinned_backend() {
        use ExecutorKind::*;
        // GRAPHENE_PAR=8 with ipu-sim:par still sets the thread cap.
        let o = renv(Some("ipu-sim:par"), Some("8"), None, None).unwrap();
        assert_eq!((o.executor, o.threads), (Parallel, 8));
        // NATIVE=1 with ipu-sim:native is redundant but consistent.
        let o = renv(Some("ipu-sim:native"), None, Some("1"), None).unwrap();
        assert_eq!(o.executor, Native);
        // NATIVE=0 is a fusion toggle, not an executor choice — inert as
        // a conflict, still honoured as the differential-testing leg.
        let o = renv(Some("ipu-sim:native"), None, Some("0"), None).unwrap();
        assert_eq!((o.executor, o.native_fusion), (Native, false));
        // Disabling values never conflict.
        let o = renv(Some("ipu-sim:seq"), Some("0"), Some("0"), Some("no")).unwrap();
        assert_eq!((o.executor, o.legacy_interpreter, o.native_fusion), (Sequential, false, false));
    }

    #[test]
    fn disagreeing_enabling_aliases_conflict_loudly() {
        for (backend, par, native, legacy, var) in [
            ("ipu-sim:seq", Some("1"), None, None, "GRAPHENE_PAR"),
            ("ipu-sim:seq", None, Some("1"), None, "GRAPHENE_NATIVE"),
            ("ipu-sim:seq", None, None, Some("1"), "GRAPHENE_LEGACY_INTERP"),
            ("ipu-sim:par", None, Some("1"), None, "GRAPHENE_NATIVE"),
            ("ipu-sim:native", Some("4"), None, None, "GRAPHENE_PAR"),
            ("ipu-sim:legacy", Some("true"), None, None, "GRAPHENE_PAR"),
            ("cpu", Some("1"), None, None, "GRAPHENE_PAR"),
            ("cpu:par", None, Some("1"), None, "GRAPHENE_NATIVE"),
            ("gpu-model", None, None, Some("1"), "GRAPHENE_LEGACY_INTERP"),
        ] {
            let e = renv(Some(backend), par, native, legacy).unwrap_err();
            assert!(e.contains("conflicts with deprecated alias"), "{backend}: {e}");
            assert!(e.contains(var), "{backend}: {e}");
            assert!(e.contains(backend), "{backend}: {e}");
        }
    }

    #[test]
    fn non_engine_backends_resolve_to_defaults() {
        // cpu / gpu-model solves never reach this engine; from_env must
        // still succeed so unrelated engine construction keeps working.
        for name in ["cpu", "cpu:par", "gpu-model"] {
            assert_eq!(renv(Some(name), None, None, None).unwrap(), EngineOptions::default());
            // Disabling aliases stay inert here too.
            assert_eq!(
                renv(Some(name), Some("0"), None, Some("off")).unwrap(),
                EngineOptions::default()
            );
        }
    }

    #[test]
    fn unknown_backend_names_error_with_the_known_list() {
        for bad in ["tpu", "ipu", "ipu-sim:vector", "cpu:simd"] {
            let e = renv(Some(bad), None, None, None).unwrap_err();
            assert!(e.contains("unknown backend"), "{e}");
            assert!(e.contains("ipu-sim:native") && e.contains("gpu-model"), "{e}");
        }
    }

    #[test]
    fn alias_typos_error_even_when_backend_is_set() {
        assert!(renv(Some("cpu"), Some("garbage"), None, None)
            .unwrap_err()
            .contains("GRAPHENE_PAR"));
        assert!(renv(Some("ipu-sim:seq"), None, Some("maybe"), None)
            .unwrap_err()
            .contains("GRAPHENE_NATIVE"));
        assert!(renv(Some("ipu-sim"), None, None, Some("2"))
            .unwrap_err()
            .contains("GRAPHENE_LEGACY_INTERP"));
    }

    #[test]
    fn level_set_vertex_runs_rows_in_level_order() {
        // x[row] = (row == 0) ? 1 : x[row-1] + 1 — a chain; levels must
        // serialise it correctly.
        let mut g = Graph::new(IpuModel::tiny(1));
        let x = g.add_tensor(TensorDef::on_tile("x", DType::F32, 5, 0)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "chain".into(),
                params: vec![ParamDecl { dtype: DType::F32, mutable: true }],
                num_locals: 1,
                body: vec![Stmt::If {
                    cond: Expr::bin(BinOp::Eq, Expr::Local(0), Expr::c(Value::I32(0))),
                    then: vec![Stmt::Store {
                        param: 0,
                        index: Expr::Local(0),
                        value: Expr::c(Value::F32(1.0)),
                    }],
                    otherwise: vec![Stmt::Store {
                        param: 0,
                        index: Expr::Local(0),
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::index(
                                0,
                                Expr::bin(BinOp::Sub, Expr::Local(0), Expr::c(Value::I32(1))),
                            ),
                            Expr::c(Value::F32(1.0)),
                        ),
                    }],
                }],
            })
            .unwrap();
        let mut cs = ComputeSet::new("chain");
        cs.add(Vertex {
            tile: 0,
            codelet: c,
            operands: vec![TensorSlice::whole(x, 5)],
            kind: VertexKind::LevelSet { levels: (0..5).map(|i| vec![i]).collect() },
        });
        let cs = g.add_compute_set(cs).unwrap();
        let mut e = Engine::new(g.compile(Prog::Execute(cs)).unwrap());
        e.run();
        assert_eq!(e.read_tensor(x), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use ipu_sim::fault::FaultPlan;

    fn run_faulted(exec: &Executable, x: TensorId, spec: &str, par: bool) -> (Vec<f64>, u64) {
        let options = if par {
            EngineOptions { executor: ExecutorKind::Parallel, threads: 2, ..Default::default() }
        } else {
            EngineOptions::default()
        };
        let mut e = Engine::with_options(exec.clone(), options).unwrap();
        e.set_faults(FaultPlan::parse(spec).unwrap());
        e.write_tensor(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        e.run();
        (e.read_tensor(x), e.stats().device_cycles())
    }

    #[test]
    fn sram_flip_perturbs_one_word_identically_on_both_executors() {
        let (exec, x) = double_in_place();
        // Flip bit 30 of float word 1 on tile 1 (tile 1 owns x[4..8], so
        // word 1 is x[5]) before superstep 0.
        let spec = "flip@s0.t1:w1.b30";
        let (seq, seq_cycles) = run_faulted(&exec, x, spec, false);
        let (par, par_cycles) = run_faulted(&exec, x, spec, true);
        assert_eq!(seq, par, "fault replay must be executor-independent");
        assert_eq!(seq_cycles, par_cycles);
        // Only x[5] differs from the clean answer.
        let clean = vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
        for (i, (a, b)) in seq.iter().zip(&clean).enumerate() {
            if i == 5 {
                assert_ne!(a, b, "faulted word unchanged");
            } else {
                assert_eq!(a, b, "fault leaked to word {i}");
            }
        }
        // The faulted value is the bit-flipped input, doubled.
        let flipped = f32::from_bits(6.0f32.to_bits() ^ (1 << 30)) as f64;
        assert_eq!(seq[5], flipped * 2.0);
    }

    #[test]
    fn fault_fires_once_and_is_logged() {
        let (exec, x) = double_in_place();
        let mut e = Engine::new(exec);
        e.set_faults(FaultPlan::parse("flip@s0.t0:w0.b1").unwrap());
        e.write_tensor(x, &[1.0; 8]);
        e.run();
        assert_eq!(e.fault_log().len(), 1);
        assert_eq!(e.fault_log()[0].class, "flip");
        let after_first = e.read_tensor(x);
        // Second run: the transient fault has already fired, so execution
        // is clean (doubling whatever is in storage, with no new flip).
        e.run();
        assert_eq!(e.fault_log().len(), 1, "one-shot fault re-fired");
        let expected: Vec<f64> = after_first.iter().map(|v| v * 2.0).collect();
        assert_eq!(e.read_tensor(x), expected);
    }

    #[test]
    fn stall_fault_grows_makespan_only() {
        let (exec, x) = double_in_place();
        let clean = {
            let mut e = Engine::new(exec.clone());
            e.write_tensor(x, &[1.0; 8]);
            e.run();
            (e.read_tensor(x), e.stats().device_cycles())
        };
        let mut e = Engine::new(exec);
        e.set_faults(FaultPlan::parse("stall@s0.t1:c5000").unwrap());
        e.write_tensor(x, &[1.0; 8]);
        e.run();
        assert_eq!(e.read_tensor(x), clean.0, "a stall must not corrupt data");
        assert_eq!(
            e.stats().device_cycles(),
            clean.1 + 5000,
            "the whole chip waits for the stalled tile"
        );
        assert_eq!(e.fault_log().len(), 1);
        assert_eq!(e.fault_log()[0].class, "stall");
    }

    #[test]
    fn exchange_drop_leaves_stale_destination() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let ex = ExchangeStep {
            name: "halo".into(),
            copies: vec![ElemCopy { src: a, src_start: 1, dst: b, dst_start: 0, len: 3 }],
        };
        let exec = g.compile(Prog::Exchange(ex)).unwrap();
        // The copy lands on tile 1; drop it -> b keeps its zeros. The
        // exchange is still *charged* (the fabric sent the data, the
        // receiver lost it), so cycles are unchanged.
        let clean_cycles = {
            let mut e = Engine::new(exec.clone());
            e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0]);
            e.run();
            assert_eq!(e.read_tensor(b), vec![2.0, 3.0, 4.0, 0.0]);
            e.stats().device_cycles()
        };
        let mut e = Engine::new(exec.clone());
        e.set_faults(FaultPlan::parse("xdrop@s0.t1").unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0]);
        e.run();
        assert_eq!(e.read_tensor(b), vec![0.0; 4], "dropped copy must leave stale data");
        assert_eq!(e.stats().device_cycles(), clean_cycles);
        assert_eq!(e.fault_log().len(), 1);
        assert_eq!(e.fault_log()[0].class, "xdrop");
        // A drop aimed at tile 0 has nothing to drop there: it never
        // fires, and the copy goes through.
        let mut e = Engine::new(exec);
        e.set_faults(FaultPlan::parse("xdrop@s0.t0").unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0]);
        e.run();
        assert_eq!(e.read_tensor(b), vec![2.0, 3.0, 4.0, 0.0]);
        assert!(e.fault_log().is_empty());
    }

    #[test]
    fn exchange_flip_corrupts_delivery() {
        let mut g = Graph::new(IpuModel::tiny(2));
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let ex = ExchangeStep {
            name: "halo".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 4 }],
        };
        let exec = g.compile(Prog::Exchange(ex)).unwrap();
        let mut e = Engine::new(exec);
        e.set_faults(FaultPlan::parse("xflip@s0.t1:w2.b31").unwrap());
        e.write_tensor(a, &[1.0, 2.0, 3.0, 4.0]);
        e.run();
        // Word 2 of the delivered block arrives sign-flipped; the source
        // is untouched.
        assert_eq!(e.read_tensor(b), vec![1.0, 2.0, -3.0, 4.0]);
        assert_eq!(e.read_tensor(a), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fault_log().len(), 1);
        assert_eq!(e.fault_log()[0].class, "xflip");
    }

    #[test]
    fn faulted_run_is_bit_deterministic() {
        let (exec, x) = double_in_place();
        let spec = "seed=7;n=4;smax=2;wmax=8";
        let (r1, c1) = run_faulted(&exec, x, spec, false);
        let (r2, c2) = run_faulted(&exec, x, spec, false);
        let (r3, c3) = run_faulted(&exec, x, spec, true);
        assert_eq!(r1, r2);
        assert_eq!(c1, c2);
        assert_eq!(r1, r3);
        assert_eq!(c1, c3);
    }

    #[test]
    fn fault_state_transplants_across_engines() {
        let (exec, x) = double_in_place();
        let mut e1 = Engine::new(exec.clone());
        e1.set_faults(FaultPlan::parse("flip@s0.t0:w0.b1").unwrap());
        e1.write_tensor(x, &[1.0; 8]);
        e1.run();
        let st = e1.take_fault_state().unwrap();
        assert!(st.all_fired());
        // A rebuilt engine carrying the state runs clean.
        let mut e2 = Engine::new(exec);
        e2.set_fault_state(Some(st));
        e2.write_tensor(x, &[1.0; 8]);
        e2.run();
        assert_eq!(e2.read_tensor(x), vec![2.0; 8]);
        assert_eq!(e2.fault_log().len(), 1, "log travels with the state");
    }
}
