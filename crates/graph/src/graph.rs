//! The graph builder and compiler.
//!
//! [`Graph`] accumulates tensors (with SRAM accounting against the machine
//! model), codelets and compute sets; [`Graph::compile`] validates
//! everything against the machine — parameter arity, slice bounds, mutable
//! aliasing, predicate shapes, exchange type-correctness — and freezes an
//! [`Executable`] for the engine. This is the stand-in for Poplar's graph
//! compiler; its cycle-precise communication schedules are reproduced by
//! the cost model at execution time.

use crate::codelet::{Codelet, CodeletId};
use crate::compute::{ComputeSet, ComputeSetId, VertexKind};
use crate::passes::{self, CompileOptions};
use crate::plan::ExecPlan;
use crate::program::{ExchangeStep, Prog};
use crate::tensor::{TensorDef, TensorId};
use ipu_sim::cost::{CostModel, DType};
use ipu_sim::memory::TileMemory;
use ipu_sim::model::IpuModel;
use profile::CompileReport;

/// Errors raised while building or compiling a graph.
#[derive(Debug)]
pub enum CompileError {
    Tensor(String),
    Codelet(String),
    Vertex(String),
    Program(String),
    OutOfMemory(ipu_sim::memory::OutOfTileMemory),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Tensor(m) => write!(f, "tensor error: {m}"),
            CompileError::Codelet(m) => write!(f, "codelet error: {m}"),
            CompileError::Vertex(m) => write!(f, "vertex error: {m}"),
            CompileError::Program(m) => write!(f, "program error: {m}"),
            CompileError::OutOfMemory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The dataflow graph under construction.
#[derive(Clone, Debug)]
pub struct Graph {
    pub model: IpuModel,
    pub cost: CostModel,
    pub tensors: Vec<TensorDef>,
    pub codelets: Vec<Codelet>,
    pub compute_sets: Vec<ComputeSet>,
    memory: TileMemory,
}

impl Graph {
    pub fn new(model: IpuModel) -> Self {
        let memory = TileMemory::new(&model);
        Graph {
            model,
            cost: CostModel::default(),
            tensors: Vec::new(),
            codelets: Vec::new(),
            compute_sets: Vec::new(),
            memory,
        }
    }

    /// Add a tensor, reserving its SRAM on every tile it maps to.
    pub fn add_tensor(&mut self, def: TensorDef) -> Result<TensorId, CompileError> {
        def.validate().map_err(CompileError::Tensor)?;
        for c in &def.chunks {
            if c.tile >= self.model.num_tiles() {
                return Err(CompileError::Tensor(format!(
                    "tensor '{}' mapped to tile {} outside the {}-tile machine",
                    def.name,
                    c.tile,
                    self.model.num_tiles()
                )));
            }
            self.memory
                .alloc(c.tile, c.total * def.dtype.size_bytes())
                .map_err(CompileError::OutOfMemory)?;
        }
        self.tensors.push(def);
        Ok(self.tensors.len() - 1)
    }

    /// Shorthand: a length-1 scalar tensor on tile 0.
    pub fn add_scalar(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
    ) -> Result<TensorId, CompileError> {
        self.add_tensor(TensorDef::on_tile(name, dtype, 1, 0))
    }

    pub fn add_codelet(&mut self, c: Codelet) -> Result<CodeletId, CompileError> {
        c.validate().map_err(CompileError::Codelet)?;
        self.codelets.push(c);
        Ok(self.codelets.len() - 1)
    }

    pub fn add_compute_set(&mut self, cs: ComputeSet) -> Result<ComputeSetId, CompileError> {
        self.validate_compute_set(&cs)?;
        self.compute_sets.push(cs);
        Ok(self.compute_sets.len() - 1)
    }

    /// SRAM ledger (peak utilisation diagnostics).
    pub fn memory(&self) -> &TileMemory {
        &self.memory
    }

    fn validate_compute_set(&self, cs: &ComputeSet) -> Result<(), CompileError> {
        for (vi, v) in cs.vertices.iter().enumerate() {
            let codelet = self.codelets.get(v.codelet).ok_or_else(|| {
                CompileError::Vertex(format!("{}[{vi}]: codelet {} missing", cs.name, v.codelet))
            })?;
            if v.tile >= self.model.num_tiles() {
                return Err(CompileError::Vertex(format!(
                    "{}[{vi}]: tile {} out of range",
                    cs.name, v.tile
                )));
            }
            if v.operands.len() != codelet.params.len() {
                return Err(CompileError::Vertex(format!(
                    "{}[{vi}]: {} operands for {} params of '{}'",
                    cs.name,
                    v.operands.len(),
                    codelet.params.len(),
                    codelet.name
                )));
            }
            for (oi, op) in v.operands.iter().enumerate() {
                let t = self.tensors.get(op.tensor).ok_or_else(|| {
                    CompileError::Vertex(format!(
                        "{}[{vi}] operand {oi}: tensor {} missing",
                        cs.name, op.tensor
                    ))
                })?;
                if op.start + op.len > t.len() {
                    return Err(CompileError::Vertex(format!(
                        "{}[{vi}] operand {oi}: slice {}..{} exceeds tensor '{}' of len {}",
                        cs.name,
                        op.start,
                        op.start + op.len,
                        t.name,
                        t.len()
                    )));
                }
                // Mutable operands must be resident on the vertex's tile —
                // a tile can only write its own SRAM.
                if codelet.params[oi].mutable && !t.resident_on(v.tile, op.start, op.len) {
                    return Err(CompileError::Vertex(format!(
                        "{}[{vi}] operand {oi}: mutable slice of '{}' not resident on tile {}",
                        cs.name, t.name, v.tile
                    )));
                }
            }
            // Aliased operands within one vertex are undefined on real
            // hardware (and would be unsound to hand out as distinct
            // slices); reject any overlap — callers bind one parameter per
            // distinct region.
            for i in 0..v.operands.len() {
                for j in i + 1..v.operands.len() {
                    let (a, b) = (&v.operands[i], &v.operands[j]);
                    if a.tensor != b.tensor {
                        continue;
                    }
                    let overlap = a.start < b.start + b.len && b.start < a.start + a.len;
                    if overlap {
                        return Err(CompileError::Vertex(format!(
                            "{}[{vi}]: operands {i} and {j} alias tensor '{}'",
                            cs.name, self.tensors[a.tensor].name
                        )));
                    }
                }
            }
            if let VertexKind::LevelSet { levels } = &v.kind {
                let mut seen = std::collections::HashSet::new();
                for row in levels.iter().flatten() {
                    if !seen.insert(*row) {
                        return Err(CompileError::Vertex(format!(
                            "{}[{vi}]: row {row} appears in multiple levels",
                            cs.name
                        )));
                    }
                }
                if codelet.num_locals == 0 {
                    return Err(CompileError::Vertex(format!(
                        "{}[{vi}]: level-set codelet '{}' needs local 0 for the row index",
                        cs.name, codelet.name
                    )));
                }
            }
        }
        Ok(())
    }

    fn validate_exchange(&self, ex: &ExchangeStep) -> Result<(), CompileError> {
        for c in &ex.copies {
            let s = self.tensors.get(c.src).ok_or_else(|| {
                CompileError::Program(format!("exchange '{}': src tensor missing", ex.name))
            })?;
            let d = self.tensors.get(c.dst).ok_or_else(|| {
                CompileError::Program(format!("exchange '{}': dst tensor missing", ex.name))
            })?;
            if s.dtype != d.dtype {
                return Err(CompileError::Program(format!(
                    "exchange '{}': dtype mismatch {:?} -> {:?}",
                    ex.name, s.dtype, d.dtype
                )));
            }
            if c.src_start + c.len > s.len() || c.dst_start + c.len > d.len() {
                return Err(CompileError::Program(format!(
                    "exchange '{}': copy out of range",
                    ex.name
                )));
            }
            // Each side of a blockwise copy must be a single-tile region —
            // that is the point of the reordering strategy.
            let src_tile = s.tile_of(c.src_start);
            let dst_tile = d.tile_of(c.dst_start);
            if src_tile.is_none() || !s.resident_on(src_tile.unwrap(), c.src_start, c.len) {
                return Err(CompileError::Program(format!(
                    "exchange '{}': source region spans tiles",
                    ex.name
                )));
            }
            if dst_tile.is_none() || !d.resident_on(dst_tile.unwrap(), c.dst_start, c.len) {
                return Err(CompileError::Program(format!(
                    "exchange '{}': destination region spans tiles",
                    ex.name
                )));
            }
        }
        Ok(())
    }

    fn validate_prog(&self, p: &Prog) -> Result<(), CompileError> {
        match p {
            Prog::Nop | Prog::Callback(_) => Ok(()),
            Prog::Seq(v) => v.iter().try_for_each(|p| self.validate_prog(p)),
            Prog::Execute(cs) => {
                if *cs >= self.compute_sets.len() {
                    return Err(CompileError::Program(format!("compute set {cs} missing")));
                }
                Ok(())
            }
            Prog::Exchange(ex) => self.validate_exchange(ex),
            Prog::Copy { src, dst } => {
                let s = self
                    .tensors
                    .get(*src)
                    .ok_or_else(|| CompileError::Program("copy src missing".into()))?;
                let d = self
                    .tensors
                    .get(*dst)
                    .ok_or_else(|| CompileError::Program("copy dst missing".into()))?;
                if s.dtype != d.dtype || s.chunks != d.chunks {
                    return Err(CompileError::Program(format!(
                        "copy '{}' -> '{}': tensors must have identical dtype and mapping \
                         (use an exchange or a conversion codelet otherwise)",
                        s.name, d.name
                    )));
                }
                Ok(())
            }
            Prog::Repeat(_, p) | Prog::Label(_, p) => self.validate_prog(p),
            Prog::If { pred, then, otherwise } => {
                self.validate_pred(*pred)?;
                self.validate_prog(then)?;
                self.validate_prog(otherwise)
            }
            Prog::While { cond, pred, body } => {
                self.validate_prog(cond)?;
                self.validate_pred(*pred)?;
                self.validate_prog(body)
            }
        }
    }

    fn validate_pred(&self, pred: TensorId) -> Result<(), CompileError> {
        let t = self
            .tensors
            .get(pred)
            .ok_or_else(|| CompileError::Program(format!("predicate tensor {pred} missing")))?;
        if t.len() != 1 {
            return Err(CompileError::Program(format!(
                "predicate '{}' must be a scalar (len 1), has len {}",
                t.name,
                t.len()
            )));
        }
        Ok(())
    }

    /// Validate the program, lower it to an [`ExecPlan`] through the pass
    /// pipeline selected by `GRAPHENE_NO_OPT` (optimising by default),
    /// and freeze an executable.
    pub fn compile(self, program: Prog) -> Result<Executable, CompileError> {
        self.compile_with(program, CompileOptions::from_env())
    }

    /// Like [`Graph::compile`] with explicit compile options.
    ///
    /// This is the graph *compiler*: validation, lowering of the `Prog`
    /// tree into the flat [`ExecPlan`] arena, and the optimisation pass
    /// pipeline (`crate::passes`) that precomputes every broadcast,
    /// exchange program, sync decision and tile grouping the engine will
    /// replay. The per-pass statistics are stamped on the executable as a
    /// [`CompileReport`].
    pub fn compile_with(
        self,
        program: Prog,
        options: CompileOptions,
    ) -> Result<Executable, CompileError> {
        self.validate_prog(&program)?;
        let (plan, report) = passes::compile_plan(&self, &program, options);
        Ok(Executable { graph: self, program, plan, report })
    }
}

/// A compiled (graph, program) pair ready for the engine: the validated
/// source program, its lowered [`ExecPlan`], and the [`CompileReport`]
/// describing what the pass pipeline did.
#[derive(Clone, Debug)]
pub struct Executable {
    pub graph: Graph,
    /// The validated source tree — retained for the legacy tree-walking
    /// interpreter (`GRAPHENE_LEGACY_INTERP`, differential testing only).
    pub program: Prog,
    /// The lowered, pass-optimised plan the engine executes.
    pub plan: ExecPlan,
    /// Per-pass compile statistics.
    pub report: CompileReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::{Expr, ParamDecl, Stmt, Value};
    use crate::compute::{TensorSlice, Vertex};

    fn tiny_graph() -> Graph {
        Graph::new(IpuModel::tiny(4))
    }

    fn store_codelet(mutable: bool) -> Codelet {
        Codelet {
            name: "store".into(),
            params: vec![ParamDecl { dtype: DType::F32, mutable }],
            num_locals: 0,
            body: if mutable {
                vec![Stmt::Store {
                    param: 0,
                    index: Expr::c(Value::I32(0)),
                    value: Expr::c(Value::F32(1.0)),
                }]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn tensor_memory_is_accounted() {
        let mut g = tiny_graph();
        let cap = g.memory().capacity();
        g.add_tensor(TensorDef::on_tile("a", DType::F32, cap / 4, 0)).unwrap();
        assert_eq!(g.memory().used(0), cap);
        let err = g.add_tensor(TensorDef::on_tile("b", DType::F32, 1, 0)).unwrap_err();
        assert!(matches!(err, CompileError::OutOfMemory(_)));
        // Other tiles unaffected.
        g.add_tensor(TensorDef::on_tile("c", DType::F32, 8, 1)).unwrap();
    }

    #[test]
    fn vertex_arity_checked() {
        let mut g = tiny_graph();
        let t = g.add_tensor(TensorDef::on_tile("x", DType::F32, 4, 0)).unwrap();
        let c = g.add_codelet(store_codelet(true)).unwrap();
        let mut cs = ComputeSet::new("cs");
        cs.add(Vertex {
            tile: 0,
            codelet: c,
            operands: vec![TensorSlice::whole(t, 4), TensorSlice::whole(t, 4)],
            kind: VertexKind::Simple,
        });
        assert!(matches!(g.add_compute_set(cs), Err(CompileError::Vertex(_))));
    }

    #[test]
    fn mutable_operand_must_be_resident() {
        let mut g = tiny_graph();
        let t = g.add_tensor(TensorDef::on_tile("x", DType::F32, 4, 1)).unwrap();
        let c = g.add_codelet(store_codelet(true)).unwrap();
        let mut cs = ComputeSet::new("cs");
        cs.add(Vertex {
            tile: 0, // but x lives on tile 1
            codelet: c,
            operands: vec![TensorSlice::whole(t, 4)],
            kind: VertexKind::Simple,
        });
        let err = g.add_compute_set(cs).unwrap_err();
        assert!(err.to_string().contains("not resident"));
    }

    #[test]
    fn mutable_aliasing_rejected() {
        let mut g = tiny_graph();
        let t = g.add_tensor(TensorDef::on_tile("x", DType::F32, 8, 0)).unwrap();
        let c = g
            .add_codelet(Codelet {
                name: "two".into(),
                params: vec![
                    ParamDecl { dtype: DType::F32, mutable: true },
                    ParamDecl { dtype: DType::F32, mutable: false },
                ],
                num_locals: 0,
                body: vec![],
            })
            .unwrap();
        let mut cs = ComputeSet::new("cs");
        cs.add(Vertex {
            tile: 0,
            codelet: c,
            operands: vec![
                TensorSlice { tensor: t, start: 0, len: 5 },
                TensorSlice { tensor: t, start: 4, len: 4 },
            ],
            kind: VertexKind::Simple,
        });
        let err = g.add_compute_set(cs).unwrap_err();
        assert!(err.to_string().contains("alias"));
        // Disjoint slices are fine.
        let mut cs2 = ComputeSet::new("cs2");
        cs2.add(Vertex {
            tile: 0,
            codelet: c,
            operands: vec![
                TensorSlice { tensor: t, start: 0, len: 4 },
                TensorSlice { tensor: t, start: 4, len: 4 },
            ],
            kind: VertexKind::Simple,
        });
        g.add_compute_set(cs2).unwrap();
    }

    #[test]
    fn predicate_must_be_scalar() {
        let mut g = tiny_graph();
        let p = g.add_tensor(TensorDef::on_tile("p", DType::Bool, 2, 0)).unwrap();
        let err = g
            .compile(Prog::If {
                pred: p,
                then: Box::new(Prog::Nop),
                otherwise: Box::new(Prog::Nop),
            })
            .unwrap_err();
        assert!(err.to_string().contains("scalar"));
    }

    #[test]
    fn predicate_tensor_must_exist() {
        let g = tiny_graph();
        let err = g
            .compile(Prog::If {
                pred: 42,
                then: Box::new(Prog::Nop),
                otherwise: Box::new(Prog::Nop),
            })
            .unwrap_err();
        assert!(err.to_string().contains("predicate tensor 42 missing"), "{err}");
    }

    #[test]
    fn while_predicate_validated_even_in_nested_position() {
        // The While sits inside Repeat/Label scaffolding; validation must
        // still reach its predicate.
        let mut g = tiny_graph();
        let p = g.add_tensor(TensorDef::on_tile("p", DType::F32, 3, 0)).unwrap();
        let w = Prog::While { cond: Box::new(Prog::Nop), pred: p, body: Box::new(Prog::Nop) };
        let err = g
            .compile(Prog::Repeat(2, Box::new(Prog::Label("outer".into(), Box::new(w)))))
            .unwrap_err();
        assert!(err.to_string().contains("scalar"), "{err}");
    }

    #[test]
    fn copy_requires_identical_mapping() {
        let mut g = tiny_graph();
        let a = g.add_tensor(TensorDef::linear("a", DType::F32, 8, 2)).unwrap();
        let b = g.add_tensor(TensorDef::linear("b", DType::F32, 8, 4)).unwrap();
        let err = g.compile(Prog::Copy { src: a, dst: b }).unwrap_err();
        assert!(err.to_string().contains("identical"));
    }

    #[test]
    fn exchange_regions_must_be_single_tile() {
        let mut g = tiny_graph();
        let a = g.add_tensor(TensorDef::linear("a", DType::F32, 8, 2)).unwrap();
        let b = g.add_tensor(TensorDef::linear("b", DType::F32, 8, 2)).unwrap();
        // Copy spanning the tile boundary at element 4.
        let ex = ExchangeStep {
            name: "bad".into(),
            copies: vec![crate::program::ElemCopy {
                src: a,
                src_start: 2,
                dst: b,
                dst_start: 0,
                len: 4,
            }],
        };
        let err = g.compile(Prog::Exchange(ex)).unwrap_err();
        assert!(err.to_string().contains("spans tiles"));
    }
}
