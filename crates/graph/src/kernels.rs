//! The native fused-kernel library behind [`ExecutorKind::Native`].
//!
//! Both interpreted executors walk the codelet IR per vertex per iteration
//! — ROADMAP item 1's ~17 ms/iteration of host dispatch. The fast path in
//! every production sparse stack (PopSparse's pre-specialised block
//! kernels, kease-sparse-knl's template-monomorphised micro-kernels) is
//! code *selected at plan time*, not interpreted. This module is that
//! selection: at engine build, [`KernelTable::build`] pattern-matches each
//! codelet's IR + operand declarations against a small library of fused,
//! monomorphised Rust kernels — modified-CSR SpMV/residual, the four
//! triangular level-set sweeps, fused element-wise maps (axpy/scale/…),
//! worker-parallel reductions and serial sums — in all three device
//! precisions (f32, double-word, emulated f64).
//!
//! The contract, enforced by `verify::assert_executor_equivalence` and the
//! unit tests below, is strict: a fused kernel must produce **bit-identical
//! values** and **identical `CycleStats`/flop/byte accounting** to the
//! interpreter. Values are exact because every kernel reproduces the
//! interpreter's arithmetic domains (`apply_bin`'s f32 / TwoF32 / f64
//! branches) operation for operation; accounting is exact because each
//! kernel charges the same [`CostModel`] calls the interpreter would,
//! hoisted out of the data loop as closed-form per-row / per-entry charges.
//! ipu-sim's cost model stays the accounting *oracle*; native code is only
//! the *data path*. Anything the matchers do not recognise — and any
//! operand whose runtime storage dtype differs from what the match assumed
//! — falls back to the interpreter, per vertex.
//!
//! [`ExecutorKind::Native`]: crate::engine::ExecutorKind

use crate::codelet::{
    apply_bin, apply_un, BinOp, Codelet, Expr, ParamData, ParamDecl, Stmt, UnOp, Value,
};
use crate::compute::VertexKind;
use crate::graph::Graph;
use ipu_sim::cost::{CostModel, DType, Op};
use ipu_sim::threading::LevelSchedule;
use twofloat::{TwoF32, TwoFloat};

fn promote(a: DType, b: DType) -> DType {
    crate::codelet::promote(a, b)
}

/// Dynamic footprint of one fused vertex execution — mirrors the
/// interpreter's cycle/flop/byte counters exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelRun {
    pub cycles: u64,
    pub flops: u64,
    pub mem_bytes: u64,
}

/// A static charge: what one fragment of codelet IR costs every time the
/// interpreter executes it. Hoisting these out of the data loop is what
/// decouples accounting from execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Charge {
    cycles: u64,
    flops: u64,
    mem: u64,
}

impl Charge {
    fn cy(cycles: u64) -> Charge {
        Charge { cycles, flops: 0, mem: 0 }
    }

    fn plus(self, o: Charge) -> Charge {
        Charge {
            cycles: self.cycles + o.cycles,
            flops: self.flops + o.flops,
            mem: self.mem + o.mem,
        }
    }
}

/// The interpreter's `ParFor` makespan rule: serial body cycles replaced by
/// `spawn + ceil(serial / workers)`, never worse than serial, floor one
/// cycle for the degenerate empty loop.
fn parfor_makespan(serial: u64, workers: u64, cost: &CostModel) -> u64 {
    let parallel = cost.worker_spawn_cycles + serial.div_ceil(workers);
    parallel.min(serial.max(1))
}

/// Runtime storage dtype of a parameter slice.
fn dtype_of(p: &ParamData) -> DType {
    match p {
        ParamData::F32(_) | ParamData::F32Ro(_) => DType::F32,
        ParamData::I32(_) | ParamData::I32Ro(_) => DType::I32,
        ParamData::Bool(_) | ParamData::BoolRo(_) => DType::Bool,
        ParamData::Dw(_) | ParamData::DwRo(_) => DType::DoubleWord,
        ParamData::F64(_) | ParamData::F64Ro(_) => DType::F64Emulated,
    }
}

fn as_f32s<'s>(p: &'s ParamData) -> Option<&'s [f32]> {
    match p {
        ParamData::F32(s) => Some(s),
        ParamData::F32Ro(s) => Some(s),
        _ => None,
    }
}

fn as_i32s<'s>(p: &'s ParamData) -> Option<&'s [i32]> {
    match p {
        ParamData::I32(s) => Some(s),
        ParamData::I32Ro(s) => Some(s),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Static cost analysis: mirror Interp::eval's charging rules over an
// expression tree, using *declared* dtypes. Callers that rely on this must
// verify storage dtype == declared dtype at run time (the interpreter
// charges loads/stores at the runtime storage dtype).
// ---------------------------------------------------------------------------

/// Charge + result dtype of evaluating `e` once, or `None` when the cost
/// (or result dtype) is not statically constant. Only `Local(0)` — the
/// fused loop index — is permitted; any other local reference bails.
fn expr_charge(e: &Expr, decls: &[ParamDecl], cost: &CostModel) -> Option<(Charge, DType)> {
    match e {
        Expr::Const(v) => Some((Charge::default(), v.dtype())),
        Expr::Local(0) => Some((Charge::default(), DType::I32)),
        Expr::Local(_) => None,
        Expr::ParamLen(_) => Some((Charge::default(), DType::I32)),
        Expr::Index { param, index } => {
            let (ic, _) = expr_charge(index, decls, cost)?;
            let dt = decls.get(*param)?.dtype;
            let load = Charge {
                cycles: cost.op_cycles(Op::Load, dt),
                flops: 0,
                mem: dt.size_bytes() as u64,
            };
            Some((ic.plus(load), dt))
        }
        Expr::Unary { op, arg } => {
            let (c, dt) = expr_charge(arg, decls, cost)?;
            if *op == UnOp::Sqrt && dt == DType::Bool {
                return None; // the interpreter panics on sqrt(bool)
            }
            let cost_op = match op {
                UnOp::Neg => Op::Neg,
                UnOp::Abs => Op::Abs,
                UnOp::Sqrt => Op::Sqrt,
                UnOp::Not => Op::Cmp,
            };
            let ch = Charge {
                cycles: cost.op_cycles(cost_op, dt),
                flops: cost.op_flops(cost_op, dt),
                mem: 0,
            };
            let out = match op {
                UnOp::Not => DType::Bool,
                UnOp::Sqrt if dt == DType::I32 => DType::F32,
                _ => dt,
            };
            Some((c.plus(ch), out))
        }
        Expr::Binary { op, lhs, rhs } => {
            let (ca, da) = expr_charge(lhs, decls, cost)?;
            let (cb, db) = expr_charge(rhs, decls, cost)?;
            let dt = promote(da, db);
            let is_cmp = matches!(
                op,
                BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::And
                    | BinOp::Or
            );
            if !is_cmp && dt == DType::Bool {
                return None; // bool arithmetic produces I32 values; not worth fusing
            }
            let mixed = dt == DType::DoubleWord && (da == DType::F32 || db == DType::F32);
            let cycles = if mixed {
                cost.op_cycles_mixed_dw(op.cost_op())
            } else {
                cost.op_cycles(op.cost_op(), dt)
            };
            let ch = Charge { cycles, flops: cost.op_flops(op.cost_op(), dt), mem: 0 };
            Some((ca.plus(cb).plus(ch), if is_cmp { DType::Bool } else { dt }))
        }
        Expr::Convert { to, arg } => {
            let (c, _) = expr_charge(arg, decls, cost)?;
            Some((c.plus(Charge::cy(cost.op_cycles(Op::Convert, *to))), *to))
        }
        Expr::Select { cond, then, otherwise } => {
            // The interpreter evaluates cond and *both* branches, then
            // charges one branch-free select.
            let (cc, _) = expr_charge(cond, decls, cost)?;
            let (ct, dt_t) = expr_charge(then, decls, cost)?;
            let (co, dt_o) = expr_charge(otherwise, decls, cost)?;
            if dt_t != dt_o {
                return None;
            }
            let sel = Charge::cy(cost.op_cycles(Op::Branch, DType::Bool));
            Some((cc.plus(ct).plus(co).plus(sel), dt_t))
        }
    }
}

/// Generic (but charge-free) expression evaluation — semantically identical
/// to `Interp::eval` because it reuses `apply_bin`/`apply_un`/`convert`.
/// `i` substitutes for `Local(0)`, the fused loop index.
fn eval_value(e: &Expr, params: &[ParamData], i: i32) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::Local(_) => Value::I32(i), // matchers admit only Local(0)
        Expr::ParamLen(p) => Value::I32(params[*p].len() as i32),
        Expr::Index { param, index } => {
            let k = eval_value(index, params, i).as_i64() as usize;
            params[*param].get(k)
        }
        Expr::Unary { op, arg } => apply_un(*op, eval_value(arg, params, i)).0,
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_value(lhs, params, i);
            let b = eval_value(rhs, params, i);
            apply_bin(*op, a, b).0
        }
        Expr::Convert { to, arg } => eval_value(arg, params, i).convert(*to),
        Expr::Select { cond, then, otherwise } => {
            let c = eval_value(cond, params, i).as_bool();
            let t = eval_value(then, params, i);
            let o = eval_value(otherwise, params, i);
            if c {
                t
            } else {
                o
            }
        }
    }
}

fn expr_uses_only_local0(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::ParamLen(_) => true,
        Expr::Local(l) => *l == 0,
        Expr::Index { index, .. } => expr_uses_only_local0(index),
        Expr::Unary { arg, .. } | Expr::Convert { arg, .. } => expr_uses_only_local0(arg),
        Expr::Binary { lhs, rhs, .. } => expr_uses_only_local0(lhs) && expr_uses_only_local0(rhs),
        Expr::Select { cond, then, otherwise } => {
            expr_uses_only_local0(cond)
                && expr_uses_only_local0(then)
                && expr_uses_only_local0(otherwise)
        }
    }
}

// ---------------------------------------------------------------------------
// Monomorphised expression trees: one enum per arithmetic domain, mirroring
// apply_bin's three float branches. Cross-domain edges reproduce the exact
// lift/round the dynamic promotion performs (f32 -> TwoF32 via from_f is
// exact; anything -> f64 via as_f64 is exact; narrowing rounds once, like
// Value::convert). Ops outside {+,-,*,/,neg,abs,sqrt,convert} stay on the
// generic path.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Ix {
    /// The fused loop index.
    Loop,
    /// A constant index (scalar operands are loaded as `param[0]`).
    At(usize),
}

impl Ix {
    #[inline]
    fn idx(self, i: usize) -> usize {
        match self {
            Ix::Loop => i,
            Ix::At(k) => k,
        }
    }
}

#[derive(Clone, Debug)]
enum FT {
    C(f32),
    L(usize, Ix),
    Add(Box<FT>, Box<FT>),
    Sub(Box<FT>, Box<FT>),
    Mul(Box<FT>, Box<FT>),
    Div(Box<FT>, Box<FT>),
    Neg(Box<FT>),
    Abs(Box<FT>),
    Sqrt(Box<FT>),
    /// `Value::convert(F32)` of a double-word: `to_f64() as f32`.
    FromD(Box<DT>),
    /// `Value::convert(F32)` of an emulated f64: `as f32`.
    FromQ(Box<QT>),
}

#[derive(Clone, Debug)]
enum DT {
    C(TwoF32),
    L(usize, Ix),
    /// Exact lift of an f32 (`as_dw` / `Value::convert(DoubleWord)`).
    Lift(Box<FT>),
    /// `TwoFloat::from_f64` split of an emulated f64.
    FromQ(Box<QT>),
    Add(Box<DT>, Box<DT>),
    Sub(Box<DT>, Box<DT>),
    Mul(Box<DT>, Box<DT>),
    Div(Box<DT>, Box<DT>),
    Neg(Box<DT>),
    Abs(Box<DT>),
    Sqrt(Box<DT>),
}

#[derive(Clone, Debug)]
enum QT {
    C(f64),
    L(usize, Ix),
    FromF(Box<FT>),
    FromD(Box<DT>),
    Add(Box<QT>, Box<QT>),
    Sub(Box<QT>, Box<QT>),
    Mul(Box<QT>, Box<QT>),
    Div(Box<QT>, Box<QT>),
    Neg(Box<QT>),
    Abs(Box<QT>),
    Sqrt(Box<QT>),
}

#[derive(Clone, Debug)]
enum Tree {
    F(FT),
    D(DT),
    Q(QT),
}

fn eval_f(t: &FT, ps: &[ParamData], i: usize) -> f32 {
    match t {
        FT::C(v) => *v,
        FT::L(p, ix) => match &ps[*p] {
            ParamData::F32(s) => s[ix.idx(i)],
            ParamData::F32Ro(s) => s[ix.idx(i)],
            _ => unreachable!("tree load dtype verified before dispatch"),
        },
        FT::Add(a, b) => eval_f(a, ps, i) + eval_f(b, ps, i),
        FT::Sub(a, b) => eval_f(a, ps, i) - eval_f(b, ps, i),
        FT::Mul(a, b) => eval_f(a, ps, i) * eval_f(b, ps, i),
        FT::Div(a, b) => eval_f(a, ps, i) / eval_f(b, ps, i),
        FT::Neg(a) => -eval_f(a, ps, i),
        FT::Abs(a) => eval_f(a, ps, i).abs(),
        FT::Sqrt(a) => eval_f(a, ps, i).sqrt(),
        FT::FromD(a) => eval_d(a, ps, i).to_f64() as f32,
        FT::FromQ(a) => eval_q(a, ps, i) as f32,
    }
}

fn eval_d(t: &DT, ps: &[ParamData], i: usize) -> TwoF32 {
    match t {
        DT::C(v) => *v,
        DT::L(p, ix) => match &ps[*p] {
            ParamData::Dw(s) => s[ix.idx(i)],
            ParamData::DwRo(s) => s[ix.idx(i)],
            _ => unreachable!("tree load dtype verified before dispatch"),
        },
        DT::Lift(a) => TwoFloat::from_f(eval_f(a, ps, i)),
        DT::FromQ(a) => TwoFloat::from_f64(eval_q(a, ps, i)),
        DT::Add(a, b) => eval_d(a, ps, i) + eval_d(b, ps, i),
        DT::Sub(a, b) => eval_d(a, ps, i) - eval_d(b, ps, i),
        DT::Mul(a, b) => eval_d(a, ps, i) * eval_d(b, ps, i),
        DT::Div(a, b) => eval_d(a, ps, i) / eval_d(b, ps, i),
        DT::Neg(a) => -eval_d(a, ps, i),
        DT::Abs(a) => eval_d(a, ps, i).abs(),
        DT::Sqrt(a) => eval_d(a, ps, i).sqrt(),
    }
}

fn eval_q(t: &QT, ps: &[ParamData], i: usize) -> f64 {
    match t {
        QT::C(v) => *v,
        QT::L(p, ix) => match &ps[*p] {
            ParamData::F64(s) => s[ix.idx(i)].0,
            ParamData::F64Ro(s) => s[ix.idx(i)].0,
            _ => unreachable!("tree load dtype verified before dispatch"),
        },
        QT::FromF(a) => eval_f(a, ps, i) as f64,
        QT::FromD(a) => eval_d(a, ps, i).to_f64(),
        QT::Add(a, b) => eval_q(a, ps, i) + eval_q(b, ps, i),
        QT::Sub(a, b) => eval_q(a, ps, i) - eval_q(b, ps, i),
        QT::Mul(a, b) => eval_q(a, ps, i) * eval_q(b, ps, i),
        QT::Div(a, b) => eval_q(a, ps, i) / eval_q(b, ps, i),
        QT::Neg(a) => -eval_q(a, ps, i),
        QT::Abs(a) => eval_q(a, ps, i).abs(),
        QT::Sqrt(a) => eval_q(a, ps, i).sqrt(),
    }
}

fn eval_tree(t: &Tree, ps: &[ParamData], i: usize) -> Value {
    match t {
        Tree::F(f) => Value::F32(eval_f(f, ps, i)),
        Tree::D(d) => Value::Dw(eval_d(d, ps, i)),
        Tree::Q(q) => Value::F64(eval_q(q, ps, i)),
    }
}

fn tree_dtype(t: &Tree) -> DType {
    match t {
        Tree::F(_) => DType::F32,
        Tree::D(_) => DType::DoubleWord,
        Tree::Q(_) => DType::F64Emulated,
    }
}

/// Lift a tree into a (weakly) higher domain, exactly as dynamic promotion
/// would lift the corresponding value.
fn lift_tree(t: Tree, to: DType) -> Option<Tree> {
    match (t, to) {
        (t @ Tree::F(_), DType::F32) | (t @ Tree::D(_), DType::DoubleWord) => Some(t),
        (t @ Tree::Q(_), DType::F64Emulated) => Some(t),
        (Tree::F(f), DType::DoubleWord) => Some(Tree::D(DT::Lift(Box::new(f)))),
        (Tree::F(f), DType::F64Emulated) => Some(Tree::Q(QT::FromF(Box::new(f)))),
        (Tree::D(d), DType::F64Emulated) => Some(Tree::Q(QT::FromD(Box::new(d)))),
        _ => None,
    }
}

/// `Value::convert` as a tree edge — also handles narrowing.
fn convert_tree(t: Tree, to: DType) -> Option<Tree> {
    match to {
        DType::F32 => Some(Tree::F(match t {
            Tree::F(f) => f,
            Tree::D(d) => FT::FromD(Box::new(d)),
            Tree::Q(q) => FT::FromQ(Box::new(q)),
        })),
        DType::DoubleWord => Some(Tree::D(match t {
            Tree::D(d) => d,
            Tree::F(f) => DT::Lift(Box::new(f)),
            Tree::Q(q) => DT::FromQ(Box::new(q)),
        })),
        DType::F64Emulated => Some(Tree::Q(match t {
            Tree::Q(q) => q,
            Tree::F(f) => QT::FromF(Box::new(f)),
            Tree::D(d) => QT::FromD(Box::new(d)),
        })),
        _ => None,
    }
}

fn bin_tree(op: BinOp, a: Tree, b: Tree) -> Option<Tree> {
    let dt = promote(tree_dtype(&a), tree_dtype(&b));
    let (a, b) = (lift_tree(a, dt)?, lift_tree(b, dt)?);
    Some(match (a, b) {
        (Tree::F(x), Tree::F(y)) => Tree::F(match op {
            BinOp::Add => FT::Add(Box::new(x), Box::new(y)),
            BinOp::Sub => FT::Sub(Box::new(x), Box::new(y)),
            BinOp::Mul => FT::Mul(Box::new(x), Box::new(y)),
            BinOp::Div => FT::Div(Box::new(x), Box::new(y)),
            _ => return None,
        }),
        (Tree::D(x), Tree::D(y)) => Tree::D(match op {
            BinOp::Add => DT::Add(Box::new(x), Box::new(y)),
            BinOp::Sub => DT::Sub(Box::new(x), Box::new(y)),
            BinOp::Mul => DT::Mul(Box::new(x), Box::new(y)),
            BinOp::Div => DT::Div(Box::new(x), Box::new(y)),
            _ => return None,
        }),
        (Tree::Q(x), Tree::Q(y)) => Tree::Q(match op {
            BinOp::Add => QT::Add(Box::new(x), Box::new(y)),
            BinOp::Sub => QT::Sub(Box::new(x), Box::new(y)),
            BinOp::Mul => QT::Mul(Box::new(x), Box::new(y)),
            BinOp::Div => QT::Div(Box::new(x), Box::new(y)),
            _ => return None,
        }),
        _ => unreachable!("both sides lifted to the same domain"),
    })
}

fn un_tree(op: UnOp, a: Tree) -> Option<Tree> {
    Some(match a {
        Tree::F(x) => Tree::F(match op {
            UnOp::Neg => FT::Neg(Box::new(x)),
            UnOp::Abs => FT::Abs(Box::new(x)),
            UnOp::Sqrt => FT::Sqrt(Box::new(x)),
            UnOp::Not => return None,
        }),
        Tree::D(x) => Tree::D(match op {
            UnOp::Neg => DT::Neg(Box::new(x)),
            UnOp::Abs => DT::Abs(Box::new(x)),
            UnOp::Sqrt => DT::Sqrt(Box::new(x)),
            UnOp::Not => return None,
        }),
        Tree::Q(x) => Tree::Q(match op {
            UnOp::Neg => QT::Neg(Box::new(x)),
            UnOp::Abs => QT::Abs(Box::new(x)),
            UnOp::Sqrt => QT::Sqrt(Box::new(x)),
            UnOp::Not => return None,
        }),
    })
}

/// Compile an expression into a monomorphised tree. `None` is not an error
/// — the kernel simply evaluates generically (still fused, still exact).
fn compile_tree(e: &Expr, decls: &[ParamDecl]) -> Option<Tree> {
    match e {
        Expr::Const(Value::F32(v)) => Some(Tree::F(FT::C(*v))),
        Expr::Const(Value::Dw(v)) => Some(Tree::D(DT::C(*v))),
        Expr::Const(Value::F64(v)) => Some(Tree::Q(QT::C(*v))),
        Expr::Const(_) => None,
        Expr::Index { param, index } => {
            let ix = match index.as_ref() {
                Expr::Local(0) => Ix::Loop,
                Expr::Const(Value::I32(k)) if *k >= 0 => Ix::At(*k as usize),
                _ => return None,
            };
            match decls.get(*param)?.dtype {
                DType::F32 => Some(Tree::F(FT::L(*param, ix))),
                DType::DoubleWord => Some(Tree::D(DT::L(*param, ix))),
                DType::F64Emulated => Some(Tree::Q(QT::L(*param, ix))),
                _ => None,
            }
        }
        Expr::Unary { op, arg } => un_tree(*op, compile_tree(arg, decls)?),
        Expr::Binary { op, lhs, rhs } => {
            bin_tree(*op, compile_tree(lhs, decls)?, compile_tree(rhs, decls)?)
        }
        Expr::Convert { to, arg } => convert_tree(compile_tree(arg, decls)?, *to),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The kernels.
// ---------------------------------------------------------------------------

/// Modified-CSR SpMV / residual over the `build_spmv_codelet` template.
/// `x`/`y`/`b` storage may be any of f32 / double-word / emulated f64 (MPIR
/// binds the same codelet at several precisions); the matrix operands must
/// be f32 values + i32 topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpmvKernel {
    residual: bool,
}

/// Which of the four triangular level-set sweeps this codelet is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SubstKind {
    /// `ilu_forward` / `dilu_forward`: `w_i = (b_i - Σ_{j<i} l_ij w_j) [/ d_i]`.
    Forward { divide: bool },
    /// `ilu_backward` / `dilu_backward`.
    Backward { divide: bool },
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubstKernel {
    kind: SubstKind,
}

/// A fused element-wise map: `dst[i] = f(i)` over a worker-parallel loop —
/// the shape `DslCtx` lowers every tensor assignment to (axpy, scale,
/// pointwise combinations, scalar broadcasts, …).
#[derive(Clone, Debug)]
pub struct MapKernel {
    dst: usize,
    /// Parameter whose length bounds the loop.
    lead: usize,
    decls: Vec<DType>,
    /// Per-iteration charge: loop step + value + store.
    iter: Charge,
    value: Expr,
    tree: Option<Tree>,
}

/// A worker-parallel reduction: `out[0] = Σ_i f(i)` (the `reduce1` shape).
#[derive(Clone, Debug)]
pub struct ReduceKernel {
    lead: usize,
    decls: Vec<DType>,
    zero: Value,
    /// Per-iteration charge: loop step + value + accumulate.
    iter: Charge,
    /// Final store charge.
    fin: Charge,
    value: Expr,
    tree: Option<Tree>,
}

/// A serial sum: `out[0] = Σ_i in[i]` (the reduce-tree combiner shape).
#[derive(Clone, Debug)]
pub struct SumKernel {
    decls: Vec<DType>,
    zero: Value,
    iter: Charge,
    fin: Charge,
}

/// One entry of the kernel library, selected for a codelet at plan time.
#[derive(Clone, Debug)]
pub enum FusedKernel {
    Spmv(SpmvKernel),
    Subst(SubstKernel),
    Map(MapKernel),
    Reduce(ReduceKernel),
    Sum(SumKernel),
}

impl FusedKernel {
    /// Stable kernel name, stamped into the compile report.
    pub fn name(&self) -> &'static str {
        match self {
            FusedKernel::Spmv(SpmvKernel { residual: false }) => "spmv",
            FusedKernel::Spmv(SpmvKernel { residual: true }) => "spmv_residual",
            FusedKernel::Subst(s) => match s.kind {
                SubstKind::Forward { divide: false } => "forward_subst",
                SubstKind::Forward { divide: true } => "forward_subst_div",
                SubstKind::Backward { divide: true } => "backward_subst_div",
                SubstKind::Backward { divide: false } => "backward_subst",
            },
            FusedKernel::Map(_) => "map",
            FusedKernel::Reduce(_) => "reduce",
            FusedKernel::Sum(_) => "sum",
        }
    }

    /// Execute the kernel for one vertex. Returns `None` — *before touching
    /// any data* — when the runtime operand layout does not satisfy the
    /// kernel's assumptions; the engine then falls back to the interpreter.
    pub fn run(
        &self,
        kind: &VertexKind,
        params: &mut [ParamData],
        cost: &CostModel,
        workers: u64,
    ) -> Option<KernelRun> {
        match (self, kind) {
            (FusedKernel::Spmv(k), VertexKind::Simple) => k.run(params, cost, workers),
            (FusedKernel::Subst(k), VertexKind::LevelSet { levels }) => {
                k.run(levels, params, cost, workers)
            }
            (FusedKernel::Map(k), VertexKind::Simple) => k.run(params, cost, workers),
            (FusedKernel::Reduce(k), VertexKind::Simple) => k.run(params, cost, workers),
            (FusedKernel::Sum(k), VertexKind::Simple) => k.run(params, cost),
            _ => None,
        }
    }
}

/// Check that every runtime operand slice has the storage dtype the static
/// analysis assumed (the interpreter charges loads and stores at *storage*
/// dtype, and `ParamData::get` yields storage-typed values).
fn storage_matches(params: &[ParamData], decls: &[DType]) -> bool {
    params.len() == decls.len() && params.iter().zip(decls).all(|(p, d)| dtype_of(p) == *d)
}

impl SpmvKernel {
    fn run(&self, params: &mut [ParamData], cost: &CostModel, workers: u64) -> Option<KernelRun> {
        let o = if self.residual { 3 } else { 2 };
        if params.len() != o + 4 {
            return None;
        }
        let (y, rest) = params.split_first_mut()?;
        // After the split every index into `rest` is the param id minus 1.
        let diag = as_f32s(&rest[o - 1])?;
        let vals = as_f32s(&rest[o])?;
        let cols = as_i32s(&rest[o + 1])?;
        let rptr = as_i32s(&rest[o + 2])?;
        let dx = dtype_of(&rest[0]);
        let dy = dtype_of(y);
        let n = y.len();
        if rptr.len() < n + 1 {
            return None;
        }

        // Per-row / per-entry charges, hoisted from the interpreter's walk
        // of the template body (accumulation domain da = promote(f32, dx)).
        let da = promote(DType::F32, dx);
        let (l_f32, l_i32) =
            (cost.op_cycles(Op::Load, DType::F32), cost.op_cycles(Op::Load, DType::I32));
        let l_x = cost.op_cycles(Op::Load, dx);
        let sz_x = dx.size_bytes() as u64;
        let mul_c = if dx == DType::DoubleWord {
            cost.op_cycles_mixed_dw(Op::Mul)
        } else {
            cost.op_cycles(Op::Mul, da)
        };
        let add_c = cost.op_cycles(Op::Add, da);
        let addi_c = cost.op_cycles(Op::Add, DType::I32);
        let ls = cost.op_cycles(Op::LoopStep, DType::I32);
        let row_fixed = ls + l_f32 + l_x + mul_c + 2 * l_i32 + addi_c;
        let entry = ls + l_f32 + l_i32 + l_x + mul_c + add_c;
        let (mul_f, add_f) = (cost.op_flops(Op::Mul, da), cost.op_flops(Op::Add, da));
        let store_c = cost.op_cycles(Op::Store, dy);
        let sz_y = dy.size_bytes() as u64;
        let (l_b, sz_b, sub_c, sub_f) = if self.residual {
            let db = dtype_of(&rest[1]);
            let dsub = promote(db, da);
            let mixed = dsub == DType::DoubleWord && (db == DType::F32 || da == DType::F32);
            let sub_c = if mixed {
                cost.op_cycles_mixed_dw(Op::Sub)
            } else {
                cost.op_cycles(Op::Sub, dsub)
            };
            (
                cost.op_cycles(Op::Load, db),
                db.size_bytes() as u64,
                sub_c,
                cost.op_flops(Op::Sub, dsub),
            )
        } else {
            (0, 0, 0, 0)
        };

        let (mut serial, mut flops, mut mem) = (0u64, 0u64, 0u64);
        for r in 0..n {
            let lo = rptr[r] as usize;
            let hi = rptr[r + 1] as usize;
            let nnz = (hi - lo) as u64;
            serial += row_fixed + nnz * entry + l_b + sub_c + store_c;
            flops += mul_f + nnz * (mul_f + add_f) + sub_f;
            mem += 4 + sz_x + 8 + nnz * (8 + sz_x) + sz_b + sz_y;

            // Data path, monomorphised on the accumulation domain.
            let acc = match &rest[0] {
                ParamData::F32Ro(x) => {
                    let mut acc = diag[r] * x[r];
                    for k in lo..hi {
                        acc += vals[k] * x[cols[k] as usize];
                    }
                    Value::F32(acc)
                }
                ParamData::DwRo(x) => {
                    let mut acc = TwoFloat::from_f(diag[r]) * x[r];
                    for k in lo..hi {
                        acc = acc + TwoFloat::from_f(vals[k]) * x[cols[k] as usize];
                    }
                    Value::Dw(acc)
                }
                ParamData::F64Ro(x) => {
                    let mut acc = diag[r] as f64 * x[r].0;
                    for k in lo..hi {
                        acc += vals[k] as f64 * x[cols[k] as usize].0;
                    }
                    Value::F64(acc)
                }
                _ => return None,
            };
            let v = if self.residual { apply_bin(BinOp::Sub, rest[1].get(r), acc).0 } else { acc };
            y.set(r, v.convert(dy));
        }
        Some(KernelRun { cycles: parfor_makespan(serial, workers, cost), flops, mem_bytes: mem })
    }
}

impl SubstKernel {
    fn run(
        &self,
        levels: &[Vec<usize>],
        params: &mut [ParamData],
        cost: &CostModel,
        workers: u64,
    ) -> Option<KernelRun> {
        let forward = matches!(self.kind, SubstKind::Forward { .. });
        let want = if forward { 6 } else { 5 };
        if params.len() != want {
            return None;
        }
        let (w, rest) = params.split_first_mut()?;
        // Storage must be exactly the declared all-f32/i32 layout.
        let w_slice = match w {
            ParamData::F32(s) => s,
            _ => return None,
        };
        let o = if forward { 1 } else { 0 }; // rest offset of lvals
        let b = if forward { Some(as_f32s(&rest[0])?) } else { None };
        let lvals = as_f32s(&rest[o])?;
        let ldiag = as_f32s(&rest[o + 1])?;
        let cols = as_i32s(&rest[o + 2])?;
        let rptr = as_i32s(&rest[o + 3])?;
        let n = w_slice.len();
        if rptr.len() < n + 1 {
            return None;
        }

        let l_f = cost.op_cycles(Op::Load, DType::F32);
        let l_i = cost.op_cycles(Op::Load, DType::I32);
        let ls = cost.op_cycles(Op::LoopStep, DType::I32);
        let addi = cost.op_cycles(Op::Add, DType::I32);
        let cmp_i = cost.op_cycles(Op::Cmp, DType::I32);
        let cmp_b = cost.op_cycles(Op::Cmp, DType::Bool);
        let br = cost.op_cycles(Op::Branch, DType::Bool);
        let mul = cost.op_cycles(Op::Mul, DType::F32);
        let add = cost.op_cycles(Op::Add, DType::F32);
        let sub = cost.op_cycles(Op::Sub, DType::F32);
        let div = cost.op_cycles(Op::Div, DType::F32);
        let st = cost.op_cycles(Op::Store, DType::F32);
        // Per-row fixed / per-entry / per-taken-entry charges, and the
        // epilogue, per sweep variant (hoisted from the template walk).
        let (base, per_entry, per_taken, epi, epi_flops, epi_mem) = match self.kind {
            SubstKind::Forward { divide } => (
                l_f + l_i + addi + l_i,
                ls + l_i + cmp_i + br,
                2 * l_f + mul + sub,
                if divide { l_f + div + st } else { st },
                if divide { 1 } else { 0 },
                if divide { 8u64 } else { 4 },
            ),
            SubstKind::Backward { divide } => (
                l_i + addi + l_i,
                ls + l_i + 2 * cmp_i + cmp_b + br,
                2 * l_f + mul + add,
                if divide { l_f + sub + l_f + div + st } else { l_f + l_f + div + sub + st },
                2,
                12,
            ),
        };
        let base_mem: u64 = if forward { 4 + 8 } else { 8 };

        let mut row_cost = vec![0u64; n];
        let (mut flops, mut mem) = (0u64, 0u64);
        for level in levels {
            for &i in level {
                let lo = rptr[i] as usize;
                let hi = rptr[i + 1] as usize;
                let entries = (hi - lo) as u64;
                let mut taken = 0u64;
                match self.kind {
                    SubstKind::Forward { divide } => {
                        let mut acc = b.unwrap()[i];
                        for k in lo..hi {
                            let j = cols[k];
                            if (j as i64) < (i as i64) {
                                acc -= lvals[k] * w_slice[j as usize];
                                taken += 1;
                            }
                        }
                        w_slice[i] = if divide { acc / ldiag[i] } else { acc };
                    }
                    SubstKind::Backward { divide } => {
                        let mut acc = 0.0f32;
                        for k in lo..hi {
                            let j = cols[k];
                            if (j as i64) > (i as i64) && (j as i64) < (n as i64) {
                                acc += lvals[k] * w_slice[j as usize];
                                taken += 1;
                            }
                        }
                        w_slice[i] = if divide {
                            (w_slice[i] - acc) / ldiag[i]
                        } else {
                            w_slice[i] - acc / ldiag[i]
                        };
                    }
                }
                row_cost[i] = base + entries * per_entry + taken * per_taken + epi;
                flops += 2 * taken + epi_flops;
                mem += base_mem + entries * 4 + taken * 8 + epi_mem;
            }
        }
        let schedule = LevelSchedule::build(levels, workers as usize, |i| row_cost[i]);
        let cycles = schedule.cycles(|i| row_cost[i], cost);
        Some(KernelRun { cycles, flops, mem_bytes: mem })
    }
}

impl MapKernel {
    fn run(&self, params: &mut [ParamData], cost: &CostModel, workers: u64) -> Option<KernelRun> {
        let _ = cost;
        if !storage_matches(params, &self.decls) {
            return None;
        }
        let n = params[self.lead].len();
        match &self.tree {
            Some(t) => {
                for i in 0..n {
                    let v = eval_tree(t, params, i);
                    params[self.dst].set(i, v);
                }
            }
            None => {
                for i in 0..n {
                    let v = eval_value(&self.value, params, i as i32);
                    params[self.dst].set(i, v.convert(self.decls[self.dst]));
                }
            }
        }
        Some(KernelRun {
            cycles: parfor_makespan(n as u64 * self.iter.cycles, workers, cost),
            flops: n as u64 * self.iter.flops,
            mem_bytes: n as u64 * self.iter.mem,
        })
    }
}

impl ReduceKernel {
    fn run(&self, params: &mut [ParamData], cost: &CostModel, workers: u64) -> Option<KernelRun> {
        if !storage_matches(params, &self.decls) {
            return None;
        }
        let n = params[self.lead].len();
        let acc = match (&self.tree, self.zero) {
            (Some(Tree::F(t)), Value::F32(z)) => {
                let mut acc = z;
                for i in 0..n {
                    acc += eval_f(t, params, i);
                }
                Value::F32(acc)
            }
            (Some(t), Value::Dw(z)) => {
                let mut acc = z;
                for i in 0..n {
                    // Exact lift of an f32 or Dw term, as apply_bin would.
                    let term = match t {
                        Tree::F(f) => TwoFloat::from_f(eval_f(f, params, i)),
                        Tree::D(d) => eval_d(d, params, i),
                        Tree::Q(_) => return None,
                    };
                    acc = acc + term;
                }
                Value::Dw(acc)
            }
            (Some(t), Value::F64(z)) => {
                let mut acc = z;
                for i in 0..n {
                    let term = match t {
                        Tree::F(f) => eval_f(f, params, i) as f64,
                        Tree::D(d) => eval_d(d, params, i).to_f64(),
                        Tree::Q(q) => eval_q(q, params, i),
                    };
                    acc += term;
                }
                Value::F64(acc)
            }
            _ => {
                let mut acc = self.zero;
                for i in 0..n {
                    acc = apply_bin(BinOp::Add, acc, eval_value(&self.value, params, i as i32)).0;
                }
                acc
            }
        };
        let dst_dt = self.decls[0];
        params[0].set(0, acc.convert(dst_dt));
        Some(KernelRun {
            cycles: parfor_makespan(n as u64 * self.iter.cycles, workers, cost) + self.fin.cycles,
            flops: n as u64 * self.iter.flops + self.fin.flops,
            mem_bytes: n as u64 * self.iter.mem + self.fin.mem,
        })
    }
}

impl SumKernel {
    fn run(&self, params: &mut [ParamData], cost: &CostModel) -> Option<KernelRun> {
        let _ = cost;
        if !storage_matches(params, &self.decls) {
            return None;
        }
        let n = params[1].len();
        let acc = match (self.zero, &params[1]) {
            (Value::F32(z), ParamData::F32Ro(s)) => {
                Value::F32(s.iter().take(n).fold(z, |a, &v| a + v))
            }
            (Value::I32(z), ParamData::I32Ro(s)) => {
                // The interpreter's I32 domain adds in i64 then truncates.
                Value::I32(s.iter().take(n).fold(z, |a, &v| (a as i64 + v as i64) as i32))
            }
            (Value::Dw(z), ParamData::DwRo(s)) => {
                Value::Dw(s.iter().take(n).fold(z, |a, &v| a + v))
            }
            (Value::F64(z), ParamData::F64Ro(s)) => {
                Value::F64(s.iter().take(n).fold(z, |a, &v| a + v.0))
            }
            _ => return None,
        };
        params[0].set(0, acc.convert(self.decls[0]));
        Some(KernelRun {
            // A *serial* For loop: no worker makespan, no spawn.
            cycles: n as u64 * self.iter.cycles + self.fin.cycles,
            flops: n as u64 * self.iter.flops + self.fin.flops,
            mem_bytes: n as u64 * self.iter.mem + self.fin.mem,
        })
    }
}

// ---------------------------------------------------------------------------
// Matchers.
// ---------------------------------------------------------------------------

/// Rebuild the `build_spmv_codelet` template (crates/core/src/dist.rs) as
/// the `CodeDsl` builder lowers it, for exact structural comparison. Any
/// drift in the real builder makes the match fail — a safe fallback, never
/// a wrong kernel.
fn spmv_template(residual: bool) -> (Vec<ParamDecl>, usize, Vec<Stmt>) {
    use BinOp::*;
    let ro = |dtype| ParamDecl { dtype, mutable: false };
    let mut params = vec![ParamDecl { dtype: DType::F32, mutable: true }, ro(DType::F32)];
    if residual {
        params.push(ro(DType::F32));
    }
    let d = params.len(); // diag
    params.extend([ro(DType::F32), ro(DType::F32), ro(DType::I32), ro(DType::I32)]);
    let (vals, cols, rptr) = (d + 1, d + 2, d + 3);
    let store_value = if residual {
        Expr::bin(Sub, Expr::index(2, Expr::Local(0)), Expr::Local(1))
    } else {
        Expr::Local(1)
    };
    let body = vec![Stmt::ParFor {
        local: 0,
        start: Expr::Const(Value::I32(0)),
        end: Expr::ParamLen(0),
        body: vec![
            Stmt::SetLocal(
                1,
                Expr::bin(Mul, Expr::index(d, Expr::Local(0)), Expr::index(1, Expr::Local(0))),
            ),
            Stmt::SetLocal(2, Expr::index(rptr, Expr::Local(0))),
            Stmt::SetLocal(
                3,
                Expr::index(rptr, Expr::bin(Add, Expr::Local(0), Expr::Const(Value::I32(1)))),
            ),
            Stmt::For {
                local: 4,
                start: Expr::Local(2),
                end: Expr::Local(3),
                step: Expr::Const(Value::I32(1)),
                body: vec![Stmt::SetLocal(
                    1,
                    Expr::bin(
                        Add,
                        Expr::Local(1),
                        Expr::bin(
                            Mul,
                            Expr::index(vals, Expr::Local(4)),
                            Expr::index(1, Expr::index(cols, Expr::Local(4))),
                        ),
                    ),
                )],
            },
            Stmt::Store { param: 0, index: Expr::Local(0), value: store_value },
        ],
    }];
    (params, 5, body)
}

/// Rebuild `forward_subst_codelet` (crates/core/src/solvers/ilu.rs).
fn forward_subst_template(divide: bool) -> (Vec<ParamDecl>, usize, Vec<Stmt>) {
    use BinOp::*;
    let ro = |dtype| ParamDecl { dtype, mutable: false };
    let params = vec![
        ParamDecl { dtype: DType::F32, mutable: true }, // w
        ro(DType::F32),                                 // b
        ro(DType::F32),                                 // lvals
        ro(DType::F32),                                 // ldiag
        ro(DType::I32),                                 // cols
        ro(DType::I32),                                 // rptr
    ];
    let store_value = if divide {
        Expr::bin(Div, Expr::Local(1), Expr::index(3, Expr::Local(0)))
    } else {
        Expr::Local(1)
    };
    let body = vec![
        Stmt::SetLocal(1, Expr::index(1, Expr::Local(0))),
        Stmt::SetLocal(2, Expr::index(5, Expr::Local(0))),
        Stmt::SetLocal(
            3,
            Expr::index(5, Expr::bin(Add, Expr::Local(0), Expr::Const(Value::I32(1)))),
        ),
        Stmt::For {
            local: 4,
            start: Expr::Local(2),
            end: Expr::Local(3),
            step: Expr::Const(Value::I32(1)),
            body: vec![
                Stmt::SetLocal(5, Expr::index(4, Expr::Local(4))),
                Stmt::If {
                    cond: Expr::bin(Lt, Expr::Local(5), Expr::Local(0)),
                    then: vec![Stmt::SetLocal(
                        1,
                        Expr::bin(
                            Sub,
                            Expr::Local(1),
                            Expr::bin(
                                Mul,
                                Expr::index(2, Expr::Local(4)),
                                Expr::index(0, Expr::Local(5)),
                            ),
                        ),
                    )],
                    otherwise: vec![],
                },
            ],
        },
        Stmt::Store { param: 0, index: Expr::Local(0), value: store_value },
    ];
    (params, 6, body)
}

/// Rebuild `backward_subst_codelet` (crates/core/src/solvers/ilu.rs).
fn backward_subst_template(divide: bool) -> (Vec<ParamDecl>, usize, Vec<Stmt>) {
    use BinOp::*;
    let ro = |dtype| ParamDecl { dtype, mutable: false };
    let params = vec![
        ParamDecl { dtype: DType::F32, mutable: true }, // z
        ro(DType::F32),                                 // lvals
        ro(DType::F32),                                 // ldiag
        ro(DType::I32),                                 // cols
        ro(DType::I32),                                 // rptr
    ];
    let store_value = if divide {
        Expr::bin(
            Div,
            Expr::bin(Sub, Expr::index(0, Expr::Local(0)), Expr::Local(2)),
            Expr::index(2, Expr::Local(0)),
        )
    } else {
        Expr::bin(
            Sub,
            Expr::index(0, Expr::Local(0)),
            Expr::bin(Div, Expr::Local(2), Expr::index(2, Expr::Local(0))),
        )
    };
    let body = vec![
        Stmt::SetLocal(1, Expr::ParamLen(0)),
        Stmt::SetLocal(2, Expr::Const(Value::F32(0.0))),
        Stmt::SetLocal(3, Expr::index(4, Expr::Local(0))),
        Stmt::SetLocal(
            4,
            Expr::index(4, Expr::bin(Add, Expr::Local(0), Expr::Const(Value::I32(1)))),
        ),
        Stmt::For {
            local: 5,
            start: Expr::Local(3),
            end: Expr::Local(4),
            step: Expr::Const(Value::I32(1)),
            body: vec![
                Stmt::SetLocal(6, Expr::index(3, Expr::Local(5))),
                Stmt::If {
                    cond: Expr::bin(
                        And,
                        Expr::bin(Gt, Expr::Local(6), Expr::Local(0)),
                        Expr::bin(Lt, Expr::Local(6), Expr::Local(1)),
                    ),
                    then: vec![Stmt::SetLocal(
                        2,
                        Expr::bin(
                            Add,
                            Expr::Local(2),
                            Expr::bin(
                                Mul,
                                Expr::index(1, Expr::Local(5)),
                                Expr::index(0, Expr::Local(6)),
                            ),
                        ),
                    )],
                    otherwise: vec![],
                },
            ],
        },
        Stmt::Store { param: 0, index: Expr::Local(0), value: store_value },
    ];
    (params, 7, body)
}

fn matches_template(c: &Codelet, t: &(Vec<ParamDecl>, usize, Vec<Stmt>)) -> bool {
    c.params == t.0 && c.num_locals == t.1 && c.body == t.2
}

fn match_spmv(c: &Codelet) -> Option<FusedKernel> {
    for residual in [false, true] {
        if matches_template(c, &spmv_template(residual)) {
            return Some(FusedKernel::Spmv(SpmvKernel { residual }));
        }
    }
    None
}

fn match_subst(c: &Codelet) -> Option<FusedKernel> {
    for divide in [false, true] {
        if matches_template(c, &forward_subst_template(divide)) {
            return Some(FusedKernel::Subst(SubstKernel { kind: SubstKind::Forward { divide } }));
        }
        if matches_template(c, &backward_subst_template(divide)) {
            return Some(FusedKernel::Subst(SubstKernel { kind: SubstKind::Backward { divide } }));
        }
    }
    None
}

/// The fused element-wise map shape `DslCtx::assign` lowers to:
/// one `ParFor` over `Local(0)` holding a single store at the loop index.
fn match_map(c: &Codelet, cost: &CostModel) -> Option<FusedKernel> {
    let [Stmt::ParFor { local: 0, start, end, body }] = c.body.as_slice() else {
        return None;
    };
    if *start != Expr::Const(Value::I32(0)) {
        return None;
    }
    let Expr::ParamLen(lead) = end else {
        return None;
    };
    let [Stmt::Store { param: dst, index: Expr::Local(0), value }] = body.as_slice() else {
        return None;
    };
    if !expr_uses_only_local0(value) {
        return None;
    }
    let (vc, _) = expr_charge(value, &c.params, cost)?;
    let dst_dt = c.params[*dst].dtype;
    let store = Charge {
        cycles: cost.op_cycles(Op::Store, dst_dt),
        flops: 0,
        mem: dst_dt.size_bytes() as u64,
    };
    let iter = Charge::cy(cost.op_cycles(Op::LoopStep, DType::I32)).plus(vc).plus(store);
    Some(FusedKernel::Map(MapKernel {
        dst: *dst,
        lead: *lead,
        decls: c.params.iter().map(|p| p.dtype).collect(),
        iter,
        value: value.clone(),
        tree: compile_tree(value, &c.params),
    }))
}

/// The worker-parallel reduction shape (`DslCtx`'s `reduce1`): zero an
/// accumulator local, fold `acc = acc + f(i)` over a `ParFor`, store once.
fn match_reduce(c: &Codelet, cost: &CostModel) -> Option<FusedKernel> {
    let [Stmt::SetLocal(acc, Expr::Const(zero)), Stmt::ParFor { local: 0, start, end, body }, Stmt::Store { param: 0, index: Expr::Const(Value::I32(0)), value: Expr::Local(acc_s) }] =
        c.body.as_slice()
    else {
        return None;
    };
    if *acc == 0 || acc_s != acc || *start != Expr::Const(Value::I32(0)) {
        return None;
    }
    let Expr::ParamLen(lead) = end else {
        return None;
    };
    let [Stmt::SetLocal(acc_b, Expr::Binary { op: BinOp::Add, lhs, rhs })] = body.as_slice() else {
        return None;
    };
    if acc_b != acc || **lhs != Expr::Local(*acc) || !expr_uses_only_local0(rhs) {
        return None;
    }
    let acc_dt = zero.dtype();
    let (vc, vdt) = expr_charge(rhs, &c.params, cost)?;
    // The accumulator's dtype must be a fixed point of the promotion, or
    // the per-iteration add charge would drift.
    if promote(acc_dt, vdt) != acc_dt {
        return None;
    }
    let mixed = acc_dt == DType::DoubleWord && vdt == DType::F32;
    let add_c =
        if mixed { cost.op_cycles_mixed_dw(Op::Add) } else { cost.op_cycles(Op::Add, acc_dt) };
    let add = Charge { cycles: add_c, flops: cost.op_flops(Op::Add, acc_dt), mem: 0 };
    let iter = Charge::cy(cost.op_cycles(Op::LoopStep, DType::I32)).plus(vc).plus(add);
    let dst_dt = c.params[0].dtype;
    let fin = Charge {
        cycles: cost.op_cycles(Op::Store, dst_dt),
        flops: 0,
        mem: dst_dt.size_bytes() as u64,
    };
    Some(FusedKernel::Reduce(ReduceKernel {
        lead: *lead,
        decls: c.params.iter().map(|p| p.dtype).collect(),
        zero: *zero,
        iter,
        fin,
        value: (**rhs).clone(),
        tree: compile_tree(rhs, &c.params),
    }))
}

/// The serial combiner shape (`DslCtx`'s `sum_codelet`, used by the
/// hierarchical reduce tree): `out[0] = Σ in[i]` over a plain `For`.
fn match_sum(c: &Codelet, cost: &CostModel) -> Option<FusedKernel> {
    if c.params.len() != 2 || !c.params[0].mutable || c.params[1].mutable {
        return None;
    }
    let [Stmt::SetLocal(1, Expr::Const(zero)), Stmt::For { local: 0, start, end, step, body }, Stmt::Store { param: 0, index: Expr::Const(Value::I32(0)), value: Expr::Local(1) }] =
        c.body.as_slice()
    else {
        return None;
    };
    if *start != Expr::Const(Value::I32(0))
        || *end != Expr::ParamLen(1)
        || *step != Expr::Const(Value::I32(1))
    {
        return None;
    }
    let expected =
        Stmt::SetLocal(1, Expr::bin(BinOp::Add, Expr::Local(1), Expr::index(1, Expr::Local(0))));
    if body.len() != 1 || body[0] != expected {
        return None;
    }
    let in_dt = c.params[1].dtype;
    let acc_dt = zero.dtype();
    if acc_dt != in_dt
        || !matches!(acc_dt, DType::F32 | DType::I32 | DType::DoubleWord | DType::F64Emulated)
    {
        return None;
    }
    let load = Charge {
        cycles: cost.op_cycles(Op::Load, in_dt),
        flops: 0,
        mem: in_dt.size_bytes() as u64,
    };
    let add = Charge {
        cycles: cost.op_cycles(Op::Add, acc_dt),
        flops: cost.op_flops(Op::Add, acc_dt),
        mem: 0,
    };
    let iter = Charge::cy(cost.op_cycles(Op::LoopStep, DType::I32)).plus(load).plus(add);
    let dst_dt = c.params[0].dtype;
    let fin = Charge {
        cycles: cost.op_cycles(Op::Store, dst_dt),
        flops: 0,
        mem: dst_dt.size_bytes() as u64,
    };
    Some(FusedKernel::Sum(SumKernel {
        decls: c.params.iter().map(|p| p.dtype).collect(),
        zero: *zero,
        iter,
        fin,
    }))
}

fn match_codelet(c: &Codelet, cost: &CostModel) -> Option<FusedKernel> {
    match_spmv(c)
        .or_else(|| match_subst(c))
        .or_else(|| match_sum(c, cost))
        .or_else(|| match_reduce(c, cost))
        .or_else(|| match_map(c, cost))
}

/// The plan-time kernel selection: one optional fused kernel per codelet.
#[derive(Clone, Debug, Default)]
pub struct KernelTable {
    kernels: Vec<Option<FusedKernel>>,
}

impl KernelTable {
    /// Pattern-match every codelet in the graph against the library.
    pub fn build(graph: &Graph) -> KernelTable {
        KernelTable {
            kernels: graph.codelets.iter().map(|c| match_codelet(c, &graph.cost)).collect(),
        }
    }

    /// A table that fuses nothing (`GRAPHENE_NATIVE=0`): the native
    /// executor runs, but every vertex takes the interpreter fallback.
    pub fn disabled(graph: &Graph) -> KernelTable {
        KernelTable { kernels: vec![None; graph.codelets.len()] }
    }

    pub fn get(&self, codelet: usize) -> Option<&FusedKernel> {
        self.kernels.get(codelet).and_then(|k| k.as_ref())
    }

    /// `(codelet name, fused kernel name)` for each codelet, `None` where
    /// the codelet falls back to the interpreter.
    pub fn selection<'g>(&self, graph: &'g Graph) -> Vec<(&'g str, Option<&'static str>)> {
        graph
            .codelets
            .iter()
            .zip(&self.kernels)
            .map(|(c, k)| (c.name.as_str(), k.as_ref().map(|k| k.name())))
            .collect()
    }

    pub fn fused_count(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_some()).count()
    }

    pub fn total(&self) -> usize {
        self.kernels.len()
    }
}

// ---------------------------------------------------------------------------
// Differential tests: every kernel vs the interpreter, on adversarial
// operand layouts. The contract under test is *exact* equality — output
// bits, cycles, flops and SRAM bytes.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::Interp;
    use twofloat::SoftDouble;

    const WORKERS: u64 = 6;

    fn cm() -> CostModel {
        CostModel::default()
    }

    fn codelet(name: &str, params: Vec<ParamDecl>, num_locals: usize, body: Vec<Stmt>) -> Codelet {
        let c = Codelet { name: name.into(), params, num_locals, body };
        c.validate().expect("test codelet validates");
        c
    }

    fn from_template(name: &str, t: (Vec<ParamDecl>, usize, Vec<Stmt>)) -> Codelet {
        codelet(name, t.0, t.1, t.2)
    }

    fn mutp(dtype: DType) -> ParamDecl {
        ParamDecl { dtype, mutable: true }
    }

    fn rop(dtype: DType) -> ParamDecl {
        ParamDecl { dtype, mutable: false }
    }

    /// Exactly `run_vertex`'s Simple arm.
    fn interp_simple(c: &Codelet, params: &mut [ParamData], cost: &CostModel) -> KernelRun {
        let mut it = Interp::new(cost, params, c.num_locals, WORKERS);
        let cycles = it.run(&c.body);
        KernelRun { cycles, flops: it.flops, mem_bytes: it.mem_bytes }
    }

    /// Exactly `run_vertex`'s LevelSet arm.
    fn interp_level_set(
        c: &Codelet,
        params: &mut [ParamData],
        levels: &[Vec<usize>],
        cost: &CostModel,
    ) -> KernelRun {
        let mut it = Interp::new(cost, params, c.num_locals, WORKERS);
        let mut row_cost: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for level in levels {
            for &row in level {
                it.locals[0] = Value::I32(row as i32);
                let before = it.cycles;
                it.run(&c.body);
                row_cost.insert(row, it.cycles - before);
            }
        }
        let schedule = LevelSchedule::build(levels, WORKERS as usize, |i| row_cost[&i]);
        KernelRun {
            cycles: schedule.cycles(|i| row_cost[&i], cost),
            flops: it.flops,
            mem_bytes: it.mem_bytes,
        }
    }

    fn f32_bits(s: &[f32]) -> Vec<u32> {
        s.iter().map(|v| v.to_bits()).collect()
    }

    // ------------------------------------------------------------------
    // SpMV
    // ------------------------------------------------------------------

    /// Ragged CSR with an empty row and a single-entry row.
    fn csr() -> (Vec<i32>, Vec<i32>, Vec<f32>, Vec<f32>) {
        let rptr = vec![0, 2, 2, 5, 6, 6, 10];
        let cols = vec![1, 3, 0, 2, 5, 4, 0, 2, 3, 5];
        let vals: Vec<f32> = (0..10).map(|i| 0.3 + 0.17 * i as f32).collect();
        let diag: Vec<f32> = (0..6).map(|i| 1.5 - 0.1 * i as f32).collect();
        (rptr, cols, vals, diag)
    }

    #[test]
    fn spmv_f32_matches_interpreter() {
        let cost = cm();
        let c = from_template("spmv", spmv_template(false));
        let k = match_codelet(&c, &cost).expect("spmv template matches");
        assert_eq!(k.name(), "spmv");
        let (rptr, cols, vals, diag) = csr();
        let x: Vec<f32> = (0..6).map(|i| (0.37 * i as f32).sin()).collect();
        let mut y_int = vec![0.0f32; 6];
        let mut y_nat = vec![0.0f32; 6];
        let ri = {
            let mut p = vec![
                ParamData::F32(&mut y_int),
                ParamData::F32Ro(&x),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![
                ParamData::F32(&mut y_nat),
                ParamData::F32Ro(&x),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
        };
        assert_eq!(ri, rn);
        assert_eq!(f32_bits(&y_int), f32_bits(&y_nat));
    }

    #[test]
    fn spmv_empty_matrix_matches_interpreter() {
        let cost = cm();
        let c = from_template("spmv", spmv_template(false));
        let k = match_codelet(&c, &cost).unwrap();
        let rptr = vec![0i32];
        let (cols, vals, diag, x): (Vec<i32>, Vec<f32>, Vec<f32>, Vec<f32>) =
            (vec![], vec![], vec![], vec![]);
        let mut y_int: Vec<f32> = vec![];
        let mut y_nat: Vec<f32> = vec![];
        let ri = {
            let mut p = vec![
                ParamData::F32(&mut y_int),
                ParamData::F32Ro(&x),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![
                ParamData::F32(&mut y_nat),
                ParamData::F32Ro(&x),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).unwrap()
        };
        assert_eq!(ri, rn);
    }

    #[test]
    fn spmv_dw_and_f64_x_match_interpreter() {
        let cost = cm();
        let c = from_template("spmv", spmv_template(false));
        let k = match_codelet(&c, &cost).unwrap();
        let (rptr, cols, vals, diag) = csr();
        // Dw x and y (the MPIR inner-residual layout).
        let xd: Vec<TwoF32> = (0..6).map(|i| TwoFloat::from_f64(1.0 / (3.0 + i as f64))).collect();
        let mut yd_int = vec![TwoF32::from_f64(0.0); 6];
        let mut yd_nat = vec![TwoF32::from_f64(0.0); 6];
        let ri = {
            let mut p = vec![
                ParamData::Dw(&mut yd_int),
                ParamData::DwRo(&xd),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![
                ParamData::Dw(&mut yd_nat),
                ParamData::DwRo(&xd),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).unwrap()
        };
        assert_eq!(ri, rn);
        assert_eq!(yd_int, yd_nat);

        // F64-emulated x and y.
        let xq: Vec<SoftDouble> = (0..6).map(|i| SoftDouble(1.0 / (3.0 + i as f64))).collect();
        let mut yq_int = vec![SoftDouble(0.0); 6];
        let mut yq_nat = vec![SoftDouble(0.0); 6];
        let ri = {
            let mut p = vec![
                ParamData::F64(&mut yq_int),
                ParamData::F64Ro(&xq),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![
                ParamData::F64(&mut yq_nat),
                ParamData::F64Ro(&xq),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).unwrap()
        };
        assert_eq!(ri, rn);
        let bits = |s: &[SoftDouble]| s.iter().map(|v| v.0.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&yq_int), bits(&yq_nat));
    }

    #[test]
    fn spmv_residual_mixed_dw_matches_interpreter() {
        let cost = cm();
        let c = from_template("spmv_residual", spmv_template(true));
        let k = match_codelet(&c, &cost).expect("residual template matches");
        assert_eq!(k.name(), "spmv_residual");
        let (rptr, cols, vals, diag) = csr();
        // Dw x against an f32 b: exercises the mixed-precision subtract.
        let xd: Vec<TwoF32> = (0..6).map(|i| TwoFloat::from_f64(0.21 * (i as f64 + 1.0))).collect();
        let b: Vec<f32> = (0..6).map(|i| 2.0 - 0.3 * i as f32).collect();
        let mut y_int = vec![TwoF32::from_f64(0.0); 6];
        let mut y_nat = vec![TwoF32::from_f64(0.0); 6];
        let ri = {
            let mut p = vec![
                ParamData::Dw(&mut y_int),
                ParamData::DwRo(&xd),
                ParamData::F32Ro(&b),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![
                ParamData::Dw(&mut y_nat),
                ParamData::DwRo(&xd),
                ParamData::F32Ro(&b),
                ParamData::F32Ro(&diag),
                ParamData::F32Ro(&vals),
                ParamData::I32Ro(&cols),
                ParamData::I32Ro(&rptr),
            ];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).unwrap()
        };
        assert_eq!(ri, rn);
        assert_eq!(y_int, y_nat);
    }

    #[test]
    fn spmv_declines_unexpected_storage() {
        let cost = cm();
        let c = from_template("spmv", spmv_template(false));
        let k = match_codelet(&c, &cost).unwrap();
        // I32 x is not one of the monomorphised accumulation domains.
        let rptr = vec![0i32, 1];
        let cols = vec![0i32];
        let vals = vec![1.0f32];
        let diag = vec![1.0f32];
        let x = vec![3i32];
        let mut y = vec![0.0f32; 1];
        let mut p = vec![
            ParamData::F32(&mut y),
            ParamData::I32Ro(&x),
            ParamData::F32Ro(&diag),
            ParamData::F32Ro(&vals),
            ParamData::I32Ro(&cols),
            ParamData::I32Ro(&rptr),
        ];
        assert!(k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).is_none());
    }

    // ------------------------------------------------------------------
    // Triangular sweeps
    // ------------------------------------------------------------------

    /// Strictly-lower CSR structure for n=5 plus a not-taken entry (j >= i)
    /// to exercise the branch, and an empty row.
    fn lower() -> (Vec<i32>, Vec<i32>, Vec<f32>, Vec<f32>, Vec<Vec<usize>>) {
        let rptr = vec![0, 1, 2, 2, 5, 7];
        let cols = vec![0, 0, 0, 1, 3, 2, 4]; // row 0: j=0 (not taken: j==i)
        let vals: Vec<f32> = (0..7).map(|i| 0.4 + 0.11 * i as f32).collect();
        let diag: Vec<f32> = (0..5).map(|i| 2.0 + 0.25 * i as f32).collect();
        let levels = vec![vec![0, 1, 2], vec![3], vec![4]];
        (rptr, cols, vals, diag, levels)
    }

    #[test]
    fn forward_subst_matches_interpreter() {
        let cost = cm();
        for divide in [false, true] {
            let c = from_template("fwd", forward_subst_template(divide));
            let k = match_codelet(&c, &cost).expect("forward template matches");
            assert_eq!(k.name(), if divide { "forward_subst_div" } else { "forward_subst" });
            let (rptr, cols, vals, diag, levels) = lower();
            let b: Vec<f32> = (0..5).map(|i| 1.0 + 0.5 * i as f32).collect();
            let mut w_int = vec![0.0f32; 5];
            let mut w_nat = vec![0.0f32; 5];
            let ri = {
                let mut p = vec![
                    ParamData::F32(&mut w_int),
                    ParamData::F32Ro(&b),
                    ParamData::F32Ro(&vals),
                    ParamData::F32Ro(&diag),
                    ParamData::I32Ro(&cols),
                    ParamData::I32Ro(&rptr),
                ];
                interp_level_set(&c, &mut p, &levels, &cost)
            };
            let rn = {
                let mut p = vec![
                    ParamData::F32(&mut w_nat),
                    ParamData::F32Ro(&b),
                    ParamData::F32Ro(&vals),
                    ParamData::F32Ro(&diag),
                    ParamData::I32Ro(&cols),
                    ParamData::I32Ro(&rptr),
                ];
                k.run(&VertexKind::LevelSet { levels: levels.clone() }, &mut p, &cost, WORKERS)
                    .expect("layout accepted")
            };
            assert_eq!(ri, rn, "divide={divide}");
            assert_eq!(f32_bits(&w_int), f32_bits(&w_nat), "divide={divide}");
        }
    }

    #[test]
    fn backward_subst_matches_interpreter() {
        let cost = cm();
        for divide in [false, true] {
            let c = from_template("bwd", backward_subst_template(divide));
            let k = match_codelet(&c, &cost).expect("backward template matches");
            assert_eq!(k.name(), if divide { "backward_subst_div" } else { "backward_subst" });
            // Strictly-upper structure, plus j==i and j==n guards.
            let rptr = vec![0, 2, 4, 5, 6, 6];
            let cols = vec![1, 4, 2, 1, 4, 3, 5]; // j==1 on row 1 not taken; cols[6] unused
            let vals: Vec<f32> = (0..7).map(|i| 0.3 + 0.13 * i as f32).collect();
            let diag: Vec<f32> = (0..5).map(|i| 1.5 + 0.2 * i as f32).collect();
            let levels = vec![vec![4, 3], vec![2, 1], vec![0]];
            let w0: Vec<f32> = (0..5).map(|i| (0.9 * i as f32).cos()).collect();
            let mut w_int = w0.clone();
            let mut w_nat = w0.clone();
            let ri = {
                let mut p = vec![
                    ParamData::F32(&mut w_int),
                    ParamData::F32Ro(&vals),
                    ParamData::F32Ro(&diag),
                    ParamData::I32Ro(&cols),
                    ParamData::I32Ro(&rptr),
                ];
                interp_level_set(&c, &mut p, &levels, &cost)
            };
            let rn = {
                let mut p = vec![
                    ParamData::F32(&mut w_nat),
                    ParamData::F32Ro(&vals),
                    ParamData::F32Ro(&diag),
                    ParamData::I32Ro(&cols),
                    ParamData::I32Ro(&rptr),
                ];
                k.run(&VertexKind::LevelSet { levels: levels.clone() }, &mut p, &cost, WORKERS)
                    .expect("layout accepted")
            };
            assert_eq!(ri, rn, "divide={divide}");
            assert_eq!(f32_bits(&w_int), f32_bits(&w_nat), "divide={divide}");
        }
    }

    #[test]
    fn subst_requires_level_set_vertex() {
        let cost = cm();
        let c = from_template("fwd", forward_subst_template(true));
        let k = match_codelet(&c, &cost).unwrap();
        let rptr = vec![0i32, 0];
        let (cols, vals): (Vec<i32>, Vec<f32>) = (vec![], vec![]);
        let diag = vec![1.0f32];
        let b = vec![1.0f32];
        let mut w = vec![0.0f32];
        let mut p = vec![
            ParamData::F32(&mut w),
            ParamData::F32Ro(&b),
            ParamData::F32Ro(&vals),
            ParamData::F32Ro(&diag),
            ParamData::I32Ro(&cols),
            ParamData::I32Ro(&rptr),
        ];
        assert!(k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).is_none());
    }

    // ------------------------------------------------------------------
    // Map / reduce / sum
    // ------------------------------------------------------------------

    /// `y[i] = y[i] + a[0] * x[i]` — in-place axpy, the canonical map.
    fn axpy_codelet(dy: DType, dx: DType, da: DType) -> Codelet {
        codelet(
            "axpy",
            vec![mutp(dy), rop(dx), rop(da)],
            1,
            vec![Stmt::ParFor {
                local: 0,
                start: Expr::Const(Value::I32(0)),
                end: Expr::ParamLen(0),
                body: vec![Stmt::Store {
                    param: 0,
                    index: Expr::Local(0),
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::index(0, Expr::Local(0)),
                        Expr::bin(
                            BinOp::Mul,
                            Expr::index(2, Expr::Const(Value::I32(0))),
                            Expr::index(1, Expr::Local(0)),
                        ),
                    ),
                }],
            }],
        )
    }

    #[test]
    fn map_axpy_matches_interpreter() {
        let cost = cm();
        let c = axpy_codelet(DType::F32, DType::F32, DType::F32);
        let k = match_codelet(&c, &cost).expect("axpy is a map");
        assert_eq!(k.name(), "map");
        for n in [0usize, 1, 7] {
            let x: Vec<f32> = (0..n).map(|i| (0.31 * i as f32).sin()).collect();
            let a = vec![0.75f32];
            let y0: Vec<f32> = (0..n).map(|i| 1.0 - 0.2 * i as f32).collect();
            let mut y_int = y0.clone();
            let mut y_nat = y0.clone();
            let ri = {
                let mut p =
                    vec![ParamData::F32(&mut y_int), ParamData::F32Ro(&x), ParamData::F32Ro(&a)];
                interp_simple(&c, &mut p, &cost)
            };
            let rn = {
                let mut p =
                    vec![ParamData::F32(&mut y_nat), ParamData::F32Ro(&x), ParamData::F32Ro(&a)];
                k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
            };
            assert_eq!(ri, rn, "n={n}");
            assert_eq!(f32_bits(&y_int), f32_bits(&y_nat), "n={n}");
        }
    }

    #[test]
    fn map_mixed_dw_axpy_matches_interpreter() {
        // Dw destination, Dw scalar, f32 x: mixed-precision multiply plus
        // the exact f32 -> Dw lift on the add.
        let cost = cm();
        let c = axpy_codelet(DType::DoubleWord, DType::F32, DType::DoubleWord);
        let k = match_codelet(&c, &cost).expect("mixed axpy is a map");
        let n = 6;
        let x: Vec<f32> = (0..n).map(|i| (0.41 * i as f32).cos()).collect();
        let a = vec![TwoFloat::from_f64(1.0 / 3.0)];
        let y0: Vec<TwoF32> = (0..n).map(|i| TwoFloat::from_f64(0.7 + 0.1 * i as f64)).collect();
        let mut y_int = y0.clone();
        let mut y_nat = y0;
        let ri = {
            let mut p = vec![ParamData::Dw(&mut y_int), ParamData::F32Ro(&x), ParamData::DwRo(&a)];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![ParamData::Dw(&mut y_nat), ParamData::F32Ro(&x), ParamData::DwRo(&a)];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
        };
        assert_eq!(ri, rn);
        assert_eq!(y_int, y_nat);
    }

    #[test]
    fn map_declines_storage_dtype_mismatch() {
        // Matched for f32 decls; at run time the destination arrives as Dw
        // (a tensor the planner retyped) -> decline, interpreter fallback.
        let cost = cm();
        let c = axpy_codelet(DType::F32, DType::F32, DType::F32);
        let k = match_codelet(&c, &cost).unwrap();
        let x = vec![1.0f32, 2.0];
        let a = vec![0.5f32];
        let mut y = vec![TwoFloat::from_f64(0.0); 2];
        let mut p = vec![ParamData::Dw(&mut y), ParamData::F32Ro(&x), ParamData::F32Ro(&a)];
        assert!(k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).is_none());
    }

    /// `out[0] = sum_i x[i] * y[i]` with an explicit accumulator dtype.
    fn dot_codelet(dacc: Value, dout: DType, dx: DType, dy: DType) -> Codelet {
        codelet(
            "dot",
            vec![mutp(dout), rop(dx), rop(dy)],
            2,
            vec![
                Stmt::SetLocal(1, Expr::Const(dacc)),
                Stmt::ParFor {
                    local: 0,
                    start: Expr::Const(Value::I32(0)),
                    end: Expr::ParamLen(1),
                    body: vec![Stmt::SetLocal(
                        1,
                        Expr::bin(
                            BinOp::Add,
                            Expr::Local(1),
                            Expr::bin(
                                BinOp::Mul,
                                Expr::index(1, Expr::Local(0)),
                                Expr::index(2, Expr::Local(0)),
                            ),
                        ),
                    )],
                },
                Stmt::Store { param: 0, index: Expr::Const(Value::I32(0)), value: Expr::Local(1) },
            ],
        )
    }

    #[test]
    fn reduce_dot_matches_interpreter() {
        let cost = cm();
        let c = dot_codelet(Value::F32(0.0), DType::F32, DType::F32, DType::F32);
        let k = match_codelet(&c, &cost).expect("dot is a reduce");
        assert_eq!(k.name(), "reduce");
        for n in [0usize, 1, 9] {
            let x: Vec<f32> = (0..n).map(|i| (0.23 * i as f32).sin()).collect();
            let y: Vec<f32> = (0..n).map(|i| 1.0 + 0.05 * i as f32).collect();
            let mut o_int = vec![0.0f32];
            let mut o_nat = vec![0.0f32];
            let ri = {
                let mut p =
                    vec![ParamData::F32(&mut o_int), ParamData::F32Ro(&x), ParamData::F32Ro(&y)];
                interp_simple(&c, &mut p, &cost)
            };
            let rn = {
                let mut p =
                    vec![ParamData::F32(&mut o_nat), ParamData::F32Ro(&x), ParamData::F32Ro(&y)];
                k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
            };
            assert_eq!(ri, rn, "n={n}");
            assert_eq!(o_int[0].to_bits(), o_nat[0].to_bits(), "n={n}");
        }
    }

    #[test]
    fn reduce_dw_accumulator_over_f32_terms_matches_interpreter() {
        // Dw accumulator folding f32 products: the mixed-precision add and
        // the exact from_f lift, per iteration.
        let cost = cm();
        let c = dot_codelet(
            Value::Dw(TwoFloat::from_f64(0.0)),
            DType::DoubleWord,
            DType::F32,
            DType::F32,
        );
        let k = match_codelet(&c, &cost).expect("dw dot is a reduce");
        let n = 11;
        let x: Vec<f32> = (0..n).map(|i| (0.19 * i as f32).cos()).collect();
        let y: Vec<f32> = (0..n).map(|i| 0.6 + 0.07 * i as f32).collect();
        let mut o_int = vec![TwoFloat::from_f64(0.0)];
        let mut o_nat = vec![TwoFloat::from_f64(0.0)];
        let ri = {
            let mut p = vec![ParamData::Dw(&mut o_int), ParamData::F32Ro(&x), ParamData::F32Ro(&y)];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![ParamData::Dw(&mut o_nat), ParamData::F32Ro(&x), ParamData::F32Ro(&y)];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
        };
        assert_eq!(ri, rn);
        assert_eq!(o_int, o_nat);
    }

    /// The reduce-tree combiner: `out[0] = sum_i in[i]` over a serial For.
    fn sum_codelet(zero: Value, dt: DType) -> Codelet {
        codelet(
            "sum",
            vec![mutp(dt), rop(dt)],
            2,
            vec![
                Stmt::SetLocal(1, Expr::Const(zero)),
                Stmt::For {
                    local: 0,
                    start: Expr::Const(Value::I32(0)),
                    end: Expr::ParamLen(1),
                    step: Expr::Const(Value::I32(1)),
                    body: vec![Stmt::SetLocal(
                        1,
                        Expr::bin(BinOp::Add, Expr::Local(1), Expr::index(1, Expr::Local(0))),
                    )],
                },
                Stmt::Store { param: 0, index: Expr::Const(Value::I32(0)), value: Expr::Local(1) },
            ],
        )
    }

    #[test]
    fn sum_f32_matches_interpreter() {
        let cost = cm();
        let c = sum_codelet(Value::F32(0.0), DType::F32);
        let k = match_codelet(&c, &cost).expect("combiner is a sum");
        assert_eq!(k.name(), "sum");
        for n in [0usize, 1, 8] {
            let xs: Vec<f32> = (0..n).map(|i| (0.51 * i as f32).sin()).collect();
            let mut o_int = vec![0.0f32];
            let mut o_nat = vec![0.0f32];
            let ri = {
                let mut p = vec![ParamData::F32(&mut o_int), ParamData::F32Ro(&xs)];
                interp_simple(&c, &mut p, &cost)
            };
            let rn = {
                let mut p = vec![ParamData::F32(&mut o_nat), ParamData::F32Ro(&xs)];
                k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
            };
            assert_eq!(ri, rn, "n={n}");
            assert_eq!(o_int[0].to_bits(), o_nat[0].to_bits(), "n={n}");
        }
    }

    #[test]
    fn sum_i32_truncation_matches_interpreter() {
        // The interpreter's I32 domain adds in i64 then truncates to i32 at
        // every step; i32::MAX inputs make a wrapping-add shortcut visible.
        let cost = cm();
        let c = sum_codelet(Value::I32(0), DType::I32);
        let k = match_codelet(&c, &cost).expect("i32 combiner is a sum");
        let xs = vec![i32::MAX, 1, i32::MAX, -7, 123_456_789];
        let mut o_int = vec![0i32];
        let mut o_nat = vec![0i32];
        let ri = {
            let mut p = vec![ParamData::I32(&mut o_int), ParamData::I32Ro(&xs)];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![ParamData::I32(&mut o_nat), ParamData::I32Ro(&xs)];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).expect("layout accepted")
        };
        assert_eq!(ri, rn);
        assert_eq!(o_int, o_nat);
    }

    #[test]
    fn sum_dw_matches_interpreter() {
        let cost = cm();
        let c = sum_codelet(Value::Dw(TwoFloat::from_f64(0.0)), DType::DoubleWord);
        let k = match_codelet(&c, &cost).unwrap();
        let xs: Vec<TwoF32> = (0..7).map(|i| TwoFloat::from_f64(0.1 * i as f64 + 1e-9)).collect();
        let mut o_int = vec![TwoFloat::from_f64(0.0)];
        let mut o_nat = vec![TwoFloat::from_f64(0.0)];
        let ri = {
            let mut p = vec![ParamData::Dw(&mut o_int), ParamData::DwRo(&xs)];
            interp_simple(&c, &mut p, &cost)
        };
        let rn = {
            let mut p = vec![ParamData::Dw(&mut o_nat), ParamData::DwRo(&xs)];
            k.run(&VertexKind::Simple, &mut p, &cost, WORKERS).unwrap()
        };
        assert_eq!(ri, rn);
        assert_eq!(o_int, o_nat);
    }

    #[test]
    fn matcher_rejects_near_misses() {
        let cost = cm();
        // A map whose value reads a *different* element than the loop index
        // — stays a map only if the expression uses Local(0) exclusively;
        // reading Local(1) must fail the match.
        let c = codelet(
            "shift",
            vec![mutp(DType::F32), rop(DType::F32)],
            2,
            vec![Stmt::ParFor {
                local: 0,
                start: Expr::Const(Value::I32(0)),
                end: Expr::ParamLen(0),
                body: vec![Stmt::Store {
                    param: 0,
                    index: Expr::Local(0),
                    value: Expr::index(1, Expr::Local(1)),
                }],
            }],
        );
        assert!(match_codelet(&c, &cost).is_none());
        // A reduce whose accumulator would narrow per iteration (f32 acc
        // over Dw terms: promote(F32, Dw) != F32) must fall back.
        let c = dot_codelet(Value::F32(0.0), DType::F32, DType::DoubleWord, DType::F32);
        assert!(match_codelet(&c, &cost).is_none());
    }
}
