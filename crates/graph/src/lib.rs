//! # graph — the Poplar-style programming model
//!
//! Poplar programs consist of three artifacts (paper §II-A):
//!
//! 1. a **dataflow graph**: tensors (with an explicit mapping of elements to
//!    tiles) and *vertices* — codelet instances bound to tensor slices —
//!    grouped into **compute sets** of parallel-executable vertices;
//! 2. an **execution schedule**: a DAG of *program steps* (execute a
//!    compute set, copy/exchange tensors, loop, branch, call the host);
//! 3. **codelets**: the per-tile computational kernels.
//!
//! This crate reproduces that model against the [`ipu_sim`] machine.
//! Codelets are not C++ compiled to machine code but a small, typed,
//! dynamically-checked IR ([`codelet`]) interpreted with *per-operation
//! cycle accounting* — every arithmetic node charges the paper's Table I
//! cost for its runtime type, every BSP superstep takes the per-tile
//! maximum, every exchange is costed by the fabric model. The observable
//! behaviour (results + cycle profile) matches what Poplar's profiler
//! reports on real hardware; only the substrate differs.
//!
//! The [`dsl`](https://crates.io/crates/graphene-dsl) crate layers CodeDSL
//! and TensorDSL on top of this API; nothing here is DSL-specific.

pub mod codelet;
pub mod compute;
pub mod engine;
pub mod graph;
pub mod kernels;
pub mod passes;
pub mod perf;
pub mod plan;
pub mod program;
pub mod tensor;

pub use codelet::{
    BinOp, Codelet, CodeletId, Expr, LocalId, ParamDecl, ParamId, Stmt, UnOp, Value,
};
pub use compute::{ComputeSet, ComputeSetId, Vertex, VertexKind};
pub use engine::{parallel_hazards, Engine, EngineOptions, ExecutorKind, FaultState};
pub use graph::{CompileError, Executable, Graph};
pub use kernels::{FusedKernel, KernelRun, KernelTable};
pub use passes::CompileOptions;
pub use plan::{ExecPlan, PlanStep, StepId};
pub use program::{ExchangeStep, Prog};
pub use tensor::{TensorChunk, TensorDef, TensorId};
