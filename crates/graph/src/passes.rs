//! The graph compiler's pass pipeline.
//!
//! `Graph::compile` lowers the [`Prog`] tree into an [`ExecPlan`] arena and
//! runs it through the passes in this module. *All* communication planning
//! lives here — the engine replays precomputed steps and never derives a
//! broadcast, an [`ExchangeProgram`] or a sync decision at run time (the
//! Poplar property the paper's BSP cost claims lean on: the compiler
//! schedules everything, the runtime replays a static plan).
//!
//! Pipeline:
//!
//! 1. **lowering** — structural translation of the `Prog` tree into arena
//!    steps (no costs yet); collects every `Callback` id for the engine's
//!    run-entry registration check.
//! 2. **`broadcast-planning`** *(mandatory)* — computes each `Execute`
//!    step's compiler-inserted broadcast (operand chunk walk, region
//!    dedup on the real `(tensor, start, len)` key), BSP sync cost and
//!    tile-grouped vertex spans.
//! 3. **`exchange-planning`** *(mandatory)* — resolves each
//!    `Exchange` phase's `BlockCopy`s, fabric cycles and sync decision,
//!    and each `Copy` step's per-tile memcpy cycles.
//! 4. **`cleanup`** *(optimising)* — removes `Nop`s, empty/singleton
//!    `Seq`s, `Repeat(0, _)` and label scopes with nothing inside. Only
//!    steps that record *nothing* are eliminated, so the cycle profile is
//!    bit-identical with the pass on or off.
//! 5. **`exchange-coalescing`** *(optimising)* — fuses adjacent
//!    `Exchange` dispatches inside a `Seq` into one multi-phase dispatch.
//!    Each phase keeps its own sync + exchange recording; only host
//!    dispatch overhead is removed.
//! 6. **`dead-code-analysis`** *(optimising, report-only)* — liveness of
//!    compute sets and tensors. Storage is indexed by `TensorId` and
//!    reachable from host APIs (`read_tensor`/callbacks), so nothing is
//!    deleted; the pass reports what a memory planner could reclaim.
//!
//! Every pass emits a [`PassStat`] (steps before/after + counters) into
//! the [`CompileReport`] stamped on the `Executable`.

use std::collections::{BTreeMap, HashSet};

use ipu_sim::exchange::{BlockCopy, ExchangeProgram, RegionKey};
use ipu_sim::model::{IpuModel, TileId};
use profile::{CompileReport, PassStat};

use crate::compute::ComputeSetId;
use crate::graph::Graph;
use crate::plan::{CopyStep, ExchangePhase, ExecPlan, ExecuteStep, PlanStep, StepId};
use crate::program::{ExchangeStep, Prog};
use crate::tensor::TensorId;
use ipu_sim::cost::Op;

/// Compile-time options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the optimising passes (cleanup, coalescing, dead-code
    /// analysis). The mandatory planning passes always run. Disable with
    /// `GRAPHENE_NO_OPT=1` to get a plan that mirrors the source tree
    /// step for step.
    pub optimise: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { optimise: true }
    }
}

impl CompileOptions {
    /// Read `GRAPHENE_NO_OPT`: `1`, `true`, `on` or `yes` disable the
    /// optimising passes; anything else (or unset) enables them.
    pub fn from_env() -> Self {
        match std::env::var("GRAPHENE_NO_OPT") {
            Ok(v) => Self::parse_no_opt(&v),
            Err(_) => CompileOptions::default(),
        }
    }

    fn parse_no_opt(v: &str) -> Self {
        match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => CompileOptions { optimise: false },
            _ => CompileOptions::default(),
        }
    }
}

/// Does the tile set span more than one chip?
pub(crate) fn spans_chips(model: &IpuModel, tiles: impl IntoIterator<Item = TileId>) -> bool {
    let mut it = tiles.into_iter();
    match it.next() {
        None => false,
        Some(first) => it.any(|t| !model.same_chip(first, t)),
    }
}

// ----------------------------------------------------------------------
// Step planners — the single home of communication/sync derivation.
// The compile-time passes call these over the arena; the legacy
// tree-walking interpreter (retained behind `GRAPHENE_LEGACY_INTERP` for
// differential testing) calls them per step at run time, which is exactly
// the per-iteration overhead the plan removes.
// ----------------------------------------------------------------------

/// Plan one `Prog::Execute`: the compiler-inserted broadcast for operands
/// resident on other tiles, the BSP sync cost, and the tile-grouped
/// vertex spans for the parallel host executor.
pub fn plan_execute(graph: &Graph, cs_id: ComputeSetId) -> ExecuteStep {
    let cs = &graph.compute_sets[cs_id];
    let model = &graph.model;
    let cost = &graph.cost;

    // The fabric moves each source region to each destination tile once,
    // however many vertices on that tile read it — dedup on
    // `(region, dst_tile)`. Regions are keyed by the real
    // `(tensor, start, len)` tuple, so distinct regions can never merge.
    let mut seen: HashSet<(RegionKey, TileId)> = HashSet::new();
    let mut bcast: Vec<BlockCopy> = Vec::new();
    for v in &cs.vertices {
        for op in &v.operands {
            let t = &graph.tensors[op.tensor];
            let end = op.start + op.len;
            let mut i = op.start;
            while i < end {
                let chunk = t.chunk_of(i).expect("slice validated at compile time");
                let stop = chunk.end().min(end);
                if chunk.tile != v.tile {
                    let src_region = RegionKey::new(op.tensor, i, stop - i);
                    if seen.insert((src_region, v.tile)) {
                        bcast.push(BlockCopy {
                            src_tile: chunk.tile,
                            dst_tile: v.tile,
                            bytes: (stop - i) * t.dtype.size_bytes(),
                            src_region,
                        });
                    }
                }
                i = stop;
            }
        }
    }

    // BSP sync before the compute set: every participating tile takes
    // part in the barrier — including the *source* tiles of the
    // compiler-inserted broadcast, which may sit on another chip even
    // when the vertices themselves do not.
    let tiles = cs.tiles();
    let participants = tiles.iter().copied().chain(bcast.iter().map(|c| c.src_tile));
    let sync_cycles = if spans_chips(model, participants) {
        cost.sync_inter_ipu_cycles
    } else {
        cost.sync_on_chip_cycles
    };

    // Vertex indices grouped by tile (tile-ascending, program order
    // within a tile) — the parallel executor's work list.
    let mut groups: BTreeMap<TileId, Vec<usize>> = BTreeMap::new();
    for (i, v) in cs.vertices.iter().enumerate() {
        groups.entry(v.tile).or_default().push(i);
    }

    let bcast = ExchangeProgram::new(bcast);
    let bcast_cycles = bcast.cycles(model, cost);
    ExecuteStep {
        cs: cs_id,
        name: cs.name.clone(),
        bcast_name: format!("bcast:{}", cs.name),
        bcast,
        bcast_cycles,
        sync_cycles,
        tile_groups: groups.into_iter().collect(),
    }
}

/// Plan one `Prog::Exchange`: resolve the element copies to costed
/// `BlockCopy`s and decide the sync span.
pub fn plan_exchange(graph: &Graph, ex: &ExchangeStep) -> ExchangePhase {
    let model = &graph.model;
    let cost = &graph.cost;
    let copies: Vec<BlockCopy> = ex
        .copies
        .iter()
        .map(|c| {
            let s = &graph.tensors[c.src];
            let d = &graph.tensors[c.dst];
            BlockCopy {
                src_tile: s.tile_of(c.src_start).expect("validated"),
                dst_tile: d.tile_of(c.dst_start).expect("validated"),
                bytes: c.len * s.dtype.size_bytes(),
                src_region: RegionKey::new(c.src, c.src_start, c.len),
            }
        })
        .collect();
    // The barrier before an exchange spans every participating tile; a
    // copy that crosses chips needs the inter-IPU sync, exactly as
    // `plan_execute` charges it for compute sets.
    let participants = copies.iter().flat_map(|c| [c.src_tile, c.dst_tile]);
    let sync_cycles = if spans_chips(model, participants) {
        cost.sync_inter_ipu_cycles
    } else {
        cost.sync_on_chip_cycles
    };
    let program = ExchangeProgram::new(copies);
    let cycles = program.cycles(model, cost);
    ExchangePhase { name: ex.name.clone(), sync_cycles, program, cycles, copies: ex.copies.clone() }
}

/// Plan one `Prog::Copy`: the per-tile worker-parallel memcpy cycles.
pub fn plan_copy(graph: &Graph, src: TensorId, dst: TensorId) -> CopyStep {
    let def = &graph.tensors[src];
    let cost = &graph.cost;
    let workers = graph.model.workers_per_tile as u64;
    let move_cost = cost.op_cycles(Op::Load, def.dtype) + cost.op_cycles(Op::Store, def.dtype);
    let per_tile: Vec<(TileId, u64)> = def
        .chunks
        .iter()
        .map(|c| {
            (c.tile, cost.worker_spawn_cycles + (c.total as u64 * move_cost).div_ceil(workers))
        })
        .collect();
    CopyStep { src, dst, name: format!("copy:{}", def.name), per_tile }
}

// ----------------------------------------------------------------------
// Lowering
// ----------------------------------------------------------------------

/// Lower a `Prog` tree to an unplanned arena skeleton. `Execute` /
/// `Exchange` / `Copy` steps carry their source references but no costs;
/// the mandatory planning passes fill them in. Collects every `Callback`
/// id mentioned anywhere in the tree (reachable or not) so the engine can
/// reject unregistered callbacks at run entry.
fn lower(graph: &Graph, prog: &Prog, plan: &mut ExecPlan) -> StepId {
    match prog {
        Prog::Nop => plan.push(PlanStep::Nop),
        Prog::Seq(steps) => {
            let children: Vec<StepId> = steps.iter().map(|s| lower(graph, s, plan)).collect();
            plan.push(PlanStep::Seq(children))
        }
        Prog::Execute(cs) => {
            plan.push(PlanStep::Execute(ExecuteStep { cs: *cs, ..ExecuteStep::default() }))
        }
        Prog::Exchange(ex) => plan.push(PlanStep::Exchange(vec![ExchangePhase {
            name: ex.name.clone(),
            copies: ex.copies.clone(),
            ..ExchangePhase::default()
        }])),
        Prog::Copy { src, dst } => {
            plan.push(PlanStep::Copy(CopyStep { src: *src, dst: *dst, ..CopyStep::default() }))
        }
        Prog::Repeat(n, body) => {
            let b = lower(graph, body, plan);
            plan.push(PlanStep::Repeat(*n, b))
        }
        Prog::If { pred, then, otherwise } => {
            let t = lower(graph, then, plan);
            let o = lower(graph, otherwise, plan);
            plan.push(PlanStep::If {
                pred: *pred,
                then: t,
                otherwise: o,
                sync_cycles: graph.cost.sync_on_chip_cycles,
            })
        }
        Prog::While { cond, pred, body } => {
            let c = lower(graph, cond, plan);
            let b = lower(graph, body, plan);
            plan.push(PlanStep::While {
                cond: c,
                pred: *pred,
                body: b,
                sync_cycles: graph.cost.sync_on_chip_cycles,
            })
        }
        Prog::Label(name, body) => {
            let b = lower(graph, body, plan);
            plan.push(PlanStep::Label(name.clone(), b))
        }
        Prog::Callback(id) => {
            if !plan.callback_ids.contains(id) {
                plan.callback_ids.push(*id);
            }
            plan.push(PlanStep::Callback(*id))
        }
    }
}

// ----------------------------------------------------------------------
// Passes
// ----------------------------------------------------------------------

/// Mandatory: fill every `Execute` step's broadcast, sync and tile
/// groups.
fn pass_broadcast_planning(graph: &Graph, plan: &mut ExecPlan) -> PassStat {
    let mut stat = PassStat::new("broadcast-planning", plan.num_dispatch_steps());
    for id in 0..plan.steps.len() {
        let cs = match &plan.steps[id] {
            PlanStep::Execute(es) => es.cs,
            _ => continue,
        };
        let es = plan_execute(graph, cs);
        stat.count("compute_sets", 1);
        stat.count("broadcast_copies", es.bcast.copies.len() as u64);
        stat.count("broadcast_bytes", es.bcast.total_bytes() as u64);
        plan.steps[id] = PlanStep::Execute(es);
    }
    stat.steps_after = plan.num_dispatch_steps();
    stat
}

/// Mandatory: resolve every `Exchange` phase and `Copy` step.
fn pass_exchange_planning(graph: &Graph, plan: &mut ExecPlan) -> PassStat {
    let mut stat = PassStat::new("exchange-planning", plan.num_dispatch_steps());
    for id in 0..plan.steps.len() {
        match &plan.steps[id] {
            PlanStep::Exchange(phases) => {
                let planned: Vec<ExchangePhase> = phases
                    .iter()
                    .map(|ph| {
                        plan_exchange(
                            graph,
                            &ExchangeStep { name: ph.name.clone(), copies: ph.copies.clone() },
                        )
                    })
                    .collect();
                stat.count("exchange_phases", planned.len() as u64);
                stat.count(
                    "block_copies",
                    planned.iter().map(|p| p.program.copies.len() as u64).sum(),
                );
                plan.steps[id] = PlanStep::Exchange(planned);
            }
            PlanStep::Copy(cp) => {
                let planned = plan_copy(graph, cp.src, cp.dst);
                stat.count("copy_steps", 1);
                plan.steps[id] = PlanStep::Copy(planned);
            }
            _ => {}
        }
    }
    stat.steps_after = plan.num_dispatch_steps();
    stat
}

/// Optimising: remove steps that record nothing — `Nop`s, empty and
/// singleton `Seq`s, `Repeat(0, _)`, `Repeat(_, <nothing>)` and `Label`
/// scopes whose body vanished. `If`/`While` always survive (their
/// decision syncs all tiles), with eliminated branches replaced by `Nop`.
fn pass_cleanup(plan: &mut ExecPlan) -> PassStat {
    let mut stat = PassStat::new("cleanup", plan.num_dispatch_steps());

    fn simplify(plan: &mut ExecPlan, id: StepId, stat: &mut PassStat) -> Option<StepId> {
        match plan.steps[id].clone() {
            PlanStep::Nop => {
                stat.count("nops_removed", 1);
                None
            }
            PlanStep::Seq(children) => {
                let mut out: Vec<StepId> = Vec::with_capacity(children.len());
                for c in children {
                    let Some(kept) = simplify(plan, c, stat) else { continue };
                    // Flatten nested sequences into the parent.
                    if let PlanStep::Seq(inner) = &plan.steps[kept] {
                        stat.count("seqs_flattened", 1);
                        out.extend(inner.iter().copied());
                    } else {
                        out.push(kept);
                    }
                }
                match out.len() {
                    0 => {
                        stat.count("empty_seqs_removed", 1);
                        None
                    }
                    1 => {
                        stat.count("seqs_unwrapped", 1);
                        Some(out[0])
                    }
                    _ => {
                        plan.steps[id] = PlanStep::Seq(out);
                        Some(id)
                    }
                }
            }
            PlanStep::Repeat(n, body) => {
                if n == 0 {
                    stat.count("zero_repeats_removed", 1);
                    return None;
                }
                match simplify(plan, body, stat) {
                    None => {
                        stat.count("empty_repeats_removed", 1);
                        None
                    }
                    Some(b) => {
                        plan.steps[id] = PlanStep::Repeat(n, b);
                        Some(id)
                    }
                }
            }
            PlanStep::Label(name, body) => match simplify(plan, body, stat) {
                // An empty label scope records no cycles (label entries
                // are created lazily on record), so dropping it leaves
                // the per-label partition bit-identical.
                None => {
                    stat.count("empty_labels_removed", 1);
                    None
                }
                Some(b) => {
                    plan.steps[id] = PlanStep::Label(name, b);
                    Some(id)
                }
            },
            PlanStep::If { pred, then, otherwise, sync_cycles } => {
                let nop = |plan: &mut ExecPlan| plan.push(PlanStep::Nop);
                let t = simplify(plan, then, stat).unwrap_or_else(|| nop(plan));
                let o = simplify(plan, otherwise, stat).unwrap_or_else(|| nop(plan));
                plan.steps[id] = PlanStep::If { pred, then: t, otherwise: o, sync_cycles };
                Some(id)
            }
            PlanStep::While { cond, pred, body, sync_cycles } => {
                let nop = |plan: &mut ExecPlan| plan.push(PlanStep::Nop);
                let c = simplify(plan, cond, stat).unwrap_or_else(|| nop(plan));
                let b = simplify(plan, body, stat).unwrap_or_else(|| nop(plan));
                plan.steps[id] = PlanStep::While { cond: c, pred, body: b, sync_cycles };
                Some(id)
            }
            PlanStep::Execute(_)
            | PlanStep::Exchange(_)
            | PlanStep::Copy(_)
            | PlanStep::Callback(_) => Some(id),
        }
    }

    let root = plan.root;
    plan.root = simplify(plan, root, &mut stat).unwrap_or_else(|| plan.push(PlanStep::Nop));
    stat.steps_after = plan.num_dispatch_steps();
    stat
}

/// Optimising: fuse adjacent `Exchange` dispatches inside each `Seq` into
/// one multi-phase dispatch. Every phase keeps its own sync and exchange
/// recording, so the cycle profile (and the trace's per-phase events) are
/// bit-identical; only host dispatch overhead is removed.
fn pass_exchange_coalescing(plan: &mut ExecPlan) -> PassStat {
    let mut stat = PassStat::new("exchange-coalescing", plan.num_dispatch_steps());
    for id in plan.reachable() {
        let PlanStep::Seq(children) = &plan.steps[id] else { continue };
        let children = children.clone();
        let mut out: Vec<StepId> = Vec::with_capacity(children.len());
        for c in children {
            if let (Some(&prev), PlanStep::Exchange(phases)) = (out.last(), &plan.steps[c]) {
                if matches!(plan.steps[prev], PlanStep::Exchange(_)) {
                    let phases = phases.clone();
                    if let PlanStep::Exchange(dst) = &mut plan.steps[prev] {
                        dst.extend(phases);
                    }
                    stat.count("exchanges_coalesced", 1);
                    continue;
                }
            }
            out.push(c);
        }
        plan.steps[id] = PlanStep::Seq(out);
    }
    stat.steps_after = plan.num_dispatch_steps();
    stat
}

/// Optimising, report-only: liveness of compute sets and tensors. The
/// engine's storage is indexed by `TensorId` and reachable through host
/// APIs (`read_tensor`, `write_tensor`, callbacks), so nothing is
/// deleted — the pass reports what a memory planner could reclaim.
fn pass_dead_code_analysis(graph: &Graph, plan: &mut ExecPlan) -> PassStat {
    let mut stat = PassStat::new("dead-code-analysis", plan.num_dispatch_steps());
    let mut live_cs: HashSet<ComputeSetId> = HashSet::new();
    let mut live_t: HashSet<TensorId> = HashSet::new();
    for id in plan.reachable() {
        match &plan.steps[id] {
            PlanStep::Execute(es) => {
                live_cs.insert(es.cs);
                for v in &graph.compute_sets[es.cs].vertices {
                    for op in &v.operands {
                        live_t.insert(op.tensor);
                    }
                }
            }
            PlanStep::Exchange(phases) => {
                for ph in phases {
                    for c in &ph.copies {
                        live_t.insert(c.src);
                        live_t.insert(c.dst);
                    }
                }
            }
            PlanStep::Copy(cp) => {
                live_t.insert(cp.src);
                live_t.insert(cp.dst);
            }
            PlanStep::If { pred, .. } | PlanStep::While { pred, .. } => {
                live_t.insert(*pred);
            }
            _ => {}
        }
    }
    let dead_cs = graph.compute_sets.len() - live_cs.len();
    let dead_tensors = (0..graph.tensors.len()).filter(|t| !live_t.contains(t)).collect::<Vec<_>>();
    let dead_bytes: usize = dead_tensors
        .iter()
        .map(|&t| {
            let def = &graph.tensors[t];
            def.chunks.iter().map(|c| c.total * def.dtype.size_bytes()).sum::<usize>()
        })
        .sum();
    stat.count("dead_compute_sets", dead_cs as u64);
    stat.count("dead_tensors", dead_tensors.len() as u64);
    stat.count("dead_bytes", dead_bytes as u64);
    stat.steps_after = plan.num_dispatch_steps();
    stat
}

// ----------------------------------------------------------------------
// Pass manager
// ----------------------------------------------------------------------

/// Lower `prog` and run the pass pipeline, returning the executable plan
/// and the per-pass compile report.
pub fn compile_plan(
    graph: &Graph,
    prog: &Prog,
    options: CompileOptions,
) -> (ExecPlan, CompileReport) {
    let mut plan = ExecPlan::default();
    plan.root = lower(graph, prog, &mut plan);
    plan.callback_ids.sort_unstable();

    let mut report = CompileReport {
        optimised: options.optimise,
        source_steps: prog.num_steps(),
        plan_steps: 0,
        passes: Vec::new(),
    };
    report.passes.push(pass_broadcast_planning(graph, &mut plan));
    report.passes.push(pass_exchange_planning(graph, &mut plan));
    if options.optimise {
        report.passes.push(pass_cleanup(&mut plan));
        report.passes.push(pass_exchange_coalescing(&mut plan));
        report.passes.push(pass_dead_code_analysis(graph, &mut plan));
    }
    report.plan_steps = plan.num_dispatch_steps();
    (plan, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ElemCopy;
    use crate::tensor::TensorDef;
    use ipu_sim::cost::DType;
    use ipu_sim::model::IpuModel;

    fn graph2() -> Graph {
        Graph::new(IpuModel::tiny(2))
    }

    #[test]
    fn no_opt_values_parse() {
        for (v, optimise) in [
            ("1", false),
            ("true", false),
            ("ON", false),
            ("yes", false),
            ("0", true),
            ("", true),
            ("garbage", true),
        ] {
            assert_eq!(CompileOptions::parse_no_opt(v).optimise, optimise, "GRAPHENE_NO_OPT={v}");
        }
    }

    #[test]
    fn cleanup_removes_only_silent_steps() {
        let mut g = graph2();
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let ex = ExchangeStep {
            name: "x".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 4 }],
        };
        let prog = Prog::Seq(vec![
            Prog::Nop,
            Prog::Label("empty".into(), Box::new(Prog::Nop)),
            Prog::Repeat(0, Box::new(Prog::Exchange(ex.clone()))),
            Prog::Repeat(3, Box::new(Prog::Nop)),
            Prog::Seq(vec![]),
            Prog::Exchange(ex),
        ]);
        let (plan, report) = compile_plan(&g, &prog, CompileOptions { optimise: true });
        // Only the live exchange dispatch survives.
        assert_eq!(plan.num_dispatch_steps(), 1);
        let cleanup = report.pass("cleanup").unwrap();
        assert!(cleanup.counter("nops_removed") >= 2);
        assert_eq!(cleanup.counter("zero_repeats_removed"), 1);
        assert_eq!(cleanup.counter("empty_labels_removed"), 1);
        // Without optimisation the silent steps survive lowering: the
        // Repeat(0) body's exchange still counts as a dispatchable step.
        let (plan_no, report_no) = compile_plan(&g, &prog, CompileOptions { optimise: false });
        assert!(plan_no.num_dispatch_steps() > 1);
        assert!(report_no.pass("cleanup").is_none());
        assert!(!report_no.optimised);
    }

    #[test]
    fn coalescing_merges_adjacent_exchanges_only() {
        let mut g = graph2();
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 1)).unwrap();
        let c = g.add_tensor(TensorDef::on_tile("c", DType::F32, 4, 1)).unwrap();
        let ex1 = ExchangeStep {
            name: "x1".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: b, dst_start: 0, len: 4 }],
        };
        let ex2 = ExchangeStep {
            name: "x2".into(),
            copies: vec![ElemCopy { src: a, src_start: 0, dst: c, dst_start: 0, len: 4 }],
        };
        let prog = Prog::Seq(vec![
            Prog::Exchange(ex1.clone()),
            Prog::Exchange(ex2.clone()),
            Prog::Callback(0),
            Prog::Exchange(ex1),
        ]);
        let (plan, report) = compile_plan(&g, &prog, CompileOptions { optimise: true });
        // Dispatches: [Exchange(x1+x2), Callback, Exchange(x1)] = 3.
        assert_eq!(plan.num_dispatch_steps(), 3);
        assert_eq!(report.pass("exchange-coalescing").unwrap().counter("exchanges_coalesced"), 1);
        // The merged dispatch holds both phases, in order, fully planned.
        let merged = plan
            .reachable()
            .into_iter()
            .find_map(|id| match plan.step(id) {
                PlanStep::Exchange(phases) if phases.len() == 2 => Some(phases.clone()),
                _ => None,
            })
            .expect("merged exchange dispatch");
        assert_eq!(merged[0].name, "x1");
        assert_eq!(merged[1].name, "x2");
        assert!(merged.iter().all(|p| p.cycles > 0 && p.sync_cycles > 0));
        // Unoptimised: four dispatches, no coalescing pass at all.
        let (plan_no, report_no) =
            compile_plan(&g, &Prog::Seq(vec![]), CompileOptions { optimise: false });
        assert_eq!(plan_no.num_dispatch_steps(), 0);
        assert!(report_no.pass("exchange-coalescing").is_none());
    }

    #[test]
    fn dead_code_analysis_reports_without_deleting() {
        let mut g = graph2();
        let a = g.add_tensor(TensorDef::on_tile("a", DType::F32, 4, 0)).unwrap();
        let b = g.add_tensor(TensorDef::on_tile("b", DType::F32, 4, 0)).unwrap();
        let _dead = g.add_tensor(TensorDef::on_tile("dead", DType::F32, 100, 1)).unwrap();
        let (plan, report) =
            compile_plan(&g, &Prog::Copy { src: a, dst: b }, CompileOptions { optimise: true });
        let dca = report.pass("dead-code-analysis").unwrap();
        assert_eq!(dca.counter("dead_tensors"), 1);
        assert_eq!(dca.counter("dead_bytes"), 400);
        // Nothing was deleted: the plan still addresses the same tensors.
        assert_eq!(plan.num_dispatch_steps(), 1);
    }

    #[test]
    fn callback_ids_include_unreachable_callbacks() {
        // A callback inside Repeat(0) never runs, but its id is still
        // collected so run-entry registration checks cover it.
        let g = graph2();
        let prog = Prog::Seq(vec![Prog::Callback(7), Prog::Repeat(0, Box::new(Prog::Callback(3)))]);
        let (plan, _) = compile_plan(&g, &prog, CompileOptions { optimise: true });
        assert_eq!(plan.callback_ids, vec![3, 7]);
    }
}
