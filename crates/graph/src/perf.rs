//! Static per-step metadata for performance attribution.
//!
//! The profile crate's [`PerfRecorder`] collects *dynamic* per-`StepId`
//! cycle/byte counts but deliberately knows nothing about plans or graphs
//! (it must stay dependency-free below `graphene-graph`). This module
//! supplies the other half: a walk over the [`ExecPlan`] that labels every
//! step with its kind, source name, innermost enclosing `Label` scope,
//! and the static exchange shape (bytes per link class, region count,
//! broadcast fan-out) a single execution moves.
//!
//! [`PerfRecorder`]: profile::perf::PerfRecorder

use crate::graph::Graph;
use crate::plan::{ExecPlan, PlanStep, StepId};
use ipu_sim::exchange::ExchangeProgram;
use ipu_sim::model::IpuModel;
use profile::perf::{StepKind, StepMeta};
use profile::UNLABELLED;

/// Split an exchange program's bytes by link class: `(on_chip, link)` —
/// copies whose endpoints share a chip ride the fabric, the rest cross
/// IPU-Links.
pub fn split_bytes_by_link(program: &ExchangeProgram, model: &IpuModel) -> (u64, u64) {
    let mut on_chip = 0u64;
    let mut link = 0u64;
    for c in &program.copies {
        if model.same_chip(c.src_tile, c.dst_tile) {
            on_chip += c.bytes as u64;
        } else {
            link += c.bytes as u64;
        }
    }
    (on_chip, link)
}

/// Broadcast fan-out: the maximum number of destination copies fed from
/// one source region (1 = pure point-to-point, n = one region broadcast
/// to n destinations).
fn max_fanout(program: &ExchangeProgram) -> u64 {
    let mut keys: Vec<_> = program.copies.iter().map(|c| (c.src_tile, c.src_region)).collect();
    keys.sort_unstable();
    let mut best = 0u64;
    let mut run = 0u64;
    let mut prev = None;
    for k in keys {
        if Some(k) == prev {
            run += 1;
        } else {
            run = 1;
            prev = Some(k);
        }
        best = best.max(run);
    }
    best
}

/// Build one [`StepMeta`] per arena slot of `plan` (unreachable slots get
/// [`StepMeta::control`] placeholders — they can never charge cycles).
/// The label walk mirrors the engine's dynamic label stack: each step is
/// tagged with the innermost `Label` scope on its path from the root.
pub fn build_step_metas(plan: &ExecPlan) -> Vec<StepMeta> {
    let mut metas: Vec<StepMeta> = (0..plan.steps.len()).map(StepMeta::control).collect();
    let mut visited = vec![false; plan.steps.len()];
    walk(plan, plan.root, UNLABELLED, &mut metas, &mut visited);
    metas
}

fn walk(
    plan: &ExecPlan,
    id: StepId,
    label: &str,
    metas: &mut Vec<StepMeta>,
    visited: &mut Vec<bool>,
) {
    if std::mem::replace(&mut visited[id], true) {
        return;
    }
    metas[id].label = label.to_string();
    match plan.step(id) {
        PlanStep::Nop | PlanStep::Seq(_) | PlanStep::Repeat(..) | PlanStep::Callback(_) => {}
        PlanStep::Execute(es) => {
            metas[id].kind = StepKind::Execute;
            metas[id].name = es.name.clone();
            if !es.bcast.is_empty() {
                metas[id].regions = es.bcast.num_regions() as u64;
                metas[id].max_fanout = max_fanout(&es.bcast);
            }
        }
        PlanStep::Exchange(phases) => {
            metas[id].kind = StepKind::Exchange;
            metas[id].name = phases.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join("+");
            for p in phases {
                metas[id].regions += p.program.num_regions() as u64;
                metas[id].max_fanout = metas[id].max_fanout.max(max_fanout(&p.program));
            }
        }
        PlanStep::Copy(cp) => {
            metas[id].kind = StepKind::Copy;
            metas[id].name = cp.name.clone();
        }
        PlanStep::If { .. } => {
            metas[id].kind = StepKind::Control;
            metas[id].name = "if".to_string();
        }
        PlanStep::While { .. } => {
            metas[id].kind = StepKind::Control;
            metas[id].name = "while".to_string();
        }
        PlanStep::Label(..) => {}
    }
    // Recurse with the scope updated at Label nodes.
    match plan.step(id) {
        PlanStep::Seq(children) => {
            for &c in children {
                walk(plan, c, label, metas, visited);
            }
        }
        PlanStep::Repeat(_, c) => walk(plan, *c, label, metas, visited),
        PlanStep::Label(name, c) => {
            let inner = name.clone();
            walk(plan, *c, &inner, metas, visited);
        }
        PlanStep::If { then, otherwise, .. } => {
            walk(plan, *then, label, metas, visited);
            walk(plan, *otherwise, label, metas, visited);
        }
        PlanStep::While { cond, body, .. } => {
            walk(plan, *cond, label, metas, visited);
            walk(plan, *body, label, metas, visited);
        }
        _ => {}
    }
}

/// SRAM bytes one execution of a whole-tensor copy moves: read src + write
/// dst, element-wise.
pub fn copy_mem_bytes(graph: &Graph, src: usize, dst: usize) -> u64 {
    let s = &graph.tensors[src];
    let d = &graph.tensors[dst];
    (s.len() * s.dtype.size_bytes() + d.len() * d.dtype.size_bytes()) as u64
}
