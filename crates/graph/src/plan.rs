//! The lowered execution plan — the compiler's output IR.
//!
//! Poplar's defining property is that the *compiler* schedules all
//! communication and supersteps ahead of time; the runtime only replays a
//! static plan. This module is the simulator's equivalent of that compiled
//! artifact: [`ExecPlan`], a flat arena of [`PlanStep`]s lowered from the
//! [`Prog`](crate::program::Prog) tree by [`crate::passes`], in which
//!
//! * every `Execute` carries its precomputed broadcast
//!   [`ExchangeProgram`], sync cost and tile-grouped vertex spans;
//! * every `Exchange`/`Copy` carries its resolved [`BlockCopy`]s, fabric
//!   cycles and sync decision;
//! * control flow (`Repeat`/`If`/`While`/`Label`) is a structured
//!   reference into the arena.
//!
//! The engine walks this plan without deriving anything: no operand chunk
//! walks, no region hashing, no `ExchangeProgram` construction on the hot
//! path — all of that happened once, at `Graph::compile` time, inside the
//! pass pipeline (`crate::passes`).

use ipu_sim::exchange::ExchangeProgram;
use ipu_sim::model::TileId;

use crate::compute::ComputeSetId;
use crate::program::ElemCopy;
use crate::tensor::TensorId;

/// Index of a step in the plan arena.
pub type StepId = usize;

/// Precomputed execution data for one `Prog::Execute`.
#[derive(Clone, Debug, Default)]
pub struct ExecuteStep {
    pub cs: ComputeSetId,
    /// Compute-set name (owned here so the hot path never re-borrows the
    /// graph to format trace labels).
    pub name: String,
    /// Trace label of the compiler-inserted broadcast (`"bcast:{name}"`).
    pub bcast_name: String,
    /// Compiler-inserted pre-compute-set exchange for operands read from
    /// remote tiles; empty when every operand is tile-local.
    pub bcast: ExchangeProgram,
    /// Fabric cycles of `bcast` (0 when empty).
    pub bcast_cycles: u64,
    /// BSP barrier cost for this superstep (inter-IPU when the vertex
    /// tiles or broadcast sources span chips).
    pub sync_cycles: u64,
    /// Vertex indices grouped by tile, tile-ascending, each group in
    /// program order — the parallel executor's work list. The sequential
    /// executor iterates `vertices` in program order directly (hazardous
    /// programs accepted sequentially are order-dependent).
    pub tile_groups: Vec<(TileId, Vec<usize>)>,
}

/// One resolved exchange phase: the sync decision, the costed fabric
/// program and the element copies to apply.
#[derive(Clone, Debug, Default)]
pub struct ExchangePhase {
    pub name: String,
    /// Barrier cost preceding this phase.
    pub sync_cycles: u64,
    /// The costed fabric program (resolved `BlockCopy`s).
    pub program: ExchangeProgram,
    /// Fabric cycles of `program`.
    pub cycles: u64,
    /// The element copies the host applies to storage.
    pub copies: Vec<ElemCopy>,
}

/// Precomputed execution data for one `Prog::Copy`.
#[derive(Clone, Debug, Default)]
pub struct CopyStep {
    pub src: TensorId,
    pub dst: TensorId,
    /// Trace label (`"copy:{src name}"`).
    pub name: String,
    /// Per-tile worker-parallel memcpy cycles, tile-ascending.
    pub per_tile: Vec<(TileId, u64)>,
}

/// One node of the lowered plan.
#[derive(Clone, Debug)]
pub enum PlanStep {
    /// Do nothing (eliminated by the cleanup pass where reachable).
    Nop,
    /// Execute child steps in order.
    Seq(Vec<StepId>),
    /// One BSP superstep with its precomputed broadcast and sync.
    Execute(ExecuteStep),
    /// One *dispatch* of one or more exchange phases executed
    /// back-to-back. Lowering emits one phase per `Prog::Exchange`; the
    /// coalescing pass merges adjacent dispatches. Each phase still
    /// records its own sync + exchange, so coalescing is invisible to the
    /// cycle profile — it only removes host dispatch overhead.
    Exchange(Vec<ExchangePhase>),
    /// Whole-tensor on-tile copy with precomputed per-tile cycles.
    Copy(CopyStep),
    /// Fixed-trip-count loop over a child step.
    Repeat(u32, StepId),
    /// Branch on a scalar predicate tensor; the decision synchronises all
    /// tiles at the precomputed cost.
    If { pred: TensorId, then: StepId, otherwise: StepId, sync_cycles: u64 },
    /// `loop { cond; if !pred break; body }` with the per-test sync cost.
    While { cond: StepId, pred: TensorId, body: StepId, sync_cycles: u64 },
    /// Attribute the child's device time to a named scope.
    Label(String, StepId),
    /// Invoke a registered host callback.
    Callback(usize),
}

/// A compiled program: a flat step arena plus the root step.
#[derive(Clone, Debug, Default)]
pub struct ExecPlan {
    pub steps: Vec<PlanStep>,
    pub root: StepId,
    /// Every callback id referenced by a reachable step — checked against
    /// the registered callbacks at `Engine::run` entry.
    pub callback_ids: Vec<usize>,
}

impl ExecPlan {
    /// Append a step to the arena and return its id.
    pub fn push(&mut self, step: PlanStep) -> StepId {
        self.steps.push(step);
        self.steps.len() - 1
    }

    pub fn step(&self, id: StepId) -> &PlanStep {
        &self.steps[id]
    }

    /// Ids of all steps reachable from the root (passes rewrite edges and
    /// may orphan arena entries; orphans are dead weight, not semantics).
    pub fn reachable(&self) -> Vec<StepId> {
        let mut seen = vec![false; self.steps.len()];
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            out.push(id);
            match &self.steps[id] {
                PlanStep::Seq(children) => stack.extend(children.iter().copied()),
                PlanStep::Repeat(_, c) | PlanStep::Label(_, c) => stack.push(*c),
                PlanStep::If { then, otherwise, .. } => {
                    stack.push(*then);
                    stack.push(*otherwise);
                }
                PlanStep::While { cond, body, .. } => {
                    stack.push(*cond);
                    stack.push(*body);
                }
                _ => {}
            }
        }
        out
    }

    /// Number of reachable *dispatchable* steps — what the engine hands to
    /// its step dispatcher per traversal: `Execute`, `Exchange` (one per
    /// dispatch, however many phases), `Copy`, `Callback`, and the
    /// predicate reads of `If`/`While`. Control-flow scaffolding (`Seq`,
    /// `Repeat`, `Label`) and `Nop` count zero. This is the
    /// `CompileReport` step metric the passes shrink.
    pub fn num_dispatch_steps(&self) -> usize {
        self.reachable()
            .into_iter()
            .filter(|&id| {
                matches!(
                    self.steps[id],
                    PlanStep::Execute(_)
                        | PlanStep::Exchange(_)
                        | PlanStep::Copy(_)
                        | PlanStep::Callback(_)
                        | PlanStep::If { .. }
                        | PlanStep::While { .. }
                )
            })
            .count()
    }

    /// Recompute `callback_ids` from the reachable steps (deduplicated,
    /// ascending).
    pub fn refresh_callback_ids(&mut self) {
        let mut ids: Vec<usize> = self
            .reachable()
            .into_iter()
            .filter_map(|id| match self.steps[id] {
                PlanStep::Callback(cb) => Some(cb),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        self.callback_ids = ids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_ignores_orphans() {
        let mut p = ExecPlan::default();
        let a = p.push(PlanStep::Callback(3));
        let _orphan = p.push(PlanStep::Callback(9));
        let b = p.push(PlanStep::Nop);
        let seq = p.push(PlanStep::Seq(vec![a, b]));
        p.root = p.push(PlanStep::Label("top".into(), seq));
        let mut r = p.reachable();
        r.sort_unstable();
        assert_eq!(r, vec![a, b, seq, p.root]);
        assert_eq!(p.num_dispatch_steps(), 1); // only the callback
        p.refresh_callback_ids();
        assert_eq!(p.callback_ids, vec![3]); // orphan's id not included
    }

    #[test]
    fn dispatch_steps_count_control_flow_decisions() {
        let mut p = ExecPlan::default();
        let e = p.push(PlanStep::Execute(ExecuteStep::default()));
        let x = p.push(PlanStep::Exchange(vec![ExchangePhase::default()]));
        let n = p.push(PlanStep::Nop);
        let iff = p.push(PlanStep::If { pred: 0, then: e, otherwise: n, sync_cycles: 1 });
        let rep = p.push(PlanStep::Repeat(4, x));
        p.root = p.push(PlanStep::Seq(vec![iff, rep]));
        // Execute + Exchange + If decision = 3; Repeat/Seq/Nop free.
        assert_eq!(p.num_dispatch_steps(), 3);
    }
}
