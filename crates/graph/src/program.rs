//! The execution schedule: program steps.
//!
//! Poplar's execution schedule is a DAG of program steps — execute a
//! compute set, copy tensors, control flow, host interaction. TensorDSL's
//! control-flow stack (paper §III-B) builds values of this type; the
//! engine walks them.

use crate::compute::ComputeSetId;
use crate::tensor::TensorId;

/// One elementwise-contiguous copy between tensor regions (same dtype).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElemCopy {
    pub src: TensorId,
    pub src_start: usize,
    pub dst: TensorId,
    pub dst_start: usize,
    pub len: usize,
}

/// An exchange phase: a set of blockwise region copies executed between
/// supersteps (the halo exchange of §IV, or scalar broadcasts).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExchangeStep {
    pub name: String,
    pub copies: Vec<ElemCopy>,
}

/// A program step.
#[derive(Clone, Debug, PartialEq)]
pub enum Prog {
    /// Do nothing.
    Nop,
    /// Execute steps in order.
    Seq(Vec<Prog>),
    /// Run a compute set (one BSP superstep).
    Execute(ComputeSetId),
    /// Run an exchange phase.
    Exchange(ExchangeStep),
    /// Whole-tensor copy between identically mapped tensors (on-tile).
    Copy { src: TensorId, dst: TensorId },
    /// Fixed-trip-count loop.
    Repeat(u32, Box<Prog>),
    /// Branch on a scalar predicate tensor (length-1, read at runtime).
    If { pred: TensorId, then: Box<Prog>, otherwise: Box<Prog> },
    /// `loop { cond; if !pred break; body }` — Poplar's RepeatWhileTrue.
    While { cond: Box<Prog>, pred: TensorId, body: Box<Prog> },
    /// Attribute the device time of the inner program to a named scope
    /// (profiler label; powers the Table IV breakdown).
    Label(String, Box<Prog>),
    /// Invoke a registered host callback (CPU callback in §III-A: progress
    /// reporting, data transfer).
    Callback(usize),
}

impl Prog {
    /// Sequence two programs, flattening nested sequences.
    pub fn then(self, next: Prog) -> Prog {
        match (self, next) {
            (Prog::Nop, b) => b,
            (a, Prog::Nop) => a,
            (Prog::Seq(mut a), Prog::Seq(b)) => {
                a.extend(b);
                Prog::Seq(a)
            }
            (Prog::Seq(mut a), b) => {
                a.push(b);
                Prog::Seq(a)
            }
            (a, Prog::Seq(mut b)) => {
                b.insert(0, a);
                Prog::Seq(b)
            }
            (a, b) => Prog::Seq(vec![a, b]),
        }
    }

    /// Number of leaf steps (for schedule-size diagnostics — the paper's
    /// compile-time concern in §III-C).
    pub fn num_steps(&self) -> usize {
        match self {
            Prog::Nop => 0,
            Prog::Seq(v) => v.iter().map(Prog::num_steps).sum(),
            Prog::Repeat(_, p) | Prog::Label(_, p) => p.num_steps(),
            Prog::If { then, otherwise, .. } => 1 + then.num_steps() + otherwise.num_steps(),
            Prog::While { cond, body, .. } => 1 + cond.num_steps() + body.num_steps(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_flattens() {
        let p = Prog::Execute(0)
            .then(Prog::Execute(1))
            .then(Prog::Seq(vec![Prog::Execute(2), Prog::Execute(3)]));
        match &p {
            Prog::Seq(v) => assert_eq!(v.len(), 4),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.num_steps(), 4);
    }

    #[test]
    fn nop_is_identity() {
        assert_eq!(Prog::Nop.then(Prog::Execute(1)), Prog::Execute(1));
        assert_eq!(Prog::Execute(1).then(Prog::Nop), Prog::Execute(1));
        assert_eq!(Prog::Nop.num_steps(), 0);
    }

    #[test]
    fn num_steps_counts_control_flow() {
        let p = Prog::While {
            cond: Box::new(Prog::Execute(0)),
            pred: 0,
            body: Box::new(Prog::Repeat(10, Box::new(Prog::Execute(1)))),
        };
        assert_eq!(p.num_steps(), 3);
    }

    #[test]
    fn then_flattens_trailing_seq_into_leading_step() {
        // (leaf).then(Seq) splices in front, not as a nested Seq.
        let p = Prog::Execute(0).then(Prog::Seq(vec![Prog::Execute(1), Prog::Execute(2)]));
        assert_eq!(p, Prog::Seq(vec![Prog::Execute(0), Prog::Execute(1), Prog::Execute(2)]),);
        assert_eq!(p.num_steps(), 3);
    }

    #[test]
    fn num_steps_sees_through_nested_scaffolding() {
        // Repeat and Label are transparent; Seq sums; Nop is free —
        // however deeply they nest.
        let inner = Prog::Seq(vec![
            Prog::Nop,
            Prog::Label(
                "a".into(),
                Box::new(Prog::Repeat(
                    7,
                    Box::new(Prog::Seq(vec![
                        Prog::Execute(0),
                        Prog::Copy { src: 0, dst: 1 },
                        Prog::Nop,
                    ])),
                )),
            ),
            Prog::Callback(0),
        ]);
        let p = Prog::Repeat(3, Box::new(Prog::Label("outer".into(), Box::new(inner))));
        // Execute + Copy + Callback, independent of trip counts and labels.
        assert_eq!(p.num_steps(), 3);

        // Control-flow decisions count themselves plus both branches.
        let iff = Prog::If { pred: 0, then: Box::new(p.clone()), otherwise: Box::new(Prog::Nop) };
        assert_eq!(iff.num_steps(), 4);
        let wl = Prog::While { cond: Box::new(Prog::Execute(1)), pred: 0, body: Box::new(iff) };
        assert_eq!(wl.num_steps(), 6);
    }
}
