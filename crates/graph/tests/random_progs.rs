//! Property test: random `Prog` trees lower to plans that execute
//! identically to the legacy tree-walking interpreter.
//!
//! The graph compiler's contract is observational equivalence: whatever
//! the pass pipeline does to the plan, the optimised plan, the
//! unoptimised plan and the legacy interpreter must leave bit-identical
//! tensor storage and cycle-identical `CycleStats` behind. This test
//! generates depth-bounded random program trees over a small fixed graph
//! (compute sets with and without compiler-inserted broadcasts, a
//! cross-tile exchange, whole-tensor copies, loops, branches, labels and
//! host callbacks) and checks all three modes against each other.

use graph::codelet::{BinOp, Codelet, Expr, ParamDecl, Stmt, Value};
use graph::compute::{ComputeSet, TensorSlice, Vertex, VertexKind};
use graph::engine::EngineOptions;
use graph::graph::Graph;
use graph::program::{ElemCopy, ExchangeStep, Prog};
use graph::tensor::{TensorDef, TensorId};
use graph::{CompileOptions, Engine, ExecutorKind};
use ipu_sim::cost::DType;
use ipu_sim::model::IpuModel;
use proptest::TestRng;

/// The fixed material a random program is built from.
struct Fixture {
    graph: Graph,
    /// Identically mapped data tensors (valid `Copy` pairs).
    data: Vec<TensorId>,
    /// Tile-3 vector filled from the remote tile-0 scalar.
    y: TensorId,
    /// Scalar broadcast source (tile 0).
    s: TensorId,
    /// Length-1 predicate holding 0.0 (branch false / loop exit).
    pred_false: TensorId,
    /// Length-1 predicate holding 1.0 (branch true).
    pred_true: TensorId,
    /// `double` compute set over `data[0]` (no broadcast).
    cs_double: usize,
    /// `fill` compute set reading the remote scalar (broadcast).
    cs_fill: usize,
}

fn fixture() -> Fixture {
    let mut g = Graph::new(IpuModel::tiny(4));
    let data: Vec<TensorId> = (0..3)
        .map(|i| g.add_tensor(TensorDef::linear(format!("d{i}"), DType::F32, 8, 2)).unwrap())
        .collect();
    let y = g.add_tensor(TensorDef::on_tile("y", DType::F32, 4, 3)).unwrap();
    let s = g.add_tensor(TensorDef::on_tile("s", DType::F32, 1, 0)).unwrap();
    let pred_false = g.add_tensor(TensorDef::on_tile("p0", DType::F32, 1, 0)).unwrap();
    let pred_true = g.add_tensor(TensorDef::on_tile("p1", DType::F32, 1, 0)).unwrap();

    let scale = g
        .add_codelet(Codelet {
            name: "scale".into(),
            params: vec![ParamDecl { dtype: DType::F32, mutable: true }],
            num_locals: 1,
            body: vec![Stmt::ParFor {
                local: 0,
                start: Expr::c(Value::I32(0)),
                end: Expr::ParamLen(0),
                body: vec![Stmt::Store {
                    param: 0,
                    index: Expr::Local(0),
                    value: Expr::bin(
                        BinOp::Mul,
                        Expr::index(0, Expr::Local(0)),
                        Expr::c(Value::F32(1.25)),
                    ),
                }],
            }],
        })
        .unwrap();
    let fill = g
        .add_codelet(Codelet {
            name: "fill".into(),
            params: vec![
                ParamDecl { dtype: DType::F32, mutable: false },
                ParamDecl { dtype: DType::F32, mutable: true },
            ],
            num_locals: 1,
            body: vec![Stmt::For {
                local: 0,
                start: Expr::c(Value::I32(0)),
                end: Expr::ParamLen(1),
                step: Expr::c(Value::I32(1)),
                body: vec![Stmt::Store {
                    param: 1,
                    index: Expr::Local(0),
                    value: Expr::index(0, Expr::c(Value::I32(0))),
                }],
            }],
        })
        .unwrap();

    // One `scale` vertex per resident chunk of d0 — a plain superstep.
    let mut cs = ComputeSet::new("scale_d0");
    for (tile, start) in [(0usize, 0usize), (1, 4)] {
        cs.add(Vertex {
            tile,
            codelet: scale,
            operands: vec![TensorSlice { tensor: data[0], start, len: 4 }],
            kind: VertexKind::Simple,
        });
    }
    let cs_double = g.add_compute_set(cs).unwrap();

    // `fill` on tile 3 reads the tile-0 scalar: the compiler must insert
    // a broadcast exchange before this superstep.
    let mut cs = ComputeSet::new("fill_y");
    cs.add(Vertex {
        tile: 3,
        codelet: fill,
        operands: vec![TensorSlice::whole(s, 1), TensorSlice::whole(y, 4)],
        kind: VertexKind::Simple,
    });
    let cs_fill = g.add_compute_set(cs).unwrap();

    Fixture { graph: g, data, y, s, pred_false, pred_true, cs_double, cs_fill }
}

/// A cross-tile exchange: two elements from d0's tile-0 chunk into d1's
/// tile-1 chunk.
fn halo(f: &Fixture) -> ExchangeStep {
    ExchangeStep {
        name: "halo".into(),
        copies: vec![ElemCopy {
            src: f.data[0],
            src_start: 1,
            dst: f.data[1],
            dst_start: 5,
            len: 2,
        }],
    }
}

/// Generate a random depth-bounded program tree over the fixture.
fn gen_prog(rng: &mut TestRng, f: &Fixture, depth: usize) -> Prog {
    // At the depth limit only leaves remain.
    let kinds = if depth == 0 { 7 } else { 12 };
    match rng.below(kinds) {
        0 => Prog::Nop,
        1 => Prog::Execute(f.cs_double),
        2 => Prog::Execute(f.cs_fill),
        3 => Prog::Exchange(halo(f)),
        4 => {
            let src = f.data[rng.below(f.data.len())];
            let dst = f.data[rng.below(f.data.len())];
            Prog::Copy { src, dst }
        }
        5 => Prog::Callback(rng.below(2)),
        6 => Prog::Copy { src: f.data[2], dst: f.data[2] }, // self-copy
        7 => {
            let n = rng.below(3);
            Prog::Seq((0..n).map(|_| gen_prog(rng, f, depth - 1)).collect())
        }
        8 => Prog::Repeat(rng.below(3) as u32, Box::new(gen_prog(rng, f, depth - 1))),
        9 => Prog::Label(format!("l{}", rng.below(3)), Box::new(gen_prog(rng, f, depth - 1))),
        10 => {
            let pred = if rng.below(2) == 0 { f.pred_false } else { f.pred_true };
            Prog::If {
                pred,
                then: Box::new(gen_prog(rng, f, depth - 1)),
                otherwise: Box::new(gen_prog(rng, f, depth - 1)),
            }
        }
        _ => Prog::While {
            // pred_false: the loop tests once, runs the cond once, exits.
            cond: Box::new(gen_prog(rng, f, depth - 1)),
            pred: f.pred_false,
            body: Box::new(gen_prog(rng, f, depth - 1)),
        },
    }
}

/// Build an engine for `prog`, seed its storage deterministically, run,
/// and fingerprint storage bits + the cycle profile.
fn run_mode(
    f: &Fixture,
    prog: &Prog,
    optimise: bool,
    legacy: bool,
) -> (Vec<Vec<u64>>, u64, u64, u64, u64, Vec<(String, [u64; 3])>, Vec<u64>) {
    let exec = f
        .graph
        .clone()
        .compile_with(prog.clone(), CompileOptions { optimise })
        .expect("random program must validate");
    let mut e = Engine::new(exec);
    e.set_legacy_interpreter(legacy);
    for (k, cb) in [(0usize, 10.0f64), (1, 100.0)] {
        e.register_callback(
            k,
            Box::new(move |view: &mut graph::engine::HostView<'_>| {
                let mut v = view.read_f64(0);
                v[0] += cb;
                view.write_f64(0, &v);
            }),
        );
    }
    for (i, t) in f.data.iter().enumerate() {
        let vals: Vec<f64> = (0..8).map(|j| (i as f64 + 1.0) * 0.5 + j as f64).collect();
        e.write_tensor(*t, &vals);
    }
    e.write_tensor(f.y, &[0.0; 4]);
    e.write_scalar(f.s, 7.5);
    e.write_scalar(f.pred_false, 0.0);
    e.write_scalar(f.pred_true, 1.0);
    e.run();
    let mut tensors: Vec<Vec<u64>> = Vec::new();
    for t in f.data.iter().chain([&f.y, &f.s, &f.pred_false, &f.pred_true]) {
        tensors.push(e.read_tensor(*t).into_iter().map(f64::to_bits).collect());
    }
    (
        tensors,
        e.stats().device_cycles(),
        e.stats().exchange_bytes(),
        e.stats().supersteps(),
        e.stats().sync_count(),
        e.stats().labels_by_phase_sorted(),
        e.stats().tile_busy_all().to_vec(),
    )
}

#[test]
fn random_trees_execute_identically_in_all_three_modes() {
    let f = fixture();
    for seed in 0..48u64 {
        let mut rng = TestRng::seed_from_u64(0x5eed_0000 + seed);
        let prog = gen_prog(&mut rng, &f, 4);
        let opt = run_mode(&f, &prog, true, false);
        let noopt = run_mode(&f, &prog, false, false);
        let legacy = run_mode(&f, &prog, true, true);
        assert_eq!(opt, noopt, "optimised vs unoptimised diverged (seed {seed}): {prog:?}");
        assert_eq!(opt, legacy, "plan vs legacy interpreter diverged (seed {seed}): {prog:?}");
    }
}

/// Run `prog` under an explicit executor with the perf recorder armed and
/// return `(device_cycles, perf steps total, attribution JSON)`.
fn run_perf(
    f: &Fixture,
    prog: &Prog,
    optimise: bool,
    executor: ExecutorKind,
) -> (u64, u64, String) {
    let exec = f
        .graph
        .clone()
        .compile_with(prog.clone(), CompileOptions { optimise })
        .expect("random program must validate");
    let opts = EngineOptions { executor, ..EngineOptions::default() };
    let mut e = Engine::with_options(exec, opts).expect("fixture graph is hazard-free");
    e.enable_perf();
    for (k, cb) in [(0usize, 10.0f64), (1, 100.0)] {
        e.register_callback(
            k,
            Box::new(move |view: &mut graph::engine::HostView<'_>| {
                let mut v = view.read_f64(0);
                v[0] += cb;
                view.write_f64(0, &v);
            }),
        );
    }
    for (i, t) in f.data.iter().enumerate() {
        let vals: Vec<f64> = (0..8).map(|j| (i as f64 + 1.0) * 0.5 + j as f64).collect();
        e.write_tensor(*t, &vals);
    }
    e.write_tensor(f.y, &[0.0; 4]);
    e.write_scalar(f.s, 7.5);
    e.write_scalar(f.pred_false, 0.0);
    e.write_scalar(f.pred_true, 1.0);
    e.run();
    let report = e.perf_report(8).expect("perf recorder was armed");
    (e.stats().device_cycles(), report.steps_total(), report.attribution_json())
}

/// Per-step attribution is exact and executor-independent: the per-step
/// cycle totals partition `device_cycles` with no remainder (for both the
/// optimised and unoptimised plan), and the whole attribution section —
/// steps, bytes, flops, imbalance, speed-of-light — is bit-identical
/// whether the sequential or the parallel host executor replayed the plan.
#[test]
fn random_trees_perf_attribution_partitions_cycles_and_is_executor_independent() {
    let f = fixture();
    for seed in 0..32u64 {
        let mut rng = TestRng::seed_from_u64(0x9e4f_0000 + seed);
        let prog = gen_prog(&mut rng, &f, 4);
        for optimise in [true, false] {
            let (seq_cycles, seq_total, seq_json) =
                run_perf(&f, &prog, optimise, ExecutorKind::Sequential);
            assert_eq!(
                seq_total, seq_cycles,
                "per-step cycles must partition device_cycles (seed {seed}, optimise {optimise}): {prog:?}"
            );
            let (par_cycles, par_total, par_json) =
                run_perf(&f, &prog, optimise, ExecutorKind::Parallel);
            assert_eq!(par_total, par_cycles, "partition broke under the parallel executor");
            assert_eq!(
                seq_json, par_json,
                "attribution diverged across executors (seed {seed}, optimise {optimise}): {prog:?}"
            );
        }
    }
}

#[test]
fn random_trees_shrink_or_keep_dispatch_steps() {
    let f = fixture();
    for seed in 0..48u64 {
        let mut rng = TestRng::seed_from_u64(0xabc0_0000 + seed);
        let prog = gen_prog(&mut rng, &f, 4);
        let opt =
            f.graph.clone().compile_with(prog.clone(), CompileOptions { optimise: true }).unwrap();
        let noopt = f.graph.clone().compile_with(prog, CompileOptions { optimise: false }).unwrap();
        assert!(
            opt.report.plan_steps <= noopt.report.plan_steps,
            "optimisation grew the plan (seed {seed}): {} > {}",
            opt.report.plan_steps,
            noopt.report.plan_steps
        );
        assert!(opt.report.optimised && !noopt.report.optimised);
    }
}
