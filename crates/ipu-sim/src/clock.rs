//! Cycle accounting — the simulator's answer to Poplar's profiler.
//!
//! Under BSP, device time is the sum over supersteps of
//! `max_tile(compute) + exchange + sync`. [`CycleStats`] accumulates that
//! critical path, keeps per-tile busy counters (for utilisation/balance
//! diagnostics), and attributes device time to nested, named *phases* so
//! that experiments like the paper's Table IV ("which fraction of solver
//! time is ILU solve / SpMV / reduce / extended-precision ops") fall out
//! directly.
//!
//! Attribution is *innermost-wins*: while `["solver", "spmv"]` is on the
//! label stack, cycles go to `spmv` only. Cycles recorded with an empty
//! stack land in an explicit unlabelled bucket
//! ([`CycleStats::unlabelled_cycles`]), so that
//! `Σ label_cycles + unlabelled_cycles == device_cycles` holds exactly —
//! the invariant the profiling layer's reports are built on.

use std::collections::HashMap;

use crate::model::TileId;

/// Category of device time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tiles executing codelets.
    Compute,
    /// The exchange fabric / IPU-Links moving data.
    Exchange,
    /// BSP synchronisation barriers.
    Sync,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 3] = [Phase::Compute, Phase::Exchange, Phase::Sync];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Exchange => "exchange",
            Phase::Sync => "sync",
        }
    }
}

/// Accumulated cycle statistics for one engine execution.
#[derive(Clone, Debug, Default)]
pub struct CycleStats {
    device_cycles: u64,
    by_phase: [u64; 3],
    tile_busy: Vec<u64>,
    /// label -> device cycles (split by phase) attributed while that label
    /// was innermost.
    labels: HashMap<String, [u64; 3]>,
    /// Cycles recorded while the label stack was empty.
    unlabelled: [u64; 3],
    label_stack: Vec<String>,
    supersteps: u64,
    /// Bytes moved over the exchange fabric / IPU-Links.
    exchange_bytes: u64,
    /// Number of synchronisation barriers executed.
    sync_count: u64,
    /// Number of `pop_label` calls made while the stack was already empty —
    /// each one is a label-balance bug in the caller that would otherwise
    /// silently skew attribution.
    label_underflows: u64,
}

impl CycleStats {
    pub fn new(num_tiles: usize) -> Self {
        CycleStats { tile_busy: vec![0; num_tiles], ..Default::default() }
    }

    /// Enter a named attribution scope (e.g. `"spmv"`, `"ilu_solve"`).
    pub fn push_label(&mut self, label: impl Into<String>) {
        self.label_stack.push(label.into());
    }

    /// Leave the innermost attribution scope.
    ///
    /// Popping an empty stack is a label-balance bug in the caller. It used
    /// to be a debug assertion that compiled away to a *silent* no-op in
    /// release builds, so one unbalanced caller could permanently skew
    /// attribution without a trace. It is now counted
    /// ([`label_underflows`]) so reports and the engine's label-balance
    /// check can surface it in every build profile. Cycles recorded after
    /// an underflow go to the unlabelled bucket rather than being
    /// misattributed to a stale outer label.
    ///
    /// [`label_underflows`]: CycleStats::label_underflows
    pub fn pop_label(&mut self) {
        if self.label_stack.pop().is_none() {
            self.label_underflows += 1;
        }
    }

    /// Number of times `pop_label` was called on an empty stack. Any
    /// non-zero value indicates a label-balance bug in a caller.
    pub fn label_underflows(&self) -> u64 {
        self.label_underflows
    }

    /// Current nesting depth of the label stack.
    pub fn label_depth(&self) -> usize {
        self.label_stack.len()
    }

    /// The current label stack, outermost first.
    pub fn label_stack(&self) -> &[String] {
        &self.label_stack
    }

    fn attribute(&mut self, phase: Phase, cycles: u64) {
        match self.label_stack.last() {
            Some(l) => self.labels.entry(l.clone()).or_insert([0; 3])[phase as usize] += cycles,
            None => self.unlabelled[phase as usize] += cycles,
        }
    }

    /// Record one compute superstep: `per_tile` holds the busy cycles of
    /// each participating tile; device time advances by the maximum
    /// (the BSP makespan).
    ///
    /// The accumulation is order-independent (per-tile sums and a max), so
    /// per-worker cycle buffers produced by a parallel host executor can be
    /// merged in any deterministic order — the engine uses tile-id order —
    /// and yield stats identical to sequential execution.
    pub fn record_compute(&mut self, per_tile: impl IntoIterator<Item = (TileId, u64)>) {
        let mut max = 0;
        for (tile, cycles) in per_tile {
            self.tile_busy[tile] += cycles;
            max = max.max(cycles);
        }
        self.device_cycles += max;
        self.by_phase[Phase::Compute as usize] += max;
        self.attribute(Phase::Compute, max);
        self.supersteps += 1;
    }

    /// Record an exchange phase of `cycles` device time.
    pub fn record_exchange(&mut self, cycles: u64) {
        self.device_cycles += cycles;
        self.by_phase[Phase::Exchange as usize] += cycles;
        self.attribute(Phase::Exchange, cycles);
    }

    /// Record data volume for the current exchange phase (bytes over the
    /// fabric / links). Kept separate from [`record_exchange`] so callers
    /// that only model time keep working.
    ///
    /// [`record_exchange`]: CycleStats::record_exchange
    pub fn record_exchange_bytes(&mut self, bytes: u64) {
        self.exchange_bytes += bytes;
    }

    /// Record a synchronisation barrier of `cycles`.
    pub fn record_sync(&mut self, cycles: u64) {
        self.device_cycles += cycles;
        self.by_phase[Phase::Sync as usize] += cycles;
        self.attribute(Phase::Sync, cycles);
        self.sync_count += 1;
    }

    /// Total device cycles (the BSP critical path).
    pub fn device_cycles(&self) -> u64 {
        self.device_cycles
    }

    /// Device cycles spent in a category.
    pub fn phase_cycles(&self, phase: Phase) -> u64 {
        self.by_phase[phase as usize]
    }

    /// Total bytes moved over the exchange fabric / IPU-Links.
    pub fn exchange_bytes(&self) -> u64 {
        self.exchange_bytes
    }

    /// Number of synchronisation barriers executed.
    pub fn sync_count(&self) -> u64 {
        self.sync_count
    }

    /// Device cycles attributed to a named scope (0 if never entered).
    pub fn label_cycles(&self, label: &str) -> u64 {
        self.labels.get(label).map(|p| p.iter().sum()).unwrap_or(0)
    }

    /// Device cycles attributed to a named scope in one category.
    pub fn label_phase_cycles(&self, label: &str, phase: Phase) -> u64 {
        self.labels.get(label).map(|p| p[phase as usize]).unwrap_or(0)
    }

    /// Device cycles recorded while no label was active. Together with the
    /// named labels this partitions `device_cycles` exactly.
    pub fn unlabelled_cycles(&self) -> u64 {
        self.unlabelled.iter().sum()
    }

    /// Unlabelled device cycles in one category.
    pub fn unlabelled_phase_cycles(&self, phase: Phase) -> u64 {
        self.unlabelled[phase as usize]
    }

    /// All label attributions, sorted descending by cycles. Does not
    /// include the unlabelled bucket (see [`unlabelled_cycles`]).
    ///
    /// [`unlabelled_cycles`]: CycleStats::unlabelled_cycles
    pub fn labels_sorted(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> =
            self.labels.iter().map(|(k, p)| (k.clone(), p.iter().sum::<u64>())).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// All label attributions with their per-phase split
    /// `[compute, exchange, sync]`, sorted descending by total cycles.
    pub fn labels_by_phase_sorted(&self) -> Vec<(String, [u64; 3])> {
        let mut v: Vec<_> = self.labels.iter().map(|(k, p)| (k.clone(), *p)).collect();
        v.sort_by(|a, b| {
            let (ta, tb) = (a.1.iter().sum::<u64>(), b.1.iter().sum::<u64>());
            tb.cmp(&ta).then(a.0.cmp(&b.0))
        });
        v
    }

    /// Busy cycles of one tile.
    pub fn tile_busy(&self, tile: TileId) -> u64 {
        self.tile_busy[tile]
    }

    /// Per-tile busy counters (index = tile id).
    pub fn tile_busy_all(&self) -> &[u64] {
        &self.tile_busy
    }

    /// Mean tile utilisation relative to the compute critical path:
    /// 1.0 = perfectly balanced.
    pub fn compute_balance(&self) -> f64 {
        let compute = self.by_phase[Phase::Compute as usize];
        if compute == 0 || self.tile_busy.is_empty() {
            return 1.0;
        }
        let mean = self.tile_busy.iter().sum::<u64>() as f64 / self.tile_busy.len() as f64;
        mean / compute as f64
    }

    /// Number of compute supersteps recorded.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Reset all counters, keeping the tile count.
    pub fn reset(&mut self) {
        let n = self.tile_busy.len();
        *self = CycleStats::new(n);
    }

    /// Merge another stats object into this one (sequential composition).
    pub fn merge(&mut self, other: &CycleStats) {
        self.device_cycles += other.device_cycles;
        for i in 0..3 {
            self.by_phase[i] += other.by_phase[i];
            self.unlabelled[i] += other.unlabelled[i];
        }
        for (t, c) in other.tile_busy.iter().enumerate() {
            if t < self.tile_busy.len() {
                self.tile_busy[t] += c;
            }
        }
        for (k, p) in &other.labels {
            let e = self.labels.entry(k.clone()).or_insert([0; 3]);
            for i in 0..3 {
                e[i] += p[i];
            }
        }
        self.supersteps += other.supersteps;
        self.exchange_bytes += other.exchange_bytes;
        self.sync_count += other.sync_count;
        self.label_underflows += other.label_underflows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_takes_the_max() {
        let mut s = CycleStats::new(3);
        s.record_compute([(0, 10), (1, 30), (2, 20)]);
        assert_eq!(s.device_cycles(), 30);
        assert_eq!(s.tile_busy(0), 10);
        assert_eq!(s.tile_busy(1), 30);
        assert_eq!(s.supersteps(), 1);
    }

    #[test]
    fn record_compute_is_order_independent() {
        // The parallel host executor merges per-worker buffers in tile-id
        // order; sequential execution feeds vertices in program order. The
        // contract both rely on: any permutation of the same per-tile
        // pairs records identical stats.
        let mut fwd = CycleStats::new(4);
        fwd.record_compute([(0, 10), (1, 30), (2, 20), (3, 5)]);
        let mut rev = CycleStats::new(4);
        rev.record_compute([(3, 5), (2, 20), (1, 30), (0, 10)]);
        assert_eq!(fwd.device_cycles(), rev.device_cycles());
        assert_eq!(fwd.tile_busy_all(), rev.tile_busy_all());
        assert_eq!(fwd.supersteps(), rev.supersteps());
    }

    #[test]
    fn phases_accumulate_separately() {
        let mut s = CycleStats::new(2);
        s.record_compute([(0, 100)]);
        s.record_exchange(40);
        s.record_sync(10);
        assert_eq!(s.device_cycles(), 150);
        assert_eq!(s.phase_cycles(Phase::Compute), 100);
        assert_eq!(s.phase_cycles(Phase::Exchange), 40);
        assert_eq!(s.phase_cycles(Phase::Sync), 10);
        assert_eq!(s.sync_count(), 1);
    }

    #[test]
    fn labels_attribute_innermost() {
        let mut s = CycleStats::new(1);
        s.push_label("solver");
        s.record_compute([(0, 5)]);
        s.push_label("spmv");
        s.record_compute([(0, 7)]);
        s.pop_label();
        s.record_exchange(3);
        s.pop_label();
        s.record_compute([(0, 100)]); // unattributed
        assert_eq!(s.label_cycles("spmv"), 7);
        assert_eq!(s.label_cycles("solver"), 8);
        assert_eq!(s.label_cycles("nope"), 0);
        let sorted = s.labels_sorted();
        assert_eq!(sorted[0].0, "solver");
    }

    #[test]
    fn labels_plus_unlabelled_partition_device_cycles() {
        let mut s = CycleStats::new(2);
        s.record_sync(6); // unlabelled
        s.push_label("a");
        s.record_compute([(0, 10), (1, 4)]);
        s.push_label("b");
        s.record_exchange(9);
        s.pop_label();
        s.pop_label();
        s.record_compute([(0, 21)]); // unlabelled
        let labelled: u64 = s.labels_sorted().iter().map(|(_, c)| c).sum();
        assert_eq!(labelled + s.unlabelled_cycles(), s.device_cycles());
        assert_eq!(s.unlabelled_cycles(), 27);
        assert_eq!(s.unlabelled_phase_cycles(Phase::Sync), 6);
        assert_eq!(s.label_phase_cycles("a", Phase::Compute), 10);
        assert_eq!(s.label_phase_cycles("b", Phase::Exchange), 9);
        assert_eq!(s.label_phase_cycles("b", Phase::Compute), 0);
    }

    #[test]
    fn exchange_bytes_accumulate() {
        let mut s = CycleStats::new(1);
        s.record_exchange(10);
        s.record_exchange_bytes(256);
        s.record_exchange(5);
        s.record_exchange_bytes(64);
        assert_eq!(s.exchange_bytes(), 320);
    }

    #[test]
    fn unbalanced_pop_is_counted_not_silent() {
        // Regression: in release builds an unbalanced pop_label used to be
        // a silent no-op; it must be observable as a counted stat.
        let mut s = CycleStats::new(1);
        assert_eq!(s.label_underflows(), 0);
        s.pop_label();
        assert_eq!(s.label_underflows(), 1);
        s.push_label("a");
        s.pop_label(); // balanced — no new underflow
        s.pop_label(); // unbalanced again
        assert_eq!(s.label_underflows(), 2);
        // Attribution after an underflow still lands in the unlabelled
        // bucket, keeping the partition invariant intact.
        s.record_compute([(0, 9)]);
        assert_eq!(s.unlabelled_cycles(), 9);
        assert_eq!(s.unlabelled_cycles() + 0, s.device_cycles());
    }

    #[test]
    fn underflows_merge_and_reset() {
        let mut a = CycleStats::new(1);
        a.pop_label();
        let mut b = CycleStats::new(1);
        b.pop_label();
        b.pop_label();
        a.merge(&b);
        assert_eq!(a.label_underflows(), 3);
        a.reset();
        assert_eq!(a.label_underflows(), 0);
    }

    #[test]
    fn label_depth_tracks_stack() {
        let mut s = CycleStats::new(1);
        assert_eq!(s.label_depth(), 0);
        s.push_label("a");
        s.push_label("b");
        assert_eq!(s.label_depth(), 2);
        assert_eq!(s.label_stack(), ["a".to_string(), "b".to_string()]);
        s.pop_label();
        assert_eq!(s.label_depth(), 1);
    }

    #[test]
    fn balance_reflects_imbalance() {
        let mut s = CycleStats::new(2);
        s.record_compute([(0, 100), (1, 0)]);
        assert!((s.compute_balance() - 0.5).abs() < 1e-9);
        let mut b = CycleStats::new(2);
        b.record_compute([(0, 50), (1, 50)]);
        assert!((b.compute_balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = CycleStats::new(2);
        a.push_label("x");
        a.record_compute([(0, 10)]);
        a.pop_label();
        let mut b = CycleStats::new(2);
        b.push_label("x");
        b.record_exchange(5);
        b.record_exchange_bytes(128);
        b.pop_label();
        b.record_sync(2);
        a.merge(&b);
        assert_eq!(a.device_cycles(), 17);
        assert_eq!(a.label_cycles("x"), 15);
        assert_eq!(a.label_phase_cycles("x", Phase::Exchange), 5);
        assert_eq!(a.exchange_bytes(), 128);
        assert_eq!(a.sync_count(), 1);
        assert_eq!(a.unlabelled_cycles(), 2);
    }
}
