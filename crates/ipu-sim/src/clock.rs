//! Cycle accounting — the simulator's answer to Poplar's profiler.
//!
//! Under BSP, device time is the sum over supersteps of
//! `max_tile(compute) + exchange + sync`. [`CycleStats`] accumulates that
//! critical path, keeps per-tile busy counters (for utilisation/balance
//! diagnostics), and attributes device time to nested, named *phases* so
//! that experiments like the paper's Table IV ("which fraction of solver
//! time is ILU solve / SpMV / reduce / extended-precision ops") fall out
//! directly.

use std::collections::HashMap;

use crate::model::TileId;

/// Category of device time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tiles executing codelets.
    Compute,
    /// The exchange fabric / IPU-Links moving data.
    Exchange,
    /// BSP synchronisation barriers.
    Sync,
}

/// Accumulated cycle statistics for one engine execution.
#[derive(Clone, Debug, Default)]
pub struct CycleStats {
    device_cycles: u64,
    by_phase: [u64; 3],
    tile_busy: Vec<u64>,
    /// label -> device cycles attributed while that label was innermost.
    labels: HashMap<String, u64>,
    label_stack: Vec<String>,
    supersteps: u64,
}

impl CycleStats {
    pub fn new(num_tiles: usize) -> Self {
        CycleStats { tile_busy: vec![0; num_tiles], ..Default::default() }
    }

    /// Enter a named attribution scope (e.g. `"spmv"`, `"ilu_solve"`).
    pub fn push_label(&mut self, label: impl Into<String>) {
        self.label_stack.push(label.into());
    }

    /// Leave the innermost attribution scope.
    pub fn pop_label(&mut self) {
        self.label_stack.pop();
    }

    fn attribute(&mut self, cycles: u64) {
        if let Some(l) = self.label_stack.last() {
            *self.labels.entry(l.clone()).or_insert(0) += cycles;
        }
    }

    /// Record one compute superstep: `per_tile` holds the busy cycles of
    /// each participating tile; device time advances by the maximum
    /// (the BSP makespan).
    pub fn record_compute(&mut self, per_tile: impl IntoIterator<Item = (TileId, u64)>) {
        let mut max = 0;
        for (tile, cycles) in per_tile {
            self.tile_busy[tile] += cycles;
            max = max.max(cycles);
        }
        self.device_cycles += max;
        self.by_phase[Phase::Compute as usize] += max;
        self.attribute(max);
        self.supersteps += 1;
    }

    /// Record an exchange phase of `cycles` device time.
    pub fn record_exchange(&mut self, cycles: u64) {
        self.device_cycles += cycles;
        self.by_phase[Phase::Exchange as usize] += cycles;
        self.attribute(cycles);
    }

    /// Record a synchronisation barrier of `cycles`.
    pub fn record_sync(&mut self, cycles: u64) {
        self.device_cycles += cycles;
        self.by_phase[Phase::Sync as usize] += cycles;
        self.attribute(cycles);
    }

    /// Total device cycles (the BSP critical path).
    pub fn device_cycles(&self) -> u64 {
        self.device_cycles
    }

    /// Device cycles spent in a category.
    pub fn phase_cycles(&self, phase: Phase) -> u64 {
        self.by_phase[phase as usize]
    }

    /// Device cycles attributed to a named scope (0 if never entered).
    pub fn label_cycles(&self, label: &str) -> u64 {
        self.labels.get(label).copied().unwrap_or(0)
    }

    /// All label attributions, sorted descending by cycles.
    pub fn labels_sorted(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self.labels.iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Busy cycles of one tile.
    pub fn tile_busy(&self, tile: TileId) -> u64 {
        self.tile_busy[tile]
    }

    /// Mean tile utilisation relative to the compute critical path:
    /// 1.0 = perfectly balanced.
    pub fn compute_balance(&self) -> f64 {
        let compute = self.by_phase[Phase::Compute as usize];
        if compute == 0 || self.tile_busy.is_empty() {
            return 1.0;
        }
        let mean = self.tile_busy.iter().sum::<u64>() as f64 / self.tile_busy.len() as f64;
        mean / compute as f64
    }

    /// Number of compute supersteps recorded.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Reset all counters, keeping the tile count.
    pub fn reset(&mut self) {
        let n = self.tile_busy.len();
        *self = CycleStats::new(n);
    }

    /// Merge another stats object into this one (sequential composition).
    pub fn merge(&mut self, other: &CycleStats) {
        self.device_cycles += other.device_cycles;
        for i in 0..3 {
            self.by_phase[i] += other.by_phase[i];
        }
        for (t, c) in other.tile_busy.iter().enumerate() {
            if t < self.tile_busy.len() {
                self.tile_busy[t] += c;
            }
        }
        for (k, v) in &other.labels {
            *self.labels.entry(k.clone()).or_insert(0) += v;
        }
        self.supersteps += other.supersteps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_takes_the_max() {
        let mut s = CycleStats::new(3);
        s.record_compute([(0, 10), (1, 30), (2, 20)]);
        assert_eq!(s.device_cycles(), 30);
        assert_eq!(s.tile_busy(0), 10);
        assert_eq!(s.tile_busy(1), 30);
        assert_eq!(s.supersteps(), 1);
    }

    #[test]
    fn phases_accumulate_separately() {
        let mut s = CycleStats::new(2);
        s.record_compute([(0, 100)]);
        s.record_exchange(40);
        s.record_sync(10);
        assert_eq!(s.device_cycles(), 150);
        assert_eq!(s.phase_cycles(Phase::Compute), 100);
        assert_eq!(s.phase_cycles(Phase::Exchange), 40);
        assert_eq!(s.phase_cycles(Phase::Sync), 10);
    }

    #[test]
    fn labels_attribute_innermost() {
        let mut s = CycleStats::new(1);
        s.push_label("solver");
        s.record_compute([(0, 5)]);
        s.push_label("spmv");
        s.record_compute([(0, 7)]);
        s.pop_label();
        s.record_exchange(3);
        s.pop_label();
        s.record_compute([(0, 100)]); // unattributed
        assert_eq!(s.label_cycles("spmv"), 7);
        assert_eq!(s.label_cycles("solver"), 8);
        assert_eq!(s.label_cycles("nope"), 0);
        let sorted = s.labels_sorted();
        assert_eq!(sorted[0].0, "solver");
    }

    #[test]
    fn balance_reflects_imbalance() {
        let mut s = CycleStats::new(2);
        s.record_compute([(0, 100), (1, 0)]);
        assert!((s.compute_balance() - 0.5).abs() < 1e-9);
        let mut b = CycleStats::new(2);
        b.record_compute([(0, 50), (1, 50)]);
        assert!((b.compute_balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = CycleStats::new(2);
        a.push_label("x");
        a.record_compute([(0, 10)]);
        a.pop_label();
        let mut b = CycleStats::new(2);
        b.push_label("x");
        b.record_exchange(5);
        b.pop_label();
        a.merge(&b);
        assert_eq!(a.device_cycles(), 15);
        assert_eq!(a.label_cycles("x"), 15);
    }
}
