//! The cycle cost model.
//!
//! Arithmetic costs follow the paper's **Table I** exactly for the three
//! floating-point families (native f32, double-word, emulated f64). Costs
//! for memory/integer/control operations reflect the Mk2 tile
//! microarchitecture the paper leans on in §VI-D: a two-pipeline core that
//! can dual-issue one floating-point instruction with one load/store or
//! integer instruction, and single-cycle conditional branches.

/// Revision of the cycle cost model. Bump this whenever a change alters
/// *any* modelled cycle count (arithmetic rates, exchange fabric costs,
/// sync charges, ...): persisted artifacts scored against the model — most
/// importantly the tuned-plan cache (`graphene-tune`) — key on it so stale
/// scores are invalidated rather than silently reused.
pub const COST_MODEL_REVISION: u32 = 1;

/// Data types that exist on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// Native IEEE binary32.
    F32,
    /// Double-word: an (f32, f32) pair, Joldes et al. arithmetic.
    DoubleWord,
    /// Software-emulated IEEE binary64 (compiler-rt style).
    F64Emulated,
    /// 32-bit signed integer.
    I32,
    /// Boolean / predicate.
    Bool,
}

impl DType {
    /// Bytes occupied by one element in tile SRAM.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::DoubleWord => 8,
            DType::F64Emulated => 8,
            DType::I32 => 4,
            DType::Bool => 1,
        }
    }

    /// Whether this is one of the floating-point families of Table I.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::DoubleWord | DType::F64Emulated)
    }
}

/// Abstract operations the codelet VM executes; each combination of
/// (op, dtype) has a fixed cycle cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    /// Fused multiply-add (one instruction on the IPU for f32).
    Fma,
    Neg,
    Abs,
    Sqrt,
    Min,
    Max,
    /// Comparison producing a predicate.
    Cmp,
    /// Load one element from tile SRAM.
    Load,
    /// Store one element to tile SRAM.
    Store,
    /// Per-iteration loop bookkeeping (compare + branch + index update).
    LoopStep,
    /// A taken/untaken conditional branch.
    Branch,
    /// Integer ALU operation (index arithmetic).
    IntAlu,
    /// Type conversion between dtypes.
    Convert,
}

/// The cost model: pure functions from (op, dtype) to cycles, plus the
/// fabric and sync parameters used by [`crate::exchange`].
#[derive(Clone, Debug)]
pub struct CostModel {
    /// On-chip exchange bandwidth per tile, bytes per cycle. The Mk2's
    /// aggregate 8 TB/s fabric over 1,472 tiles at 1.325 GHz gives ≈4 B/c.
    pub exchange_bytes_per_cycle: f64,
    /// Fixed overhead per exchanged region (the "communication instruction"
    /// the paper's reordering strategy amortises — one per region instead of
    /// one per cell).
    pub region_overhead_cycles: u64,
    /// On-chip BSP sync cost per superstep.
    pub sync_on_chip_cycles: u64,
    /// Additional sync cost when a superstep spans multiple chips.
    pub sync_inter_ipu_cycles: u64,
    /// IPU-Link bandwidth per tile, bytes per cycle (links are shared and
    /// packaged; far below the on-chip fabric).
    pub ipu_link_bytes_per_cycle: f64,
    /// Latency adder for any superstep that exchanges across chips.
    pub ipu_link_latency_cycles: u64,
    /// Cost of spawning + joining the six workers once (the IPUTHREADING
    /// `runall`/`sync` pair).
    pub worker_spawn_cycles: u64,
    /// Cost of one intra-tile worker barrier (between level-set levels).
    pub worker_sync_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            exchange_bytes_per_cycle: 4.0,
            region_overhead_cycles: 12,
            sync_on_chip_cycles: 150,
            sync_inter_ipu_cycles: 600,
            ipu_link_bytes_per_cycle: 2.0,
            ipu_link_latency_cycles: 300,
            worker_spawn_cycles: 24,
            worker_sync_cycles: 12,
        }
    }
}

impl CostModel {
    /// Cycles for one execution of `op` on `dtype` (paper Table I for the
    /// floating-point arithmetic rows).
    pub fn op_cycles(&self, op: Op, dtype: DType) -> u64 {
        use DType::*;
        use Op::*;
        match (op, dtype) {
            // --- Table I arithmetic ---
            (Add | Sub, F32) => 6,
            (Mul, F32) => 6,
            (Div, F32) => 6,
            (Fma, F32) => 6,
            (Add | Sub, DoubleWord) => 132,
            (Mul, DoubleWord) => 162,
            (Div, DoubleWord) => 240,
            (Fma, DoubleWord) => 132 + 162,
            (Add | Sub, F64Emulated) => 1080,
            (Mul, F64Emulated) => 1260,
            (Div, F64Emulated) => 2520,
            (Fma, F64Emulated) => 1080 + 1260,
            // --- derived float ops ---
            (Neg | Abs, F32) => 1,
            (Neg | Abs, DoubleWord) => 2,
            (Neg | Abs, F64Emulated) => 12,
            (Sqrt, F32) => 36,
            (Sqrt, DoubleWord) => 520,
            (Sqrt, F64Emulated) => 4200,
            (Min | Max | Cmp, F32) => 2,
            (Min | Max | Cmp, DoubleWord) => 8,
            (Min | Max | Cmp, F64Emulated) => 40,
            // --- integer / bool ---
            (Add | Sub | Mul | IntAlu | Min | Max | Cmp, I32) => 1,
            (Div, I32) => 12,
            (Neg | Abs, I32) => 1,
            (_, Bool) => 1,
            // --- memory: dual-issue hides most loads behind FP work, but
            // charge one slot; double-width types move two words ---
            (Load | Store, F32 | I32) => 1,
            (Load | Store, DoubleWord | F64Emulated) => 2,
            // --- control ---
            (LoopStep, _) => 2,
            (Branch, _) => 1,
            (Convert, _) => 2,
            // anything else (e.g. Fma on I32) is a modelling error
            (op, dt) => unreachable!("no cost for {op:?} on {dt:?}"),
        }
    }

    /// Cycles for a *mixed* double-word ⊗ single-word operation — the
    /// cheaper Joldes algorithms between a double-word and a plain float
    /// (`DWPlusFP` 10 flops, `DWTimesFP3` 6 flops, `DWDivFP3` 10 flops).
    /// Matrix coefficients stay in working precision during MPIR's
    /// extended residual, so its SpMV is dominated by these.
    pub fn op_cycles_mixed_dw(&self, op: Op) -> u64 {
        match op {
            Op::Mul | Op::Fma => 36,
            Op::Add | Op::Sub => 60,
            Op::Div => 60,
            other => self.op_cycles(other, DType::DoubleWord),
        }
    }

    /// Useful floating-point operations one logical `op` performs —
    /// independent of the precision family, so a double-word add counts
    /// as one flop even though it retires ~20 instructions. Rooflines
    /// and achieved-vs-peak comparisons are only meaningful over *useful*
    /// work; the emulation overhead shows up as cycles, not flops.
    /// Non-arithmetic ops (compares, sign ops, moves) count zero.
    pub fn op_flops(&self, op: Op, dtype: DType) -> u64 {
        if !dtype.is_float() {
            return 0;
        }
        match op {
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Sqrt => 1,
            Op::Fma => 2,
            _ => 0,
        }
    }

    /// Peak f32 throughput of one tile in flops per cycle: `workers`
    /// pipelines each retiring one FMA (2 flops) every
    /// `op_cycles(Fma, F32)` cycles. The roofline ceiling the perf
    /// reports compare achieved throughput against — self-consistent
    /// with this cost model rather than quoting datasheet numbers.
    pub fn peak_flops_per_cycle(&self, workers: u64) -> f64 {
        workers as f64 * 2.0 / self.op_cycles(Op::Fma, DType::F32) as f64
    }

    /// Cycles to move `bytes` through the on-chip fabric as one region.
    pub fn on_chip_region_cycles(&self, bytes: usize) -> u64 {
        self.region_overhead_cycles + (bytes as f64 / self.exchange_bytes_per_cycle).ceil() as u64
    }

    /// Cycles to move `bytes` across an IPU-Link as one region
    /// (excluding the per-superstep latency adder).
    pub fn ipu_link_region_cycles(&self, bytes: usize) -> u64 {
        self.region_overhead_cycles + (bytes as f64 / self.ipu_link_bytes_per_cycle).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_arithmetic_costs() {
        let c = CostModel::default();
        // Table I rows, verbatim.
        assert_eq!(c.op_cycles(Op::Add, DType::F32), 6);
        assert_eq!(c.op_cycles(Op::Mul, DType::F32), 6);
        assert_eq!(c.op_cycles(Op::Div, DType::F32), 6);
        assert_eq!(c.op_cycles(Op::Add, DType::DoubleWord), 132);
        assert_eq!(c.op_cycles(Op::Mul, DType::DoubleWord), 162);
        assert_eq!(c.op_cycles(Op::Div, DType::DoubleWord), 240);
        assert_eq!(c.op_cycles(Op::Add, DType::F64Emulated), 1080);
        assert_eq!(c.op_cycles(Op::Mul, DType::F64Emulated), 1260);
        assert_eq!(c.op_cycles(Op::Div, DType::F64Emulated), 2520);
    }

    #[test]
    fn double_word_far_cheaper_than_emulated_double() {
        let c = CostModel::default();
        for op in [Op::Add, Op::Mul, Op::Div] {
            let dw = c.op_cycles(op, DType::DoubleWord);
            let dp = c.op_cycles(op, DType::F64Emulated);
            assert!(dp > 7 * dw, "{op:?}: dw={dw} dp={dp}");
        }
    }

    #[test]
    fn element_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::DoubleWord.size_bytes(), 8);
        assert_eq!(DType::F64Emulated.size_bytes(), 8);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn region_cost_scales_with_bytes() {
        let c = CostModel::default();
        let small = c.on_chip_region_cycles(64);
        let big = c.on_chip_region_cycles(6400);
        assert!(big > small);
        // Overhead dominates tiny regions — the motivation for blockwise
        // transfers.
        assert_eq!(c.on_chip_region_cycles(4), c.region_overhead_cycles + 1);
    }

    #[test]
    fn ipu_link_slower_than_fabric() {
        let c = CostModel::default();
        assert!(c.ipu_link_region_cycles(4096) > c.on_chip_region_cycles(4096));
    }
}
