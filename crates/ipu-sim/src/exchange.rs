//! The exchange fabric model.
//!
//! On the Mk2, tiles on one chip are connected all-to-all by a stateless
//! fabric; the compiler schedules every transfer cycle-precisely, and all
//! tiles synchronise before communicating (BSP). Chips are connected by
//! slower, stateful IPU-Links. This module costs an *exchange phase*: a set
//! of blockwise region copies executed between two supersteps.
//!
//! Two properties of the real fabric matter for the paper's results and are
//! modelled explicitly:
//!
//! 1. **All-to-all, contention-free**: the phase cost is the per-tile
//!    maximum of send/receive work, *independent of how many tiles
//!    participate* — which is what produces the paper's flat halo-exchange
//!    time under weak scaling (Fig 6).
//! 2. **Broadcast**: a source region consumed by several neighbours is sent
//!    once and received by each consumer; the sender pays once. The halo
//!    reordering strategy (§IV) exists to exploit exactly this.

use crate::cost::CostModel;
use crate::model::{IpuModel, TileId};

/// Identity of a contiguous source region: the tensor it lives in and the
/// element span within that tensor.
///
/// This is the *real* identity tuple, not a hash. An earlier revision keyed
/// regions on a 64-bit `DefaultHasher` digest, which made broadcast
/// deduplication (and therefore exchange cycle costs) silently wrong on a
/// hash collision between two distinct regions. Keying on the tuple makes
/// collisions impossible by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionKey {
    /// Raw tensor id (the graph layer's `TensorId.0`).
    pub tensor: usize,
    /// First element of the region within the tensor.
    pub start: usize,
    /// Region length in elements.
    pub len: usize,
}

impl RegionKey {
    pub fn new(tensor: usize, start: usize, len: usize) -> Self {
        RegionKey { tensor, start, len }
    }
}

/// One blockwise copy of a contiguous region between two tiles.
///
/// `src_region` identifies the source region by its `(tensor, start, len)`
/// tuple; copies sharing a `src_region` within one phase form a broadcast
/// and charge the sender only once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCopy {
    pub src_tile: TileId,
    pub dst_tile: TileId,
    pub bytes: usize,
    pub src_region: RegionKey,
}

/// An exchange phase: all copies that run between two compute supersteps.
#[derive(Clone, Debug, Default)]
pub struct ExchangeProgram {
    pub copies: Vec<BlockCopy>,
}

impl ExchangeProgram {
    pub fn new(copies: Vec<BlockCopy>) -> Self {
        ExchangeProgram { copies }
    }

    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// Total bytes received by all tiles (the communication volume).
    pub fn total_bytes(&self) -> usize {
        self.copies.iter().map(|c| c.bytes).sum()
    }

    /// Number of distinct source regions (= number of communication
    /// instructions the compiler must issue — what the paper's reordering
    /// minimises).
    pub fn num_regions(&self) -> usize {
        let mut keys: Vec<RegionKey> = self.copies.iter().map(|c| c.src_region).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Device cycles for this exchange phase.
    ///
    /// Each tile accumulates send cost (once per distinct source region it
    /// owns) and receive cost (once per incoming copy); the phase costs the
    /// per-tile maximum. If any copy crosses a chip boundary the IPU-Link
    /// latency is added once and the slower link bandwidth applies to those
    /// copies.
    pub fn cycles(&self, model: &IpuModel, cm: &CostModel) -> u64 {
        if self.copies.is_empty() {
            return 0;
        }
        let mut per_tile = vec![0u64; model.num_tiles()];
        let mut crosses_chip = false;
        // Per distinct source region, the worst-case (most expensive) link
        // cost over all copies of that region. A broadcast whose consumers
        // mix on-chip and cross-chip destinations must charge the sender the
        // slowest link serving the region — the fabric streams the region
        // once at the rate of the slowest consumer path, not at the rate of
        // whichever copy happens to be listed first.
        let mut send_cost: std::collections::HashMap<(TileId, RegionKey), u64> =
            std::collections::HashMap::with_capacity(self.copies.len());
        for c in &self.copies {
            let on_chip = model.same_chip(c.src_tile, c.dst_tile);
            crosses_chip |= !on_chip;
            let cost = if on_chip {
                cm.on_chip_region_cycles(c.bytes)
            } else {
                cm.ipu_link_region_cycles(c.bytes)
            };
            // Receiver always pays.
            per_tile[c.dst_tile] += cost;
            // Sender pays once per region (broadcast), at the max link cost.
            let e = send_cost.entry((c.src_tile, c.src_region)).or_insert(0);
            *e = (*e).max(cost);
        }
        for ((src, _), cost) in send_cost {
            per_tile[src] += cost;
        }
        let max = per_tile.into_iter().max().unwrap_or(0);
        max + if crosses_chip { cm.ipu_link_latency_cycles } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IpuModel {
        IpuModel { num_ipus: 2, tiles_per_ipu: 4, ..IpuModel::mk2() }
    }

    /// Shorthand: a distinct region per tensor id (span irrelevant here).
    fn k(tensor: usize) -> RegionKey {
        RegionKey::new(tensor, 0, 100)
    }

    #[test]
    fn empty_phase_is_free() {
        let p = ExchangeProgram::default();
        assert_eq!(p.cycles(&model(), &CostModel::default()), 0);
    }

    #[test]
    fn broadcast_charges_sender_once() {
        let cm = CostModel::default();
        let m = model();
        // Tile 0 sends the same 400-byte region to tiles 1, 2, 3.
        let bcast = ExchangeProgram::new(vec![
            BlockCopy { src_tile: 0, dst_tile: 1, bytes: 400, src_region: k(7) },
            BlockCopy { src_tile: 0, dst_tile: 2, bytes: 400, src_region: k(7) },
            BlockCopy { src_tile: 0, dst_tile: 3, bytes: 400, src_region: k(7) },
        ]);
        // Distinct regions to the same destinations: sender pays 3x.
        let uni = ExchangeProgram::new(vec![
            BlockCopy { src_tile: 0, dst_tile: 1, bytes: 400, src_region: k(1) },
            BlockCopy { src_tile: 0, dst_tile: 2, bytes: 400, src_region: k(2) },
            BlockCopy { src_tile: 0, dst_tile: 3, bytes: 400, src_region: k(3) },
        ]);
        let region = cm.on_chip_region_cycles(400);
        assert_eq!(bcast.cycles(&m, &cm), region); // sender once, receivers once each, max = region
        assert_eq!(uni.cycles(&m, &cm), 3 * region); // sender is the bottleneck
        assert_eq!(bcast.num_regions(), 1);
        assert_eq!(uni.num_regions(), 3);
    }

    #[test]
    fn distinct_regions_never_merge() {
        // Regression for the hash-keyed dedup: two *different* regions must
        // never be treated as one broadcast, regardless of how close their
        // identities are. With the old `DefaultHasher`-derived `u64` key a
        // collision would silently merge them and undercharge the sender;
        // with the `(tensor, start, len)` tuple this cannot happen.
        let cm = CostModel::default();
        let m = model();
        let region = cm.on_chip_region_cycles(400);

        // Same tensor, adjacent starts: distinct regions.
        let same_tensor = ExchangeProgram::new(vec![
            BlockCopy { src_tile: 0, dst_tile: 1, bytes: 400, src_region: RegionKey::new(5, 0, 1) },
            BlockCopy { src_tile: 0, dst_tile: 2, bytes: 400, src_region: RegionKey::new(5, 1, 1) },
        ]);
        assert_eq!(same_tensor.num_regions(), 2);
        // Sender pays for both regions — it is the bottleneck tile.
        assert_eq!(same_tensor.cycles(&m, &cm), 2 * region);

        // Different tensors, identical span: distinct regions.
        let diff_tensor = ExchangeProgram::new(vec![
            BlockCopy { src_tile: 0, dst_tile: 1, bytes: 400, src_region: RegionKey::new(1, 0, 1) },
            BlockCopy { src_tile: 0, dst_tile: 2, bytes: 400, src_region: RegionKey::new(2, 0, 1) },
        ]);
        assert_eq!(diff_tensor.num_regions(), 2);
        assert_eq!(diff_tensor.cycles(&m, &cm), 2 * region);

        // And the true-broadcast case still merges: identical tuples.
        let bcast = ExchangeProgram::new(vec![
            BlockCopy { src_tile: 0, dst_tile: 1, bytes: 400, src_region: RegionKey::new(5, 0, 1) },
            BlockCopy { src_tile: 0, dst_tile: 2, bytes: 400, src_region: RegionKey::new(5, 0, 1) },
        ]);
        assert_eq!(bcast.num_regions(), 1);
        assert_eq!(bcast.cycles(&m, &cm), region);
    }

    #[test]
    fn broadcast_mixed_chip_charges_sender_worst_link() {
        // Regression: a broadcast region consumed both on-chip and
        // cross-chip used to charge the sender whichever copy's link cost
        // was seen *first*, making the phase cost depend on copy order and
        // undercosting the sender when the on-chip copy came first.
        let cm = CostModel::default();
        let m = model();
        // Region A (key 7): tile 0 -> tile 1 (on-chip) and tile 0 -> tile 4
        // (cross-chip). Region B (key 9): tile 0 -> tile 2 (on-chip), which
        // makes the *sender* the bottleneck tile.
        let a_on = BlockCopy { src_tile: 0, dst_tile: 1, bytes: 400, src_region: k(7) };
        let a_cross = BlockCopy { src_tile: 0, dst_tile: 4, bytes: 400, src_region: k(7) };
        let b_on = BlockCopy { src_tile: 0, dst_tile: 2, bytes: 400, src_region: k(9) };
        let on_first = ExchangeProgram::new(vec![a_on, a_cross, b_on]);
        let cross_first = ExchangeProgram::new(vec![a_cross, a_on, b_on]);
        // Sender pays region A at the IPU-Link rate (its worst consumer)
        // plus region B at the on-chip rate; receivers each pay one region.
        let want = cm.ipu_link_region_cycles(400)
            + cm.on_chip_region_cycles(400)
            + cm.ipu_link_latency_cycles;
        assert_eq!(on_first.cycles(&m, &cm), want);
        // And the cost must not depend on the order copies are listed in.
        assert_eq!(cross_first.cycles(&m, &cm), on_first.cycles(&m, &cm));
    }

    #[test]
    fn all_to_all_cost_independent_of_participants() {
        // 2 tiles exchanging vs 4 tiles pairwise exchanging the same bytes:
        // identical phase cost (no shared medium contention).
        let cm = CostModel::default();
        let m = model();
        let two = ExchangeProgram::new(vec![BlockCopy {
            src_tile: 0,
            dst_tile: 1,
            bytes: 256,
            src_region: k(1),
        }]);
        let four = ExchangeProgram::new(vec![
            BlockCopy { src_tile: 0, dst_tile: 1, bytes: 256, src_region: k(1) },
            BlockCopy { src_tile: 2, dst_tile: 3, bytes: 256, src_region: k(2) },
        ]);
        assert_eq!(two.cycles(&m, &cm), four.cycles(&m, &cm));
    }

    #[test]
    fn inter_chip_adds_latency_and_bandwidth() {
        let cm = CostModel::default();
        let m = model();
        let on_chip = ExchangeProgram::new(vec![BlockCopy {
            src_tile: 0,
            dst_tile: 3,
            bytes: 1024,
            src_region: k(1),
        }]);
        // Tile 4 is on the second chip.
        let cross = ExchangeProgram::new(vec![BlockCopy {
            src_tile: 0,
            dst_tile: 4,
            bytes: 1024,
            src_region: k(1),
        }]);
        assert!(cross.cycles(&m, &cm) > on_chip.cycles(&m, &cm) + cm.ipu_link_latency_cycles / 2);
    }

    #[test]
    fn fewer_regions_cheaper_than_many_small() {
        // The motivation for the paper's region grouping: one 4000-byte
        // region beats 100 copies of 40 bytes.
        let cm = CostModel::default();
        let m = model();
        let one = ExchangeProgram::new(vec![BlockCopy {
            src_tile: 0,
            dst_tile: 1,
            bytes: 4000,
            src_region: k(0),
        }]);
        let many = ExchangeProgram::new(
            (0..100)
                .map(|i| BlockCopy { src_tile: 0, dst_tile: 1, bytes: 40, src_region: k(i) })
                .collect(),
        );
        assert!(one.cycles(&m, &cm) < many.cycles(&m, &cm));
        assert_eq!(one.total_bytes(), many.total_bytes());
    }
}
