//! # fault — deterministic, seeded fault injection
//!
//! The IPU's bit-deterministic BSP execution is what makes *reproducible*
//! fault injection possible: a fault pinned to a (superstep, tile)
//! coordinate fires at exactly the same point of exactly the same
//! computation on every run, so every detection and recovery path in the
//! solver stack above can be held down by an ordinary regression test.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s plus an optional seeded
//! generator. It is pure description — the graph engine owns the runtime
//! state (which faults have fired, the superstep counter) so that the plan
//! itself can be cloned into reports and replays.
//!
//! ## Spec grammar (`GRAPHENE_FAULTS`)
//!
//! `;`-separated entries, each either an explicit fault or a seeded-plan
//! parameter:
//!
//! ```text
//! flip@s<S>.t<T>:w<W>.b<B>    SRAM bit-flip: before compute superstep S,
//!                             flip bit B of float word W on tile T
//! xflip@s<S>.t<T>:w<W>.b<B>   exchange corruption: flip bit B of word W of
//!                             the first block-copy landing on tile T in the
//!                             exchange phase preceding superstep S
//! xdrop@s<S>.t<T>[:w<W>]      dropped exchange: skip the W-th block-copy
//!                             (default: first) landing on tile T in the
//!                             exchange phase preceding superstep S
//! stall@s<S>.t<T>:c<C>        tile T stalls for C extra cycles in compute
//!                             superstep S
//!
//! seed=<u64>                  seeded plan: derive faults deterministically
//! n=<count>                   ... this many of them (default 1)
//! classes=flip+xdrop+...      ... drawn from these classes (default all)
//! smax=<S>                    ... with supersteps in [1, S) (default 4096)
//! wmax=<W>                    ... with word indices in [0, W) (default 64)
//! ```
//!
//! Example: `GRAPHENE_FAULTS='flip@s40.t2:w7.b30;stall@s12.t0:c5000'`.
//!
//! Seeded entries and explicit entries may be mixed; resolution
//! ([`FaultPlan::resolve`]) is a pure function of (spec, tile count), so
//! the same spec replays bit-identically on both host executors.

use crate::model::TileId;
use std::fmt;

/// What a single fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` of the `word`-th float element (in concatenated
    /// program-order operand order) resident on the tile, just before the
    /// compute superstep runs.
    SramBitFlip { word: u32, bit: u8 },
    /// Flip bit `bit` of the `word`-th element of the first block-copy
    /// landing on the tile in the preceding exchange phase (after the copy
    /// is applied — corrupted delivery).
    ExchangeBitFlip { word: u32, bit: u8 },
    /// Drop the `word`-th block-copy landing on the tile in the preceding
    /// exchange phase (the destination keeps its stale contents).
    ExchangeDrop { word: u32 },
    /// The tile takes `cycles` extra cycles in the compute superstep; under
    /// BSP every other tile waits at the sync.
    Stall { cycles: u64 },
}

impl FaultKind {
    /// Short class name, used in reports and the `classes=` spec field.
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::SramBitFlip { .. } => "flip",
            FaultKind::ExchangeBitFlip { .. } => "xflip",
            FaultKind::ExchangeDrop { .. } => "xdrop",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

/// One fault pinned to a (superstep, tile) coordinate.
///
/// Compute supersteps are numbered from 0 in engine execution order;
/// exchange faults use the superstep of the *following* compute step, so
/// `xdrop@s4` perturbs the exchange feeding compute superstep 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    pub superstep: u64,
    pub tile: TileId,
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::SramBitFlip { word, bit } => {
                write!(f, "flip@s{}.t{}:w{}.b{}", self.superstep, self.tile, word, bit)
            }
            FaultKind::ExchangeBitFlip { word, bit } => {
                write!(f, "xflip@s{}.t{}:w{}.b{}", self.superstep, self.tile, word, bit)
            }
            FaultKind::ExchangeDrop { word } => {
                write!(f, "xdrop@s{}.t{}:w{}", self.superstep, self.tile, word)
            }
            FaultKind::Stall { cycles } => {
                write!(f, "stall@s{}.t{}:c{}", self.superstep, self.tile, cycles)
            }
        }
    }
}

/// Parameters of the seeded (randomised but deterministic) part of a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeededFaults {
    pub seed: u64,
    pub count: u32,
    pub classes: Vec<&'static str>,
    pub superstep_max: u64,
    pub word_max: u32,
}

/// A deterministic fault plan: explicit faults plus an optional seeded
/// generator, resolved against a concrete tile count at engine load time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
    pub seeded: Option<SeededFaults>,
    /// The spec string this plan was parsed from (for reports), if any.
    pub spec: Option<String>,
}

const ALL_CLASSES: [&str; 4] = ["flip", "xflip", "xdrop", "stall"];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("fault spec: bad {what} `{s}`"))
}

/// Parse one `s<S>.t<T>` coordinate pair.
fn parse_coord(s: &str, entry: &str) -> Result<(u64, TileId), String> {
    let (ss, ts) = s
        .split_once('.')
        .ok_or_else(|| format!("fault spec: `{entry}` wants s<S>.t<T> after `@`"))?;
    let ss = ss
        .strip_prefix('s')
        .ok_or_else(|| format!("fault spec: `{entry}` superstep must start with `s`"))?;
    let ts = ts
        .strip_prefix('t')
        .ok_or_else(|| format!("fault spec: `{entry}` tile must start with `t`"))?;
    Ok((parse_num(ss, "superstep")?, parse_num::<usize>(ts, "tile")?))
}

/// Parse `w<W>.b<B>`.
fn parse_word_bit(s: &str, entry: &str) -> Result<(u32, u8), String> {
    let (ws, bs) = s
        .split_once('.')
        .ok_or_else(|| format!("fault spec: `{entry}` wants w<W>.b<B> after `:`"))?;
    let ws = ws
        .strip_prefix('w')
        .ok_or_else(|| format!("fault spec: `{entry}` word must start with `w`"))?;
    let bs = bs
        .strip_prefix('b')
        .ok_or_else(|| format!("fault spec: `{entry}` bit must start with `b`"))?;
    let bit: u8 = parse_num(bs, "bit")?;
    if bit > 31 {
        return Err(format!("fault spec: `{entry}` bit {bit} out of range (0..=31)"));
    }
    Ok((parse_num(ws, "word")?, bit))
}

impl FaultPlan {
    /// Parse a spec string (the `GRAPHENE_FAULTS` grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan { spec: Some(spec.to_string()), ..FaultPlan::default() };
        let mut seed: Option<u64> = None;
        let mut count: u32 = 1;
        let mut classes: Vec<&'static str> = Vec::new();
        let mut smax: u64 = 4096;
        let mut wmax: u32 = 64;
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some((key, val)) = entry.split_once('=') {
                match key.trim() {
                    "seed" => seed = Some(parse_num(val, "seed")?),
                    "n" => count = parse_num(val, "n")?,
                    "smax" => smax = parse_num(val, "smax")?,
                    "wmax" => wmax = parse_num(val, "wmax")?,
                    "classes" => {
                        for c in val.split('+').map(str::trim) {
                            let known = ALL_CLASSES
                                .iter()
                                .find(|k| **k == c)
                                .ok_or_else(|| format!("fault spec: unknown class `{c}`"))?;
                            classes.push(known);
                        }
                    }
                    other => return Err(format!("fault spec: unknown key `{other}`")),
                }
                continue;
            }
            let (head, rest) =
                entry.split_once('@').ok_or_else(|| format!("fault spec: `{entry}` has no `@`"))?;
            let (coord, tail) = match rest.split_once(':') {
                Some((c, t)) => (c, Some(t)),
                None => (rest, None),
            };
            let (superstep, tile) = parse_coord(coord, entry)?;
            let kind = match head {
                "flip" | "xflip" => {
                    let tail =
                        tail.ok_or_else(|| format!("fault spec: `{entry}` wants :w<W>.b<B>"))?;
                    let (word, bit) = parse_word_bit(tail, entry)?;
                    if head == "flip" {
                        FaultKind::SramBitFlip { word, bit }
                    } else {
                        FaultKind::ExchangeBitFlip { word, bit }
                    }
                }
                "xdrop" => {
                    let word = match tail {
                        None => 0,
                        Some(t) => {
                            let t = t
                                .strip_prefix('w')
                                .ok_or_else(|| format!("fault spec: `{entry}` wants :w<W>"))?;
                            parse_num(t, "word")?
                        }
                    };
                    FaultKind::ExchangeDrop { word }
                }
                "stall" => {
                    let t = tail
                        .and_then(|t| t.strip_prefix('c'))
                        .ok_or_else(|| format!("fault spec: `{entry}` wants :c<C>"))?;
                    FaultKind::Stall { cycles: parse_num(t, "cycles")? }
                }
                other => return Err(format!("fault spec: unknown fault class `{other}`")),
            };
            plan.faults.push(Fault { superstep, tile, kind });
        }
        if let Some(seed) = seed {
            if classes.is_empty() {
                classes = ALL_CLASSES.to_vec();
            }
            plan.seeded = Some(SeededFaults {
                seed,
                count,
                classes,
                superstep_max: smax.max(2),
                word_max: wmax.max(1),
            });
        }
        if plan.faults.is_empty() && plan.seeded.is_none() {
            return Err("fault spec: empty plan".to_string());
        }
        Ok(plan)
    }

    /// Read `GRAPHENE_FAULTS`. `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("GRAPHENE_FAULTS") {
            Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// Resolve the plan against a concrete tile count: explicit faults are
    /// kept as-is (tiles clamped into range), seeded faults are derived by
    /// a splitmix64 stream — a pure function of (spec, `num_tiles`), hence
    /// bit-identical across executors and runs.
    pub fn resolve(&self, num_tiles: usize) -> Vec<Fault> {
        let num_tiles = num_tiles.max(1);
        let mut out: Vec<Fault> =
            self.faults.iter().map(|f| Fault { tile: f.tile % num_tiles, ..*f }).collect();
        if let Some(seeded) = &self.seeded {
            let mut state = seeded.seed ^ 0x6a09_e667_f3bc_c908;
            for _ in 0..seeded.count {
                let class =
                    seeded.classes[(splitmix64(&mut state) % seeded.classes.len() as u64) as usize];
                // Superstep 0 is usually setup; start at 1 so seeded faults
                // land inside the solve loop more often.
                let superstep = 1 + splitmix64(&mut state) % (seeded.superstep_max - 1);
                let tile = (splitmix64(&mut state) % num_tiles as u64) as usize;
                let word = (splitmix64(&mut state) % seeded.word_max as u64) as u32;
                // Bits 0..=30: perturb mantissa/exponent, not only the sign.
                let bit = (splitmix64(&mut state) % 31) as u8;
                let kind = match class {
                    "flip" => FaultKind::SramBitFlip { word, bit },
                    "xflip" => FaultKind::ExchangeBitFlip { word, bit },
                    "xdrop" => FaultKind::ExchangeDrop { word },
                    "stall" => FaultKind::Stall { cycles: 1000 + splitmix64(&mut state) % 100_000 },
                    _ => unreachable!("classes are validated at parse time"),
                };
                out.push(Fault { superstep, tile, kind });
            }
        }
        out
    }
}

/// A fault that actually fired, as recorded by the engine for reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub superstep: u64,
    pub tile: TileId,
    /// Fault class (`flip` / `xflip` / `xdrop` / `stall`).
    pub class: String,
    /// Human-readable detail: target tensor/element, old/new bits, cycles.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_explicit_entries() {
        let p = FaultPlan::parse("flip@s40.t2:w7.b30; stall@s12.t0:c5000").unwrap();
        assert_eq!(p.faults.len(), 2);
        assert_eq!(
            p.faults[0],
            Fault { superstep: 40, tile: 2, kind: FaultKind::SramBitFlip { word: 7, bit: 30 } }
        );
        assert_eq!(
            p.faults[1],
            Fault { superstep: 12, tile: 0, kind: FaultKind::Stall { cycles: 5000 } }
        );
        assert!(p.seeded.is_none());
    }

    #[test]
    fn parses_exchange_entries() {
        let p = FaultPlan::parse("xflip@s4.t1:w2.b5;xdrop@s9.t3;xdrop@s9.t4:w2").unwrap();
        assert_eq!(p.faults[0].kind, FaultKind::ExchangeBitFlip { word: 2, bit: 5 });
        assert_eq!(p.faults[1].kind, FaultKind::ExchangeDrop { word: 0 });
        assert_eq!(p.faults[2].kind, FaultKind::ExchangeDrop { word: 2 });
    }

    #[test]
    fn parses_seeded_plan() {
        let p = FaultPlan::parse("seed=42;n=3;classes=flip+xdrop;smax=512").unwrap();
        let s = p.seeded.as_ref().unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.count, 3);
        assert_eq!(s.classes, vec!["flip", "xdrop"]);
        assert_eq!(s.superstep_max, 512);
        let faults = p.resolve(4);
        assert_eq!(faults.len(), 3);
        for f in &faults {
            assert!(f.tile < 4);
            assert!((1..512).contains(&f.superstep));
            assert!(matches!(
                f.kind,
                FaultKind::SramBitFlip { .. } | FaultKind::ExchangeDrop { .. }
            ));
        }
        // Determinism: resolving twice gives the same faults.
        assert_eq!(faults, p.resolve(4));
        // ... and a different seed gives a different plan.
        let q = FaultPlan::parse("seed=43;n=3;classes=flip+xdrop;smax=512").unwrap();
        assert_ne!(faults, q.resolve(4));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "flip@s1.t0",          // missing :w.b
            "flip@s1.t0:w1.b32",   // bit out of range
            "flip@t0.s1:w1.b3",    // coords swapped
            "warp@s1.t0:c3",       // unknown class
            "seed=42;classes=bad", // unknown seeded class
            "n=3",                 // seeded params without seed, no faults
            "stall@s1.t0:w5",      // stall wants c<C>
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        let spec = "flip@s40.t2:w7.b30;xflip@s4.t1:w2.b5;xdrop@s9.t3:w0;stall@s12.t0:c5000";
        let p = FaultPlan::parse(spec).unwrap();
        let shown: Vec<String> = p.faults.iter().map(|f| f.to_string()).collect();
        assert_eq!(shown.join(";"), spec);
        let again = FaultPlan::parse(&shown.join(";")).unwrap();
        assert_eq!(again.faults, p.faults);
    }

    #[test]
    fn explicit_tiles_clamp_to_range() {
        let p = FaultPlan::parse("flip@s1.t7:w0.b1").unwrap();
        assert_eq!(p.resolve(4)[0].tile, 3); // 7 % 4
    }
}
