//! # ipu-sim — a cycle-modelled GraphCore Mk2 IPU
//!
//! The paper this workspace reproduces runs on real IPU hardware through the
//! proprietary Poplar SDK. Neither is available here, so this crate builds
//! the closest synthetic equivalent: a *deterministic functional simulator*
//! of the machine the paper describes in §II-A —
//!
//! * 1,472 **tiles** per chip, each with ~624 kB of private SRAM and
//!   **six independent worker threads**;
//! * a stateless, all-to-all on-chip **exchange fabric** with
//!   compiler-scheduled, cycle-precise transfers;
//! * stateful **IPU-Links** between chips;
//! * **Bulk Synchronous Parallel** execution: compute supersteps separated
//!   by global syncs and exchange phases;
//! * *no* caches, *no* native double precision.
//!
//! The simulator is split into a machine description ([`IpuModel`]), a cycle
//! cost model ([`cost`]) carrying the paper's Table I arithmetic costs, SRAM
//! accounting ([`memory`]), the exchange fabric model ([`exchange`]), the
//! per-tile worker-thread scheduler ([`threading`] — the analogue of the
//! paper's IPUTHREADING library), and cycle accounting with per-phase
//! attribution ([`clock`] — the analogue of Poplar's profiler, which is what
//! the paper's measurements come from).
//!
//! Determinism is a feature, not a shortcut: the paper itself notes that
//! "due to the determinism of the IPU and its constant clock speed, the
//! execution time is the same for every invocation", and all IPU numbers in
//! its evaluation are cycle counts from the profiler. This crate reproduces
//! exactly those observables.

pub mod clock;
pub mod cost;
pub mod exchange;
pub mod fault;
pub mod memory;
pub mod model;
pub mod threading;

pub use clock::{CycleStats, Phase};
pub use cost::{CostModel, DType, Op, COST_MODEL_REVISION};
pub use exchange::{BlockCopy, ExchangeProgram, RegionKey};
pub use fault::{Fault, FaultEvent, FaultKind, FaultPlan};
pub use memory::TileMemory;
pub use model::{IpuModel, TileId, WorkerId};
