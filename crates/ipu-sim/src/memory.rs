//! Per-tile SRAM accounting.
//!
//! Each Mk2 tile owns ~612 kB of SRAM accessible only by its own core
//! (§II-A). The graph compiler must therefore prove that every tensor slice
//! mapped to a tile fits; this module provides the byte ledger it checks
//! against. There is no cache hierarchy and no spill path — exceeding the
//! budget is a hard compile error, exactly as on the real device.

use crate::model::{IpuModel, TileId};

/// Error returned when a tile's SRAM budget would be exceeded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfTileMemory {
    pub tile: TileId,
    pub requested: usize,
    pub used: usize,
    pub capacity: usize,
}

impl std::fmt::Display for OutOfTileMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tile {} out of memory: requested {} B with {} B used of {} B",
            self.tile, self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for OutOfTileMemory {}

/// SRAM ledger for every tile in the system.
#[derive(Clone, Debug)]
pub struct TileMemory {
    capacity: usize,
    used: Vec<usize>,
}

impl TileMemory {
    /// Fresh ledger for all tiles of `model`.
    pub fn new(model: &IpuModel) -> Self {
        TileMemory { capacity: model.tile_memory_bytes, used: vec![0; model.num_tiles()] }
    }

    /// Reserve `bytes` on `tile`, failing if the budget would be exceeded.
    pub fn alloc(&mut self, tile: TileId, bytes: usize) -> Result<(), OutOfTileMemory> {
        let used = self.used[tile];
        if used + bytes > self.capacity {
            return Err(OutOfTileMemory { tile, requested: bytes, used, capacity: self.capacity });
        }
        self.used[tile] = used + bytes;
        Ok(())
    }

    /// Release `bytes` on `tile` (tensors freed by the graph compiler).
    pub fn free(&mut self, tile: TileId, bytes: usize) {
        debug_assert!(self.used[tile] >= bytes, "freeing more than allocated on tile {tile}");
        self.used[tile] = self.used[tile].saturating_sub(bytes);
    }

    /// Bytes currently allocated on `tile`.
    pub fn used(&self, tile: TileId) -> usize {
        self.used[tile]
    }

    /// Remaining bytes on `tile`.
    pub fn available(&self, tile: TileId) -> usize {
        self.capacity - self.used[tile]
    }

    /// SRAM capacity of each tile.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest utilisation across all tiles, in [0, 1]. Useful for memory
    /// balance diagnostics in the partitioner.
    pub fn peak_utilisation(&self) -> f64 {
        let max = self.used.iter().copied().max().unwrap_or(0);
        max as f64 / self.capacity as f64
    }

    /// Total bytes allocated across the system.
    pub fn total_used(&self) -> usize {
        self.used.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> TileMemory {
        TileMemory::new(&IpuModel::tiny(4))
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut m = mem();
        m.alloc(0, 1000).unwrap();
        m.alloc(0, 2000).unwrap();
        assert_eq!(m.used(0), 3000);
        m.free(0, 1000);
        assert_eq!(m.used(0), 2000);
        assert_eq!(m.used(1), 0);
    }

    #[test]
    fn overflow_is_an_error() {
        let mut m = mem();
        let cap = m.capacity();
        m.alloc(2, cap).unwrap();
        let err = m.alloc(2, 1).unwrap_err();
        assert_eq!(err.tile, 2);
        assert_eq!(err.used, cap);
        // Failed alloc must not change the ledger.
        assert_eq!(m.used(2), cap);
        assert_eq!(m.available(2), 0);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = mem();
        let cap = m.capacity();
        m.alloc(1, cap).unwrap();
        assert_eq!(m.available(1), 0);
    }

    #[test]
    fn peak_utilisation_tracks_worst_tile() {
        let mut m = mem();
        let cap = m.capacity();
        m.alloc(0, cap / 2).unwrap();
        m.alloc(1, cap / 4).unwrap();
        assert!((m.peak_utilisation() - 0.5).abs() < 1e-6);
        assert_eq!(m.total_used(), cap / 2 + cap / 4);
    }
}
