//! Machine description: topology and physical parameters of the simulated
//! IPU system.

/// Index of a tile within the whole (possibly multi-chip) system.
pub type TileId = usize;
/// Index of a worker thread within one tile (0..workers_per_tile).
pub type WorkerId = usize;

/// Static description of an IPU system: one or more Mk2 chips connected by
/// IPU-Links, as in the paper's IPU-POD16 testbed (§VI-A).
#[derive(Clone, Debug, PartialEq)]
pub struct IpuModel {
    /// Number of IPU chips in the system.
    pub num_ipus: usize,
    /// Tiles per chip (1,472 on the Mk2).
    pub tiles_per_ipu: usize,
    /// Hardware worker threads per tile (6 on the Mk2; all must be used for
    /// full utilisation).
    pub workers_per_tile: usize,
    /// Private SRAM per tile in bytes (~624 kB on the Mk2; the paper quotes
    /// "approximately 612 kB" of usable memory, which we adopt).
    pub tile_memory_bytes: usize,
    /// Tile clock in Hz (1.325 GHz on the Mk2).
    pub clock_hz: f64,
}

impl IpuModel {
    /// A single Mk2 IPU chip.
    pub fn mk2() -> Self {
        IpuModel {
            num_ipus: 1,
            tiles_per_ipu: 1472,
            workers_per_tile: 6,
            tile_memory_bytes: 612 * 1024,
            clock_hz: 1.325e9,
        }
    }

    /// A GraphCore M2000 machine: four Mk2 IPUs (5,888 tiles) — the unit the
    /// paper benchmarks against one CPU / one GPU.
    pub fn m2000() -> Self {
        IpuModel { num_ipus: 4, ..Self::mk2() }
    }

    /// An IPU-POD16: four M2000s, sixteen IPUs — the paper's scaling
    /// testbed.
    pub fn pod16() -> Self {
        IpuModel { num_ipus: 16, ..Self::mk2() }
    }

    /// `n` Mk2 chips.
    pub fn with_ipus(n: usize) -> Self {
        assert!(n > 0, "an IPU system needs at least one chip");
        IpuModel { num_ipus: n, ..Self::mk2() }
    }

    /// A deliberately tiny system for unit tests: `tiles` tiles on one chip,
    /// full Mk2 parameters otherwise.
    pub fn tiny(tiles: usize) -> Self {
        assert!(tiles > 0);
        IpuModel { num_ipus: 1, tiles_per_ipu: tiles, ..Self::mk2() }
    }

    /// Total number of tiles in the system.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.num_ipus * self.tiles_per_ipu
    }

    /// Total number of worker threads in the system.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_tiles() * self.workers_per_tile
    }

    /// Which chip a tile lives on.
    #[inline]
    pub fn ipu_of(&self, tile: TileId) -> usize {
        debug_assert!(tile < self.num_tiles());
        tile / self.tiles_per_ipu
    }

    /// Whether two tiles communicate over the on-chip fabric (same chip) or
    /// over IPU-Links (different chips).
    #[inline]
    pub fn same_chip(&self, a: TileId, b: TileId) -> bool {
        self.ipu_of(a) == self.ipu_of(b)
    }

    /// Aggregate SRAM of the whole system in bytes (~900 MB per chip).
    #[inline]
    pub fn total_memory_bytes(&self) -> usize {
        self.num_tiles() * self.tile_memory_bytes
    }

    /// Convert a cycle count into seconds at the model's clock.
    #[inline]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl Default for IpuModel {
    fn default() -> Self {
        Self::mk2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mk2_parameters_match_paper() {
        let m = IpuModel::mk2();
        assert_eq!(m.num_tiles(), 1472);
        assert_eq!(m.workers_per_tile, 6);
        assert_eq!(m.num_workers(), 8832);
        // ~900 MB per chip
        let mb = m.total_memory_bytes() as f64 / 1e6;
        assert!((850.0..950.0).contains(&mb), "total SRAM {mb} MB");
    }

    #[test]
    fn m2000_has_5888_tiles() {
        assert_eq!(IpuModel::m2000().num_tiles(), 5888);
    }

    #[test]
    fn pod16_topology() {
        let m = IpuModel::pod16();
        assert_eq!(m.num_ipus, 16);
        assert_eq!(m.ipu_of(0), 0);
        assert_eq!(m.ipu_of(1471), 0);
        assert_eq!(m.ipu_of(1472), 1);
        assert_eq!(m.ipu_of(m.num_tiles() - 1), 15);
        assert!(m.same_chip(0, 1471));
        assert!(!m.same_chip(0, 1472));
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let m = IpuModel::mk2();
        let s = m.cycles_to_seconds(1_325_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
